// Circuit breaker for the serving runtime's backing-store operations
// (artifact reloads, ledger I/O).
//
// Classic three-state machine, driven by an injected clock so tests are
// deterministic:
//
//   closed     operations run; `failure_threshold` CONSECUTIVE failures
//              trip the breaker open.
//   open       operations are rejected immediately with
//              kResourceExhausted and a retry-after hint — a flapping
//              backing store is not hammered, and request threads never
//              block behind a reload that cannot succeed. After
//              `cooldown_ms` on the injected clock the breaker becomes
//              half-open.
//   half-open  ONE caller at a time may probe. The probe runs under
//              RetryWithBackoff (common/retry.h) with `probe_retry`, so a
//              transient I/O blip during recovery does not immediately
//              re-trip the breaker. `half_open_successes` consecutive
//              successful probes close the breaker; any final failure
//              re-opens it and restarts the cooldown.
//
// State is observable: privrec.serve.breaker_state gauge (0 closed,
// 1 open, 2 half-open) plus transition counters
// privrec.serve.breaker_{opened,closed}_total.

#ifndef PRIVREC_SERVE_CIRCUIT_BREAKER_H_
#define PRIVREC_SERVE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/retry.h"
#include "common/status.h"
#include "serve/clock.h"

namespace privrec::serve {

enum class BreakerState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* BreakerStateName(BreakerState state);

struct CircuitBreakerOptions {
  // Consecutive failures (in closed state) that trip the breaker.
  int64_t failure_threshold = 3;
  // Open -> half-open after this much injected-clock time.
  int64_t cooldown_ms = 1000;
  // Consecutive half-open successes required to close again.
  int64_t half_open_successes = 1;
  // Retry policy for half-open probes (transient-only by default; a
  // permanent error like kParseError fails the probe on first attempt).
  RetryOptions probe_retry;
};

class CircuitBreaker {
 public:
  // `name` scopes the metrics ("privrec.serve.breaker_state" is shared;
  // the name appears in rejection messages). Null clock = SteadyClock.
  CircuitBreaker(std::string name, CircuitBreakerOptions options,
                 const Clock* clock = nullptr);

  // Current state; performs the open -> half-open transition when the
  // cooldown has elapsed on the injected clock.
  BreakerState state() const;

  // Runs `op` through the breaker:
  //   open       -> kResourceExhausted immediately (op not invoked), with
  //                 the remaining cooldown in the message;
  //   half-open  -> op under RetryWithBackoff(probe_retry); only one
  //                 probe admitted per transition window, concurrent
  //                 callers are rejected like open;
  //   closed     -> op once.
  // The result feeds the state machine and is returned unchanged.
  Status Run(const std::function<Status()>& op);

  // Remaining cooldown before a half-open probe is allowed (0 when not
  // open) — the retry-after hint surfaced to shed callers.
  int64_t retry_after_ms() const;

  int64_t consecutive_failures() const;
  const std::string& name() const { return name_; }

 private:
  BreakerState StateLocked(int64_t now_ms) const;
  void RecordLocked(bool ok, int64_t now_ms);

  const std::string name_;
  const CircuitBreakerOptions options_;
  const Clock* clock_;

  mutable std::mutex mu_;
  // kOpen is represented by (tripped_ && now < opened_at_ + cooldown);
  // after the cooldown StateLocked reports kHalfOpen without a separate
  // transition event, so the machine is a pure function of (history, now).
  mutable bool tripped_ = false;
  mutable bool probe_in_flight_ = false;
  int64_t opened_at_ms_ = 0;
  int64_t failures_ = 0;        // consecutive, resets on success
  int64_t probe_successes_ = 0;  // consecutive half-open successes
};

}  // namespace privrec::serve

#endif  // PRIVREC_SERVE_CIRCUIT_BREAKER_H_
