#include "dp/budget.h"

#include <algorithm>

#include "common/macros.h"

namespace privrec::dp {

PrivacyBudget::PrivacyBudget(double total_epsilon)
    : total_epsilon_(total_epsilon) {
  PRIVREC_CHECK(total_epsilon >= 0.0);
}

bool PrivacyBudget::Charge(const std::string& group, double epsilon) {
  PRIVREC_CHECK(epsilon >= 0.0);
  double current = 0.0;
  auto it = per_group_.find(group);
  if (it != per_group_.end()) current = it->second;
  if (current + epsilon > total_epsilon_ + 1e-12) return false;
  per_group_[group] = current + epsilon;
  return true;
}

double PrivacyBudget::GroupSpent(const std::string& group) const {
  auto it = per_group_.find(group);
  return it == per_group_.end() ? 0.0 : it->second;
}

double PrivacyBudget::Spent() const {
  double spent = 0.0;
  for (const auto& [group, eps] : per_group_) {
    spent = std::max(spent, eps);
  }
  return spent;
}

}  // namespace privrec::dp
