#include "dp/budget.h"

#include <algorithm>

#include "common/macros.h"

namespace privrec::dp {

PrivacyBudget::PrivacyBudget(double total_epsilon)
    : total_epsilon_(total_epsilon) {
  PRIVREC_CHECK(total_epsilon >= 0.0);
}

double PrivacyBudget::limit() const {
  // Relative slack for FP drift, with an absolute floor so a zero/small
  // total still tolerates representation error.
  return total_epsilon_ +
         std::max(1e-12, total_epsilon_ * kRelativeSlack);
}

bool PrivacyBudget::CanCharge(const std::string& group,
                              double epsilon) const {
  PRIVREC_CHECK(epsilon >= 0.0);
  return GroupSpent(group) + epsilon <= limit();
}

bool PrivacyBudget::Charge(const std::string& group, double epsilon) {
  if (!CanCharge(group, epsilon)) return false;
  per_group_[group] += epsilon;
  return true;
}

void PrivacyBudget::RestoreGroupSpent(const std::string& group,
                                      double epsilon) {
  PRIVREC_CHECK(epsilon >= 0.0);
  PRIVREC_CHECK_MSG(epsilon <= limit(),
                    "replayed ledger spend exceeds the budget total");
  per_group_[group] = epsilon;
}

double PrivacyBudget::GroupSpent(const std::string& group) const {
  auto it = per_group_.find(group);
  return it == per_group_.end() ? 0.0 : it->second;
}

double PrivacyBudget::Spent() const {
  double spent = 0.0;
  for (const auto& [group, eps] : per_group_) {
    spent = std::max(spent, eps);
  }
  return spent;
}

}  // namespace privrec::dp
