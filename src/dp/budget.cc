#include "dp/budget.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/metrics.h"

namespace privrec::dp {

namespace {

// The ε gauges track the most recent accountant that charged or replayed.
// With several live budgets the gauges follow the latest activity; the
// counters (charges, charged ε) accumulate across all of them.
void UpdateEpsilonGauges(const PrivacyBudget& budget) {
  static obs::Gauge& spent = obs::GetGauge("privrec.dp.epsilon_spent");
  static obs::Gauge& remaining =
      obs::GetGauge("privrec.dp.epsilon_remaining");
  static obs::Gauge& total = obs::GetGauge("privrec.dp.epsilon_total");
  spent.Set(budget.Spent());
  remaining.Set(std::max(0.0, budget.total_epsilon() - budget.Spent()));
  total.Set(budget.total_epsilon());
}

}  // namespace

PrivacyBudget::PrivacyBudget(double total_epsilon)
    : total_epsilon_(total_epsilon) {
  PRIVREC_CHECK(total_epsilon >= 0.0);
}

double PrivacyBudget::limit() const {
  // Relative slack for FP drift, with an absolute floor so a zero/small
  // total still tolerates representation error.
  return total_epsilon_ +
         std::max(1e-12, total_epsilon_ * kRelativeSlack);
}

bool PrivacyBudget::CanCharge(const std::string& group,
                              double epsilon) const {
  PRIVREC_CHECK(epsilon >= 0.0);
  return GroupSpent(group) + epsilon <= limit();
}

bool PrivacyBudget::Charge(const std::string& group, double epsilon) {
  static obs::Counter& charges = obs::GetCounter("privrec.dp.charges");
  static obs::Counter& rejected =
      obs::GetCounter("privrec.dp.charges_rejected");
  static obs::Gauge& charged_total =
      obs::GetGauge("privrec.dp.epsilon_charged_total");
  if (!CanCharge(group, epsilon)) {
    rejected.Increment();
    return false;
  }
  per_group_[group] += epsilon;
  charges.Increment();
  charged_total.Add(epsilon);
  UpdateEpsilonGauges(*this);
  return true;
}

void PrivacyBudget::RestoreGroupSpent(const std::string& group,
                                      double epsilon) {
  PRIVREC_CHECK(epsilon >= 0.0);
  PRIVREC_CHECK_MSG(epsilon <= limit(),
                    "replayed ledger spend exceeds the budget total");
  static obs::Gauge& replayed =
      obs::GetGauge("privrec.dp.epsilon_replayed_total");
  replayed.Add(epsilon);
  per_group_[group] = epsilon;
  UpdateEpsilonGauges(*this);
}

double PrivacyBudget::GroupSpent(const std::string& group) const {
  auto it = per_group_.find(group);
  return it == per_group_.end() ? 0.0 : it->second;
}

double PrivacyBudget::Spent() const {
  double spent = 0.0;
  for (const auto& [group, eps] : per_group_) {
    spent = std::max(spent, eps);
  }
  return spent;
}

}  // namespace privrec::dp
