// Empirical differential-privacy auditing.
//
// AuditDpRatio implements the histogram density-ratio check used
// throughout this repo's privacy tests: sample a released value many
// times under two neighboring inputs, bin both samples, and verify the
// per-bin probability ratio stays within e^ε (with sampling slack).
// This cannot *prove* ε-DP — it is a falsifier: a mechanism whose ratio
// exceeds the bound on well-populated bins is broken.
//
// The clamped edge bins aggregate tail mass whose true ratio sits exactly
// at e^ε for Laplace-style mechanisms; they are skipped by default
// because sampling noise there flags false positives.

#ifndef PRIVREC_DP_AUDIT_H_
#define PRIVREC_DP_AUDIT_H_

#include <cstdint>
#include <functional>
#include <string>

namespace privrec::dp {

struct AuditOptions {
  // Histogram range and resolution for the released value.
  double lo = -5.0;
  double hi = 5.0;
  int num_bins = 20;
  // Samples drawn from EACH world.
  int64_t samples = 50000;
  // Bins with fewer samples (in either world) are not checked.
  int64_t min_bin_count = 300;
  // Multiplicative slack on e^eps for sampling noise.
  double slack = 1.15;
  // Skip the first/last (clamped) bins.
  bool skip_edge_bins = true;
};

struct AuditResult {
  // max over checked bins of max(r, 1/r) for ratio r = p1/p2.
  double worst_ratio = 1.0;
  // The pass threshold: e^eps * slack.
  double bound = 0.0;
  int bins_checked = 0;
  bool passed = false;

  std::string ToString() const;
};

// `sample_world1` / `sample_world2` draw one released value from the
// mechanism run on each of the two neighboring inputs (fresh noise per
// call). `epsilon` is the guarantee being audited.
AuditResult AuditDpRatio(const std::function<double()>& sample_world1,
                         const std::function<double()>& sample_world2,
                         double epsilon, const AuditOptions& options = {});

}  // namespace privrec::dp

#endif  // PRIVREC_DP_AUDIT_H_
