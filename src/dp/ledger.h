// BudgetLedger: a crash-safe write-ahead journal for PrivacyBudget.
//
// Why a ledger: a restarted session that forgot its spent ε and re-released
// with fresh noise would silently double-spend the privacy budget — under
// sequential composition (Theorem 2) every fresh sample is a new charge,
// so crash recovery MUST replay the paid balance rather than resample. The
// protocol is write-ahead: a session journals the charge (an `intent`)
// BEFORE sampling noise, and journals a `commit` once the release is out.
// A crash between the two leaves a paid-but-unreleased intent; on restart
// the ε still counts as spent, and the release may only be reissued from
// the SAME deterministic noise stream (free under DP — identical output),
// never re-randomized.
//
// On-disk format (append-only text, one record per line, FNV-1a checksum
// per line, hexfloat ε for exact round-trips):
//   # privrec budget ledger v1
//   total <hexfloat> <crc>
//   intent <seq> <group> <hexfloat-eps> <crc>
//   commit <seq> <crc>
// A torn final line (partial write at crash) is detected by checksum and
// truncated away on open; corruption anywhere else is an error.
//
// Fault points: ledger.open (kIoError), ledger.append (kIoError: the
// append fails cleanly; kShortRead: half the record is written, simulating
// a crash mid-write).

#ifndef PRIVREC_DP_LEDGER_H_
#define PRIVREC_DP_LEDGER_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "dp/budget.h"

namespace privrec::dp {

class BudgetLedger {
 public:
  struct Entry {
    int64_t seq = 0;
    std::string group;
    double epsilon = 0.0;
    bool committed = false;

    bool operator==(const Entry&) const = default;
  };

  // A detached ledger; Append* calls fail until Open() succeeds.
  BudgetLedger() = default;

  BudgetLedger(BudgetLedger&&) = default;
  BudgetLedger& operator=(BudgetLedger&&) = default;

  // Opens `path`, creating it (with the given total) if absent. An
  // existing ledger is replayed: its recorded total must equal
  // `total_epsilon` exactly, its checksums must verify, and a torn final
  // line is truncated away.
  static Result<BudgetLedger> Open(const std::string& path,
                                   double total_epsilon);

  // Journals a charge intent (write-ahead: call BEFORE sampling noise).
  // The group name must contain no whitespace. Flushes before returning.
  Status AppendIntent(int64_t seq, const std::string& group, double epsilon);

  // Marks `seq` released. Requires a prior intent for `seq`.
  Status AppendCommit(int64_t seq);

  const std::string& path() const { return path_; }
  double total_epsilon() const { return total_epsilon_; }
  // True if Open() recovered from a partially-written final record.
  bool recovered_torn_tail() const { return recovered_torn_tail_; }

  // Replayed journal state, in append order.
  const std::vector<Entry>& entries() const { return entries_; }
  bool HasIntent(int64_t seq) const;
  bool IsCommitted(int64_t seq) const;
  int64_t NumCommitted() const;

  // Applies the replayed intents to `budget` (sum of intent ε per group —
  // intents without commits still count: that ε left the building).
  void ReplayInto(PrivacyBudget* budget) const;

 private:
  Status AppendLine(const std::string& body);

  std::string path_;
  double total_epsilon_ = 0.0;
  bool recovered_torn_tail_ = false;
  std::vector<Entry> entries_;
  std::ofstream out_;
};

// The result of an independent ledger replay audit (AuditLedgerReplay).
struct LedgerAuditReport {
  double total_epsilon = 0.0;
  // Σ intent ε across all groups — every journaled intent is paid ε,
  // committed or not.
  double epsilon_spent = 0.0;
  int64_t intents = 0;
  int64_t commits = 0;
  // Intent records whose seq was never committed: paid-but-unreleased
  // charges (at most one trailing intent in a healthy session).
  int64_t uncommitted = 0;
  // The file ends in a partially-written record. Reported, not repaired —
  // the audit never mutates the ledger.
  bool recovered_torn_tail = false;
  // Human-readable invariant violations; empty for a clean ledger.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

// Re-derives all paid releases from the journal at `path` and checks the
// no-double-spend invariants:
//   - no duplicate intent for the same (group, seq);
//   - intent seqs strictly increase within each group;
//   - every commit references a prior intent, and commits once;
//   - Σ intent ε never exceeds the recorded total (tolerance 1e-9·total).
// Deliberately a from-scratch parser rather than a call into
// BudgetLedger::Open — an auditor re-derives, it does not trust the
// implementation under audit. Structural corruption mid-file (bad
// checksum, malformed record) is a Status error; a torn FINAL record is
// legal crash fallout and only sets recovered_torn_tail.
Result<LedgerAuditReport> AuditLedgerReplay(const std::string& path);

}  // namespace privrec::dp

#endif  // PRIVREC_DP_LEDGER_H_
