// PrivacyBudget: an accountant that tracks ε consumption under the
// composition rules of Theorems 2 and 3.
//
// Charges are recorded against named disjointness groups:
//  - charges in the SAME group are assumed to touch the same records and
//    compose sequentially (epsilons add, Theorem 2);
//  - charges in DIFFERENT groups are assumed to touch disjoint records and
//    compose in parallel (max over groups, Theorem 3).
//
// This mirrors the structure of Algorithm 1's proof: each (item, cluster)
// pair reads a disjoint set of preference edges, so the whole of module A_w
// costs max — i.e. one — ε.

#ifndef PRIVREC_DP_BUDGET_H_
#define PRIVREC_DP_BUDGET_H_

#include <map>
#include <string>

namespace privrec::dp {

class PrivacyBudget {
 public:
  // `total_epsilon` is the guarantee the caller wants to be able to state.
  explicit PrivacyBudget(double total_epsilon);

  double total_epsilon() const { return total_epsilon_; }

  // Records an ε-charge against `group`. Returns false (and records
  // nothing) if the charge would push the spent budget past the total.
  bool Charge(const std::string& group, double epsilon);

  // Sequential total within one group.
  double GroupSpent(const std::string& group) const;

  // Overall spent ε = max over groups (parallel composition across groups).
  double Spent() const;

  double Remaining() const { return total_epsilon_ - Spent(); }

  bool Exhausted() const { return Remaining() <= 0.0; }

 private:
  double total_epsilon_;
  std::map<std::string, double> per_group_;
};

}  // namespace privrec::dp

#endif  // PRIVREC_DP_BUDGET_H_
