// PrivacyBudget: an accountant that tracks ε consumption under the
// composition rules of Theorems 2 and 3.
//
// Charges are recorded against named disjointness groups:
//  - charges in the SAME group are assumed to touch the same records and
//    compose sequentially (epsilons add, Theorem 2);
//  - charges in DIFFERENT groups are assumed to touch disjoint records and
//    compose in parallel (max over groups, Theorem 3).
//
// This mirrors the structure of Algorithm 1's proof: each (item, cluster)
// pair reads a disjoint set of preference edges, so the whole of module A_w
// costs max — i.e. one — ε.

#ifndef PRIVREC_DP_BUDGET_H_
#define PRIVREC_DP_BUDGET_H_

#include <algorithm>
#include <map>
#include <string>

namespace privrec::dp {

class PrivacyBudget {
 public:
  // Accumulated floating-point drift tolerated when checking a charge
  // against the total, relative to the total: splitting ε_total uniformly
  // over N releases accumulates rounding on the order of N ulps, which must
  // not forfeit the final planned release. A 1e-9 relative slack is ~1e8
  // ulps of headroom while remaining far below any meaningful ε.
  static constexpr double kRelativeSlack = 1e-9;

  // `total_epsilon` is the guarantee the caller wants to be able to state.
  explicit PrivacyBudget(double total_epsilon);

  double total_epsilon() const { return total_epsilon_; }

  // Records an ε-charge against `group`. Returns false (and records
  // nothing) if the charge would push the spent budget past the total
  // (beyond kRelativeSlack).
  bool Charge(const std::string& group, double epsilon);

  // True iff Charge(group, epsilon) would succeed, without recording it.
  bool CanCharge(const std::string& group, double epsilon) const;

  // Restores a replayed ledger balance: overwrites the spend recorded for
  // `group` (no limit check beyond the slack — the ledger is the source of
  // truth for what was already paid).
  void RestoreGroupSpent(const std::string& group, double epsilon);

  // Sequential total within one group.
  double GroupSpent(const std::string& group) const;

  // Overall spent ε = max over groups (parallel composition across groups).
  double Spent() const;

  // Never negative (a tolerated overshoot within the slack reads as 0).
  double Remaining() const {
    return std::max(0.0, total_epsilon_ - Spent());
  }

  bool Exhausted() const { return Remaining() <= 0.0; }

  // The recorded per-group spends, for serialization/inspection.
  const std::map<std::string, double>& group_spent() const {
    return per_group_;
  }

 private:
  double limit() const;

  double total_epsilon_;
  std::map<std::string, double> per_group_;
};

}  // namespace privrec::dp

#endif  // PRIVREC_DP_BUDGET_H_
