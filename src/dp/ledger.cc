#include "dp/ledger.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <utility>

#include "common/fault_injection.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace privrec::dp {

namespace {

constexpr std::string_view kHeader = "# privrec budget ledger v1";

// FNV-1a 64-bit over the record body; stable across builds and platforms
// (std::hash is not).
uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string HexU64(uint64_t x) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(x));
  return buf;
}

std::string HexDouble(double x) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", x);
  return buf;
}

// Splits "body crc" and verifies the checksum.
bool ChecksumOk(std::string_view line, std::string_view* body) {
  size_t space = line.rfind(' ');
  if (space == std::string_view::npos) return false;
  *body = line.substr(0, space);
  return HexU64(Fnv1a(*body)) == line.substr(space + 1);
}

}  // namespace

Result<BudgetLedger> BudgetLedger::Open(const std::string& path,
                                        double total_epsilon) {
  PRIVREC_CHECK(total_epsilon >= 0.0);
  if (fault::Hit("ledger.open") == fault::FaultKind::kIoError) {
    return Status::IoError("cannot open ledger " + path +
                           " (injected fault)");
  }

  BudgetLedger ledger;
  ledger.path_ = path;
  ledger.total_epsilon_ = total_epsilon;

  std::error_code ec;
  const bool exists = std::filesystem::exists(path, ec);
  if (!exists) {
    ledger.out_.open(path, std::ios::out | std::ios::trunc);
    if (!ledger.out_) {
      return Status::IoError("cannot create ledger " + path);
    }
    ledger.out_ << kHeader << '\n';
    std::string total_body = "total " + HexDouble(total_epsilon);
    ledger.out_ << total_body << ' ' << HexU64(Fnv1a(total_body)) << '\n';
    ledger.out_.flush();
    if (!ledger.out_) {
      return Status::IoError("cannot write ledger header to " + path);
    }
    return ledger;
  }

  // Replay an existing ledger.
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open ledger " + path);
  std::string line;
  int64_t line_no = 0;
  bool saw_total = false;
  // Byte offset of the end of the last fully-valid line, for torn-tail
  // truncation.
  uint64_t valid_bytes = 0;
  bool torn = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (in.eof() && !line.empty()) {
      // Final line without a newline: a torn append. Drop it.
      torn = true;
      break;
    }
    if (line_no == 1) {
      if (Trim(line) != kHeader) {
        return Status::ParseError(path + ": not a privrec budget ledger");
      }
      valid_bytes += line.size() + 1;
      continue;
    }
    std::string_view body;
    if (!ChecksumOk(Trim(line), &body)) {
      // A checksum failure is tolerable only on the final line (torn
      // write); anywhere else the ledger is corrupt.
      if (in.peek() == std::ifstream::traits_type::eof()) {
        torn = true;
        break;
      }
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": ledger checksum mismatch");
    }
    auto fields = SplitWhitespace(body);
    if (fields.empty()) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": empty ledger record");
    }
    if (fields[0] == "total") {
      double total = 0.0;
      if (fields.size() != 2 || !ParseDouble(fields[1], &total)) {
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": bad total record");
      }
      if (total != total_epsilon) {
        return Status::FailedPrecondition(
            path + ": ledger total ε " + FormatDouble(total, 6) +
            " does not match session total ε " +
            FormatDouble(total_epsilon, 6));
      }
      saw_total = true;
    } else if (fields[0] == "intent") {
      int64_t seq = 0;
      double eps = 0.0;
      if (fields.size() != 4 || !ParseInt64(fields[1], &seq) ||
          !ParseDouble(fields[3], &eps) || eps < 0.0) {
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": bad intent record");
      }
      ledger.entries_.push_back(
          {seq, std::string(fields[2]), eps, false});
    } else if (fields[0] == "commit") {
      int64_t seq = 0;
      if (fields.size() != 2 || !ParseInt64(fields[1], &seq)) {
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": bad commit record");
      }
      bool found = false;
      for (Entry& e : ledger.entries_) {
        if (e.seq == seq) {
          e.committed = true;
          found = true;
        }
      }
      if (!found) {
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": commit without intent for seq " +
                                  std::to_string(seq));
      }
    } else {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": unknown ledger record type");
    }
    valid_bytes += line.size() + 1;
  }
  in.close();
  if (!saw_total) {
    return Status::ParseError(path + ": ledger has no total record");
  }
  if (torn) {
    // Truncate the torn tail so future appends start on a clean boundary.
    std::filesystem::resize_file(path, valid_bytes, ec);
    if (ec) {
      return Status::IoError(path + ": cannot truncate torn ledger tail");
    }
    ledger.recovered_torn_tail_ = true;
  }

  ledger.out_.open(path, std::ios::out | std::ios::app);
  if (!ledger.out_) {
    return Status::IoError("cannot reopen ledger " + path +
                           " for appending");
  }
  static obs::Counter& opens = obs::GetCounter("privrec.dp.ledger_opens");
  static obs::Counter& replayed =
      obs::GetCounter("privrec.dp.ledger_entries_replayed");
  static obs::Counter& torn_tails =
      obs::GetCounter("privrec.dp.ledger_torn_tails");
  opens.Increment();
  replayed.Add(static_cast<int64_t>(ledger.entries_.size()));
  if (ledger.recovered_torn_tail_) torn_tails.Increment();
  return ledger;
}

Status BudgetLedger::AppendLine(const std::string& body) {
  if (!out_.is_open()) {
    return Status::FailedPrecondition("ledger is not open");
  }
  switch (fault::Hit("ledger.append")) {
    case fault::FaultKind::kIoError:
      return Status::IoError("ledger append failed (injected fault)");
    case fault::FaultKind::kShortRead: {
      // Simulate a crash mid-write: half the record reaches the file and
      // no newline does. Open() must recover from this.
      std::string full = body + ' ' + HexU64(Fnv1a(body));
      out_ << full.substr(0, full.size() / 2);
      out_.flush();
      return Status::IoError("ledger append torn (injected fault)");
    }
    default:
      break;
  }
  out_ << body << ' ' << HexU64(Fnv1a(body)) << '\n';
  out_.flush();
  if (!out_) {
    return Status::IoError("ledger append failed for " + path_);
  }
  return Status::Ok();
}

Status BudgetLedger::AppendIntent(int64_t seq, const std::string& group,
                                  double epsilon) {
  PRIVREC_CHECK(epsilon >= 0.0);
  PRIVREC_CHECK_MSG(group.find_first_of(" \t\r\n") == std::string::npos,
                    "ledger group names must contain no whitespace");
  Status s = AppendLine("intent " + std::to_string(seq) + " " + group +
                        " " + HexDouble(epsilon));
  if (!s.ok()) return s;
  entries_.push_back({seq, group, epsilon, false});
  static obs::Counter& intents =
      obs::GetCounter("privrec.dp.ledger_intents");
  intents.Increment();
  return Status::Ok();
}

Status BudgetLedger::AppendCommit(int64_t seq) {
  PRIVREC_CHECK_MSG(HasIntent(seq), "commit without intent");
  Status s = AppendLine("commit " + std::to_string(seq));
  if (!s.ok()) return s;
  for (Entry& e : entries_) {
    if (e.seq == seq) e.committed = true;
  }
  static obs::Counter& commits =
      obs::GetCounter("privrec.dp.ledger_commits");
  commits.Increment();
  return Status::Ok();
}

bool BudgetLedger::HasIntent(int64_t seq) const {
  for (const Entry& e : entries_) {
    if (e.seq == seq) return true;
  }
  return false;
}

bool BudgetLedger::IsCommitted(int64_t seq) const {
  for (const Entry& e : entries_) {
    if (e.seq == seq && e.committed) return true;
  }
  return false;
}

int64_t BudgetLedger::NumCommitted() const {
  int64_t n = 0;
  for (const Entry& e : entries_) {
    if (e.committed) ++n;
  }
  return n;
}

std::string LedgerAuditReport::ToString() const {
  std::string s = "ledger audit: total=" + FormatDouble(total_epsilon, 6) +
                  " spent=" + FormatDouble(epsilon_spent, 6) +
                  " intents=" + std::to_string(intents) + " commits=" +
                  std::to_string(commits) + " uncommitted=" +
                  std::to_string(uncommitted);
  if (recovered_torn_tail) s += " torn-tail";
  if (violations.empty()) {
    s += " OK";
  } else {
    for (const std::string& v : violations) s += "\n  VIOLATION: " + v;
  }
  return s;
}

Result<LedgerAuditReport> AuditLedgerReplay(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open ledger " + path);

  LedgerAuditReport report;
  bool saw_total = false;
  // Per-(group, seq) intent occurrences, per-group last intent seq, and
  // the set of committed seqs — everything the invariants need.
  std::set<std::pair<std::string, int64_t>> seen_intents;
  std::map<std::string, int64_t> last_seq;
  std::map<int64_t, int64_t> intents_by_seq;
  std::set<int64_t> committed;

  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (in.eof() && !line.empty()) {
      report.recovered_torn_tail = true;
      break;
    }
    if (line_no == 1) {
      if (Trim(line) != kHeader) {
        return Status::ParseError(path + ": not a privrec budget ledger");
      }
      continue;
    }
    std::string_view body;
    if (!ChecksumOk(Trim(line), &body)) {
      if (in.peek() == std::ifstream::traits_type::eof()) {
        report.recovered_torn_tail = true;
        break;
      }
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": ledger checksum mismatch");
    }
    auto fields = SplitWhitespace(body);
    if (fields.empty()) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": empty ledger record");
    }
    if (fields[0] == "total") {
      double total = 0.0;
      if (fields.size() != 2 || !ParseDouble(fields[1], &total)) {
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": bad total record");
      }
      if (saw_total) {
        report.violations.push_back("line " + std::to_string(line_no) +
                                    ": duplicate total record");
      }
      report.total_epsilon = total;
      saw_total = true;
    } else if (fields[0] == "intent") {
      int64_t seq = 0;
      double eps = 0.0;
      if (fields.size() != 4 || !ParseInt64(fields[1], &seq) ||
          !ParseDouble(fields[3], &eps) || eps < 0.0 ||
          !std::isfinite(eps)) {
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": bad intent record");
      }
      const std::string group(fields[2]);
      if (!seen_intents.insert({group, seq}).second) {
        report.violations.push_back(
            "line " + std::to_string(line_no) + ": duplicate intent for " +
            group + "/" + std::to_string(seq) +
            " — replaying both would double-spend ε");
      } else if (auto it = last_seq.find(group);
                 it != last_seq.end() && seq <= it->second) {
        report.violations.push_back(
            "line " + std::to_string(line_no) + ": intent seq " +
            std::to_string(seq) + " for group " + group +
            " does not advance past " + std::to_string(it->second));
      }
      if (auto it = last_seq.find(group); it == last_seq.end()) {
        last_seq[group] = seq;
      } else {
        it->second = std::max(it->second, seq);
      }
      ++intents_by_seq[seq];
      ++report.intents;
      report.epsilon_spent += eps;
    } else if (fields[0] == "commit") {
      int64_t seq = 0;
      if (fields.size() != 2 || !ParseInt64(fields[1], &seq)) {
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": bad commit record");
      }
      if (intents_by_seq.find(seq) == intents_by_seq.end()) {
        report.violations.push_back(
            "line " + std::to_string(line_no) +
            ": commit without intent for seq " + std::to_string(seq));
      } else if (!committed.insert(seq).second) {
        report.violations.push_back("line " + std::to_string(line_no) +
                                    ": duplicate commit for seq " +
                                    std::to_string(seq));
      }
      ++report.commits;
    } else {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": unknown ledger record type");
    }
  }
  if (!saw_total) {
    return Status::ParseError(path + ": ledger has no total record");
  }
  for (const auto& [seq, count] : intents_by_seq) {
    if (committed.find(seq) == committed.end()) {
      report.uncommitted += count;
    }
  }
  if (report.epsilon_spent >
      report.total_epsilon * (1.0 + 1e-9)) {
    report.violations.push_back(
        "spent ε " + FormatDouble(report.epsilon_spent, 6) +
        " exceeds ledger total " +
        FormatDouble(report.total_epsilon, 6));
  }
  return report;
}

void BudgetLedger::ReplayInto(PrivacyBudget* budget) const {
  std::map<std::string, double> spent;
  for (const Entry& e : entries_) {
    spent[e.group] += e.epsilon;
  }
  for (const auto& [group, eps] : spent) {
    budget->RestoreGroupSpent(group, eps);
  }
}

}  // namespace privrec::dp
