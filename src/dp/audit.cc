#include "dp/audit.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/stats.h"
#include "common/string_util.h"

namespace privrec::dp {

std::string AuditResult::ToString() const {
  return std::string(passed ? "PASSED" : "FAILED") + ": worst ratio " +
         FormatDouble(worst_ratio, 3) + " vs bound " +
         FormatDouble(bound, 3) + " over " + std::to_string(bins_checked) +
         " bins";
}

AuditResult AuditDpRatio(const std::function<double()>& sample_world1,
                         const std::function<double()>& sample_world2,
                         double epsilon, const AuditOptions& options) {
  PRIVREC_CHECK(epsilon > 0.0);
  PRIVREC_CHECK(options.samples > 0);
  PRIVREC_CHECK(options.num_bins >= 3);
  Histogram h1(options.lo, options.hi, options.num_bins);
  Histogram h2(options.lo, options.hi, options.num_bins);
  for (int64_t s = 0; s < options.samples; ++s) {
    h1.Add(sample_world1());
    h2.Add(sample_world2());
  }

  AuditResult result;
  result.bound = std::exp(epsilon) * options.slack;
  int first = options.skip_edge_bins ? 1 : 0;
  int last = options.num_bins - (options.skip_edge_bins ? 1 : 0);
  for (int b = first; b < last; ++b) {
    if (h1.bin_count(b) < options.min_bin_count ||
        h2.bin_count(b) < options.min_bin_count) {
      continue;
    }
    double ratio = h1.Fraction(b) / h2.Fraction(b);
    if (ratio < 1.0) ratio = 1.0 / ratio;
    result.worst_ratio = std::max(result.worst_ratio, ratio);
    ++result.bins_checked;
  }
  result.passed = result.worst_ratio <= result.bound;
  return result;
}

}  // namespace privrec::dp
