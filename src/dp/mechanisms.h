// Differential-privacy primitives (Section 3).
//
// LaplaceMechanism implements Theorem 1: adding Lap(Δ/ε) noise to each
// coordinate of a Δ-sensitive query makes it ε-differentially private.
// Epsilon may be infinity, in which case no noise is added (the paper's
// ε = ∞ configurations, used to isolate approximation error).
//
// GeometricMechanism is the integer-valued analogue (two-sided geometric
// noise with α = exp(-ε/Δ)); provided for completeness and tests.

#ifndef PRIVREC_DP_MECHANISMS_H_
#define PRIVREC_DP_MECHANISMS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/random.h"

namespace privrec::dp {

// The distinguished "no privacy" setting.
inline constexpr double kEpsilonInfinity =
    std::numeric_limits<double>::infinity();

// True for valid privacy parameters: ε > 0 (finite) or ε = ∞.
bool IsValidEpsilon(double epsilon);

class LaplaceMechanism {
 public:
  // `epsilon` must satisfy IsValidEpsilon. The rng is owned by the caller
  // conceptually but copied in; fork a dedicated stream per mechanism.
  LaplaceMechanism(double epsilon, Rng rng);

  double epsilon() const { return epsilon_; }

  // Releases value + Lap(sensitivity / ε). Requires sensitivity > 0 unless
  // ε = ∞ (where it is ignored).
  double Release(double value, double sensitivity);

  // Releases a vector of values under a shared per-coordinate sensitivity
  // (independent noise per coordinate).
  std::vector<double> ReleaseVector(const std::vector<double>& values,
                                    double sensitivity);

  // The expected absolute error of one release: sensitivity / ε (the mean
  // of |Lap(b)| is b); 0 when ε = ∞.
  double ExpectedAbsoluteError(double sensitivity) const;

 private:
  double epsilon_;
  Rng rng_;
};

// The exponential mechanism (McSherry & Talwar 2007): selects one of d
// candidates with probability proportional to exp(eps * q / (2 * Δq)),
// where q is the candidate's quality score and Δq the quality
// sensitivity. Provided as a standard primitive (the paper's framework
// releases numeric averages, but selection tasks built on this library —
// e.g. picking a single item to promote — need it).
class ExponentialMechanism {
 public:
  ExponentialMechanism(double epsilon, Rng rng);

  double epsilon() const { return epsilon_; }

  // Returns the index of the selected candidate. Requires non-empty
  // qualities and sensitivity > 0 (unless eps = inf, which returns the
  // argmax with smallest-index tie-break).
  int64_t Select(const std::vector<double>& qualities, double sensitivity);

 private:
  double epsilon_;
  Rng rng_;
};

class GeometricMechanism {
 public:
  GeometricMechanism(double epsilon, Rng rng);

  double epsilon() const { return epsilon_; }

  // Releases value + two-sided-geometric noise for an integer query with
  // integer sensitivity >= 1.
  int64_t Release(int64_t value, int64_t sensitivity);

 private:
  double epsilon_;
  Rng rng_;
};

}  // namespace privrec::dp

#endif  // PRIVREC_DP_MECHANISMS_H_
