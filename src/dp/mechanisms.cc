#include "dp/mechanisms.h"

#include <cmath>
#include <limits>

#include "common/macros.h"

namespace privrec::dp {

bool IsValidEpsilon(double epsilon) {
  return epsilon == kEpsilonInfinity || (epsilon > 0.0 && std::isfinite(epsilon));
}

LaplaceMechanism::LaplaceMechanism(double epsilon, Rng rng)
    : epsilon_(epsilon), rng_(rng) {
  PRIVREC_CHECK_MSG(IsValidEpsilon(epsilon), "epsilon must be > 0 or inf");
}

double LaplaceMechanism::Release(double value, double sensitivity) {
  if (epsilon_ == kEpsilonInfinity) return value;
  PRIVREC_CHECK(sensitivity > 0.0);
  return value + rng_.Laplace(sensitivity / epsilon_);
}

std::vector<double> LaplaceMechanism::ReleaseVector(
    const std::vector<double>& values, double sensitivity) {
  std::vector<double> out(values.size());
  for (size_t k = 0; k < values.size(); ++k) {
    out[k] = Release(values[k], sensitivity);
  }
  return out;
}

double LaplaceMechanism::ExpectedAbsoluteError(double sensitivity) const {
  if (epsilon_ == kEpsilonInfinity) return 0.0;
  return sensitivity / epsilon_;
}

ExponentialMechanism::ExponentialMechanism(double epsilon, Rng rng)
    : epsilon_(epsilon), rng_(rng) {
  PRIVREC_CHECK_MSG(IsValidEpsilon(epsilon), "epsilon must be > 0 or inf");
}

int64_t ExponentialMechanism::Select(const std::vector<double>& qualities,
                                     double sensitivity) {
  PRIVREC_CHECK(!qualities.empty());
  if (epsilon_ == kEpsilonInfinity) {
    int64_t best = 0;
    for (size_t k = 1; k < qualities.size(); ++k) {
      if (qualities[k] > qualities[static_cast<size_t>(best)]) {
        best = static_cast<int64_t>(k);
      }
    }
    return best;
  }
  PRIVREC_CHECK(sensitivity > 0.0);
  // Gumbel-max trick: argmax of (eps*q/(2Δ) + Gumbel noise) samples the
  // exponential-mechanism distribution without normalizing.
  int64_t best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  const double scale = epsilon_ / (2.0 * sensitivity);
  for (size_t k = 0; k < qualities.size(); ++k) {
    double u = rng_.UniformDouble();
    if (u <= 0.0) u = 0x1.0p-53;
    double gumbel = -std::log(-std::log(u));
    double score = scale * qualities[k] + gumbel;
    if (score > best_score) {
      best_score = score;
      best = static_cast<int64_t>(k);
    }
  }
  return best;
}

GeometricMechanism::GeometricMechanism(double epsilon, Rng rng)
    : epsilon_(epsilon), rng_(rng) {
  PRIVREC_CHECK_MSG(IsValidEpsilon(epsilon), "epsilon must be > 0 or inf");
}

int64_t GeometricMechanism::Release(int64_t value, int64_t sensitivity) {
  if (epsilon_ == kEpsilonInfinity) return value;
  PRIVREC_CHECK(sensitivity >= 1);
  double alpha = std::exp(-epsilon_ / static_cast<double>(sensitivity));
  return value + rng_.TwoSidedGeometric(alpha);
}

}  // namespace privrec::dp
