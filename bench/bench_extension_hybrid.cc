// Extension E5: hybrid social + item-CF recommendation — the paper's
// Section 2.2 deferral ("we plan to study such hybrid recommenders in a
// future work").
//
// Protocol: hide 20% of each user's preference edges, recommend from the
// rest, and measure recall@50 / hit-rate of the hidden edges (NDCG
// against any one component's exact ranking would be circular when the
// utility functions differ). The blend weight α sweeps from pure CF
// (α = 0) to pure social (α = 1); the hybrid's privacy budget is split
// α : (1-α) between the social and CF components and composes
// sequentially to ε_total.
//
//   ./bench_extension_hybrid [--items=4000] [--eval_users=800]
//                            [--total_epsilon=1.0]

#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "community/louvain.h"
#include "core/hybrid_recommender.h"
#include "data/synthetic.h"
#include "eval/holdout.h"
#include "eval/table.h"

namespace privrec {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  privrec::ObsSession obs_session = bench::ApplyStandardFlags(flags);
  const int64_t num_items = flags.GetInt("items", 4000);
  const int64_t eval_count = flags.GetInt("eval_users", 800);
  const double total_epsilon = flags.GetDouble("total_epsilon", 1.0);
  if (!flags.Validate()) return 1;

  std::cout << "=== Extension E5: hybrid social + item-CF (holdout "
               "recall@50, 20% hidden, eps_total = " << total_epsilon
            << ") ===\n\n";
  data::SyntheticLastFmOptions opt;
  opt.num_items = num_items;  // CF is O(|I|*tau) per user; smaller catalog
  data::Dataset dataset = data::MakeSyntheticLastFm(opt);
  eval::HoldoutSplit split =
      eval::SplitHoldout(dataset.preferences, {.fraction = 0.2,
                                               .seed = 91});
  std::vector<graph::NodeId> users =
      bench::SampleUsers(dataset.social.num_nodes(), eval_count, 92);
  auto measure = bench::MakeMeasure("CN");
  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::ComputeForUsers(dataset.social,
                                                      *measure, users);
  core::RecommenderContext context{&dataset.social, &split.train,
                                   &workload};
  community::LouvainResult louvain =
      community::RunLouvain(dataset.social, {.restarts = 10, .seed = 93});

  eval::TablePrinter table({"alpha (social share)", "recall@50 eps=inf",
                            "recall@50 eps=total", "hit rate eps=total"});
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    std::vector<std::string> row = {FormatDouble(alpha, 2)};
    for (bool noiseless : {true, false}) {
      core::HybridRecommenderOptions hopt;
      hopt.alpha = alpha;
      if (noiseless) {
        hopt.epsilon_social = dp::kEpsilonInfinity;
        hopt.epsilon_cf = dp::kEpsilonInfinity;
      } else {
        // Split the budget by blend weight; degenerate weights give the
        // whole budget to the active component.
        double s = std::max(alpha, 0.05);
        double c = std::max(1.0 - alpha, 0.05);
        hopt.epsilon_social = total_epsilon * s / (s + c);
        hopt.epsilon_cf = total_epsilon * c / (s + c);
      }
      hopt.seed = 94;
      core::HybridRecommender hybrid(context, louvain.partition, hopt);
      auto lists = hybrid.Recommend(users, 50);
      row.push_back(
          FormatDouble(eval::HoldoutRecall(lists, users, split), 3));
      if (!noiseless) {
        row.push_back(
            FormatDouble(eval::HoldoutHitRate(lists, users, split), 3));
      }
    }
    table.AddRow(row);
    std::cout << "  alpha " << alpha << " done\n";
  }
  std::cout << "\n";
  table.Print(std::cout);
  std::cout
      << "\nreading: the social component sees taste through the public "
         "graph (cheap under DP: cluster averages), the CF component "
         "through private co-occurrence (expensive: per-entry noise at "
         "sensitivity 2*tau). Under a fixed total budget the best blend "
         "shifts toward the social side — the quantitative case for the "
         "paper's social-first design.\n";
  return 0;
}

}  // namespace
}  // namespace privrec

int main(int argc, char** argv) { return privrec::Main(argc, argv); }
