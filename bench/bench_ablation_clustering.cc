// Ablation A1: how much does the clustering strategy matter?
//
// Runs Algorithm 1 on Last.fm (CN measure) with six createClusters
// strategies — Louvain (the paper's choice), Louvain without multi-level
// refinement, label propagation, random clusters of matched granularity,
// one whole-graph cluster, and singletons (which degenerates to
// per-edge noise, i.e. NOE) — at ε = ∞ (approximation error only) and
// ε = 0.1 (the paper's interesting regime).
//
// Expected: Louvain dominates at ε = 0.1; singletons are perfect at ε = ∞
// but collapse under noise; the whole-graph cluster is noise-proof but
// destroys personalization. This isolates the paper's central claim that
// community structure is what buys the good trade-off.
//
//   ./bench_ablation_clustering [--trials=5] [--eval_users=1000]

#include <functional>
#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/stats.h"
#include "community/kmeans.h"
#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/modularity.h"
#include "community/simple_clusterings.h"
#include "core/cluster_recommender.h"
#include "data/synthetic.h"
#include "eval/exact_reference.h"
#include "eval/table.h"

namespace privrec {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  privrec::ObsSession obs_session = bench::ApplyStandardFlags(flags);
  const int trials = static_cast<int>(flags.GetInt("trials", 5));
  const int64_t eval_count = flags.GetInt("eval_users", 1000);
  if (!flags.Validate()) return 1;

  std::cout << "=== Ablation A1: clustering strategy (Last.fm, CN, "
               "NDCG@50, " << trials << " trials) ===\n\n";
  data::Dataset dataset = data::MakeSyntheticLastFm();
  std::vector<graph::NodeId> users =
      bench::SampleUsers(dataset.social.num_nodes(), eval_count, 29);
  auto measure = bench::MakeMeasure("CN");
  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::ComputeForUsers(dataset.social,
                                                      *measure, users);
  core::RecommenderContext context{&dataset.social, &dataset.preferences,
                                   &workload};
  eval::ExactReference reference =
      eval::ExactReference::Compute(context, users, 50);

  community::LouvainResult louvain =
      community::RunLouvain(dataset.social, {.restarts = 10, .seed = 61});
  community::LouvainResult louvain_plain = community::RunLouvain(
      dataset.social, {.restarts = 10, .refine = false, .seed = 61});
  // Resolution sweep: gamma > 1 splits clusters (less noise smoothing,
  // less approximation error), gamma < 1 merges them.
  community::LouvainResult louvain_fine = community::RunLouvain(
      dataset.social, {.restarts = 10, .resolution = 4.0, .seed = 61});
  community::LouvainResult louvain_coarse = community::RunLouvain(
      dataset.social, {.restarts = 10, .resolution = 0.3, .seed = 61});
  const graph::NodeId n = dataset.social.num_nodes();

  struct Strategy {
    std::string name;
    community::Partition partition;
  };
  std::vector<Strategy> strategies;
  strategies.push_back({"louvain (paper)", louvain.partition});
  strategies.push_back({"louvain, no refinement", louvain_plain.partition});
  strategies.push_back({"louvain, resolution 4.0", louvain_fine.partition});
  strategies.push_back(
      {"louvain, resolution 0.3", louvain_coarse.partition});
  strategies.push_back(
      {"label propagation",
       community::RunLabelPropagation(dataset.social, {.seed = 62})});
  strategies.push_back(
      {"spectral k-means (same k)",
       community::SpectralKMeans(dataset.social,
                                 louvain.partition.num_clusters(), 65)});
  strategies.push_back(
      {"random (same k)",
       community::RandomClusters(n, louvain.partition.num_clusters(), 63)});
  strategies.push_back({"single cluster", community::Partition::Whole(n)});
  strategies.push_back(
      {"singletons (=NOE)", community::Partition::Singletons(n)});

  eval::TablePrinter table({"strategy", "clusters", "Q", "NDCG@50 eps=inf",
                            "NDCG@50 eps=0.1"});
  for (const Strategy& s : strategies) {
    std::vector<std::string> row = {
        s.name, std::to_string(s.partition.num_clusters()),
        FormatDouble(community::Modularity(dataset.social, s.partition),
                     3)};
    for (double eps : {dp::kEpsilonInfinity, 0.1}) {
      core::ClusterRecommender rec(context, s.partition,
                                   {.epsilon = eps, .seed = 64});
      RunningStats stats;
      int reps = eps == dp::kEpsilonInfinity ? 1 : trials;
      for (int t = 0; t < reps; ++t) {
        stats.Add(reference.MeanNdcg(rec.Recommend(users, 50)));
      }
      row.push_back(FormatDouble(stats.mean(), 3));
    }
    table.AddRow(row);
    std::cout << "  " << s.name << " done\n";
  }
  std::cout << "\n";
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace privrec

int main(int argc, char** argv) { return privrec::Main(argc, argv); }
