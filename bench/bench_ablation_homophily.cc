// Ablation A3: personalization vs privacy cost — the substitution-validity
// check from DESIGN.md.
//
// The synthetic datasets correlate preferences with social communities
// (homophily). Sweeping that correlation changes how *personalized* the
// recommendation task is: at homophily 0 every user's ideal list is the
// same global-popularity ranking (averaging is trivially accurate and
// noise barely matters); at high homophily different communities want
// different items and each utility query rides on fewer, more local
// edges.
//
// This reproduces, inside one generator, the paper's Section 4 argument
// for why social recommendation is hard: "personalization implies
// significantly higher sensitivity, and hence more noise". Expected
// output: personalization (inter-community list divergence) rises with
// homophily; NDCG@50 at ε = 0.1 falls as the task gets more personal; and
// the ε = ∞ accuracy stays high throughout, confirming that Louvain
// clusters track the taste communities at every homophily level.
//
//   ./bench_ablation_homophily [--trials=3] [--users=1892]

#include <algorithm>
#include <iostream>
#include <set>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/stats.h"
#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "core/exact_recommender.h"
#include "data/synthetic.h"
#include "eval/exact_reference.h"
#include "eval/table.h"

namespace privrec {
namespace {

// 1 - mean Jaccard similarity of exact top-50 lists across users in
// different Louvain clusters: 0 = everyone gets the global list, 1 =
// fully community-specific lists.
double Personalization(const std::vector<core::RecommendationList>& lists,
                       const std::vector<graph::NodeId>& users,
                       const community::Partition& partition) {
  double total = 0.0;
  int64_t pairs = 0;
  for (size_t a = 0; a < users.size(); a += 7) {
    for (size_t b = a + 1; b < users.size(); b += 13) {
      if (partition.ClusterOf(users[a]) == partition.ClusterOf(users[b])) {
        continue;
      }
      std::set<graph::ItemId> sa;
      std::set<graph::ItemId> sb;
      for (const auto& r : lists[a]) sa.insert(r.item);
      for (const auto& r : lists[b]) sb.insert(r.item);
      if (sa.empty() || sb.empty()) continue;
      std::vector<graph::ItemId> shared;
      std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                            std::back_inserter(shared));
      double unions =
          static_cast<double>(sa.size() + sb.size() - shared.size());
      total += 1.0 - static_cast<double>(shared.size()) / unions;
      ++pairs;
    }
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  privrec::ObsSession obs_session = bench::ApplyStandardFlags(flags);
  const int trials = static_cast<int>(flags.GetInt("trials", 3));
  const int64_t num_users = flags.GetInt("users", 1892);
  const int64_t eval_count = flags.GetInt("eval_users", 800);
  if (!flags.Validate()) return 1;

  std::cout << "=== Ablation A3: personalization vs privacy cost "
               "(homophily sweep, Last.fm shape, CN, NDCG@50) ===\n\n";
  eval::TablePrinter table({"homophily", "personalization",
                            "NDCG@50 eps=inf", "NDCG@50 eps=0.1"});
  for (double homophily : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    data::SyntheticLastFmOptions opt;
    opt.num_users = num_users;
    opt.num_items = 6000;  // smaller catalog keeps the sweep quick
    opt.homophily = homophily;
    data::Dataset dataset = data::MakeSyntheticLastFm(opt);
    std::vector<graph::NodeId> users =
        bench::SampleUsers(dataset.social.num_nodes(), eval_count, 41);
    auto measure = bench::MakeMeasure("CN");
    similarity::SimilarityWorkload workload =
        similarity::SimilarityWorkload::ComputeForUsers(dataset.social,
                                                        *measure, users);
    core::RecommenderContext context{&dataset.social, &dataset.preferences,
                                     &workload};
    eval::ExactReference reference =
        eval::ExactReference::Compute(context, users, 50);
    community::LouvainResult louvain =
        community::RunLouvain(dataset.social, {.restarts = 5, .seed = 81});

    core::ExactRecommender exact(context);
    double personalization = Personalization(exact.Recommend(users, 50),
                                             users, louvain.partition);

    std::vector<std::string> row = {FormatDouble(homophily, 2),
                                    FormatDouble(personalization, 3)};
    for (double eps : {dp::kEpsilonInfinity, 0.1}) {
      core::ClusterRecommender rec(context, louvain.partition,
                                   {.epsilon = eps, .seed = 82});
      RunningStats stats;
      int reps = eps == dp::kEpsilonInfinity ? 1 : trials;
      for (int t = 0; t < reps; ++t) {
        stats.Add(reference.MeanNdcg(rec.Recommend(users, 50)));
      }
      row.push_back(FormatDouble(stats.mean(), 3));
    }
    table.AddRow(row);
    std::cout << "  homophily " << homophily << " done\n";
  }
  std::cout << "\n";
  table.Print(std::cout);
  std::cout
      << "\nreading: homophily drives personalization (distinct lists per "
         "community). More personalization = a harder privacy problem "
         "(NDCG at eps=0.1 falls), echoing the paper's Section 4 point "
         "that personalized queries carry higher sensitivity; meanwhile "
         "eps=inf stays high because Louvain clusters track the taste "
         "communities at every level.\n";

  // Part 2: taste granularity. Tastes can be FINER than the graph
  // communities Louvain can resolve (its resolution limit hides small
  // sub-communities); the cluster averages then blend several taste
  // groups — the mechanism behind real data's approximation error.
  std::cout << "\n--- taste granularity (taste groups per detected "
               "community; eps = inf isolates approximation error) ---\n\n";
  eval::TablePrinter gran({"taste groups", "found clusters",
                           "NDCG@50 eps=inf", "NDCG@50 eps=0.1"});
  for (int64_t groups : {1, 3, 6, 10}) {
    data::SyntheticLastFmOptions opt;
    opt.num_users = num_users;
    opt.num_items = 6000;
    opt.taste_groups_per_community = groups;
    data::Dataset dataset = data::MakeSyntheticLastFm(opt);
    std::vector<graph::NodeId> users =
        bench::SampleUsers(dataset.social.num_nodes(), eval_count, 43);
    auto measure = bench::MakeMeasure("CN");
    similarity::SimilarityWorkload workload =
        similarity::SimilarityWorkload::ComputeForUsers(dataset.social,
                                                        *measure, users);
    core::RecommenderContext context{&dataset.social, &dataset.preferences,
                                     &workload};
    eval::ExactReference reference =
        eval::ExactReference::Compute(context, users, 50);
    community::LouvainResult louvain =
        community::RunLouvain(dataset.social, {.restarts = 5, .seed = 83});
    std::vector<std::string> row = {
        std::to_string(groups),
        std::to_string(louvain.partition.num_clusters())};
    for (double eps : {dp::kEpsilonInfinity, 0.1}) {
      core::ClusterRecommender rec(context, louvain.partition,
                                   {.epsilon = eps, .seed = 84});
      RunningStats stats;
      int reps = eps == dp::kEpsilonInfinity ? 1 : trials;
      for (int t = 0; t < reps; ++t) {
        stats.Add(reference.MeanNdcg(rec.Recommend(users, 50)));
      }
      row.push_back(FormatDouble(stats.mean(), 3));
    }
    gran.AddRow(row);
    std::cout << "  " << groups << " groups done\n";
  }
  std::cout << "\n";
  gran.Print(std::cout);
  std::cout << "\nreading: Louvain finds the same ~35 clusters regardless "
               "(the sub-structure is below its resolution limit), so "
               "finer taste groups translate directly into approximation "
               "error — the knob that separates 'easy' synthetic data "
               "from realistic data.\n";
  return 0;
}

}  // namespace
}  // namespace privrec

int main(int argc, char** argv) { return privrec::Main(argc, argv); }
