// Ablation A4: weighted preference edges (the paper's stated extension —
// "extend our framework to handle weighted preference edges (e.g.,
// ratings) and evaluate the impact of different weighting schemes").
//
// Generates a Flixster-shaped dataset whose edges carry 1-5 star ratings,
// then evaluates the cluster framework under three weighting schemes:
//   binary      w = 1 for every kept edge (the paper's preprocessing;
//               sensitivity 1)
//   raw         w = rating in [1, 5] (sensitivity 5: one edge can move a
//               cluster sum by up to 5)
//   normalized  w = rating / 5 in (0, 1] (sensitivity 1 again, but the
//               average signal is ~0.75 of binary)
// Each scheme defines its own ground truth, so NDCG is measured against
// that scheme's exact recommender. The interesting question is how the
// sensitivity/signal ratio moves the privacy-utility trade-off.
//
//   ./bench_ablation_weighted [--trials=3] [--users=4000]

#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/stats.h"
#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "data/synthetic.h"
#include "eval/exact_reference.h"
#include "eval/table.h"
#include "graph/generators/planted_partition.h"
#include "graph/generators/preference_generator.h"

namespace privrec {
namespace {

graph::PreferenceGraph Reweight(const graph::PreferenceGraph& rated,
                                const std::string& scheme) {
  std::vector<graph::PreferenceEdge> edges = rated.WeightedEdges();
  if (scheme == "binary") {
    for (auto& e : edges) e.weight = 1.0;
  } else if (scheme == "normalized") {
    for (auto& e : edges) e.weight /= 5.0;
  }  // "raw": keep ratings
  return graph::PreferenceGraph::FromWeightedEdges(
      rated.num_users(), rated.num_items(), edges);
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  privrec::ObsSession obs_session = bench::ApplyStandardFlags(flags);
  const int trials = static_cast<int>(flags.GetInt("trials", 3));
  const int64_t num_users = flags.GetInt("users", 4000);
  const int64_t eval_count = flags.GetInt("eval_users", 600);
  if (!flags.Validate()) return 1;

  std::cout << "=== Ablation A4: weighted preference edges (Flixster "
               "shape with 1-5 star ratings, CN, NDCG@50) ===\n\n";

  // Social graph + rated preferences.
  graph::PlantedPartitionOptions social_opt;
  social_opt.num_nodes = num_users;
  social_opt.num_communities = 24;
  social_opt.mean_degree = 18.5;
  social_opt.degree_exponent = 2.0;
  social_opt.seed = 91;
  graph::PlantedPartitionResult planted =
      graph::GeneratePlantedPartition(social_opt);
  graph::PreferenceGeneratorOptions pref_opt;
  pref_opt.num_items = 4000;
  pref_opt.mean_prefs_per_user = 54.8;
  pref_opt.homophily = 0.8;
  pref_opt.max_rating = 5;  // the weighted extension
  pref_opt.seed = 92;
  graph::PreferenceGraph rated =
      graph::GeneratePreferences(planted.community_of, pref_opt);

  std::vector<graph::NodeId> users =
      bench::SampleUsers(num_users, eval_count, 47);
  auto measure = bench::MakeMeasure("CN");
  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::ComputeForUsers(planted.graph,
                                                      *measure, users);
  community::LouvainResult louvain =
      community::RunLouvain(planted.graph, {.restarts = 5, .seed = 93});

  eval::TablePrinter table({"scheme", "w_max", "NDCG@50 eps=inf",
                            "NDCG@50 eps=1.0", "NDCG@50 eps=0.1"});
  for (std::string scheme : {"binary", "raw", "normalized"}) {
    graph::PreferenceGraph prefs = Reweight(rated, scheme);
    core::RecommenderContext context{&planted.graph, &prefs, &workload};
    eval::ExactReference reference =
        eval::ExactReference::Compute(context, users, 50);
    std::vector<std::string> row = {scheme,
                                    FormatDouble(prefs.max_weight(), 1)};
    for (double eps : {dp::kEpsilonInfinity, 1.0, 0.1}) {
      core::ClusterRecommender rec(context, louvain.partition,
                                   {.epsilon = eps, .seed = 94});
      RunningStats stats;
      int reps = eps == dp::kEpsilonInfinity ? 1 : trials;
      for (int t = 0; t < reps; ++t) {
        stats.Add(reference.MeanNdcg(rec.Recommend(users, 50)));
      }
      row.push_back(FormatDouble(stats.mean(), 3));
    }
    table.AddRow(row);
    std::cout << "  scheme " << scheme << " done\n";
  }
  std::cout << "\n";
  table.Print(std::cout);
  std::cout
      << "\nreading: each scheme is scored against its own ground truth. "
         "Raw ratings raise per-edge sensitivity to 5 while the mean "
         "signal only grows ~4x, so binary/normalized weighting buys a "
         "better privacy-utility trade-off — quantifying why the paper "
         "binarizes.\n";
  return 0;
}

}  // namespace
}  // namespace privrec

int main(int argc, char** argv) { return privrec::Main(argc, argv); }
