// Reproduces Table 1: summary statistics of the two datasets.
//
// The synthetic substitutes are generated at the published scale for
// Last.fm and at a reduced (configurable) scale for Flixster; the paper's
// published numbers are printed alongside for comparison. If the real
// dataset directories are supplied, their statistics are reported too.
//
//   ./bench_table1_datasets [--flixster_users=12000] [--flixster_items=8000]
//                           [--lastfm_dir=...] [--flixster_dir=...]

#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "data/flixster.h"
#include "data/hetrec_lastfm.h"
#include "data/synthetic.h"
#include "eval/table.h"
#include "graph/metrics.h"

namespace privrec {
namespace {

std::vector<std::string> SummaryRow(const std::string& label,
                                    const data::DatasetSummary& s) {
  return {label,
          std::to_string(s.num_users),
          std::to_string(s.num_social_edges),
          FormatDouble(s.avg_user_degree, 1) + " (" +
              FormatDouble(s.user_degree_stddev, 1) + ")",
          std::to_string(s.num_items),
          std::to_string(s.num_preference_edges),
          FormatDouble(s.avg_prefs_per_user, 1) + " (" +
              FormatDouble(s.prefs_per_user_stddev, 1) + ")",
          FormatDouble(s.sparsity, 3)};
}

}  // namespace

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  privrec::ObsSession obs_session = bench::ApplyStandardFlags(flags);
  const int64_t flixster_users = flags.GetInt("flixster_users", 12000);
  const int64_t flixster_items = flags.GetInt("flixster_items", 8000);
  const std::string lastfm_dir = flags.GetString("lastfm_dir", "");
  const std::string flixster_dir = flags.GetString("flixster_dir", "");
  if (!flags.Validate()) return 1;

  std::cout << "=== Table 1: Summary of data sets ===\n\n";
  eval::TablePrinter table({"dataset", "|U|", "|E_s|", "avg deg (std)",
                            "|I|", "|E_p|", "prefs/user (std)",
                            "sparsity"});

  // Published values, for side-by-side comparison.
  table.AddRow({"lastfm (paper)", "1892", "12717", "13.4 (17.3)", "17632",
                "92198", "48.7 (6.9)", "0.997"});
  data::Dataset lastfm = data::MakeSyntheticLastFm();
  table.AddRow(SummaryRow("lastfm-synth", data::Summarize(lastfm)));
  if (!lastfm_dir.empty()) {
    auto real = data::LoadHetRecLastFm(lastfm_dir);
    if (real.ok()) {
      table.AddRow(SummaryRow("lastfm (real)", data::Summarize(*real)));
    } else {
      std::cerr << "lastfm load failed: " << real.status().ToString()
                << "\n";
    }
  }

  table.AddRow({"flixster (paper)", "137372", "1269076", "18.5 (31.1)",
                "48756", "7527931", "54.8 (218.2)", "0.999"});
  data::SyntheticFlixsterOptions fopt;
  fopt.num_users = flixster_users;
  fopt.num_items = flixster_items;
  data::Dataset flixster = data::MakeSyntheticFlixster(fopt);
  table.AddRow(SummaryRow("flixster-synth", data::Summarize(flixster)));
  if (!flixster_dir.empty()) {
    auto real = data::LoadFlixster(flixster_dir);
    if (real.ok()) {
      table.AddRow(SummaryRow("flixster (real)", data::Summarize(*real)));
    } else {
      std::cerr << "flixster load failed: " << real.status().ToString()
                << "\n";
    }
  }

  table.Print(std::cout);
  std::cout << "\nNote: flixster-synth is scale-reduced (see DESIGN.md); "
               "the shape-relevant ratios (degrees, prefs/user) track the "
               "published values.\n";

  // Structural validation: the small-world properties the paper leans on
  // (Section 2.2 — "the number of reachable users explodes after 2 hops").
  std::cout << "\n=== structural validation (small-world properties) ===\n\n";
  eval::TablePrinter structure({"graph", "clustering coeff",
                                "avg distance", "1-hop cover",
                                "2-hop cover", "3-hop cover"});
  auto structural_row = [&](const std::string& label,
                            const graph::SocialGraph& g) {
    graph::PathLengthStats paths =
        graph::SampleShortestPaths(g, 40, 777);
    structure.AddRow(
        {label, FormatDouble(graph::GlobalClusteringCoefficient(g), 3),
         FormatDouble(paths.average_distance, 2),
         FormatDouble(graph::MeanNeighborhoodCoverage(g, 1, 40, 778), 3),
         FormatDouble(graph::MeanNeighborhoodCoverage(g, 2, 40, 778), 3),
         FormatDouble(graph::MeanNeighborhoodCoverage(g, 3, 40, 778), 3)});
  };
  structural_row("lastfm-synth", lastfm.social);
  structural_row("flixster-synth", flixster.social);
  structure.Print(std::cout);
  std::cout << "\nreading: short average distances with high clustering = "
               "small-world; the 2->3 hop coverage jump is why the paper "
               "cuts GD and Katz off at 2-3 hops.\n";
  return 0;
}

}  // namespace privrec

int main(int argc, char** argv) { return privrec::Main(argc, argv); }
