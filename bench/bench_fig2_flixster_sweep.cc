// Reproduces Figure 2: average NDCG@{10, 50, 100} of the four framework
// instantiations on Flixster (scale-reduced synthetic substitute),
// ε ∈ {∞, 1.0, 0.6, 0.1, 0.05, 0.01}. As in the paper, recommendations
// are generated for a random user subset while the clustering uses all
// users.
//
// Paper shape to verify: Flixster is markedly more noise-resistant than
// Last.fm — accuracy is flat down to ε = 0.05 and still ≥ ~0.79 at
// ε = 0.01, thanks to the higher average degree and larger clusters.
//
//   ./bench_fig2_flixster_sweep [--trials=3] [--users=12000]
//                               [--items=8000] [--eval_users=1500]
//                               [--table-f32]
//
// --table-f32 appends the quantization gate: the sweep reruns at the
// high-signal grid points (ε ≥ 0.5, where quantization error is not
// drowned by DP noise) with the artifact's f32 noisy-table mirror, and
// the run fails unless |NDCG@50(f64) − NDCG@50(f32)| < 0.001 at every
// point. This is the accuracy budget that licenses serving from the
// half-width table.

#include <cmath>
#include <iostream>
#include <map>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "data/synthetic.h"
#include "eval/exact_reference.h"
#include "eval/experiment.h"
#include "eval/table.h"

namespace privrec {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  privrec::ObsSession obs_session = bench::ApplyStandardFlags(flags);
  const int trials = static_cast<int>(flags.GetInt("trials", 3));
  const int64_t num_users = flags.GetInt("users", 12000);
  const int64_t num_items = flags.GetInt("items", 8000);
  const int64_t eval_count = flags.GetInt("eval_users", 1500);
  const bool in_memory = flags.GetBool("in-memory", false);
  const bool table_f32 = flags.GetBool("table-f32", false);
  if (!flags.Validate()) return 1;

  std::cout << "=== Figure 2: NDCG@N vs epsilon on Flixster-synth ("
            << num_users << " users, " << trials << " trials, "
            << eval_count << " evaluation users) ===\n\n";
  ScopedTimer total_timer(&obs::GetHistogram(
      "privrec.bench.sweep_ms", obs::ExponentialBuckets(1e3, 4.0, 10)));
  data::SyntheticFlixsterOptions opt;
  opt.num_users = num_users;
  opt.num_items = num_items;
  data::Dataset dataset = data::MakeSyntheticFlixster(opt);
  std::vector<graph::NodeId> users =
      bench::SampleUsers(dataset.social.num_nodes(), eval_count, 23);
  community::LouvainResult louvain =
      community::RunLouvain(dataset.social, {.restarts = 10, .seed = 43});
  std::cout << "clusters: " << louvain.partition.num_clusters()
            << " (Q = " << FormatDouble(louvain.modularity, 3) << ")\n\n";

  const std::vector<int64_t> ns = {10, 50, 100};
  std::map<int64_t, std::map<std::string, std::vector<std::string>>> rows;

  for (const std::string& name : bench::MeasureNames()) {
    auto measure = bench::MakeMeasure(name);
    // Memory-bounded workload: rows stored for the evaluation subset only.
    similarity::SimilarityWorkload workload =
        similarity::SimilarityWorkload::ComputeForUsers(dataset.social,
                                                        *measure, users);
    core::RecommenderContext context{&dataset.social, &dataset.preferences,
                                     &workload};
    eval::ExactReference reference =
        eval::ExactReference::Compute(context, users, 100);

    eval::RecommenderFactory factory =
        bench::ClusterFactory(in_memory, context, louvain.partition);
    eval::SweepOptions sweep;
    sweep.epsilons = bench::PaperEpsilons();
    sweep.ns = ns;
    sweep.trials = trials;
    sweep.seed = 2000;
    std::vector<eval::SweepCell> cells =
        eval::RunNdcgSweep(factory, reference, sweep);
    for (const eval::SweepCell& cell : cells) {
      rows[cell.n][name].push_back(FormatDouble(cell.mean_ndcg, 3) + "±" +
                                   FormatDouble(cell.stddev_ndcg, 3));
    }
    std::cout << "measure " << name << " done ("
              << FormatDouble(total_timer.ElapsedSeconds(), 0) << "s)\n";
  }

  for (int64_t n : ns) {
    std::cout << "\n--- NDCG@" << n << " (Fig. 2"
              << (n == 10 ? "a" : n == 50 ? "b" : "c") << ") ---\n";
    std::vector<std::string> headers = {"measure"};
    for (double eps : bench::PaperEpsilons()) {
      headers.push_back("eps=" + bench::EpsilonLabel(eps));
    }
    eval::TablePrinter table(headers);
    for (const std::string& name : bench::MeasureNames()) {
      std::vector<std::string> row = {name};
      for (const std::string& cell : rows[n][name]) row.push_back(cell);
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  if (table_f32) {
    // Quantization gate: same users, same reference, same sweep seeds —
    // the only varied input is the table width, so the delta isolates
    // the f64→f32 rounding cost.
    std::cout << "\n--- f32 quantization gate (NDCG@50, eps >= 0.5) ---\n";
    const std::string name = bench::MeasureNames().front();
    auto measure = bench::MakeMeasure(name);
    similarity::SimilarityWorkload workload =
        similarity::SimilarityWorkload::ComputeForUsers(dataset.social,
                                                        *measure, users);
    core::RecommenderContext context{&dataset.social, &dataset.preferences,
                                     &workload};
    eval::ExactReference reference =
        eval::ExactReference::Compute(context, users, 50);
    eval::SweepOptions sweep;
    for (double eps : bench::PaperEpsilons()) {
      if (eps >= 0.5) sweep.epsilons.push_back(eps);
    }
    sweep.ns = {50};
    sweep.trials = trials;
    sweep.seed = 2000;
    std::vector<eval::SweepCell> f64_cells = eval::RunNdcgSweep(
        bench::ClusterFactory(false, context, louvain.partition), reference,
        sweep);
    std::vector<eval::SweepCell> f32_cells = eval::RunNdcgSweep(
        bench::ClusterFactory(false, context, louvain.partition,
                              /*table_f32=*/true),
        reference, sweep);
    constexpr double kMaxNdcgDelta = 0.001;
    bool gate_ok = f64_cells.size() == f32_cells.size();
    for (size_t i = 0; gate_ok && i < f64_cells.size(); ++i) {
      const double delta =
          std::abs(f64_cells[i].mean_ndcg - f32_cells[i].mean_ndcg);
      const bool ok = delta < kMaxNdcgDelta;
      std::cout << "eps=" << bench::EpsilonLabel(f64_cells[i].epsilon)
                << ": f64=" << FormatDouble(f64_cells[i].mean_ndcg, 4)
                << " f32=" << FormatDouble(f32_cells[i].mean_ndcg, 4)
                << " |delta|=" << FormatDouble(delta, 6)
                << (ok ? "  [ok]" : "  [FAIL]") << "\n";
      if (!ok) gate_ok = false;
    }
    if (!gate_ok) {
      std::cerr << "f32 quantization gate FAILED: NDCG@50 moved by >= "
                << kMaxNdcgDelta << " at eps >= 0.5\n";
      return 1;
    }
    std::cout << "f32 quantization gate passed (threshold "
              << kMaxNdcgDelta << ")\n";
  }

  std::cout << "\ntotal time: "
            << FormatDouble(total_timer.ElapsedSeconds(), 0) << "s\n";
  return 0;
}

}  // namespace
}  // namespace privrec

int main(int argc, char** argv) { return privrec::Main(argc, argv); }
