// E4: the Section 5.1 rationale, in numbers. For each ε, prints the
// signal scale (mean exact top-50 utility) next to the expected error of
// each mechanism per Equations (5)-(6) and §5.1.1:
//   - NOU's noise is calibrated to Δ_A = max_v Σ_u sim(u,v) and exceeds
//     the signal by orders of magnitude ("the magnitude of the noise ...
//     will greatly exceed the actual value");
//   - NOE's noise accumulates over the whole similarity set ("the error
//     is expected to drown out the true signal");
//   - the framework's perturbation error shrinks by 1/|c| and its
//     approximation error (ε-independent) is a small fraction of the
//     signal — the trade the paper's Section 5 is about.
//
//   ./bench_error_decomposition [--eval_users=600]

#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "community/louvain.h"
#include "data/synthetic.h"
#include "eval/error_decomposition.h"
#include "eval/table.h"

namespace privrec {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  privrec::ObsSession obs_session = bench::ApplyStandardFlags(flags);
  const int64_t eval_count = flags.GetInt("eval_users", 600);
  if (!flags.Validate()) return 1;

  std::cout << "=== E4: error decomposition (Section 5.1 quantified; "
               "Last.fm, CN, exact top-50) ===\n\n";
  data::Dataset dataset = data::MakeSyntheticLastFm();
  std::vector<graph::NodeId> users =
      bench::SampleUsers(dataset.social.num_nodes(), eval_count, 71);
  auto measure = bench::MakeMeasure("CN");
  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::ComputeForUsers(dataset.social,
                                                      *measure, users);
  core::RecommenderContext context{&dataset.social, &dataset.preferences,
                                   &workload};
  community::LouvainResult louvain =
      community::RunLouvain(dataset.social, {.restarts = 10, .seed = 72});

  eval::TablePrinter table({"eps", "signal (mean top util)",
                            "cluster approx err", "cluster noise err",
                            "NOE noise err", "NOU noise err"});
  for (double eps : {1.0, 0.6, 0.1, 0.01}) {
    auto per_user = eval::DecomposeErrors(
        context, louvain.partition, users,
        {.epsilon = eps, .top_n = 50});
    eval::UserErrorDecomposition mean =
        eval::MeanDecomposition(per_user);
    table.AddRow({bench::EpsilonLabel(eps),
                  FormatDouble(mean.mean_top_utility, 2),
                  FormatDouble(mean.approximation_error, 2),
                  FormatDouble(mean.cluster_perturbation_error, 2),
                  FormatDouble(mean.noe_expected_error, 1),
                  FormatDouble(mean.nou_expected_error, 0)});
  }
  table.Print(std::cout);
  std::cout
      << "\nreading: recommendations survive when the error column is "
         "small relative to the signal column. The framework's noise "
         "term crosses the signal between eps = 0.1 and 0.01 (matching "
         "Figure 1's collapse); NOE crosses around eps = 1; NOU never "
         "comes close — the Section 5.1 rationale, quantified.\n";
  return 0;
}

}  // namespace
}  // namespace privrec

int main(int argc, char** argv) { return privrec::Main(argc, argv); }
