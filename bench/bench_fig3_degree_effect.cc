// Reproduces Figure 3: per-user NDCG@50 under approximation error alone
// (ε = ∞, CN measure) as a function of social degree, on both datasets.
//
// Paper reference points: users with degree > 10 average NDCG@50 ≈ 0.969
// (Last.fm) / 0.975 (Flixster), while degree ≤ 10 users average ≈ 0.809 /
// 0.871. The bench prints the ≤10 / >10 split plus log-spaced degree bins
// (the textual analogue of the scatter plot).
//
//   ./bench_fig3_degree_effect [--flixster_users=12000]
//                              [--flixster_eval=2000]

#include <cmath>
#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/stats.h"
#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "data/synthetic.h"
#include "eval/exact_reference.h"
#include "eval/table.h"

namespace privrec {
namespace {

// Writes the per-user (degree, NDCG@50) scatter — the exact data behind
// the paper's Figure 3 plot — to a TSV for external plotting.
void WriteScatter(const std::string& path,
                  const data::Dataset& dataset,
                  const std::vector<graph::NodeId>& users,
                  const eval::ExactReference& reference,
                  const std::vector<core::RecommendationList>& lists) {
  std::ofstream out(path);
  if (!out) return;
  out << "# user\tdegree\tndcg50\n";
  for (size_t k = 0; k < users.size(); ++k) {
    out << users[k] << '\t' << dataset.social.Degree(users[k]) << '\t'
        << reference.Ndcg(users[k], lists[k]) << '\n';
  }
  std::cout << "scatter data written to " << path << "\n\n";
}

void RunDataset(const std::string& label, const data::Dataset& dataset,
                const std::vector<graph::NodeId>& users, bool in_memory) {
  community::LouvainResult louvain =
      community::RunLouvain(dataset.social, {.restarts = 10, .seed = 77});
  auto measure = bench::MakeMeasure("CN");
  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::ComputeForUsers(dataset.social,
                                                      *measure, users);
  core::RecommenderContext context{&dataset.social, &dataset.preferences,
                                   &workload};
  eval::ExactReference reference =
      eval::ExactReference::Compute(context, users, 50);
  // ε = ∞ exercises the noiseless route of the two-phase pipeline: the
  // artifact's noisy-averages table degenerates to the exact cluster
  // averages, isolating approximation error as in the paper.
  std::unique_ptr<core::Recommender> rec = bench::ClusterFactory(
      in_memory, context, louvain.partition)(dp::kEpsilonInfinity, 5);
  auto lists = rec->Recommend(users, 50);
  WriteScatter("/tmp/privrec_fig3_" + dataset.name + ".tsv", dataset,
               users, reference, lists);

  // Degree-binned statistics (log2 bins) + the paper's <=10 / >10 split.
  const int kBins = 9;  // degrees [1,2), [2,4), ... [256, inf)
  std::vector<RunningStats> bins(kBins);
  RunningStats low;
  RunningStats high;
  for (size_t k = 0; k < users.size(); ++k) {
    double ndcg = reference.Ndcg(users[k], lists[k]);
    int64_t degree = dataset.social.Degree(users[k]);
    (degree <= 10 ? low : high).Add(ndcg);
    int bin = degree < 1
                  ? 0
                  : std::min<int>(kBins - 1,
                                  static_cast<int>(std::log2(
                                      static_cast<double>(degree))));
    bins[static_cast<size_t>(bin)].Add(ndcg);
  }

  std::cout << "--- " << label << " (CN, eps = inf) ---\n";
  std::cout << "degree <= 10: mean NDCG@50 = "
            << FormatDouble(low.mean(), 3) << "  (n=" << low.count()
            << ")   [paper: 0.809 lastfm / 0.871 flixster]\n";
  std::cout << "degree  > 10: mean NDCG@50 = "
            << FormatDouble(high.mean(), 3) << "  (n=" << high.count()
            << ")   [paper: 0.969 lastfm / 0.975 flixster]\n\n";
  eval::TablePrinter table(
      {"degree bin", "users", "mean NDCG@50", "min", "p10"});
  for (int b = 0; b < kBins; ++b) {
    if (bins[static_cast<size_t>(b)].count() == 0) continue;
    int64_t lo = 1ll << b;
    int64_t hi = (1ll << (b + 1)) - 1;
    std::string range = b == kBins - 1
                            ? (">=" + std::to_string(lo))
                            : (std::to_string(lo) + "-" +
                               std::to_string(hi));
    const RunningStats& s = bins[static_cast<size_t>(b)];
    // p10 approximated by mean - 1.28 std clipped to [0,1] would be crude;
    // report min instead of a percentile to keep this streaming.
    table.AddRow({range, std::to_string(s.count()),
                  FormatDouble(s.mean(), 3), FormatDouble(s.min(), 3),
                  FormatDouble(std::max(0.0, s.mean() - 1.28 * s.stddev()),
                               3)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  privrec::ObsSession obs_session = bench::ApplyStandardFlags(flags);
  const int64_t flixster_users = flags.GetInt("flixster_users", 12000);
  const int64_t flixster_eval = flags.GetInt("flixster_eval", 2000);
  const bool in_memory = flags.GetBool("in-memory", false);
  if (!flags.Validate()) return 1;

  std::cout << "=== Figure 3: user degree vs NDCG@50 under approximation "
               "error alone ===\n\n";
  data::Dataset lastfm = data::MakeSyntheticLastFm();
  RunDataset("lastfm-synth (Fig. 3a)", lastfm,
             bench::AllUsers(lastfm.social.num_nodes()), in_memory);

  data::SyntheticFlixsterOptions opt;
  opt.num_users = flixster_users;
  opt.num_items = 8000;
  data::Dataset flixster = data::MakeSyntheticFlixster(opt);
  RunDataset("flixster-synth (Fig. 3b)", flixster,
             bench::SampleUsers(flixster.social.num_nodes(), flixster_eval,
                                31),
             in_memory);
  return 0;
}

}  // namespace
}  // namespace privrec

int main(int argc, char** argv) { return privrec::Main(argc, argv); }
