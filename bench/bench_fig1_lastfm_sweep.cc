// Reproduces Figure 1: average NDCG@{10, 50, 100} of the four framework
// instantiations (CN, GD, AA, KZ) on Last.fm, for
// ε ∈ {∞, 1.0, 0.6, 0.1, 0.05, 0.01}, averaged over repeated trials.
//
// Paper shape to verify: the curves hug the ε = ∞ value down to ε ≈ 0.6
// (approximation error dominates, ~0.81-0.87 at N=50), drop to ~0.70-0.73
// at ε = 0.1, and collapse below that.
//
//   ./bench_fig1_lastfm_sweep [--trials=10] [--eval_users=1892]

#include <iostream>
#include <map>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "data/synthetic.h"
#include "eval/exact_reference.h"
#include "eval/experiment.h"
#include "eval/table.h"

namespace privrec {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  privrec::ObsSession obs_session = bench::ApplyStandardFlags(flags);
  // The paper uses 10 trials over all 1892 users; the defaults trade a
  // little averaging for a bench suite that finishes quickly on one core
  // (pass --trials=10 --eval_users=1892 for the full configuration).
  const int trials = static_cast<int>(flags.GetInt("trials", 5));
  const int64_t eval_count = flags.GetInt("eval_users", 1000);
  const bool in_memory = flags.GetBool("in-memory", false);
  if (!flags.Validate()) return 1;

  std::cout << "=== Figure 1: NDCG@N vs epsilon on Last.fm (cluster "
               "framework, " << trials << " trials) ===\n\n";
  ScopedTimer total_timer(&obs::GetHistogram(
      "privrec.bench.sweep_ms", obs::ExponentialBuckets(1e3, 4.0, 10)));
  data::Dataset dataset = data::MakeSyntheticLastFm();
  std::vector<graph::NodeId> users =
      bench::SampleUsers(dataset.social.num_nodes(), eval_count, 17);
  community::LouvainResult louvain =
      community::RunLouvain(dataset.social, {.restarts = 10, .seed = 42});
  std::cout << "clusters: " << louvain.partition.num_clusters()
            << " (Q = " << FormatDouble(louvain.modularity, 3) << "), "
            << users.size() << " evaluation users\n\n";

  const std::vector<int64_t> ns = {10, 50, 100};
  // cells[n][(measure, eps)] -> mean ndcg.
  std::map<int64_t, std::map<std::string, std::vector<std::string>>> rows;

  for (const std::string& name : bench::MeasureNames()) {
    auto measure = bench::MakeMeasure(name);
    similarity::SimilarityWorkload workload =
        similarity::SimilarityWorkload::ComputeForUsers(dataset.social,
                                                        *measure, users);
    core::RecommenderContext context{&dataset.social, &dataset.preferences,
                                     &workload};
    eval::ExactReference reference =
        eval::ExactReference::Compute(context, users, 100);

    eval::RecommenderFactory factory =
        bench::ClusterFactory(in_memory, context, louvain.partition);
    eval::SweepOptions sweep;
    sweep.epsilons = bench::PaperEpsilons();
    sweep.ns = ns;
    sweep.trials = trials;
    sweep.seed = 1000;
    std::vector<eval::SweepCell> cells =
        eval::RunNdcgSweep(factory, reference, sweep);
    for (const eval::SweepCell& cell : cells) {
      rows[cell.n][name].push_back(FormatDouble(cell.mean_ndcg, 3) + "±" +
                                   FormatDouble(cell.stddev_ndcg, 3));
    }
    std::cout << "measure " << name << " done ("
              << FormatDouble(total_timer.ElapsedSeconds(), 0) << "s)\n";
  }

  for (int64_t n : ns) {
    std::cout << "\n--- NDCG@" << n << " (Fig. 1"
              << (n == 10 ? "a" : n == 50 ? "b" : "c") << ") ---\n";
    std::vector<std::string> headers = {"measure"};
    for (double eps : bench::PaperEpsilons()) {
      headers.push_back("eps=" + bench::EpsilonLabel(eps));
    }
    eval::TablePrinter table(headers);
    for (const std::string& name : bench::MeasureNames()) {
      std::vector<std::string> row = {name};
      for (const std::string& cell : rows[n][name]) row.push_back(cell);
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  std::cout << "\ntotal time: "
            << FormatDouble(total_timer.ElapsedSeconds(), 0) << "s\n";
  return 0;
}

}  // namespace
}  // namespace privrec

int main(int argc, char** argv) { return privrec::Main(argc, argv); }
