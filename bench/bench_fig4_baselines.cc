// Reproduces Figure 4: NDCG@50 on Last.fm at ε ∈ {1.0, 0.1} for the two
// naïve baselines (NOU, NOE) and the two adapted mechanisms (LRM [34],
// GS [17]), with the cluster framework alongside for reference.
//
// Following the paper, GS's group size m is chosen per configuration by
// the best resulting NDCG (the paper notes this technically violates DP
// and flatters GS). LRM uses the SVD low-rank strategy; the paper used
// r = rank(W) ≈ 1808 — here r defaults to 200 to keep the dense algebra
// tractable on one core, which if anything *helps* LRM (less noise), yet
// it still loses badly because the workload has near-full rank.
//
// Paper shape to verify: Cluster >> NOE > {GS, LRM} > NOU, with NOU at
// random-guessing level and NOE collapsing from eps = 1.0 to 0.1.
//
//   ./bench_fig4_baselines [--trials=3] [--lrm_rank=200] [--skip_lrm]
//                          [--in-memory]  # legacy single-process path

#include <algorithm>
#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "core/group_smooth_recommender.h"
#include "core/low_rank_recommender.h"
#include "core/noe_recommender.h"
#include "core/nou_recommender.h"
#include "data/synthetic.h"
#include "eval/exact_reference.h"
#include "eval/significance.h"
#include "eval/table.h"

namespace privrec {
namespace {

constexpr int64_t kTopN = 50;

std::vector<double> NdcgTrials(core::Recommender* rec,
                               const eval::ExactReference& reference,
                               const std::vector<graph::NodeId>& users,
                               int trials) {
  std::vector<double> out;
  for (int t = 0; t < trials; ++t) {
    out.push_back(reference.MeanNdcg(rec->Recommend(users, kTopN)));
  }
  return out;
}

double Mean(const std::vector<double>& v) {
  RunningStats stats;
  for (double x : v) stats.Add(x);
  return stats.mean();
}

double MeanNdcgOverTrials(core::Recommender* rec,
                          const eval::ExactReference& reference,
                          const std::vector<graph::NodeId>& users,
                          int trials) {
  return Mean(NdcgTrials(rec, reference, users, trials));
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  privrec::ObsSession obs_session = bench::ApplyStandardFlags(flags);
  const int trials = static_cast<int>(flags.GetInt("trials", 2));
  const int64_t lrm_rank = flags.GetInt("lrm_rank", 150);
  const bool skip_lrm = flags.GetBool("skip_lrm", false);
  const int64_t eval_count = flags.GetInt("eval_users", 500);
  const bool in_memory = flags.GetBool("in-memory", false);
  if (!flags.Validate()) return 1;

  std::cout << "=== Figure 4: baseline comparison on Last.fm, NDCG@50, "
            << trials << " trials ===\n\n";
  ScopedTimer total_timer(&obs::GetHistogram(
      "privrec.bench.sweep_ms", obs::ExponentialBuckets(1e3, 4.0, 10)));
  data::Dataset dataset = data::MakeSyntheticLastFm();
  std::vector<graph::NodeId> users =
      bench::SampleUsers(dataset.social.num_nodes(), eval_count, 19);
  community::LouvainResult louvain =
      community::RunLouvain(dataset.social, {.restarts = 10, .seed = 44});

  for (double eps : {1.0, 0.1}) {
    std::cout << "--- epsilon = " << bench::EpsilonLabel(eps) << " (Fig. 4"
              << (eps == 1.0 ? "a" : "b") << ") ---\n";
    eval::TablePrinter table({"measure", "Cluster", "NOE", "GS(best m)",
                              "LRM", "NOU", "Cluster>NOE p"});
    for (const std::string& name : bench::MeasureNames()) {
      auto measure = bench::MakeMeasure(name);
      // GS samples from every user's similarity row: full workload.
      similarity::SimilarityWorkload workload =
          similarity::SimilarityWorkload::Compute(dataset.social, *measure);
      core::RecommenderContext context{&dataset.social,
                                       &dataset.preferences, &workload};
      eval::ExactReference reference =
          eval::ExactReference::Compute(context, users, kTopN);

      // Extra trials for the two leaders so the Welch test has power.
      const int lead_trials = std::max(trials, 4);

      // Two-phase route (default): the reference baselines draw their
      // per-call noise at serve time, so they all share ONE artifact that
      // carries the raw preference sections. The cluster mechanism instead
      // redraws its publication noise every trial, so each trial rebuilds
      // the sanitized artifact — the builder's publisher advances exactly
      // as the in-memory recommender's invocation counter would, keeping
      // both routes bit-identical. --in-memory times the legacy path.
      std::shared_ptr<const serving::ServingEngine> baseline_engine;
      if (!in_memory) {
        artifact::ModelArtifactBuilder builder(&dataset.social,
                                               &dataset.preferences);
        builder.SetPartition(&louvain.partition);
        builder.SetWorkload(&workload);
        artifact::BuildOptions build_options;
        build_options.epsilon = eps;
        build_options.seed = 49;  // its own noisy table is never served
        build_options.include_lowrank = !skip_lrm;
        build_options.lrm_target_rank = lrm_rank;
        build_options.lrm_seed = 53;
        auto model = builder.Build(build_options);
        PRIVREC_CHECK_MSG(model.ok(), "baseline artifact build failed");
        auto engine = serving::ServingEngine::FromModel(std::move(*model));
        PRIVREC_CHECK_MSG(engine.ok(), "baseline artifact rejected");
        baseline_engine = std::make_shared<const serving::ServingEngine>(
            std::move(*engine));
      }
      auto make = [&](const std::string& mechanism, uint64_t seed,
                      int64_t gs_m) {
        core::RecommenderSpec spec;
        spec.mechanism = mechanism;
        spec.epsilon = eps;
        spec.seed = seed;
        spec.gs_group_size = gs_m;
        spec.lrm_target_rank = lrm_rank;
        spec.engine = baseline_engine.get();  // null => legacy in-memory
        auto rec = core::MakeRecommender(context, spec);
        PRIVREC_CHECK_MSG(rec.ok(), "recommender construction failed");
        return std::move(*rec);
      };

      std::vector<double> cluster_trials;
      if (in_memory) {
        core::ClusterRecommender cluster(
            context, louvain.partition, {.epsilon = eps, .seed = 50});
        cluster_trials =
            NdcgTrials(&cluster, reference, users, lead_trials);
      } else {
        artifact::ModelArtifactBuilder cluster_builder(
            &dataset.social, &dataset.preferences);
        cluster_builder.SetPartition(&louvain.partition);
        cluster_builder.SetWorkload(&workload);
        for (int t = 0; t < lead_trials; ++t) {
          artifact::BuildOptions build_options;
          build_options.epsilon = eps;
          build_options.seed = 50;
          build_options.include_reference_sections = false;
          auto model = cluster_builder.Build(build_options);
          PRIVREC_CHECK_MSG(model.ok(), "cluster artifact build failed");
          auto engine =
              serving::ServingEngine::FromModel(std::move(*model));
          PRIVREC_CHECK_MSG(engine.ok(), "cluster artifact rejected");
          core::RecommenderSpec spec;
          spec.mechanism = "Cluster";
          spec.epsilon = eps;
          spec.seed = 50;
          auto rec = core::MakeArtifactRecommender(
              std::make_shared<const serving::ServingEngine>(
                  std::move(*engine)),
              spec);
          PRIVREC_CHECK_MSG(rec.ok(), "cluster serve rejected");
          cluster_trials.push_back(
              reference.MeanNdcg((*rec)->Recommend(users, kTopN)));
        }
      }
      double cluster_ndcg = Mean(cluster_trials);

      auto noe = make("NOE", 51, 0);
      std::vector<double> noe_trials =
          NdcgTrials(noe.get(), reference, users, lead_trials);
      double noe_ndcg = Mean(noe_trials);
      eval::WelchResult welch = eval::WelchTTest(cluster_trials,
                                                 noe_trials);

      // GS: sweep m, keep the best NDCG (the paper's concession to GS).
      double gs_ndcg = 0.0;
      int64_t best_m = 0;
      for (int64_t m : core::kGroupSizeCandidates) {
        auto gs = make("GS", 52, m);
        double ndcg =
            MeanNdcgOverTrials(gs.get(), reference, users, trials);
        if (ndcg > gs_ndcg) {
          gs_ndcg = ndcg;
          best_m = m;
        }
      }

      double lrm_ndcg = 0.0;
      if (!skip_lrm) {
        auto lrm = make("LRM", 53, 0);
        lrm_ndcg = MeanNdcgOverTrials(lrm.get(), reference, users, trials);
      }

      auto nou = make("NOU", 54, 0);
      double nou_ndcg =
          MeanNdcgOverTrials(nou.get(), reference, users, trials);

      table.AddRow({name, FormatDouble(cluster_ndcg, 3),
                    FormatDouble(noe_ndcg, 3),
                    FormatDouble(gs_ndcg, 3) + " (m=" +
                        std::to_string(best_m) + ")",
                    skip_lrm ? "-" : FormatDouble(lrm_ndcg, 3),
                    FormatDouble(nou_ndcg, 3),
                    welch.p_value < 0.001
                        ? "<0.001"
                        : FormatDouble(welch.p_value, 3)});
      std::cout << "  " << name << " done ("
                << FormatDouble(total_timer.ElapsedSeconds(), 0) << "s)\n";
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "total time: "
            << FormatDouble(total_timer.ElapsedSeconds(), 0) << "s\n";
  return 0;
}

}  // namespace
}  // namespace privrec

int main(int argc, char** argv) { return privrec::Main(argc, argv); }
