// P1: google-benchmark microbenchmarks for the performance-critical
// building blocks: noise sampling, similarity rows, Louvain, the noisy
// cluster averages (module A_w) and end-to-end private recommendation —
// plus serial-vs-parallel timings of the hot paths that run on the
// deterministic parallel layer (the */threads:N benchmarks).
//
// Reproducibility: the custom main stamps thread count, chunking rule,
// library version and git revision into the benchmark context, so JSON
// output (--benchmark_out=BENCH_parallel.json --benchmark_out_format=json)
// is comparable across PRs. A --threads=N flag (default: hardware
// concurrency / PRIVREC_THREADS) sets the default thread count; the
// */threads:N benchmarks override it per run. Thread count never changes
// results — only wall-clock.
//
// The BM_Artifact* group times the two-phase pipeline's hot paths (save,
// load, serve-side reconstruction); capture them with
// --benchmark_filter=Artifact --benchmark_out=BENCH_artifact.json
// --benchmark_out_format=json. The context block carries the artifact's
// on-disk byte size (artifact_bytes) next to git_revision, so size and
// latency regressions are visible in the same record.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "artifact/builder.h"
#include "artifact/model_io.h"
#include "artifact/serving.h"
#include "common/macros.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/version.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "core/exact_recommender.h"
#include "data/synthetic.h"
#include "graph/generators/planted_partition.h"
#include "core/item_cf_recommender.h"
#include "community/kmeans.h"
#include "eval/exact_reference.h"
#include "kernels/accumulate.h"
#include "kernels/dispatch.h"
#include "kernels/select.h"
#include "serve/clock.h"
#include "serve/runtime.h"
#include "serve/telemetry.h"
#include "similarity/adamic_adar.h"
#include "similarity/common_neighbors.h"
#include "similarity/graph_distance.h"
#include "similarity/katz.h"
#include "similarity/personalized_pagerank.h"
#include "similarity/workload.h"

namespace privrec {
namespace {

void BM_LaplaceSampling(benchmark::State& state) {
  Rng rng(1);
  double acc = 0.0;
  for (auto _ : state) {
    acc += rng.Laplace(1.0);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_LaplaceSampling);

void BM_ZipfSampling(benchmark::State& state) {
  Rng rng(2);
  uint64_t acc = 0;
  for (auto _ : state) {
    acc += rng.Zipf(100000, 1.05);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_ZipfSampling);

const data::Dataset& SharedDataset() {
  static const data::Dataset& dataset =
      *new data::Dataset(data::MakeTinyDataset(1000, 2000, 3));
  return dataset;
}

template <typename Measure>
void BM_SimilarityRow(benchmark::State& state) {
  const data::Dataset& dataset = SharedDataset();
  Measure measure;
  similarity::DenseScratch scratch;
  graph::NodeId u = 0;
  for (auto _ : state) {
    auto row = measure.Row(dataset.social, u, &scratch);
    benchmark::DoNotOptimize(row.data());
    u = (u + 1) % dataset.social.num_nodes();
  }
}
BENCHMARK_TEMPLATE(BM_SimilarityRow, similarity::CommonNeighbors);
BENCHMARK_TEMPLATE(BM_SimilarityRow, similarity::AdamicAdar);
BENCHMARK_TEMPLATE(BM_SimilarityRow, similarity::GraphDistance);
BENCHMARK_TEMPLATE(BM_SimilarityRow, similarity::Katz);
BENCHMARK_TEMPLATE(BM_SimilarityRow, similarity::PersonalizedPageRank);

void BM_WorkloadCompute(benchmark::State& state) {
  const data::Dataset& dataset = SharedDataset();
  similarity::CommonNeighbors measure;
  for (auto _ : state) {
    auto workload =
        similarity::SimilarityWorkload::Compute(dataset.social, measure);
    benchmark::DoNotOptimize(workload.TotalEntries());
  }
}
BENCHMARK(BM_WorkloadCompute);

// Serial-vs-parallel: the same materialization at a pinned thread count.
// Outputs are bit-identical across the Arg values; only time may differ.
void BM_WorkloadComputeThreads(benchmark::State& state) {
  const data::Dataset& dataset = SharedDataset();
  similarity::CommonNeighbors measure;
  ScopedThreadCount scoped(state.range(0));
  for (auto _ : state) {
    auto workload =
        similarity::SimilarityWorkload::Compute(dataset.social, measure);
    benchmark::DoNotOptimize(workload.TotalEntries());
  }
}
BENCHMARK(BM_WorkloadComputeThreads)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

// The heavier Katz workload, where per-row cost dominates chunk overhead.
void BM_WorkloadComputeKatzThreads(benchmark::State& state) {
  const data::Dataset& dataset = SharedDataset();
  similarity::Katz measure(3, 0.05);
  ScopedThreadCount scoped(state.range(0));
  for (auto _ : state) {
    auto workload =
        similarity::SimilarityWorkload::Compute(dataset.social, measure);
    benchmark::DoNotOptimize(workload.TotalEntries());
  }
}
BENCHMARK(BM_WorkloadComputeKatzThreads)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

void BM_Louvain(benchmark::State& state) {
  graph::PlantedPartitionOptions opt;
  opt.num_nodes = state.range(0);
  opt.num_communities = 16;
  opt.mean_degree = 14.0;
  opt.seed = 4;
  auto planted = graph::GeneratePlantedPartition(opt);
  for (auto _ : state) {
    auto result =
        community::RunLouvain(planted.graph, {.restarts = 1, .seed = 5});
    benchmark::DoNotOptimize(result.modularity);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Louvain)->Arg(1000)->Arg(4000)->Arg(16000)->Complexity();

struct RecommenderFixture {
  RecommenderFixture()
      : dataset(SharedDataset()),
        workload(similarity::SimilarityWorkload::Compute(
            dataset.social, similarity::CommonNeighbors())),
        context{&dataset.social, &dataset.preferences, &workload},
        louvain(community::RunLouvain(dataset.social,
                                      {.restarts = 2, .seed = 6})) {}

  const data::Dataset& dataset;
  similarity::SimilarityWorkload workload;
  core::RecommenderContext context;
  community::LouvainResult louvain;
};

RecommenderFixture& SharedFixture() {
  static RecommenderFixture& fixture = *new RecommenderFixture();
  return fixture;
}

void BM_NoisyClusterAverages(benchmark::State& state) {
  RecommenderFixture& f = SharedFixture();
  core::ClusterRecommender rec(f.context, f.louvain.partition,
                               {.epsilon = 0.1, .seed = 7});
  for (auto _ : state) {
    auto averages = rec.ComputeNoisyClusterAverages();
    benchmark::DoNotOptimize(averages.data());
  }
}
BENCHMARK(BM_NoisyClusterAverages);

void BM_NoisyClusterAveragesThreads(benchmark::State& state) {
  RecommenderFixture& f = SharedFixture();
  core::ClusterRecommender rec(f.context, f.louvain.partition,
                               {.epsilon = 0.1, .seed = 7});
  ScopedThreadCount scoped(state.range(0));
  for (auto _ : state) {
    auto averages = rec.ComputeNoisyClusterAverages();
    benchmark::DoNotOptimize(averages.data());
  }
}
BENCHMARK(BM_NoisyClusterAveragesThreads)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

void BM_ClusterRecommendPerUser(benchmark::State& state) {
  RecommenderFixture& f = SharedFixture();
  core::ClusterRecommender rec(f.context, f.louvain.partition,
                               {.epsilon = 0.1, .seed = 8});
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < 200; ++u) users.push_back(u);
  for (auto _ : state) {
    auto lists = rec.Recommend(users, 50);
    benchmark::DoNotOptimize(lists.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(users.size()));
}
BENCHMARK(BM_ClusterRecommendPerUser);

void BM_ClusterRecommendThreads(benchmark::State& state) {
  RecommenderFixture& f = SharedFixture();
  core::ClusterRecommender rec(f.context, f.louvain.partition,
                               {.epsilon = 0.1, .seed = 8});
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < 200; ++u) users.push_back(u);
  ScopedThreadCount scoped(state.range(0));
  for (auto _ : state) {
    auto lists = rec.Recommend(users, 50);
    benchmark::DoNotOptimize(lists.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(users.size()));
}
BENCHMARK(BM_ClusterRecommendThreads)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

void BM_ItemCfRecommendPerUser(benchmark::State& state) {
  RecommenderFixture& f = SharedFixture();
  core::ItemCfRecommender rec(f.context,
                              {.epsilon = 0.5, .tau = 20, .seed = 9});
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < 50; ++u) users.push_back(u);
  for (auto _ : state) {
    auto lists = rec.Recommend(users, 50);
    benchmark::DoNotOptimize(lists.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(users.size()));
}
BENCHMARK(BM_ItemCfRecommendPerUser);

void BM_NdcgEvaluation(benchmark::State& state) {
  RecommenderFixture& f = SharedFixture();
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < 200; ++u) users.push_back(u);
  eval::ExactReference ref =
      eval::ExactReference::Compute(f.context, users, 50);
  core::ClusterRecommender rec(f.context, f.louvain.partition,
                               {.epsilon = 0.5, .seed = 10});
  auto lists = rec.Recommend(users, 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.MeanNdcg(lists));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(users.size()));
}
BENCHMARK(BM_NdcgEvaluation);

void BM_NdcgEvaluationThreads(benchmark::State& state) {
  RecommenderFixture& f = SharedFixture();
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < 200; ++u) users.push_back(u);
  eval::ExactReference ref =
      eval::ExactReference::Compute(f.context, users, 50);
  core::ClusterRecommender rec(f.context, f.louvain.partition,
                               {.epsilon = 0.5, .seed = 10});
  auto lists = rec.Recommend(users, 50);
  ScopedThreadCount scoped(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.MeanNdcg(lists));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(users.size()));
}
BENCHMARK(BM_NdcgEvaluationThreads)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

void BM_TopNAccumulator(benchmark::State& state) {
  Rng rng(11);
  std::vector<double> utilities(10000);
  for (double& u : utilities) u = rng.Normal();
  for (auto _ : state) {
    core::TopNAccumulator acc(50);
    for (size_t i = 0; i < utilities.size(); ++i) {
      acc.Offer(static_cast<graph::ItemId>(i), utilities[i]);
    }
    auto list = acc.Take();
    benchmark::DoNotOptimize(list.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(utilities.size()));
}
BENCHMARK(BM_TopNAccumulator);

void BM_SpectralKMeans(benchmark::State& state) {
  const data::Dataset& dataset = SharedDataset();
  for (auto _ : state) {
    auto partition = community::SpectralKMeans(dataset.social, 8, 12);
    benchmark::DoNotOptimize(partition.num_clusters());
  }
}
BENCHMARK(BM_SpectralKMeans);

// --- Two-phase pipeline: save / load / serve on the shared dataset. ---

struct ArtifactFixture {
  ArtifactFixture() {
    RecommenderFixture& f = SharedFixture();
    artifact::ModelArtifactBuilder builder(&f.dataset.social,
                                           &f.dataset.preferences);
    builder.SetPartition(&f.louvain.partition);
    builder.SetWorkload(&f.workload);
    artifact::BuildOptions options;
    options.epsilon = 0.1;
    options.seed = 12;
    options.include_reference_sections = false;
    auto built = builder.Build(options);
    PRIVREC_CHECK_MSG(built.ok(), "artifact build failed");
    model = std::move(*built);
    path = (std::filesystem::temp_directory_path() /
            "privrec_bench_model.pvra")
               .string();
    Status saved = serving::SaveArtifact(model, path);
    PRIVREC_CHECK_MSG(saved.ok(), "artifact save failed");
    bytes = static_cast<int64_t>(std::filesystem::file_size(path));
  }

  serving::ArtifactModel model;
  std::string path;
  int64_t bytes = 0;
};

ArtifactFixture& SharedArtifactFixture() {
  static ArtifactFixture& fixture = *new ArtifactFixture();
  return fixture;
}

void BM_ArtifactSave(benchmark::State& state) {
  ArtifactFixture& f = SharedArtifactFixture();
  const std::string path = f.path + ".save_bench";
  for (auto _ : state) {
    Status saved = serving::SaveArtifact(f.model, path);
    benchmark::DoNotOptimize(saved.ok());
  }
  std::filesystem::remove(path);
  state.SetBytesProcessed(state.iterations() * f.bytes);
}
BENCHMARK(BM_ArtifactSave);

void BM_ArtifactLoad(benchmark::State& state) {
  ArtifactFixture& f = SharedArtifactFixture();
  for (auto _ : state) {
    auto engine = serving::ServingEngine::Load(f.path);
    benchmark::DoNotOptimize(engine.ok());
  }
  state.SetBytesProcessed(state.iterations() * f.bytes);
}
BENCHMARK(BM_ArtifactLoad);

// Top-N reconstruction from the loaded artifact — the serve-side answer
// to BM_ClusterRecommendPerUser (same users, same N; the two paths are
// bit-identical, so any delta here is pure dispatch overhead).
void BM_ArtifactClusterServe(benchmark::State& state) {
  ArtifactFixture& f = SharedArtifactFixture();
  auto engine = serving::ServingEngine::Load(f.path);
  PRIVREC_CHECK_MSG(engine.ok(), "artifact load failed");
  serving::ServeSpec spec;
  spec.mechanism = "Cluster";
  spec.epsilon = 0.1;
  auto server = serving::MakeServeRecommender(&*engine, spec);
  PRIVREC_CHECK_MSG(server.ok(), "serve recommender rejected");
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < 200; ++u) users.push_back(u);
  for (auto _ : state) {
    auto batch = (*server)->Recommend(users, 50);
    benchmark::DoNotOptimize(batch.lists.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(users.size()));
}
BENCHMARK(BM_ArtifactClusterServe);

void BM_ArtifactClusterServeThreads(benchmark::State& state) {
  ArtifactFixture& f = SharedArtifactFixture();
  auto engine = serving::ServingEngine::Load(f.path);
  PRIVREC_CHECK_MSG(engine.ok(), "artifact load failed");
  serving::ServeSpec spec;
  spec.mechanism = "Cluster";
  spec.epsilon = 0.1;
  auto server = serving::MakeServeRecommender(&*engine, spec);
  PRIVREC_CHECK_MSG(server.ok(), "serve recommender rejected");
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < 200; ++u) users.push_back(u);
  ScopedThreadCount scoped(state.range(0));
  for (auto _ : state) {
    auto batch = (*server)->Recommend(users, 50);
    benchmark::DoNotOptimize(batch.lists.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(users.size()));
}
BENCHMARK(BM_ArtifactClusterServeThreads)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

// --- Serving-runtime hot path: Handle() with and without the telemetry
// sink, the pair behind ci/obs_overhead.sh's serve gate. A ManualClock
// pins time so both variants do identical clock work and no deadline can
// expire mid-run; the delta is exactly the wide-event fill + sink fold.
void RunServeHandleBench(benchmark::State& state, bool with_telemetry) {
  ArtifactFixture& f = SharedArtifactFixture();
  serve::ManualClock clock;
  serve::ServeTelemetry telemetry;
  serve::ServeRuntimeOptions options;
  options.swap.spec.mechanism = "Cluster";
  options.swap.spec.epsilon = 0.1;
  options.clock = &clock;
  if (with_telemetry) options.telemetry = &telemetry;
  serve::ServeRuntime runtime(options);
  Status activated = runtime.Activate(f.path);
  PRIVREC_CHECK_MSG(activated.ok(), "serve activate failed");
  serve::ServeRequest request;
  for (graph::NodeId u = 0; u < 8; ++u) request.users.push_back(u);
  request.top_n = 20;
  request.deadline_ms = 1000000;
  for (auto _ : state) {
    serve::ServeResponse response = runtime.Handle(request);
    benchmark::DoNotOptimize(response.batch.lists.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(request.users.size()));
}

void BM_ServeHandle(benchmark::State& state) {
  RunServeHandleBench(state, /*with_telemetry=*/false);
}
BENCHMARK(BM_ServeHandle);

void BM_ServeHandleTelemetry(benchmark::State& state) {
  RunServeHandleBench(state, /*with_telemetry=*/true);
}
BENCHMARK(BM_ServeHandleTelemetry);

// --- Reconstruction kernels (src/kernels/): the dispatched SIMD paths
// against their scalar references. Shape mirrors a hot reconstruction
// call: a few dozen touched cluster rows over a few thousand items. The
// scalar reference is compiled with auto-vectorization off, so the
// Simd/Scalar ratio measures the hand-written lanes; ci/perf_gate.sh
// asserts the ratio (>= 2x on AVX2 hosts) from BENCH_kernels.json,
// keyed on the kernel_dispatch context below.

constexpr int64_t kKernelRows = 32;
constexpr int64_t kKernelItems = 4096;

struct KernelFixture {
  KernelFixture() {
    Rng rng(21);
    storage.resize(kKernelRows);
    storage_f32.resize(kKernelRows);
    for (int64_t k = 0; k < kKernelRows; ++k) {
      auto& row = storage[static_cast<size_t>(k)];
      row.resize(kKernelItems);
      for (double& v : row) v = rng.Normal();
      storage_f32[static_cast<size_t>(k)].assign(row.begin(), row.end());
      rows.push_back(row.data());
      rows_f32.push_back(storage_f32[static_cast<size_t>(k)].data());
      scales.push_back(rng.Normal());
    }
    out.resize(kKernelItems);
  }

  std::vector<std::vector<double>> storage;
  std::vector<std::vector<float>> storage_f32;
  std::vector<const double*> rows;
  std::vector<const float*> rows_f32;
  std::vector<double> scales;
  std::vector<double> out;
};

KernelFixture& SharedKernelFixture() {
  static KernelFixture& fixture = *new KernelFixture();
  return fixture;
}

void BM_KernelAccumulateScalar(benchmark::State& state) {
  KernelFixture& f = SharedKernelFixture();
  for (auto _ : state) {
    std::fill(f.out.begin(), f.out.end(), 0.0);
    kernels::AccumulateRowsScalar(f.rows.data(), f.scales.data(),
                                  kKernelRows, kKernelItems, f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
  state.SetBytesProcessed(state.iterations() * kKernelRows * kKernelItems *
                          static_cast<int64_t>(sizeof(double)));
}
BENCHMARK(BM_KernelAccumulateScalar);

void BM_KernelAccumulateSimd(benchmark::State& state) {
  KernelFixture& f = SharedKernelFixture();
  for (auto _ : state) {
    std::fill(f.out.begin(), f.out.end(), 0.0);
    kernels::AccumulateRows(f.rows.data(), f.scales.data(), kKernelRows,
                            kKernelItems, f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
  state.SetBytesProcessed(state.iterations() * kKernelRows * kKernelItems *
                          static_cast<int64_t>(sizeof(double)));
}
BENCHMARK(BM_KernelAccumulateSimd);

void BM_KernelAccumulateF32Scalar(benchmark::State& state) {
  KernelFixture& f = SharedKernelFixture();
  for (auto _ : state) {
    std::fill(f.out.begin(), f.out.end(), 0.0);
    kernels::AccumulateRowsF32Scalar(f.rows_f32.data(), f.scales.data(),
                                     kKernelRows, kKernelItems,
                                     f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
  state.SetBytesProcessed(state.iterations() * kKernelRows * kKernelItems *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_KernelAccumulateF32Scalar);

void BM_KernelAccumulateF32Simd(benchmark::State& state) {
  KernelFixture& f = SharedKernelFixture();
  for (auto _ : state) {
    std::fill(f.out.begin(), f.out.end(), 0.0);
    kernels::AccumulateRowsF32(f.rows_f32.data(), f.scales.data(),
                               kKernelRows, kKernelItems, f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
  state.SetBytesProcessed(state.iterations() * kKernelRows * kKernelItems *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_KernelAccumulateF32Simd);

// Top-N selection: the nth_element kernel against the historical
// materialize-pairs-and-partial_sort block it replaced.

struct SelectFixture {
  SelectFixture() {
    Rng rng(22);
    values.resize(10000);
    for (double& v : values) v = rng.Normal();
  }
  std::vector<double> values;
};

SelectFixture& SharedSelectFixture() {
  static SelectFixture& fixture = *new SelectFixture();
  return fixture;
}

void BM_KernelSelectTopNBaseline(benchmark::State& state) {
  SelectFixture& f = SharedSelectFixture();
  struct Pair {
    int64_t item;
    double utility;
  };
  for (auto _ : state) {
    std::vector<Pair> pairs;
    pairs.reserve(f.values.size());
    for (size_t i = 0; i < f.values.size(); ++i) {
      pairs.push_back({static_cast<int64_t>(i), f.values[i]});
    }
    std::partial_sort(pairs.begin(), pairs.begin() + 50, pairs.end(),
                      kernels::RankOrderBetter{});
    pairs.resize(50);
    benchmark::DoNotOptimize(pairs.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.values.size()));
}
BENCHMARK(BM_KernelSelectTopNBaseline);

void BM_KernelSelectTopN(benchmark::State& state) {
  SelectFixture& f = SharedSelectFixture();
  std::vector<int64_t> out;
  for (auto _ : state) {
    kernels::SelectTopNIndicesDense(
        f.values.data(), static_cast<int64_t>(f.values.size()), 50, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.values.size()));
}
BENCHMARK(BM_KernelSelectTopN);

// --- Cross-request batching: four admitted async operations finished
// one by one vs in one FinishAsyncBatch group (one merged Recommend).
// The delta is the per-call reconstruction overhead batching amortizes;
// the results are bit-identical (serve_test pins that).
void RunServeAsyncGroupBench(benchmark::State& state, bool batched) {
  ArtifactFixture& f = SharedArtifactFixture();
  serve::ManualClock clock;
  serve::ServeRuntimeOptions options;
  options.swap.spec.mechanism = "Cluster";
  options.swap.spec.epsilon = 0.1;
  options.clock = &clock;
  options.admission.max_concurrency = 8;
  serve::ServeRuntime runtime(options);
  Status activated = runtime.Activate(f.path);
  PRIVREC_CHECK_MSG(activated.ok(), "serve activate failed");

  constexpr int kGroup = 4;
  std::vector<serve::ServeRequest> requests(kGroup);
  for (int r = 0; r < kGroup; ++r) {
    for (graph::NodeId u = 0; u < 8; ++u) {
      requests[static_cast<size_t>(r)].users.push_back(r * 8 + u);
    }
    requests[static_cast<size_t>(r)].top_n = 20;
    requests[static_cast<size_t>(r)].deadline_ms = 1000000;
  }
  for (auto _ : state) {
    std::vector<serve::AsyncServe> ops;
    ops.reserve(kGroup);
    for (const serve::ServeRequest& request : requests) {
      ops.push_back(runtime.BeginAsync(request, clock.NowMs()));
    }
    if (batched) {
      std::vector<serve::AsyncServe*> group;
      group.reserve(kGroup);
      for (serve::AsyncServe& op : ops) group.push_back(&op);
      runtime.FinishAsyncBatch(group);
    } else {
      for (serve::AsyncServe& op : ops) (void)runtime.FinishAsync(op);
    }
    benchmark::DoNotOptimize(ops.back().response.batch.lists.data());
  }
  state.SetItemsProcessed(state.iterations() * kGroup * 8);
}

void BM_ServeFinishAsyncSingle(benchmark::State& state) {
  RunServeAsyncGroupBench(state, /*batched=*/false);
}
BENCHMARK(BM_ServeFinishAsyncSingle);

void BM_ServeFinishAsyncBatched(benchmark::State& state) {
  RunServeAsyncGroupBench(state, /*batched=*/true);
}
BENCHMARK(BM_ServeFinishAsyncBatched);

void BM_ExactRecommendPerUser(benchmark::State& state) {
  RecommenderFixture& f = SharedFixture();
  core::ExactRecommender rec(f.context);
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < 200; ++u) users.push_back(u);
  for (auto _ : state) {
    auto lists = rec.Recommend(users, 50);
    benchmark::DoNotOptimize(lists.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(users.size()));
}
BENCHMARK(BM_ExactRecommendPerUser);

}  // namespace
}  // namespace privrec

// BENCHMARK_MAIN() plus: a --threads=N flag for the default thread count,
// and reproducibility metadata in the benchmark context so BENCH_*.json
// records are comparable across PRs and machines.
int main(int argc, char** argv) {
  int out = 1;  // argv[0] kept
  for (int in = 1; in < argc; ++in) {
    const char* kPrefix = "--threads=";
    if (std::strncmp(argv[in], kPrefix, std::strlen(kPrefix)) == 0) {
      privrec::SetGlobalThreadCount(
          std::atoll(argv[in] + std::strlen(kPrefix)));
    } else {
      argv[out++] = argv[in];
    }
  }
  argc = out;

  benchmark::AddCustomContext("privrec_version", privrec::kVersionString);
  benchmark::AddCustomContext("git_revision", privrec::kGitRevision);
  benchmark::AddCustomContext(
      "threads", std::to_string(privrec::GlobalThreadCount()));
  benchmark::AddCustomContext(
      "hardware_threads", std::to_string(privrec::HardwareThreads()));
  benchmark::AddCustomContext(
      "chunking", "fixed; target " +
                      std::to_string(privrec::kDefaultTargetChunks) +
                      " chunks (DefaultChunkSize = ceil(n/target))");
  benchmark::AddCustomContext(
      "obs_compiled_in", privrec::obs::kCompiledIn ? "true" : "false");
  // Resolved SIMD level for the BM_Kernel* group; ci/perf_gate.sh only
  // asserts the Simd/Scalar speedup ratio when this says "avx2".
  benchmark::AddCustomContext(
      "kernel_dispatch",
      privrec::kernels::DispatchLevelName(privrec::kernels::ActiveDispatchLevel()));
  // On-disk size of the model the BM_Artifact* group saves/loads/serves,
  // so BENCH_artifact.json records pair byte-size with latency.
  benchmark::AddCustomContext(
      "artifact_bytes",
      std::to_string(privrec::SharedArtifactFixture().bytes));

  // Warm the shared fixtures once (outside any timed region), then stamp
  // the resulting metrics snapshot into the BENCH JSON context: every
  // BENCH_*.json record carries the workload-shape counters (similarity
  // entries, Laplace draws, cluster counts) its timings were measured
  // against.
  if (privrec::obs::kCompiledIn) {
    privrec::RecommenderFixture& f = privrec::SharedFixture();
    privrec::core::ClusterRecommender warm(
        f.context, f.louvain.partition, {.epsilon = 0.1, .seed = 7});
    auto averages = warm.ComputeNoisyClusterAverages();
    benchmark::DoNotOptimize(averages.data());
    privrec::obs::MetricsSnapshot snapshot =
        privrec::obs::MetricsRegistry::Instance().Snapshot();
    for (const auto& counter : snapshot.counters) {
      benchmark::AddCustomContext("metrics." + counter.name,
                                  std::to_string(counter.value));
    }
    // Benchmarks re-run these paths thousands of times; the warmup
    // snapshot above is the meaningful workload shape, so drop the warmup
    // counts from the registry rather than letting them skew any
    // post-run exports.
    privrec::obs::MetricsRegistry::Instance().ResetValues();
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
