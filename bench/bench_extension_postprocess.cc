// Extension E2: clustering post-processing — the paper's future-work item
// "(2) investigating post-processing heuristics to clean up the
// clustering by, for example, pruning low-quality clusters".
//
// Small clusters are the framework's weak spot: noise scales as
// 1/(|c|·ε), so Last.fm's tiny 2-7-node components drown at small ε.
// This bench sweeps a minimum-cluster-size threshold: clusters below the
// threshold are merged into their best-connected neighbor (isolated ones
// pooled), using only the public graph. Expected: at ε = 0.01-0.05,
// merging lifts accuracy for the affected users; at ε = ∞ it costs a
// little approximation error.
//
//   ./bench_extension_postprocess [--trials=3] [--eval_users=1000]

#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/stats.h"
#include "community/louvain.h"
#include "community/postprocess.h"
#include "core/cluster_recommender.h"
#include "data/synthetic.h"
#include "eval/exact_reference.h"
#include "eval/table.h"

namespace privrec {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  privrec::ObsSession obs_session = bench::ApplyStandardFlags(flags);
  const int trials = static_cast<int>(flags.GetInt("trials", 3));
  const int64_t eval_count = flags.GetInt("eval_users", 1000);
  if (!flags.Validate()) return 1;

  std::cout << "=== Extension E2: minimum-cluster-size post-processing "
               "(Last.fm, CN, NDCG@50, " << trials << " trials) ===\n\n";
  data::Dataset dataset = data::MakeSyntheticLastFm();
  std::vector<graph::NodeId> users =
      bench::SampleUsers(dataset.social.num_nodes(), eval_count, 59);
  auto measure = bench::MakeMeasure("CN");
  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::ComputeForUsers(dataset.social,
                                                      *measure, users);
  core::RecommenderContext context{&dataset.social, &dataset.preferences,
                                   &workload};
  eval::ExactReference reference =
      eval::ExactReference::Compute(context, users, 50);
  community::LouvainResult louvain =
      community::RunLouvain(dataset.social, {.restarts = 10, .seed = 57});
  std::cout << "base clustering: " << louvain.partition.num_clusters()
            << " clusters\n\n";

  // The merge only changes outcomes for users whose cluster membership
  // changed; report them separately so the effect is not washed out by
  // the (unchanged) majority.
  eval::TablePrinter table({"min size", "clusters", "smallest",
                            "NDCG@50 eps=inf", "eps=0.1", "eps=0.05",
                            "eps=0.01", "affected users",
                            "affected eps=0.05 before>after"});
  for (int64_t min_size : {1, 4, 8, 16, 32, 64}) {
    community::Partition merged = community::MergeSmallClusters(
        dataset.social, louvain.partition, {.min_size = min_size});
    int64_t smallest = merged.num_nodes();
    for (int64_t c = 0; c < merged.num_clusters(); ++c) {
      smallest = std::min(smallest, merged.ClusterSize(c));
    }
    // Affected = evaluation users whose original cluster was undersized.
    std::vector<size_t> affected;
    for (size_t k = 0; k < users.size(); ++k) {
      int64_t c = louvain.partition.ClusterOf(users[k]);
      if (louvain.partition.ClusterSize(c) < min_size) {
        affected.push_back(k);
      }
    }
    std::vector<std::string> row = {std::to_string(min_size),
                                    std::to_string(merged.num_clusters()),
                                    std::to_string(smallest)};
    double affected_ndcg_at_005 = 0.0;
    for (double eps : {dp::kEpsilonInfinity, 0.1, 0.05, 0.01}) {
      core::ClusterRecommender rec(context, merged,
                                   {.epsilon = eps, .seed = 58});
      RunningStats stats;
      RunningStats affected_stats;
      int reps = eps == dp::kEpsilonInfinity ? 1 : trials;
      for (int t = 0; t < reps; ++t) {
        auto lists = rec.Recommend(users, 50);
        stats.Add(reference.MeanNdcg(lists));
        for (size_t k : affected) {
          affected_stats.Add(reference.Ndcg(users[k], lists[k]));
        }
      }
      row.push_back(FormatDouble(stats.mean(), 3));
      if (eps == 0.05) affected_ndcg_at_005 = affected_stats.mean();
    }
    // Baseline for the affected users: the unmerged clustering at 0.05.
    double affected_before = 0.0;
    if (!affected.empty()) {
      core::ClusterRecommender base_rec(context, louvain.partition,
                                        {.epsilon = 0.05, .seed = 58});
      RunningStats before;
      for (int t = 0; t < trials; ++t) {
        auto lists = base_rec.Recommend(users, 50);
        for (size_t k : affected) {
          before.Add(reference.Ndcg(users[k], lists[k]));
        }
      }
      affected_before = before.mean();
    }
    row.push_back(std::to_string(affected.size()));
    row.push_back(affected.empty()
                      ? "-"
                      : FormatDouble(affected_before, 3) + " > " +
                            FormatDouble(affected_ndcg_at_005, 3));
    table.AddRow(row);
    std::cout << "  min size " << min_size << " done\n";
  }
  std::cout << "\n";
  table.Print(std::cout);
  std::cout << "\nreading: the whole-population columns move little "
               "because few users sit in undersized clusters; the "
               "affected-user column shows what merging buys exactly "
               "where the noise bites.\n";
  return 0;
}

}  // namespace
}  // namespace privrec

int main(int argc, char** argv) { return privrec::Main(argc, argv); }
