// Extension E1: a larger variety of social similarity measures — the
// paper's final future-work item. Runs the Figure-1 sweep (NDCG@50 vs ε)
// on Last.fm for five additional classics from the link-prediction
// survey the paper cites (Lü & Zhou 2011): Jaccard, Salton/cosine,
// Sørensen, Resource Allocation and Hub Promoted, with Common Neighbors
// as the anchor from the original four.
//
// All are symmetric 2-hop measures over the public social graph, so they
// drop into the framework unchanged; what varies is how they weight the
// neighborhood, which moves both the similarity-set mass and the
// workload sensitivity.
//
//   ./bench_extension_measures [--trials=3] [--eval_users=800]

#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "data/synthetic.h"
#include "eval/exact_reference.h"
#include "eval/experiment.h"
#include "eval/table.h"
#include "similarity/extra_measures.h"
#include "similarity/personalized_pagerank.h"

namespace privrec {
namespace {

std::unique_ptr<similarity::SimilarityMeasure> MakeExtended(
    const std::string& name) {
  if (name == "JC") return std::make_unique<similarity::Jaccard>();
  if (name == "SC") return std::make_unique<similarity::SaltonCosine>();
  if (name == "SO") return std::make_unique<similarity::Sorensen>();
  if (name == "RA") {
    return std::make_unique<similarity::ResourceAllocation>();
  }
  if (name == "HP") return std::make_unique<similarity::HubPromoted>();
  if (name == "PPR") {
    // Random-walk family (asymmetric: fine for the cluster framework).
    return std::make_unique<similarity::PersonalizedPageRank>(0.2, 1e-4);
  }
  return bench::MakeMeasure(name);
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  privrec::ObsSession obs_session = bench::ApplyStandardFlags(flags);
  const int trials = static_cast<int>(flags.GetInt("trials", 3));
  const int64_t eval_count = flags.GetInt("eval_users", 800);
  if (!flags.Validate()) return 1;

  std::cout << "=== Extension E1: additional similarity measures "
               "(Last.fm, NDCG@50, " << trials << " trials) ===\n\n";
  data::Dataset dataset = data::MakeSyntheticLastFm();
  std::vector<graph::NodeId> users =
      bench::SampleUsers(dataset.social.num_nodes(), eval_count, 53);
  community::LouvainResult louvain =
      community::RunLouvain(dataset.social, {.restarts = 10, .seed = 55});

  std::vector<std::string> headers = {"measure", "avg |sim(u)|"};
  for (double eps : bench::PaperEpsilons()) {
    headers.push_back("eps=" + bench::EpsilonLabel(eps));
  }
  eval::TablePrinter table(headers);
  for (std::string name :
       {"CN", "JC", "SC", "SO", "RA", "HP", "PPR"}) {
    auto measure = MakeExtended(name);
    similarity::SimilarityWorkload workload =
        similarity::SimilarityWorkload::ComputeForUsers(dataset.social,
                                                        *measure, users);
    core::RecommenderContext context{&dataset.social, &dataset.preferences,
                                     &workload};
    eval::ExactReference reference =
        eval::ExactReference::Compute(context, users, 50);
    eval::RecommenderFactory factory = [&](double eps, uint64_t seed) {
      return std::make_unique<core::ClusterRecommender>(
          context, louvain.partition,
          core::ClusterRecommenderOptions{.epsilon = eps, .seed = seed});
    };
    eval::SweepOptions sweep;
    sweep.epsilons = bench::PaperEpsilons();
    sweep.ns = {50};
    sweep.trials = trials;
    sweep.seed = 3000;
    std::vector<std::string> row = {
        name, FormatDouble(workload.AverageRowSize(), 0)};
    for (const eval::SweepCell& cell :
         eval::RunNdcgSweep(factory, reference, sweep)) {
      row.push_back(FormatDouble(cell.mean_ndcg, 3));
    }
    table.AddRow(row);
    std::cout << "  " << name << " done\n";
  }
  std::cout << "\n";
  table.Print(std::cout);
  std::cout << "\nreading: normalized measures (JC/SC/SO/HP) weight all "
               "similar users more evenly, which generally smooths the "
               "cluster reconstruction; the framework's qualitative "
               "behaviour (flat until eps ~0.6, collapse by 0.01) holds "
               "for every measure, supporting the paper's claim of "
               "generality.\n";
  return 0;
}

}  // namespace
}  // namespace privrec

int main(int argc, char** argv) { return privrec::Main(argc, argv); }
