// Reproduces the Section 6.2 clustering report: Louvain (10 restarts,
// best modularity, multi-level refinement) on both social graphs —
// number of clusters, mean/std cluster size, and largest-cluster share.
//
// Paper reference points: Last.fm -> 35 clusters (16 main-component
// clusters averaging 115 users, 19 tiny components), largest = 28.5% of
// users; Flixster -> 46 clusters averaging 2986 users, largest = 18.3%.
//
//   ./bench_clustering_stats [--flixster_users=12000]

#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "community/louvain.h"
#include "community/quality.h"
#include "data/synthetic.h"
#include "eval/table.h"
#include "graph/components.h"

namespace privrec {
namespace {

void Report(const std::string& label, const graph::SocialGraph& g,
            eval::TablePrinter* table) {
  ScopedTimer timer(&obs::GetHistogram(
      "privrec.bench.clustering_ms", obs::ExponentialBuckets(1.0, 4.0, 12)));
  community::LouvainResult r =
      community::RunLouvain(g, {.restarts = 10, .seed = 404});
  graph::ComponentInfo components = graph::ConnectedComponents(g);
  community::PartitionQuality quality =
      community::EvaluatePartitionQuality(g, r.partition);
  double largest_share =
      static_cast<double>(r.partition.LargestClusterSize()) /
      static_cast<double>(g.num_nodes());
  table->AddRow(
      {label, std::to_string(g.num_nodes()),
       std::to_string(components.num_components),
       std::to_string(r.partition.num_clusters()),
       FormatDouble(r.partition.AverageClusterSize(), 0) + " (" +
           FormatDouble(r.partition.ClusterSizeStddev(), 0) + ")",
       FormatDouble(100.0 * largest_share, 1) + "%",
       FormatDouble(r.modularity, 3),
       FormatDouble(quality.coverage, 2),
       FormatDouble(quality.mean_conductance, 3),
       FormatDouble(timer.ElapsedSeconds(), 1) + "s"});
}

}  // namespace

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  privrec::ObsSession obs_session = bench::ApplyStandardFlags(flags);
  const int64_t flixster_users = flags.GetInt("flixster_users", 12000);
  if (!flags.Validate()) return 1;

  std::cout << "=== Section 6.2: Louvain clustering of the social graphs "
               "(10 restarts, multi-level refinement) ===\n\n";
  std::cout << "paper: lastfm -> 35 clusters (19 of them the tiny "
               "components), largest 28.5% of users;\n"
               "       flixster -> 46 clusters, avg 2986 users, largest "
               "18.3%\n\n";

  eval::TablePrinter table({"graph", "|U|", "components", "clusters",
                            "avg size (std)", "largest", "Q", "coverage",
                            "conductance", "time"});
  data::Dataset lastfm = data::MakeSyntheticLastFm();
  Report("lastfm-synth", lastfm.social, &table);

  data::SyntheticFlixsterOptions fopt;
  fopt.num_users = flixster_users;
  fopt.num_items = 2000;  // items are irrelevant to clustering
  data::Dataset flixster = data::MakeSyntheticFlixster(fopt);
  Report("flixster-synth", flixster.social, &table);
  table.Print(std::cout);
  return 0;
}

}  // namespace privrec

int main(int argc, char** argv) { return privrec::Main(argc, argv); }
