// Extension E3: recommendations over dynamic graphs — the paper's first
// future-work item, realized as the sequential-composition baseline
// (DynamicRecommenderSession).
//
// Simulates a growing service: the preference graph arrives in T nested
// snapshots (the social graph is fixed), and the provider re-releases
// recommendations at every snapshot under ONE total budget ε_total = 1.0.
// Compares:
//   uniform     ε_t = ε_total / T — every release equally noisy;
//   geometric   ε_t decaying — early releases sharp, later ones noisy;
//   no-compose  a privacy-INVALID strawman that spends ε_total on every
//               snapshot (what a system that ignored composition would
//               report) — the upper envelope.
// NDCG at each snapshot is measured against that snapshot's own exact
// recommender.
//
//   ./bench_extension_dynamic [--snapshots=6] [--users=1892]

#include <iostream>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "core/dynamic_recommender.h"
#include "data/synthetic.h"
#include "eval/exact_reference.h"
#include "eval/table.h"

namespace privrec {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  privrec::ObsSession obs_session = bench::ApplyStandardFlags(flags);
  const int64_t snapshots = flags.GetInt("snapshots", 6);
  const int64_t num_users = flags.GetInt("users", 1892);
  const int64_t eval_count = flags.GetInt("eval_users", 600);
  const double total_epsilon = flags.GetDouble("total_epsilon", 1.0);
  if (!flags.Validate()) return 1;

  std::cout << "=== Extension E3: dynamic graphs under one budget "
               "(eps_total = " << total_epsilon << ", " << snapshots
            << " snapshots, Last.fm shape, CN, NDCG@50) ===\n\n";
  data::SyntheticLastFmOptions opt;
  opt.num_users = num_users;
  opt.num_items = 8000;
  data::Dataset dataset = data::MakeSyntheticLastFm(opt);
  auto pref_snapshots = data::GrowingPreferenceSnapshots(
      dataset.preferences, snapshots, 101);
  std::vector<graph::NodeId> users =
      bench::SampleUsers(dataset.social.num_nodes(), eval_count, 67);
  auto measure = bench::MakeMeasure("CN");
  // Social graph is fixed across snapshots -> one workload & clustering.
  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::ComputeForUsers(dataset.social,
                                                      *measure, users);
  community::LouvainResult louvain =
      community::RunLouvain(dataset.social, {.restarts = 5, .seed = 69});

  core::DynamicRecommenderOptions uniform_opt;
  uniform_opt.total_epsilon = total_epsilon;
  uniform_opt.planned_snapshots = snapshots;
  uniform_opt.louvain.restarts = 3;
  uniform_opt.seed = 71;
  core::DynamicRecommenderSession uniform(uniform_opt);

  core::DynamicRecommenderOptions geometric_opt = uniform_opt;
  geometric_opt.allocation = core::BudgetAllocation::kGeometric;
  geometric_opt.geometric_ratio = 0.6;
  core::DynamicRecommenderSession geometric(geometric_opt);

  eval::TablePrinter table({"snapshot", "|E_p|", "uniform eps_t",
                            "uniform NDCG", "geometric eps_t",
                            "geometric NDCG", "no-compose NDCG (invalid)"});
  for (int64_t t = 0; t < snapshots; ++t) {
    const graph::PreferenceGraph& prefs =
        pref_snapshots[static_cast<size_t>(t)];
    core::RecommenderContext context{&dataset.social, &prefs, &workload};
    eval::ExactReference reference =
        eval::ExactReference::Compute(context, users, 50);

    auto uniform_release = uniform.ProcessSnapshot(context, users, 50);
    auto geometric_release = geometric.ProcessSnapshot(context, users, 50);
    PRIVREC_CHECK(uniform_release.ok());
    PRIVREC_CHECK(geometric_release.ok());

    // The invalid strawman: full budget every time.
    core::ClusterRecommender fresh(
        context, louvain.partition,
        {.epsilon = total_epsilon,
         .seed = 73 + static_cast<uint64_t>(t)});

    table.AddRow(
        {std::to_string(t), std::to_string(prefs.num_edges()),
         FormatDouble(uniform_release->epsilon_spent, 3),
         FormatDouble(reference.MeanNdcg(uniform_release->lists), 3),
         FormatDouble(geometric_release->epsilon_spent, 3),
         FormatDouble(reference.MeanNdcg(geometric_release->lists), 3),
         FormatDouble(reference.MeanNdcg(fresh.Recommend(users, 50)), 3)});
    std::cout << "  snapshot " << t << " done\n";
  }
  std::cout << "\n";
  table.Print(std::cout);
  std::cout << "\nreading: sequential composition (Theorem 2) is the real "
               "cost of freshness — with T releases each one gets eps/T. "
               "Geometric allocation front-loads accuracy; the no-compose "
               "column shows what ignoring composition would claim, at "
               "the price of an actual guarantee of T * eps.\n";
  return 0;
}

}  // namespace
}  // namespace privrec

int main(int argc, char** argv) { return privrec::Main(argc, argv); }
