// Open-loop rated-load harness for the serving runtime (the online half
// of the build/serve split), with optional swap storms and SLO
// enforcement. This is the driver behind BENCH_serve.json and
// ci/serve_slo.sh.
//
// The driver builds a tiny synthetic release (two good artifact
// generations; under --load-swap-storm also a bit-flipped and a truncated
// copy), boots a ServeRuntime, and drives it with a deterministic
// open-loop schedule:
//
//   ./bench_serve_load --load-rps=2000 --load-duration-ms=2000
//                      --load-seed=1 --load-zipf-s=1.1
//                      --load-users-per-request=4
//                      --load-burst-factor=4 --load-burst-period-ms=500
//                      --load-burst-duration-ms=50
//                      --load-swap-period-ms=250 --load-swap-storm
//                      --load-slo-p99-ms=... --load-slo-p999-ms=...
//                      --load-slo-shed-rate=... --load-slo-rollback-rate=...
//                      --load-report=BENCH_serve.json
//                      [--load-wall --load-threads=4]
//                      [--serve-max-concurrency=4 --serve-queue-depth=8 ...]
//                      [--scratch-dir=serve-load-scratch]
//                      [--load-shards=K]   # serve sharded .pvram artifacts
//                                          # through the mmap zero-copy path
//                      [--telemetry-jsonl=PATH      # wide-event stream
//                       --telemetry-sample-every=16 --telemetry-slow-ms=100
//                       --telemetry-window-ms=250
//                       --telemetry-window-p99-ms=... --telemetry-window-shed-rate=...
//                       --telemetry-burn-lookback=8 --telemetry-burn-threshold=0.25
//                       --statusz-out=PATH]         # final statusz page
//
// Default mode is the virtual-time simulation: same seed -> same arrival
// schedule, same shed/expired/degraded counts, same latency histogram,
// bit for bit (only the wall-clock swap pauses vary run to run).
// --load-wall switches to real threads + blocking Handle() against the
// same schedule — the TSan-able companion.
//
// Exit status: 0 on SLO pass, 1 on setup/flag errors, 2 on SLO failure.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "artifact/builder.h"
#include "artifact/model_io.h"
#include "artifact/shard_layout.h"
#include "common/driver_flags.h"
#include "common/flags.h"
#include "community/louvain.h"
#include "data/synthetic.h"
#include "loadgen/harness.h"
#include "loadgen/oracle.h"
#include "loadgen/report.h"
#include "obs/export.h"
#include "serve/clock.h"
#include "serve/runtime.h"
#include "serve/statusz.h"
#include "serve/telemetry.h"
#include "similarity/common_neighbors.h"

namespace {

namespace fs = std::filesystem;
using namespace privrec;

constexpr int64_t kUsers = 60;
constexpr int64_t kItems = 40;
constexpr double kEpsilon = 0.7;

std::string ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  ObsSession obs_session = ApplyDriverFlags(flags);
  const ServeFlagSettings serve_settings = ApplyServeFlags(flags);
  const LoadFlagSettings load_settings = ApplyLoadFlags(flags);
  const TelemetryFlagSettings tel_settings = ApplyTelemetryFlags(flags);
  const std::string scratch =
      flags.GetString("scratch-dir", "serve-load-scratch");
  const int64_t load_shards = flags.GetInt("load-shards", 0);
  if (!flags.Validate()) return 1;

  // ---- Offline side: build the artifact generations the run swaps over.
  fs::remove_all(scratch);
  fs::create_directories(scratch);
  data::Dataset dataset = data::MakeTinyDataset(kUsers, kItems, /*seed=*/7);
  auto workload = similarity::SimilarityWorkload::Compute(
      dataset.social, similarity::CommonNeighbors());
  auto louvain =
      community::RunLouvain(dataset.social, {.restarts = 2, .seed = 3});

  auto build = [&](const std::string& name,
                   uint64_t seed) -> std::string {
    artifact::ModelArtifactBuilder builder(&dataset.social,
                                           &dataset.preferences);
    builder.SetPartition(&louvain.partition);
    builder.SetWorkload(&workload);
    artifact::BuildOptions build_options;
    build_options.epsilon = kEpsilon;
    build_options.seed = seed;
    auto model = builder.Build(build_options);
    if (!model.ok()) {
      std::fprintf(stderr, "artifact build failed: %s\n",
                   model.status().ToString().c_str());
      return "";
    }
    // With --load-shards the generations are sharded .pvram sets and the
    // runtime serves them through the mmap zero-copy path; the rest of
    // the harness is identical (Activate and the oracle both sniff).
    const std::string path =
        (fs::path(scratch) / (name + (load_shards > 0 ? ".pvram" : ".pvra")))
            .string();
    Status saved =
        load_shards > 0
            ? serving::SaveShardedArtifact(*model, path,
                                           {.shards = load_shards})
            : serving::SaveArtifact(*model, path);
    if (!saved.ok()) {
      std::fprintf(stderr, "artifact save failed: %s\n",
                   saved.ToString().c_str());
      return "";
    }
    return path;
  };
  const std::string good_a = build("good_a", 101);
  const std::string good_b = build("good_b", 202);
  if (good_a.empty() || good_b.empty()) return 1;

  loadgen::SwapStormSpec storm;
  storm.period_ms = load_settings.swap_period_ms;
  if (load_settings.swap_storm && storm.period_ms <= 0) {
    storm.period_ms = 250;
  }
  storm.good = {good_a, good_b};
  if (load_settings.swap_storm) {
    const std::string bitflip =
        (fs::path(scratch) / "bitflip.pvra").string();
    const std::string trunc = (fs::path(scratch) / "trunc.pvra").string();
    std::string bytes = ReadAllBytes(good_a);
    if (bytes.size() < 400) {
      std::fprintf(stderr, "artifact unexpectedly small\n");
      return 1;
    }
    bytes[300] = static_cast<char>(bytes[300] ^ 0x20);
    WriteAllBytes(bitflip, bytes);
    std::string half = ReadAllBytes(good_b);
    half.resize(half.size() / 2);
    WriteAllBytes(trunc, half);
    storm.corrupt = {bitflip, trunc};
    storm.arm_faults = true;
  }

  // ---- Online side: runtime, telemetry sink, oracle, harness.
  serve::ManualClock virtual_clock;
  serve::ServeTelemetryOptions tel_options;
  tel_options.sample_every = tel_settings.sample_every;
  tel_options.slow_ms = tel_settings.slow_ms;
  tel_options.window_ms = tel_settings.window_ms;
  tel_options.budget.p99_ms = tel_settings.window_p99_ms;
  tel_options.budget.max_shed_rate = tel_settings.window_shed_rate;
  tel_options.budget.lookback = tel_settings.burn_lookback;
  tel_options.budget.burn_threshold = tel_settings.burn_threshold;
  serve::ServeTelemetry telemetry(tel_options);
  serve::ServeRuntimeOptions options;
  options.telemetry = &telemetry;
  options.swap.spec.mechanism = "Cluster";
  options.swap.spec.epsilon = kEpsilon;
  options.admission.max_concurrency = serve_settings.max_concurrency;
  options.admission.queue_depth = serve_settings.queue_depth;
  options.breaker.failure_threshold = serve_settings.breaker_failures;
  options.breaker.cooldown_ms = serve_settings.breaker_cooldown_ms;
  // The threaded window batcher is a wall-mode tool: in virtual time the
  // single-threaded async path batches via FinishAsyncBatch instead.
  if (load_settings.wall) {
    options.batch.window_ms = serve_settings.batch_window_ms;
    options.batch.max_requests = serve_settings.batch_max_requests;
    options.batch.max_users = serve_settings.batch_max_users;
  }
  if (!load_settings.wall) options.clock = &virtual_clock;
  serve::ServeRuntime runtime(options);
  Status activated = runtime.Activate(good_a);
  if (!activated.ok()) {
    std::fprintf(stderr, "initial activate failed: %s\n",
                 activated.ToString().c_str());
    return 1;
  }

  auto oracle =
      loadgen::LoadOracle::Build({good_a, good_b}, options.swap.spec);
  if (!oracle.ok()) {
    std::fprintf(stderr, "oracle build failed: %s\n",
                 oracle.status().ToString().c_str());
    return 1;
  }

  loadgen::LoadRunOptions run;
  run.load.rps = load_settings.rps;
  run.load.duration_ms = load_settings.duration_ms;
  run.load.seed = static_cast<uint64_t>(load_settings.seed);
  run.load.num_users = kUsers;
  run.load.zipf_s = load_settings.zipf_s;
  run.load.users_per_request = load_settings.users_per_request;
  run.load.burst_factor = load_settings.burst_factor;
  run.load.burst_period_ms = load_settings.burst_period_ms;
  run.load.burst_duration_ms = load_settings.burst_duration_ms;
  run.storm = storm;
  run.wall_threads = load_settings.threads;

  loadgen::LoadHarness harness(&runtime, oracle->get(), run);
  loadgen::LoadSummary summary = load_settings.wall
                                     ? harness.RunWall()
                                     : harness.RunVirtual(&virtual_clock);

  // Close the final partial window on the clock the run actually used;
  // in virtual mode this makes the window series a pure function of the
  // schedule.
  telemetry.Flush(load_settings.wall
                      ? serve::SteadyClock::Instance()->NowMs()
                      : virtual_clock.NowMs());

  loadgen::SloBudget budget;
  budget.p50_ms = load_settings.slo_p50_ms;
  budget.p99_ms = load_settings.slo_p99_ms;
  budget.p999_ms = load_settings.slo_p999_ms;
  budget.max_shed_rate = load_settings.slo_shed_rate;
  budget.max_rollback_rate = load_settings.slo_rollback_rate;
  loadgen::SloVerdict verdict = loadgen::EvaluateSlo(budget, summary);

  loadgen::TelemetryReport tel_report;
  tel_report.recorded = telemetry.recorded();
  tel_report.sampled = telemetry.sampled();
  tel_report.dropped = telemetry.dropped_events();
  tel_report.sample_every = tel_options.sample_every;
  tel_report.window_ms = tel_options.window_ms;
  tel_report.burn_rate = telemetry.burn_rate();
  tel_report.series = telemetry.series();

  const std::string mode = load_settings.wall ? "wall" : "virtual";
  const std::string json = loadgen::LoadReportJson(
      run.load, storm.period_ms, summary, budget, verdict, mode,
      load_settings.wall ? load_settings.threads : 1, load_shards,
      &tel_report);
  if (!load_settings.report.empty()) {
    std::string error;
    if (!obs::WriteTextFile(load_settings.report, json, &error)) {
      std::fprintf(stderr, "report write failed: %s\n", error.c_str());
      return 1;
    }
  }
  if (!tel_settings.jsonl.empty()) {
    std::string error;
    if (!obs::WriteTextFile(tel_settings.jsonl, telemetry.EventsJsonl(),
                            &error)) {
      std::fprintf(stderr, "telemetry jsonl write failed: %s\n",
                   error.c_str());
      return 1;
    }
  }
  if (!tel_settings.statusz_out.empty()) {
    std::string error;
    const serve::RuntimeIntrospection status = runtime.Introspect(
        load_settings.wall ? -1 : virtual_clock.NowMs());
    if (!obs::WriteTextFile(tel_settings.statusz_out,
                            serve::StatuszText(status), &error)) {
      std::fprintf(stderr, "statusz write failed: %s\n", error.c_str());
      return 1;
    }
  }

  std::fprintf(stderr,
               "bench_serve_load (%s): scheduled=%lld ok=%lld shed=%lld "
               "expired=%lld degraded=%lld violations=%lld\n",
               mode.c_str(),
               static_cast<long long>(summary.scheduled),
               static_cast<long long>(summary.ok),
               static_cast<long long>(summary.shed),
               static_cast<long long>(summary.expired),
               static_cast<long long>(summary.degraded),
               static_cast<long long>(summary.correctness_violations));
  std::fprintf(stderr,
               "  latency p50=%.3fms p99=%.3fms p999=%.3fms | swaps "
               "%lld/%lld ok, %lld rollbacks | shed_rate=%.4f\n",
               summary.latency.Quantile(0.50),
               summary.latency.Quantile(0.99),
               summary.latency.Quantile(0.999),
               static_cast<long long>(summary.swap_ok),
               static_cast<long long>(summary.swap_attempts),
               static_cast<long long>(summary.rollbacks),
               summary.shed_rate);
  std::fprintf(stderr,
               "  telemetry: recorded=%lld sampled=%lld dropped=%lld | "
               "windows=%lld breaches=%lld burn_alerts=%lld "
               "burn_rate=%.4f\n",
               static_cast<long long>(telemetry.recorded()),
               static_cast<long long>(telemetry.sampled()),
               static_cast<long long>(telemetry.dropped_events()),
               static_cast<long long>(tel_report.series.windows.size()),
               static_cast<long long>(telemetry.window_breaches()),
               static_cast<long long>(telemetry.burn_alerts()),
               telemetry.burn_rate());
  if (!verdict.pass) {
    for (const std::string& failure : verdict.failures) {
      std::fprintf(stderr, "SLO FAIL: %s\n", failure.c_str());
    }
    return 2;
  }
  std::fprintf(stderr, "SLO: pass\n");
  return 0;
}
