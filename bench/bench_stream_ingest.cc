// Streaming-ingestion bench: the cost of the WAL discipline and of
// incremental community maintenance, the measurement behind
// BENCH_stream.json.
//
// The driver generates a deterministic delta schedule and measures:
//
//   wal_append (fsync off / every 64)  journal-then-apply throughput
//   wal_replay                         cold-start Open() replay of the log
//   incremental_community              per-delta local moves + drift
//                                      restarts, vs one full Louvain run
//                                      on the final graph
//
// plus a bit-identity check: the replayed ingester must report the same
// graph fingerprint as the one that wrote the log.
//
//   ./bench_stream_ingest [--deltas=20000] [--users=2000] [--items=1000]
//                         [--scratch-dir=stream-ingest-scratch]
//                         [--report=BENCH_stream.json]
//
// Exit status: 0 when the replay is bit-identical; 2 otherwise; 1 on
// setup errors.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/driver_flags.h"
#include "common/flags.h"
#include "common/random.h"
#include "common/timer.h"
#include "community/incremental.h"
#include "community/louvain.h"
#include "obs/export.h"
#include "stream/ingester.h"

namespace {

namespace fs = std::filesystem;
using namespace privrec;

stream::WalRecord ScheduleRecord(uint64_t seed, int64_t i,
                                 graph::NodeId users, graph::ItemId items) {
  const uint64_t bits =
      SplitMix64(seed ^ (0x5bd1e995ull * static_cast<uint64_t>(i + 1)));
  const uint64_t kind = bits % 100;
  const auto u = static_cast<graph::NodeId>((bits >> 8) % users);
  if (kind < 55) {
    graph::NodeId v = static_cast<graph::NodeId>((bits >> 32) % users);
    if (v == u) v = (v + 1) % users;
    return stream::WalRecord::AddSocial(u, v);
  }
  if (kind < 70) {
    graph::NodeId v = static_cast<graph::NodeId>((bits >> 24) % users);
    if (v == u) v = (v + 1) % users;
    return stream::WalRecord::RemoveSocial(u, v);
  }
  const auto item = static_cast<graph::ItemId>((bits >> 40) % items);
  if (kind < 92) {
    const double weight = 1.0 + static_cast<double>((bits >> 56) % 5);
    return stream::WalRecord::AddPreference(u, item, weight);
  }
  return stream::WalRecord::RemovePreference(u, item);
}

// Pushes the whole schedule through `ingester`; returns elapsed ms or a
// negative value on error.
double RunSchedule(stream::EdgeStreamIngester* ingester, uint64_t seed,
                   int64_t deltas, graph::NodeId users,
                   graph::ItemId items) {
  WallTimer timer;
  for (int64_t i = 0; i < deltas; ++i) {
    Status applied =
        ingester->Apply(ScheduleRecord(seed, i, users, items));
    if (!applied.ok()) {
      std::fprintf(stderr, "apply failed at %lld: %s\n",
                   static_cast<long long>(i),
                   applied.ToString().c_str());
      return -1.0;
    }
  }
  return timer.ElapsedMillis();
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  ObsSession obs_session = ApplyDriverFlags(flags);
  const int64_t deltas = flags.GetInt("deltas", 20000);
  const auto users = static_cast<graph::NodeId>(flags.GetInt("users", 2000));
  const auto items = static_cast<graph::ItemId>(flags.GetInt("items", 1000));
  const std::string scratch =
      flags.GetString("scratch-dir", "stream-ingest-scratch");
  const std::string report = flags.GetString("report", "BENCH_stream.json");
  if (!flags.Validate()) return 1;
  const uint64_t seed = 29;

  fs::remove_all(scratch);
  fs::create_directories(scratch);

  // ---- Journaled ingest, fsync off: the raw append+apply cost.
  stream::EdgeStreamOptions wal_options;
  wal_options.num_users = users;
  wal_options.num_items = items;
  wal_options.wal_path = scratch + "/nofsync.wal";
  wal_options.fsync_every = 0;
  auto journaled = stream::EdgeStreamIngester::Open(wal_options);
  if (!journaled.ok()) {
    std::fprintf(stderr, "%s\n", journaled.status().ToString().c_str());
    return 1;
  }
  const double nofsync_ms =
      RunSchedule(&*journaled, seed, deltas, users, items);
  if (nofsync_ms < 0) return 1;
  const uint64_t fingerprint = journaled->GraphFingerprint();

  // ---- Journaled ingest, fsync every 64 records: the durability tax.
  wal_options.wal_path = scratch + "/fsync64.wal";
  wal_options.fsync_every = 64;
  auto durable = stream::EdgeStreamIngester::Open(wal_options);
  if (!durable.ok()) return 1;
  const double fsync64_ms = RunSchedule(&*durable, seed, deltas, users, items);
  if (fsync64_ms < 0) return 1;

  // ---- Cold-start replay of the first log.
  wal_options.wal_path = scratch + "/nofsync.wal";
  wal_options.fsync_every = 0;
  WallTimer timer;
  auto replayed = stream::EdgeStreamIngester::Open(wal_options);
  const double replay_ms = timer.ElapsedMillis();
  if (!replayed.ok()) return 1;
  const bool bit_identical =
      replayed->delta_records() == deltas &&
      replayed->GraphFingerprint() == fingerprint;

  // ---- Incremental community maintenance over the same schedule
  // (unjournaled, so the numbers isolate the maintainer).
  stream::EdgeStreamOptions shadow_options;
  shadow_options.num_users = users;
  shadow_options.num_items = items;
  community::IncrementalCommunity incremental(users, {});
  auto shadow = stream::EdgeStreamIngester::Open(
      shadow_options,
      [&incremental](const stream::WalRecord& record,
                     const stream::EdgeStreamIngester&) {
        if (record.type == stream::WalRecordType::kAddSocial) {
          incremental.AddEdge(record.a, record.b);
        } else if (record.type == stream::WalRecordType::kRemoveSocial) {
          incremental.RemoveEdge(record.a, record.b);
        }
      });
  if (!shadow.ok()) return 1;
  const double incremental_ms =
      RunSchedule(&*shadow, seed, deltas, users, items);
  if (incremental_ms < 0) return 1;

  // ---- One full Louvain run on the final graph, for scale.
  graph::SocialGraph final_graph = shadow->BuildSocialGraph();
  timer.Reset();
  auto louvain = community::RunLouvain(final_graph, {.restarts = 1,
                                                     .seed = 3});
  const double louvain_ms = timer.ElapsedMillis();

  const double per_delta_us =
      deltas > 0 ? 1000.0 * nofsync_ms / static_cast<double>(deltas) : 0.0;
  char buffer[2048];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\n"
      "  \"context\": {\"bench\": \"bench_stream_ingest\"},\n"
      "  \"spec\": {\"deltas\": %lld, \"users\": %lld, \"items\": %lld, "
      "\"social_edges\": %lld, \"pref_edges\": %lld},\n"
      "  \"wal\": {\"append_nofsync_ms\": %.1f, \"append_fsync64_ms\": "
      "%.1f, \"replay_ms\": %.1f, \"append_per_delta_us\": %.2f},\n"
      "  \"community\": {\"incremental_ms\": %.1f, \"full_louvain_ms\": "
      "%.1f, \"local_moves\": %lld, \"drift_restarts\": %lld, "
      "\"modularity\": %.6f, \"louvain_modularity\": %.6f},\n"
      "  \"results\": {\"replay_bit_identical\": %s, \"pass\": %s}\n"
      "}\n",
      static_cast<long long>(deltas), static_cast<long long>(users),
      static_cast<long long>(items),
      static_cast<long long>(shadow->social_edges()),
      static_cast<long long>(shadow->preference_edges()), nofsync_ms,
      fsync64_ms, replay_ms, per_delta_us, incremental_ms, louvain_ms,
      static_cast<long long>(incremental.local_moves()),
      static_cast<long long>(incremental.full_restarts()),
      incremental.modularity(), louvain.modularity,
      bit_identical ? "true" : "false", bit_identical ? "true" : "false");

  if (!report.empty()) {
    std::string error;
    if (!obs::WriteTextFile(report, buffer, &error)) {
      std::fprintf(stderr, "report write failed: %s\n", error.c_str());
      return 1;
    }
  }
  std::fprintf(stderr,
               "bench_stream_ingest: append %.1f ms (fsync64 %.1f ms), "
               "replay %.1f ms, incremental community %.1f ms "
               "(full louvain %.1f ms), bit_identical=%d -> %s\n",
               nofsync_ms, fsync64_ms, replay_ms, incremental_ms,
               louvain_ms, bit_identical ? 1 : 0,
               bit_identical ? "PASS" : "FAIL");
  fs::remove_all(scratch);
  return bit_identical ? 0 : 2;
}
