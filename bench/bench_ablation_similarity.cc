// Ablation A2: similarity-measure hyper-parameters (the paper fixes
// GD's cutoff d = 2 and Katz's k = 3, α = 0.05; its future work asks how
// sensitive the framework is to these choices).
//
// Sweeps GD's distance cutoff d ∈ {1, 2, 3} and Katz's damping
// α ∈ {0.005, 0.05, 0.5} × length cutoff k ∈ {1, 2, 3} on Last.fm,
// reporting workload shape (similarity-set size, NOU-style sensitivity)
// and framework NDCG@50 at ε ∈ {∞, 0.1}.
//
//   ./bench_ablation_similarity [--trials=3] [--eval_users=800]

#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/stats.h"
#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "data/synthetic.h"
#include "eval/exact_reference.h"
#include "eval/table.h"
#include "similarity/graph_distance.h"
#include "similarity/katz.h"

namespace privrec {
namespace {

struct Variant {
  std::string name;
  std::unique_ptr<similarity::SimilarityMeasure> measure;
};

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  privrec::ObsSession obs_session = bench::ApplyStandardFlags(flags);
  const int trials = static_cast<int>(flags.GetInt("trials", 3));
  const int64_t eval_count = flags.GetInt("eval_users", 800);
  if (!flags.Validate()) return 1;

  std::cout << "=== Ablation A2: similarity hyper-parameters (Last.fm, "
               "NDCG@50, " << trials << " trials) ===\n\n";
  data::Dataset dataset = data::MakeSyntheticLastFm();
  std::vector<graph::NodeId> users =
      bench::SampleUsers(dataset.social.num_nodes(), eval_count, 37);
  community::LouvainResult louvain =
      community::RunLouvain(dataset.social, {.restarts = 10, .seed = 71});

  std::vector<Variant> variants;
  for (int64_t d : {1, 2, 3}) {
    variants.push_back({"GD d=" + std::to_string(d),
                        std::make_unique<similarity::GraphDistance>(d)});
  }
  for (double alpha : {0.005, 0.05, 0.5}) {
    for (int64_t k : {1, 2, 3}) {
      variants.push_back(
          {"KZ k=" + std::to_string(k) + " a=" + FormatDouble(alpha, 3),
           std::make_unique<similarity::Katz>(k, alpha)});
    }
  }

  eval::TablePrinter table({"variant", "avg |sim(u)|", "sensitivity",
                            "NDCG@50 eps=inf", "NDCG@50 eps=0.1"});
  for (const Variant& v : variants) {
    similarity::SimilarityWorkload workload =
        similarity::SimilarityWorkload::ComputeForUsers(dataset.social,
                                                        *v.measure, users);
    core::RecommenderContext context{&dataset.social, &dataset.preferences,
                                     &workload};
    eval::ExactReference reference =
        eval::ExactReference::Compute(context, users, 50);
    std::vector<std::string> row = {
        v.name, FormatDouble(workload.AverageRowSize(), 0),
        FormatDouble(workload.MaxColumnSum(), 1)};
    for (double eps : {dp::kEpsilonInfinity, 0.1}) {
      core::ClusterRecommender rec(context, louvain.partition,
                                   {.epsilon = eps, .seed = 72});
      RunningStats stats;
      int reps = eps == dp::kEpsilonInfinity ? 1 : trials;
      for (int t = 0; t < reps; ++t) {
        stats.Add(reference.MeanNdcg(rec.Recommend(users, 50)));
      }
      row.push_back(FormatDouble(stats.mean(), 3));
    }
    table.AddRow(row);
    std::cout << "  " << v.name << " done\n";
  }
  std::cout << "\n";
  table.Print(std::cout);
  std::cout << "\nnote: avg |sim(u)| is measured over the evaluation "
               "subset; sensitivity is the NOU-style max column sum over "
               "all users.\n";
  return 0;
}

}  // namespace
}  // namespace privrec

int main(int argc, char** argv) { return privrec::Main(argc, argv); }
