// Shared helpers for the experiment-reproduction bench binaries.

#ifndef PRIVREC_BENCH_BENCH_COMMON_H_
#define PRIVREC_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "artifact/builder.h"
#include "artifact/serving.h"
#include "common/driver_flags.h"
#include "common/flags.h"
#include "common/macros.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/string_util.h"
#include "community/partition.h"
#include "core/recommender_factory.h"
#include "dp/mechanisms.h"
#include "eval/experiment.h"
#include "graph/social_graph.h"
#include "similarity/adamic_adar.h"
#include "similarity/common_neighbors.h"
#include "similarity/graph_distance.h"
#include "similarity/katz.h"

namespace privrec::bench {

// Forwarder kept for source compatibility; the parsing lives in
// common/driver_flags.h so bench and example binaries share one
// implementation.
inline int64_t ApplyThreadsFlag(FlagParser& flags) {
  return ::privrec::ApplyThreadsFlag(flags);
}

// The standard bench prologue: --threads plus the observability flags
// (--metrics-json, --trace-out, --metrics-stderr). Keep the returned
// session alive for the driver's whole run; its destructor writes the
// requested exports.
inline ObsSession ApplyStandardFlags(FlagParser& flags) {
  return ApplyDriverFlags(flags);
}

// The paper's four instantiations, in its citation order.
inline const std::vector<std::string>& MeasureNames() {
  static const std::vector<std::string> kNames = {"CN", "GD", "AA", "KZ"};
  return kNames;
}

inline std::unique_ptr<similarity::SimilarityMeasure> MakeMeasure(
    const std::string& name) {
  if (name == "CN") return std::make_unique<similarity::CommonNeighbors>();
  if (name == "GD") return std::make_unique<similarity::GraphDistance>(2);
  if (name == "AA") return std::make_unique<similarity::AdamicAdar>();
  if (name == "KZ") return std::make_unique<similarity::Katz>(3, 0.05);
  PRIVREC_CHECK_MSG(false, "unknown measure");
  return nullptr;
}

inline std::string EpsilonLabel(double epsilon) {
  if (epsilon == dp::kEpsilonInfinity) return "inf";
  return FormatDouble(epsilon, 2);
}

// The evaluation grid of Section 6.3.
inline std::vector<double> PaperEpsilons() {
  return {dp::kEpsilonInfinity, 1.0, 0.6, 0.1, 0.05, 0.01};
}

inline std::vector<graph::NodeId> AllUsers(graph::NodeId n) {
  std::vector<graph::NodeId> users(static_cast<size_t>(n));
  for (graph::NodeId u = 0; u < n; ++u) users[static_cast<size_t>(u)] = u;
  return users;
}

// Uniform random user sample without replacement (the paper evaluates a
// random 10,000-user subset of Flixster).
inline std::vector<graph::NodeId> SampleUsers(graph::NodeId n,
                                              int64_t count,
                                              uint64_t seed) {
  if (count >= n) return AllUsers(n);
  Rng rng(seed);
  std::vector<graph::NodeId> users;
  for (uint64_t raw :
       rng.SampleWithoutReplacement(static_cast<uint64_t>(n),
                                    static_cast<uint64_t>(count))) {
    users.push_back(static_cast<graph::NodeId>(raw));
  }
  return users;
}

// Cluster-mechanism factory for the NDCG sweeps, routed through the
// two-phase pipeline by default: every (ε, trial) cell re-runs the A_w
// publication via a shared ModelArtifactBuilder and serves from the
// resulting in-memory artifact. This is bit-identical to constructing
// core::ClusterRecommender directly — artifact_test pins the equivalence
// — so benches expose --in-memory only as a way to time the legacy
// single-process path, not to change results.
inline eval::RecommenderFactory ClusterFactory(
    bool in_memory, const core::RecommenderContext& context,
    const community::Partition& partition, bool table_f32 = false) {
  if (in_memory) {
    PRIVREC_CHECK_MSG(!table_f32,
                      "--table-f32 is an artifact section; the in-memory "
                      "path has no quantized table");
    return [&context, &partition](double eps, uint64_t seed) {
      return std::make_unique<core::ClusterRecommender>(
          context, partition,
          core::ClusterRecommenderOptions{.epsilon = eps, .seed = seed});
    };
  }
  auto builder = std::make_shared<artifact::ModelArtifactBuilder>(
      context.social, context.preferences);
  builder->SetPartition(&partition);
  builder->SetWorkload(context.workload);
  return [builder, table_f32](
             double eps, uint64_t seed) -> std::unique_ptr<core::Recommender> {
    artifact::BuildOptions options;
    options.epsilon = eps;
    options.seed = seed;
    options.include_reference_sections = false;
    options.table_f32 = table_f32;
    auto model = builder->Build(options);
    PRIVREC_CHECK_MSG(model.ok(), "artifact build failed");
    auto engine = serving::ServingEngine::FromModel(std::move(*model));
    PRIVREC_CHECK_MSG(engine.ok(), "artifact rejected by serving engine");
    core::RecommenderSpec spec;
    spec.mechanism = "Cluster";
    spec.epsilon = eps;
    spec.seed = seed;
    auto rec = core::MakeArtifactRecommender(
        std::make_shared<const serving::ServingEngine>(std::move(*engine)),
        spec);
    PRIVREC_CHECK_MSG(rec.ok(), "artifact-backed recommender rejected");
    return std::move(*rec);
  };
}

}  // namespace privrec::bench

#endif  // PRIVREC_BENCH_BENCH_COMMON_H_
