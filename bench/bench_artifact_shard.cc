// Table-1-scale artifact bench: monolithic deserialize vs sharded
// zero-copy serving, the measurement behind BENCH_artifact.json.
//
// The driver generates the synthetic Flixster substitute at the paper's
// REAL Table-1 scale (137,372 users, ~1.27M social edges, ~7.5M
// preference edges), builds one full artifact, then saves it both ways
// and times every load route:
//
//   monolithic .pvra   ->  ServingEngine::Load  (per-element deserialize)
//   sharded .pvram     ->  MappedArtifact::Open (mmap)  + FromMapped
//   sharded .pvram     ->  MappedArtifact::Open (read fallback)
//
// plus the RSS delta of each route and of a SECOND engine over the same
// files — the mmap route shares the page cache, the monolithic route
// pays the full copy again. A probe batch is served from every engine
// and compared byte-for-byte against the monolithic route.
//
//   ./bench_artifact_shard [--users=137372] [--items=48756] [--shards=6]
//                          [--epsilon=0.5] [--top_n=10]
//                          [--scratch-dir=artifact-shard-scratch]
//                          [--report=BENCH_artifact.json]
//
// Exit status: 0 when the mapped load is >= 10x faster than the
// monolithic deserialize AND every probe is bit-identical; 2 otherwise;
// 1 on setup errors.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "artifact/builder.h"
#include "artifact/mapped.h"
#include "artifact/model_io.h"
#include "artifact/serving.h"
#include "artifact/shard_layout.h"
#include "common/driver_flags.h"
#include "common/flags.h"
#include "common/timer.h"
#include "community/louvain.h"
#include "data/synthetic.h"
#include "obs/export.h"
#include "similarity/common_neighbors.h"

namespace {

namespace fs = std::filesystem;
using namespace privrec;

// VmRSS in kB from /proc/self/status; 0 when unavailable (non-Linux).
int64_t CurrentRssKb() {
  std::ifstream status("/proc/self/status");
  std::string token;
  while (status >> token) {
    if (token == "VmRSS:") {
      int64_t kb = 0;
      status >> kb;
      return kb;
    }
  }
  return 0;
}

uint64_t FileBytes(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<uint64_t>(size);
}

struct LoadSample {
  double total_ms = 0;
  int64_t rss_delta_kb = 0;
  int64_t second_rss_delta_kb = 0;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  ObsSession obs_session = ApplyDriverFlags(flags);
  data::SyntheticFlixsterOptions data_options;  // Table-1 scale defaults
  const int64_t users = flags.GetInt("users", data_options.num_users);
  const int64_t items = flags.GetInt("items", data_options.num_items);
  const int64_t shards = flags.GetInt("shards", 6);
  const double epsilon = flags.GetDouble("epsilon", 0.5);
  const int64_t top_n = flags.GetInt("top_n", 10);
  const std::string scratch =
      flags.GetString("scratch-dir", "artifact-shard-scratch");
  const std::string report =
      flags.GetString("report", "BENCH_artifact.json");
  if (!flags.Validate()) return 1;

  fs::remove_all(scratch);
  fs::create_directories(scratch);

  // ---- Offline: dataset, workload, clustering, one full build.
  WallTimer timer;
  data_options.num_users = users;
  data_options.num_items = items;
  data::Dataset dataset = data::MakeSyntheticFlixster(data_options);
  const double dataset_ms = timer.ElapsedMillis();
  std::fprintf(stderr,
               "dataset: %lld users, %lld social edges, %lld preference "
               "edges (%.0f ms)\n",
               static_cast<long long>(dataset.social.num_nodes()),
               static_cast<long long>(dataset.social.num_edges()),
               static_cast<long long>(dataset.preferences.num_edges()),
               dataset_ms);

  timer.Reset();
  auto workload = similarity::SimilarityWorkload::Compute(
      dataset.social, similarity::CommonNeighbors());
  const double workload_ms = timer.ElapsedMillis();
  timer.Reset();
  auto louvain =
      community::RunLouvain(dataset.social, {.restarts = 1, .seed = 3});
  const double louvain_ms = timer.ElapsedMillis();
  std::fprintf(stderr, "workload %.0f ms, louvain %.0f ms (%lld clusters)\n",
               workload_ms, louvain_ms,
               static_cast<long long>(louvain.partition.num_clusters()));

  timer.Reset();
  artifact::ModelArtifactBuilder builder(&dataset.social,
                                         &dataset.preferences);
  builder.SetPartition(&louvain.partition);
  builder.SetWorkload(&workload);
  artifact::BuildOptions build_options;
  build_options.epsilon = epsilon;
  build_options.seed = 11;
  // Reference sections carry the Table-1-scale preference CSR into the
  // artifact — that is most of the bytes, and exactly what the mapped
  // route must serve without a deserialize pass.
  build_options.include_reference_sections = true;
  auto built = builder.Build(build_options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  serving::ArtifactModel model = std::move(*built);
  const double build_ms = timer.ElapsedMillis();

  const std::string mono = (fs::path(scratch) / "table1.pvra").string();
  const std::string manifest =
      (fs::path(scratch) / "table1.pvram").string();
  timer.Reset();
  Status saved = serving::SaveArtifact(model, mono);
  const double save_mono_ms = timer.ElapsedMillis();
  timer.Reset();
  Status saved_sharded =
      serving::SaveShardedArtifact(model, manifest, {.shards = shards});
  const double save_sharded_ms = timer.ElapsedMillis();
  if (!saved.ok() || !saved_sharded.ok()) {
    std::fprintf(stderr, "save failed: %s %s\n", saved.ToString().c_str(),
                 saved_sharded.ToString().c_str());
    return 1;
  }
  uint64_t sharded_bytes = FileBytes(manifest);
  for (int64_t s = 0; s < shards; ++s) {
    sharded_bytes += FileBytes(manifest + ".shard" + std::to_string(s));
  }
  model = serving::ArtifactModel{};  // drop the copy before RSS baselines

  // ---- Online: every load route, timed cold-ish (files are in page
  // cache after the save — both routes see the same warm cache, which is
  // the steady state a reloading server lives in anyway).
  serving::ServeSpec spec;
  spec.mechanism = "Cluster";
  spec.epsilon = epsilon;
  std::vector<graph::NodeId> probe_users;
  for (graph::NodeId u = 0; u < users && probe_users.size() < 64; u += 97) {
    probe_users.push_back(u);
  }

  std::vector<core::RecommendationList> reference;
  bool bit_identical = true;
  auto probe = [&](serving::ServingEngine* engine) {
    auto server = serving::MakeServeRecommender(engine, spec);
    if (!server.ok()) {
      std::fprintf(stderr, "probe rejected: %s\n",
                   server.status().ToString().c_str());
      bit_identical = false;
      return;
    }
    auto lists = (*server)->Recommend(probe_users, top_n).lists;
    if (reference.empty()) {
      reference = std::move(lists);
    } else if (lists != reference) {
      bit_identical = false;
    }
  };

  LoadSample mono_sample;
  {
    const int64_t rss0 = CurrentRssKb();
    timer.Reset();
    auto engine = serving::ServingEngine::Load(mono);
    mono_sample.total_ms = timer.ElapsedMillis();
    mono_sample.rss_delta_kb = CurrentRssKb() - rss0;
    if (!engine.ok()) {
      std::fprintf(stderr, "monolithic load failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    probe(&*engine);
    const int64_t rss1 = CurrentRssKb();
    auto second = serving::ServingEngine::Load(mono);
    mono_sample.second_rss_delta_kb = CurrentRssKb() - rss1;
    if (!second.ok()) return 1;
  }

  auto mapped_route = [&](bool use_mmap, LoadSample* sample) -> int {
    const int64_t rss0 = CurrentRssKb();
    timer.Reset();
    serving::MapOptions map_options;
    map_options.use_mmap = use_mmap;
    auto mapped = serving::MappedArtifact::Open(manifest, map_options);
    const double open_ms = timer.ElapsedMillis();
    if (!mapped.ok()) {
      std::fprintf(stderr, "mapped open failed: %s\n",
                   mapped.status().ToString().c_str());
      return 1;
    }
    auto engine = serving::ServingEngine::FromMapped(*mapped);
    sample->total_ms = timer.ElapsedMillis();
    std::fprintf(stderr, "  mapped(use_mmap=%d): open %.1f ms, engine %.1f ms\n",
                 use_mmap ? 1 : 0, open_ms, sample->total_ms - open_ms);
    sample->rss_delta_kb = CurrentRssKb() - rss0;
    if (!engine.ok()) {
      std::fprintf(stderr, "FromMapped failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    probe(&*engine);
    const int64_t rss1 = CurrentRssKb();
    auto again = serving::MappedArtifact::Open(manifest, map_options);
    if (!again.ok()) return 1;
    auto second = serving::ServingEngine::FromMapped(*again);
    sample->second_rss_delta_kb = CurrentRssKb() - rss1;
    if (!second.ok()) return 1;
    return 0;
  };
  LoadSample mmap_sample;
  LoadSample read_sample;
  if (mapped_route(true, &mmap_sample) != 0) return 1;
  if (mapped_route(false, &read_sample) != 0) return 1;

  const double speedup =
      mmap_sample.total_ms > 0 ? mono_sample.total_ms / mmap_sample.total_ms
                               : 0;
  const bool pass = speedup >= 10.0 && bit_identical;

  char buffer[2560];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\n"
      "  \"context\": {\"bench\": \"bench_artifact_shard\", "
      "\"scale\": \"table1-flixster\"},\n"
      "  \"spec\": {\"users\": %lld, \"items\": %lld, \"shards\": %lld, "
      "\"epsilon\": %.3f, \"social_edges\": %lld, \"pref_edges\": %lld, "
      "\"clusters\": %lld},\n"
      "  \"offline_ms\": {\"dataset\": %.1f, \"workload\": %.1f, "
      "\"louvain\": %.1f, \"build\": %.1f, \"save_monolithic\": %.1f, "
      "\"save_sharded\": %.1f},\n"
      "  \"artifact_bytes\": {\"monolithic\": %llu, \"sharded_total\": "
      "%llu},\n"
      "  \"load\": {\n"
      "    \"monolithic\": {\"total_ms\": %.2f, \"rss_delta_kb\": %lld, "
      "\"second_engine_rss_delta_kb\": %lld},\n"
      "    \"mapped_mmap\": {\"total_ms\": %.2f, \"rss_delta_kb\": %lld, "
      "\"second_engine_rss_delta_kb\": %lld},\n"
      "    \"mapped_read\": {\"total_ms\": %.2f, \"rss_delta_kb\": %lld, "
      "\"second_engine_rss_delta_kb\": %lld}\n"
      "  },\n"
      "  \"results\": {\"mmap_speedup_vs_monolithic\": %.2f, "
      "\"bit_identical_probes\": %s, \"pass\": %s}\n"
      "}\n",
      static_cast<long long>(users), static_cast<long long>(items),
      static_cast<long long>(shards), epsilon,
      static_cast<long long>(dataset.social.num_edges()),
      static_cast<long long>(dataset.preferences.num_edges()),
      static_cast<long long>(louvain.partition.num_clusters()), dataset_ms,
      workload_ms, louvain_ms, build_ms, save_mono_ms, save_sharded_ms,
      static_cast<unsigned long long>(FileBytes(mono)),
      static_cast<unsigned long long>(sharded_bytes), mono_sample.total_ms,
      static_cast<long long>(mono_sample.rss_delta_kb),
      static_cast<long long>(mono_sample.second_rss_delta_kb),
      mmap_sample.total_ms,
      static_cast<long long>(mmap_sample.rss_delta_kb),
      static_cast<long long>(mmap_sample.second_rss_delta_kb),
      read_sample.total_ms,
      static_cast<long long>(read_sample.rss_delta_kb),
      static_cast<long long>(read_sample.second_rss_delta_kb), speedup,
      bit_identical ? "true" : "false", pass ? "true" : "false");

  if (!report.empty()) {
    std::string error;
    if (!obs::WriteTextFile(report, buffer, &error)) {
      std::fprintf(stderr, "report write failed: %s\n", error.c_str());
      return 1;
    }
  }
  std::fprintf(stderr,
               "bench_artifact_shard: monolithic %.1f ms, mmap %.1f ms, "
               "read %.1f ms, speedup %.1fx, bit_identical=%d -> %s\n",
               mono_sample.total_ms, mmap_sample.total_ms,
               read_sample.total_ms, speedup, bit_identical ? 1 : 0,
               pass ? "PASS" : "FAIL");
  fs::remove_all(scratch);
  return pass ? 0 : 2;
}
