#!/usr/bin/env bash
# Builds the whole tree under AddressSanitizer + UBSan and runs the test
# suite, then builds the parallel-layer-relevant tests under
# ThreadSanitizer and runs them with 4 threads (PRIVREC_THREADS=4, set in
# the tsan test preset) so chunk claiming, the job handshake and the
# ordered reduction are exercised with real cross-thread interleavings.
# Any sanitizer finding aborts the offending test, so a green run here
# means the suite is clean under all three.
#
# Usage: ci/sanitize.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j"$(nproc)"
ctest --preset asan-ubsan -j"$(nproc)" "$@"

# Forced-scalar pass: PRIVREC_NO_SIMD=1 pins the kernel dispatch to the
# scalar reference (a runtime switch, mirroring PRIVREC_NO_MMAP — same
# build). The whole suite must stay green and, because every kernel is
# bit-identical across dispatch levels, every golden in it must match
# without re-baselining.
PRIVREC_NO_SIMD=1 ctest --preset asan-ubsan -j"$(nproc)" "$@"
echo "forced-scalar pass: full suite green with PRIVREC_NO_SIMD=1"

# ThreadSanitizer pass: the tests that drive the deterministic parallel
# layer (common/parallel.h) and the lock-free metrics/tracing fast paths
# (src/obs) through their concurrent paths.
TSAN_TESTS="parallel_test|core_test|similarity_test|obs_test"
cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)" \
  --target parallel_test core_test similarity_test obs_test
ctest --preset tsan -j"$(nproc)" -R "^(${TSAN_TESTS})\$" "$@"

# Chaos pass: the serving-runtime soak — >= 500 hot-swap iterations mixing
# corrupt artifacts and injected I/O faults while 4 request threads hammer
# the runtime (PRIVREC_THREADS=4 in the tsan preset keeps the parallel
# layer concurrent too). TSan shakes the epoch-publication and admission
# paths for real races; the asan-ubsan full-suite run above already covers
# the same soak for memory bugs. serve_test rides along for the breaker /
# admission / swap state machines.
cmake --build --preset tsan -j"$(nproc)" --target serve_test serve_chaos_test
PRIVREC_CHAOS_ITERS=500 \
  ctest --preset tsan -j"$(nproc)" -R "^(serve_test|serve_chaos_test)\$" "$@"
echo "chaos soak: 500 swap iterations with faults, clean under TSan"

# Streaming chaos pass: the churn soak — grow/ingest/crash/restart/
# republish/swap cycles with 4 request threads hammering the runtime while
# the pipeline journals, publishes and hot-swaps. TSan shakes the
# WAL-ingest / publish / epoch-swap interleavings; stream_test rides along
# for the journal replay and scheduler state machines.
cmake --build --preset tsan -j"$(nproc)" --target stream_test stream_soak_test
PRIVREC_CHAOS_ITERS=500 \
  ctest --preset tsan -j"$(nproc)" -R "^(stream_test|stream_soak_test)\$" "$@"
echo "stream soak: 500 churn iterations with crashes and faults, clean under TSan"

# Probes-compiled-out pass for the serving runtime: with
# PRIVREC_NO_FAULT_INJECTION the fault probes in the artifact I/O and
# serve paths are constexpr no-ops, and the runtime (plus its tests, which
# skip or downgrade their armed-fault branches via fault::kCompiledIn)
# must still build and stay green — real corruption is caught either way.
cmake --preset no-fault-injection
cmake --build --preset no-fault-injection -j"$(nproc)" \
  --target serve_test serve_chaos_test data_robustness_test
ctest --preset no-fault-injection -j"$(nproc)" \
  -R "^(serve_test|serve_chaos_test|data_robustness_test)\$" "$@"
echo "no-fault-injection build: serving runtime compiles and soaks clean"

# PRIVREC_OBS=OFF pass: the no-op shells must keep the whole suite green,
# and the compile-out must be real — no registry or tracer machinery may
# survive into the obs library's object code.
cmake --preset no-obs
cmake --build --preset no-obs -j"$(nproc)"
ctest --preset no-obs -j"$(nproc)" "$@"
if nm --defined-only build-noobs/src/obs/libprivrec_obs.a 2>/dev/null \
    | grep -E "MetricsRegistry|Tracer|SpanScope" ; then
  echo "FAIL: PRIVREC_OBS=OFF build still defines obs runtime symbols" >&2
  exit 1
fi
echo "no-obs symbol check: clean (metrics registry and tracer compiled out)"

# Two-phase pipeline determinism pass: build→save→load→serve must be
# byte-stable — the same inputs produce the same .pvra bytes on every run
# and at every thread count, and recommendations served from a freshly
# built engine equal those served from a saved-then-loaded artifact.
# (The asan-ubsan tree is already built above; running under ASan also
# shakes the save/load paths for memory bugs.)
SCRATCH=artifact-scratch
rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"
FP=build-asan-ubsan/examples/file_pipeline
run_pipeline() {  # run_pipeline <tag> <threads> <extra args...>
  local tag="$1" threads="$2"
  shift 2
  "$FP" --social="$SCRATCH/social.tsv" --prefs="$SCRATCH/prefs.tsv" \
    --epsilon=0.5 --top_n=10 --threads="$threads" \
    --out="$SCRATCH/recs_$tag.tsv" "$@" > "$SCRATCH/log_$tag.txt"
}
run_pipeline t1a 1 --artifact-out="$SCRATCH/model_t1a.pvra"
run_pipeline t1b 1 --artifact-out="$SCRATCH/model_t1b.pvra"
run_pipeline t2  2 --artifact-out="$SCRATCH/model_t2.pvra"
cmp "$SCRATCH/model_t1a.pvra" "$SCRATCH/model_t1b.pvra"
cmp "$SCRATCH/model_t1a.pvra" "$SCRATCH/model_t2.pvra"
# Serve a prior build (no rebuild, no ε re-spend) at a third thread
# count: the recommendations must still be byte-identical.
run_pipeline replay 4 --artifact-in="$SCRATCH/model_t1a.pvra"
cmp "$SCRATCH/recs_t1a.tsv" "$SCRATCH/recs_t1b.tsv"
cmp "$SCRATCH/recs_t1a.tsv" "$SCRATCH/recs_t2.tsv"
cmp "$SCRATCH/recs_t1a.tsv" "$SCRATCH/recs_replay.tsv"
rm -rf "$SCRATCH"
echo "artifact determinism: .pvra bytes and served output stable across" \
     "runs, thread counts, and save/load"

# Sharded determinism pass: the same guarantees for the sharded .pvram
# layout and the mmap zero-copy serve path. The manifest and every shard
# file must be byte-stable across runs and thread counts, and serving a
# sharded artifact — mapped or via the PRIVREC_NO_MMAP read fallback —
# must reproduce the monolithic build's recommendations bit for bit.
SCRATCH=artifact-shard-scratch-ci
rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"/s1a "$SCRATCH"/s1b "$SCRATCH"/s2
# The manifest's shard table references its shard files by relative
# name, so byte-comparison needs the same artifact name — one
# subdirectory per run.
run_pipeline s1a 1 --artifact-out="$SCRATCH/s1a/model.pvram" --shards=3
run_pipeline s1b 1 --artifact-out="$SCRATCH/s1b/model.pvram" --shards=3
run_pipeline s2  2 --artifact-out="$SCRATCH/s2/model.pvram" --shards=3
for part in "" .shard0 .shard1 .shard2; do
  cmp "$SCRATCH/s1a/model.pvram$part" "$SCRATCH/s1b/model.pvram$part"
  cmp "$SCRATCH/s1a/model.pvram$part" "$SCRATCH/s2/model.pvram$part"
done
run_pipeline mono 1 --artifact-out="$SCRATCH/model_mono.pvra"
run_pipeline sreplay 4 --artifact-in="$SCRATCH/s1a/model.pvram"
(export PRIVREC_NO_MMAP=1
 run_pipeline sread 4 --artifact-in="$SCRATCH/s1a/model.pvram")
cmp "$SCRATCH/recs_s1a.tsv" "$SCRATCH/recs_mono.tsv"
cmp "$SCRATCH/recs_s1a.tsv" "$SCRATCH/recs_sreplay.tsv"
cmp "$SCRATCH/recs_s1a.tsv" "$SCRATCH/recs_sread.tsv"
rm -rf "$SCRATCH"
echo "sharded determinism: .pvram manifest+shards byte-stable, mapped and" \
     "read-fallback serving match the monolithic recommendations"

# Privacy isolation: the serving library must stay free of preference-
# and social-graph code — the CMake allowlist enforces the link layer,
# this enforces the object code.
if nm --defined-only build-asan-ubsan/src/artifact/libprivrec_serving.a \
    2>/dev/null | grep -E "PreferenceGraph|SocialGraph" ; then
  echo "FAIL: privrec_serving object code references the graph types" >&2
  exit 1
fi
echo "serving symbol check: clean (no preference/social graph code)"

# The serving runtime (src/serve) inherits the same isolation guarantee.
if nm --defined-only build-asan-ubsan/src/serve/libprivrec_serve.a \
    2>/dev/null | grep -E "PreferenceGraph|SocialGraph" ; then
  echo "FAIL: privrec_serve object code references the graph types" >&2
  exit 1
fi
echo "serve runtime symbol check: clean (no preference/social graph code)"

# Crash-recovery matrix: kill the streaming service at every journaling
# stage (WAL append/fsync, ledger intent/commit, post-journal window,
# artifact write/rename/reopen), restart, and require bit-identical
# convergence with clean ε audits (see ci/stream_soak.sh for the matrix).
# Runs against the asan-ubsan tree so every crash path is also
# memory-checked.
ci/stream_soak.sh build-asan-ubsan

# Rated-load SLO gate: open-loop load + swap storm against the serving
# runtime, with determinism, budget-enforcement and TSan wall-mode gates
# (see ci/serve_slo.sh for the budgets and methodology).
ci/serve_slo.sh

# Kernel performance gate: the dispatched SIMD reconstruction kernels
# must clear their speedup floors over the scalar references, and
# PRIVREC_NO_SIMD must verifiably pin dispatch to scalar (see
# ci/perf_gate.sh for floors and methodology).
ci/perf_gate.sh
