#!/usr/bin/env bash
# Builds the whole tree under AddressSanitizer + UBSan and runs the test
# suite. Any sanitizer finding aborts the offending test, so a green ctest
# here means the suite is clean under both.
#
# Usage: ci/sanitize.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j"$(nproc)"
ctest --preset asan-ubsan -j"$(nproc)" "$@"
