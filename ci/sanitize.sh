#!/usr/bin/env bash
# Builds the whole tree under AddressSanitizer + UBSan and runs the test
# suite, then builds the parallel-layer-relevant tests under
# ThreadSanitizer and runs them with 4 threads (PRIVREC_THREADS=4, set in
# the tsan test preset) so chunk claiming, the job handshake and the
# ordered reduction are exercised with real cross-thread interleavings.
# Any sanitizer finding aborts the offending test, so a green run here
# means the suite is clean under all three.
#
# Usage: ci/sanitize.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j"$(nproc)"
ctest --preset asan-ubsan -j"$(nproc)" "$@"

# ThreadSanitizer pass: the tests that drive the deterministic parallel
# layer (common/parallel.h) and the lock-free metrics/tracing fast paths
# (src/obs) through their concurrent paths.
TSAN_TESTS="parallel_test|core_test|similarity_test|obs_test"
cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)" \
  --target parallel_test core_test similarity_test obs_test
ctest --preset tsan -j"$(nproc)" -R "^(${TSAN_TESTS})\$" "$@"

# PRIVREC_OBS=OFF pass: the no-op shells must keep the whole suite green,
# and the compile-out must be real — no registry or tracer machinery may
# survive into the obs library's object code.
cmake --preset no-obs
cmake --build --preset no-obs -j"$(nproc)"
ctest --preset no-obs -j"$(nproc)" "$@"
if nm --defined-only build-noobs/src/obs/libprivrec_obs.a 2>/dev/null \
    | grep -E "MetricsRegistry|Tracer|SpanScope" ; then
  echo "FAIL: PRIVREC_OBS=OFF build still defines obs runtime symbols" >&2
  exit 1
fi
echo "no-obs symbol check: clean (metrics registry and tracer compiled out)"
