#!/usr/bin/env bash
# Kernel-layer performance gate: the dispatched SIMD paths must actually
# pay for their existence, and forcing them off must actually force them
# off.
#
#   1. BM_KernelAccumulateSimd    >= KERNEL_SIMD_MIN_SPEEDUP x scalar
#      BM_KernelAccumulateF32Simd >= KERNEL_SIMD_MIN_SPEEDUP x scalar
#      (default 2.0) — asserted only when the binary reports
#      kernel_dispatch=avx2 in its benchmark context; on a host that
#      resolves to scalar there is no SIMD path to gate and the ratio
#      checks are skipped (the bit-identity tests still cover it).
#   2. BM_KernelSelectTopN (dense nth_element/heap kernel) must not be
#      slower than the materialize-pairs partial_sort baseline it
#      replaced (KERNEL_SELECT_MIN_RATIO, default 1.0).
#   3. PRIVREC_NO_SIMD=1 must pin dispatch to scalar (checked via the
#      benchmark context) and kernels_test must stay green under it.
#
# Methodology matches ci/obs_overhead.sh gate 2: both sides of every
# ratio live in the same binary, run in one process with randomly
# interleaved repetitions, and the min over repetitions is compared —
# scheduler noise is strictly additive, so the minimum is the cleanest
# estimate of the true cost. The same invocation (plus --benchmark_out)
# is what produces the committed BENCH_kernels.json.
#
# Usage: ci/perf_gate.sh [repetitions]
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-5}"
SIMD_MIN="${KERNEL_SIMD_MIN_SPEEDUP:-2.0}"
SELECT_MIN="${KERNEL_SELECT_MIN_RATIO:-1.0}"

cmake --preset default >/dev/null
cmake --build --preset default -j"$(nproc)" --target bench_perf_micro kernels_test

run_kernels() {  # run_kernels  (env decides dispatch)  -> JSON on stdout
  build/bench/bench_perf_micro --threads=1 \
    '--benchmark_filter=^BM_Kernel' \
    "--benchmark_repetitions=${REPS}" \
    --benchmark_enable_random_interleaving=true \
    --benchmark_format=json 2>/dev/null
}

gate() {  # gate <json file> <simd_min> <select_min>
  python3 - "$1" "$2" "$3" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
simd_min, select_min = float(sys.argv[2]), float(sys.argv[3])
dispatch = doc["context"].get("kernel_dispatch", "unknown")
best = {}
for b in doc["benchmarks"]:
    if b.get("run_type") == "iteration":
        name, t = b["run_name"], b["real_time"]
        best[name] = min(best.get(name, t), t)
print(f"kernel_dispatch: {dispatch}")
fail = False
def ratio(label, num, den, floor):
    global fail
    r = best[num] / best[den]
    ok = r >= floor
    print(f"[{label}] {num}: {best[num]:.0f} ns  {den}: {best[den]:.0f} ns"
          f"  ratio {r:.2f}x (floor {floor}x) {'OK' if ok else 'FAIL'}")
    if not ok:
        fail = True
if dispatch == "avx2":
    ratio("accumulate f64", "BM_KernelAccumulateScalar",
          "BM_KernelAccumulateSimd", simd_min)
    ratio("accumulate f32", "BM_KernelAccumulateF32Scalar",
          "BM_KernelAccumulateF32Simd", simd_min)
else:
    print("skip: SIMD speedup floors need kernel_dispatch=avx2 "
          f"(host resolved {dispatch})")
ratio("select top-n", "BM_KernelSelectTopNBaseline",
      "BM_KernelSelectTopN", select_min)
sys.exit(1 if fail else 0)
EOF
}

SCRATCH=perf-gate-scratch
rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"

# Gates 1 + 2: dispatched build at the host's resolved level.
run_kernels > "$SCRATCH/kernels.json"
gate "$SCRATCH/kernels.json" "$SIMD_MIN" "$SELECT_MIN"

# Gate 3: PRIVREC_NO_SIMD pins dispatch to scalar — the context string is
# the same one statusz serves — and the bit-identity suite holds there.
PRIVREC_NO_SIMD=1 run_kernels > "$SCRATCH/kernels_noswitch.json"
python3 - "$SCRATCH/kernels_noswitch.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
dispatch = doc["context"].get("kernel_dispatch", "unknown")
if dispatch != "scalar":
    print(f"FAIL: PRIVREC_NO_SIMD=1 still reports kernel_dispatch={dispatch}",
          file=sys.stderr)
    sys.exit(1)
print("PRIVREC_NO_SIMD=1: kernel_dispatch pinned to scalar")
EOF
PRIVREC_NO_SIMD=1 build/tests/kernels_test > "$SCRATCH/kernels_test.log" 2>&1 \
  || { cat "$SCRATCH/kernels_test.log"; exit 1; }
echo "PRIVREC_NO_SIMD=1: kernels_test green on the forced-scalar path"

rm -rf "$SCRATCH"
echo "kernel perf gate: dispatch verified, SIMD floors met"
