#!/usr/bin/env bash
# Crash-recovery gate for the streaming pipeline (src/stream): kill the
# long-running service at every stage of its journal-before-apply /
# journal-before-noise protocol, restart it with the same flags, and
# require that the resumed run converges to the SAME terminal graph state
# an uninterrupted run reaches — bit-identical fingerprint, delta counts,
# modularity and cluster count — with a ledger that audits clean (no ε
# double-spend) after every kill/restart cycle.
#
# Publish counts and cumulative ε are deliberately NOT compared:
# publication is at-least-once (a crash between the ledger commit and the
# WAL publish mark re-arms the trigger), so an extra accounted charge is
# legal; an unaccounted one is what the audit gate catches.
#
# Usage: ci/stream_soak.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SVC="$BUILD/examples/streaming_service"
if [[ ! -x "$SVC" ]]; then
  echo "FAIL: $SVC not built (run cmake --build $BUILD first)" >&2
  exit 1
fi
ITERS="${PRIVREC_STREAM_ITERS:-80}"
SCRATCH=stream-soak-scratch
rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"

run_svc() {  # run_svc <dir> [extra args...]
  local dir="$1"
  shift
  "$SVC" --dir="$dir" --iters="$ITERS" "$@"
}

# The comparable core of the "state:" line: everything up to the
# informational publishes/eps_spent fields.
state_core() {  # state_core <log>
  sed -n 's/^state: \(.*\) publishes=.*$/\1/p' "$1"
}

# Reference: an uninterrupted run, plus a second clean run that must
# reproduce the full state line verbatim (schedule determinism).
run_svc "$SCRATCH/ref" > "$SCRATCH/ref.log"
run_svc "$SCRATCH/ref2" > "$SCRATCH/ref2.log"
REF_STATE="$(grep '^state: ' "$SCRATCH/ref.log")"
REF_CORE="$(state_core "$SCRATCH/ref.log")"
if [[ -z "$REF_CORE" ]]; then
  echo "FAIL: reference run printed no state line" >&2
  exit 1
fi
if [[ "$(grep '^state: ' "$SCRATCH/ref2.log")" != "$REF_STATE" ]]; then
  echo "FAIL: two clean runs disagree on the state line" >&2
  diff <(echo "$REF_STATE") <(grep '^state: ' "$SCRATCH/ref2.log") >&2 || true
  exit 1
fi
run_svc "$SCRATCH/ref" --audit-ledger > /dev/null
echo "reference: $REF_STATE"

# The crash matrix: one induced failure per journaling stage — WAL append
# (clean error and torn frame), WAL fsync, ledger intent/commit append
# (clean and torn), the post-journal pre-release window, and the artifact
# temp-write / rename / reopen stages of a publish. Each case runs with
# the fault armed (exit 2 = the induced crash; exit 0 = the fault landed
# in a tolerated path, e.g. a swap that rolled back), then reruns clean
# and must resume to the reference state with a clean audit.
FAULTS=(
  "stream.wal.append=io_error@7"
  "stream.wal.append=short_read@9"
  "stream.wal.sync=io_error@5"
  "ledger.append=io_error@2"
  "ledger.append=short_read@3"
  "dynamic.after_journal=io_error@1"
  "artifact.write=io_error@2"
  "artifact.rename=io_error@2"
  "artifact.open=io_error@2"
)
case_no=0
for fault in "${FAULTS[@]}"; do
  case_no=$((case_no + 1))
  dir="$SCRATCH/case$case_no"
  rc=0
  run_svc "$dir" --faults="$fault" > "$dir.crash.log" 2>&1 || rc=$?
  if [[ $rc -ne 0 && $rc -ne 2 ]]; then
    echo "FAIL: fault '$fault' exited $rc (want 0 or 2)" >&2
    cat "$dir.crash.log" >&2
    exit 1
  fi
  run_svc "$dir" > "$dir.resume.log"
  core="$(state_core "$dir.resume.log")"
  if [[ "$core" != "$REF_CORE" ]]; then
    echo "FAIL: fault '$fault' resumed to a different state" >&2
    diff <(echo "$REF_CORE") <(echo "$core") >&2 || true
    exit 1
  fi
  run_svc "$dir" --audit-ledger > "$dir.audit.log"
  echo "  case $case_no ($fault): crash rc=$rc, resumed bit-identical," \
       "audit clean"
done

# Double-kill: two different crashes in the SAME journal (ledger intent,
# then a torn WAL frame on the restarted run) must still converge.
dir="$SCRATCH/double"
rc=0
run_svc "$dir" --faults="dynamic.after_journal=io_error@1" \
  > "$dir.crash1.log" 2>&1 || rc=$?
[[ $rc -eq 0 || $rc -eq 2 ]]
rc=0
run_svc "$dir" --faults="stream.wal.append=short_read@20" \
  > "$dir.crash2.log" 2>&1 || rc=$?
[[ $rc -eq 0 || $rc -eq 2 ]]
run_svc "$dir" > "$dir.resume.log"
if [[ "$(state_core "$dir.resume.log")" != "$REF_CORE" ]]; then
  echo "FAIL: double-crash run resumed to a different state" >&2
  exit 1
fi
run_svc "$dir" --audit-ledger > /dev/null
echo "  double-kill: two crash/restart cycles, resumed bit-identical," \
     "audit clean"

rm -rf "$SCRATCH"
echo "stream soak: ${#FAULTS[@]} crash cases + double-kill all resume to" \
     "the reference fingerprint with clean ε audits"
