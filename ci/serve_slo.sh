#!/usr/bin/env bash
# Rated-load SLO gate for the serving runtime: drives bench_serve_load's
# open-loop harness (600 rps rated load, 4x bursts, swap storm with
# corrupt artifacts and armed faults) and fails the build when the run
# breaches its latency/shed/rollback budgets or produces a single
# correctness violation (a kOk response differing from the pinned
# epoch's offline answer).
#
# Four gates:
#   1. Determinism — the same seed must produce a bit-identical report
#      (virtual-time mode; only the wall-clock swap pauses are exempt).
#   2. SLO pass — the rated load meets its budgets (exit 0).
#   3. SLO enforcement — an absurd budget must fail the run (exit 2, not
#      a crash and not a silent pass).
#   4. TSan wall mode — the same schedule on 4 real request threads plus
#      a live swap-storm thread, under ThreadSanitizer.
#
# Usage: ci/serve_slo.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SCRATCH=serve-slo-scratch
rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"

cmake --preset default
cmake --build --preset default -j"$(nproc)"
BENCH=build/bench/bench_serve_load

# Gate 0: the tier-1 fast lane. Every test is labeled (tier1 everywhere,
# plus slow/chaos on the soaks) with a per-test TIMEOUT, so a hung swap
# or a deadlocked admission queue fails the lane instead of wedging CI.
ctest --preset default -L tier1 -j"$(nproc)" --output-on-failure
echo "tier1 lane: labeled test suite green within per-test timeouts"

# The rated-load invocation: 600 rps against ~890 rps of slot capacity,
# so steady state is comfortable and only the 4x burst windows shed.
run_rated() {  # run_rated <tag> <extra args...>
  local tag="$1"
  shift
  "$BENCH" --scratch-dir="$SCRATCH/work_$tag" \
    --load-rps=600 --load-duration-ms=2000 --load-seed=7 \
    --load-swap-storm --load-swap-period-ms=250 \
    --telemetry-jsonl="$SCRATCH/events_$tag.jsonl" \
    --load-report="$SCRATCH/report_$tag.json" "$@" \
    > "$SCRATCH/log_$tag.txt" 2>&1
}

# Gate 1: determinism. Two fresh processes, same seed: every scheduled
# arrival, shed decision, retry hint and histogram bucket must match bit
# for bit. Only results.swap.pause_ms (wall-clock per Activate) is
# blanked before comparing — everything else in the report is covered.
run_rated det1
run_rated det2
normalize() { sed 's/"pause_ms": {[^}]*}/"pause_ms": {}/' "$1"; }
if ! diff <(normalize "$SCRATCH/report_det1.json") \
          <(normalize "$SCRATCH/report_det2.json") ; then
  echo "FAIL: same seed produced different load reports" >&2
  exit 1
fi
# The telemetry wide-event stream is part of the determinism contract:
# sampling is keyed off request ids, time is virtual, so the JSONL file
# must match byte for byte — no normalization allowed.
cmp "$SCRATCH/events_det1.jsonl" "$SCRATCH/events_det2.jsonl"
echo "serve load determinism: two runs bit-identical modulo swap pauses"

# Gate 2: the rated load passes its SLO budgets (measured ~5.4ms p50,
# ~15.4ms p99, 16% shed during bursts, 3/7 swaps rejected by design —
# budgets leave ~2x headroom so scheduler noise cannot flake the gate).
run_rated slo \
  --load-slo-p50-ms=12 --load-slo-p99-ms=30 --load-slo-p999-ms=40 \
  --load-slo-shed-rate=0.30 --load-slo-rollback-rate=0.60
grep -q '"pass": true' "$SCRATCH/report_slo.json"
echo "serve SLO gate: rated load within budgets"

# Gate 3: enforcement is real — an absurd p99 budget must exit 2.
status=0
run_rated breach --load-slo-p99-ms=0.001 || status=$?
if [ "$status" -ne 2 ]; then
  echo "FAIL: SLO breach exited $status, expected 2" >&2
  exit 1
fi
grep -q 'SLO FAIL' "$SCRATCH/log_breach.txt"
echo "serve SLO enforcement: breached budget exits 2 with diagnostics"

# Gate 4: wall-clock mode under ThreadSanitizer — 4 request threads and
# the storm thread hammer the real admission queue and epoch pinning.
# Latency budgets stay off (real scheduling jitter); the zero-tolerance
# lines (no correctness violations, ok > 0) still apply.
cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)" --target bench_serve_load
build-tsan/bench/bench_serve_load --scratch-dir="$SCRATCH/work_tsan" \
  --load-rps=300 --load-duration-ms=2000 --load-seed=7 \
  --load-swap-storm --load-swap-period-ms=250 \
  --load-wall --load-threads=4 \
  --load-report="$SCRATCH/report_tsan.json" \
  > "$SCRATCH/log_tsan.txt" 2>&1
grep -q '"pass": true' "$SCRATCH/report_tsan.json"
echo "serve wall mode: 4 threads + swap storm clean under TSan"

# Gate 5: the same rated load served from sharded .pvram artifacts over
# the mmap zero-copy path (--load-shards routes every generation — good,
# bit-flipped and truncated — through the manifest+shards layout). The
# swap storm now exercises sharded admission, corrupt-manifest rejection
# and epoch rollback; determinism and budgets are the monolithic gate's.
run_rated shards --load-shards=3 \
  --load-slo-p50-ms=12 --load-slo-p99-ms=30 --load-slo-p999-ms=40 \
  --load-slo-shed-rate=0.30 --load-slo-rollback-rate=0.60
grep -q '"pass": true' "$SCRATCH/report_shards.json"
run_rated shards2 --load-shards=3 \
  --load-slo-p50-ms=12 --load-slo-p99-ms=30 --load-slo-p999-ms=40 \
  --load-slo-shed-rate=0.30 --load-slo-rollback-rate=0.60
if ! diff <(normalize "$SCRATCH/report_shards.json") \
          <(normalize "$SCRATCH/report_shards2.json") ; then
  echo "FAIL: sharded load run not deterministic" >&2
  exit 1
fi
echo "serve sharded gate: mmap-served load within budgets, deterministic"

# Gate 6: SLO burn-rate alerting. Baseline first: a per-window p99
# budget with ~2x headroom over the measured window quantiles must stay
# silent across the whole run — zero alerts on a healthy system is as
# much a part of the contract as firing on a breach.
run_rated burn_ok --telemetry-window-p99-ms=40 \
  --telemetry-burn-lookback=8 --telemetry-burn-threshold=0.25
python3 - "$SCRATCH/report_burn_ok.json" <<'EOF'
import json, sys
tel = json.load(open(sys.argv[1]))["telemetry"]
assert tel is not None, "telemetry block missing from report"
assert tel["burn_alerts"] == 0, f"baseline fired {tel['burn_alerts']} burn alerts"
assert tel["recorded"] > 0 and tel["windows"]["windows"], "no windows recorded"
EOF

# Then enforcement: an absurd per-window p99 budget must breach every
# window, push the burn rate through the threshold, and interleave alert
# lines into the JSONL stream — without failing the run (burn alerts are
# a paging signal, not the SLO verdict; exit codes stay with --load-slo-*).
run_rated burn_hot --telemetry-window-p99-ms=0.001 \
  --telemetry-burn-lookback=8 --telemetry-burn-threshold=0.25
python3 - "$SCRATCH/report_burn_hot.json" <<'EOF'
import json, sys
tel = json.load(open(sys.argv[1]))["telemetry"]
assert tel["burn_alerts"] > 0, "tight window budget raised no burn alerts"
assert tel["burn_rate"] > 0.25, f"burn rate {tel['burn_rate']} not above threshold"
breached = [w for w in tel["windows"]["windows"] if w.get("breach")]
assert breached, "no window marked as breaching"
EOF
grep -q '"type": "alert"' "$SCRATCH/events_burn_hot.jsonl"
echo "serve burn-rate gate: silent on baseline, alerts on injected breach"

rm -rf "$SCRATCH"
echo "serve_slo: all gates green"
