#!/usr/bin/env bash
# Asserts that the always-on observability layer costs less than
# OBS_OVERHEAD_PCT (default 3%) on the reconstruction hot loop
# (BM_ClusterRecommendPerUser), by comparing the default build against a
# PRIVREC_OBS=OFF build of the same revision.
#
# Instrumentation sits at record/release granularity — per chunk, per
# cluster, per trial — never inside per-element loops, so the real cost is
# a handful of relaxed atomic adds per recommendation batch. The median of
# several repetitions keeps the check stable on noisy single-core CI
# hosts; widen the threshold with OBS_OVERHEAD_PCT if a box is too jittery
# to resolve 3%.
#
# Usage: ci/obs_overhead.sh [repetitions]
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-7}"
THRESHOLD="${OBS_OVERHEAD_PCT:-3}"
BENCH_FILTER="BM_ClusterRecommendPerUser"

cmake --preset default >/dev/null
cmake --build --preset default -j"$(nproc)" --target bench_perf_micro
cmake --preset no-obs >/dev/null
cmake --build --preset no-obs -j"$(nproc)" --target bench_perf_micro

run_median() {
  "$1" --threads=1 \
    "--benchmark_filter=^${BENCH_FILTER}\$" \
    "--benchmark_repetitions=${REPS}" \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json 2>/dev/null |
    python3 -c '
import json, sys
doc = json.load(sys.stdin)
for b in doc["benchmarks"]:
    if b.get("aggregate_name") == "median":
        print(b["real_time"])
        break
'
}

ON_NS="$(run_median build/bench/bench_perf_micro)"
OFF_NS="$(run_median build-noobs/bench/bench_perf_micro)"

python3 - "$ON_NS" "$OFF_NS" "$THRESHOLD" <<'EOF'
import sys
on, off, threshold = float(sys.argv[1]), float(sys.argv[2]), float(sys.argv[3])
overhead = (on - off) / off * 100.0
print(f"obs on:  {on:.0f} ns/iter")
print(f"obs off: {off:.0f} ns/iter")
print(f"overhead: {overhead:+.2f}% (threshold {threshold}%)")
if overhead > threshold:
    print("FAIL: observability overhead exceeds threshold", file=sys.stderr)
    sys.exit(1)
print("OK")
EOF
