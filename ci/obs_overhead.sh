#!/usr/bin/env bash
# Asserts that observability stays off the hot paths:
#
#   1. The always-on obs layer (metrics/tracing) costs less than
#      OBS_OVERHEAD_PCT (default 3%) on the reconstruction hot loop
#      (BM_ClusterRecommendPerUser), comparing the default build against
#      a PRIVREC_OBS=OFF build of the same revision.
#   2. An attached ServeTelemetry sink costs less than the same threshold
#      on the serve hot path, comparing BM_ServeHandleTelemetry against
#      BM_ServeHandle inside the default build (the sink folds one wide
#      event per request under a single mutex — never per user or per
#      item).
#   3. The PRIVREC_OBS=OFF build still runs the full load harness with
#      telemetry flags: wide events, rolling windows and the JSONL stream
#      are value types that must keep working with the registry compiled
#      out.
#
# Instrumentation sits at record/release granularity — per chunk, per
# cluster, per trial, per request — never inside per-element loops. The
# median of several repetitions keeps the check stable on noisy
# single-core CI hosts; widen the threshold with OBS_OVERHEAD_PCT if a
# box is too jittery to resolve 3%.
#
# Usage: ci/obs_overhead.sh [repetitions]
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-7}"
THRESHOLD="${OBS_OVERHEAD_PCT:-3}"

cmake --preset default >/dev/null
cmake --build --preset default -j"$(nproc)" --target bench_perf_micro
cmake --preset no-obs >/dev/null
cmake --build --preset no-obs -j"$(nproc)" --target bench_perf_micro bench_serve_load

run_median() {  # run_median <binary> <benchmark name>
  "$1" --threads=1 \
    "--benchmark_filter=^$2\$" \
    "--benchmark_repetitions=${REPS}" \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json 2>/dev/null |
    python3 -c '
import json, sys
doc = json.load(sys.stdin)
for b in doc["benchmarks"]:
    if b.get("aggregate_name") == "median":
        print(b["real_time"])
        break
'
}

compare() {  # compare <label> <on_ns> <off_ns>
  python3 - "$1" "$2" "$3" "$THRESHOLD" <<'EOF'
import sys
label, on, off, threshold = sys.argv[1], float(sys.argv[2]), float(sys.argv[3]), float(sys.argv[4])
overhead = (on - off) / off * 100.0
print(f"[{label}] on:  {on:.0f} ns/iter")
print(f"[{label}] off: {off:.0f} ns/iter")
print(f"[{label}] overhead: {overhead:+.2f}% (threshold {threshold}%)")
if overhead > threshold:
    print(f"FAIL: {label} overhead exceeds threshold", file=sys.stderr)
    sys.exit(1)
print("OK")
EOF
}

# Gate 1: obs layer vs compiled-out, reconstruction hot loop.
ON_NS="$(run_median build/bench/bench_perf_micro BM_ClusterRecommendPerUser)"
OFF_NS="$(run_median build-noobs/bench/bench_perf_micro BM_ClusterRecommendPerUser)"
compare "obs layer" "$ON_NS" "$OFF_NS"

# Gate 2: telemetry sink attached vs detached, serve hot path. Both
# variants live in the same binary, so one process runs them with
# randomly interleaved repetitions — frequency/thermal drift between two
# sequential invocations would otherwise dwarf the effect being gated —
# and the min over repetitions is compared: scheduler noise is strictly
# additive, so the minimum is the cleanest estimate of the true cost.
read -r BARE_NS TEL_NS < <(
  build/bench/bench_perf_micro --threads=1 \
    '--benchmark_filter=^BM_ServeHandle(Telemetry)?$' \
    "--benchmark_repetitions=${REPS}" \
    --benchmark_enable_random_interleaving=true \
    --benchmark_format=json 2>/dev/null |
    python3 -c '
import json, sys
doc = json.load(sys.stdin)
best = {}
for b in doc["benchmarks"]:
    if b.get("run_type") == "iteration":
        name, t = b["run_name"], b["real_time"]
        best[name] = min(best.get(name, t), t)
print(best["BM_ServeHandle"], best["BM_ServeHandleTelemetry"])
'
)
compare "serve telemetry" "$TEL_NS" "$BARE_NS"

# Gate 3: the no-obs build serves the telemetry surface end to end.
SCRATCH=obs-overhead-scratch
rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"
build-noobs/bench/bench_serve_load --scratch-dir="$SCRATCH/work" \
  --load-rps=400 --load-duration-ms=500 --load-seed=7 \
  --telemetry-jsonl="$SCRATCH/events.jsonl" \
  --statusz-out="$SCRATCH/statusz.txt" \
  --load-report="$SCRATCH/report.json" > "$SCRATCH/log.txt" 2>&1
grep -q '"telemetry": {' "$SCRATCH/report.json"
grep -q 'privrec serve statusz' "$SCRATCH/statusz.txt"
rm -rf "$SCRATCH"
echo "no-obs serve harness: telemetry/statusz surface intact with obs compiled out"
