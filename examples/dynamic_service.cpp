// A recommendation service over time: the dynamic-graph extension in
// example form.
//
// Simulates a service whose preference data grows week by week. The
// operator committed to ONE total privacy guarantee (ε_total) for the
// whole quarter, so every weekly re-release must be paid for by
// sequential composition — the DynamicRecommenderSession handles the
// accounting and refuses to release once the budget is gone.
//
//   ./dynamic_service [--weeks=8] [--total_epsilon=1.0]
//                     [--allocation=uniform|geometric]

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "core/dynamic_recommender.h"
#include "data/synthetic.h"
#include "eval/exact_reference.h"
#include "similarity/common_neighbors.h"
#include "similarity/workload.h"

int main(int argc, char** argv) {
  using namespace privrec;
  FlagParser flags(argc, argv);
  const int64_t weeks = flags.GetInt("weeks", 8);
  const double total_epsilon = flags.GetDouble("total_epsilon", 1.0);
  const std::string allocation =
      flags.GetString("allocation", "uniform");
  if (!flags.Validate()) return 1;

  data::Dataset full = data::MakeTinyDataset(400, 500, 77);
  auto snapshots =
      data::GrowingPreferenceSnapshots(full.preferences, weeks, 78);
  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::Compute(
          full.social, similarity::CommonNeighbors());
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < full.social.num_nodes(); u += 4) {
    users.push_back(u);
  }

  core::DynamicRecommenderOptions opt;
  opt.total_epsilon = total_epsilon;
  opt.planned_snapshots = weeks;
  opt.allocation = allocation == "geometric"
                       ? core::BudgetAllocation::kGeometric
                       : core::BudgetAllocation::kUniform;
  opt.louvain.restarts = 5;
  opt.seed = 79;
  core::DynamicRecommenderSession session(opt);

  std::printf("quarterly guarantee: epsilon_total = %.2f, %s allocation, "
              "%lld weekly releases planned\n\n",
              total_epsilon, allocation.c_str(),
              static_cast<long long>(weeks));
  std::printf("%-6s %-10s %-10s %-12s %-10s %s\n", "week", "edges",
              "eps_t", "cumulative", "clusters", "NDCG@20");
  for (int64_t week = 0; week <= weeks; ++week) {  // one past the budget
    const graph::PreferenceGraph& prefs =
        snapshots[static_cast<size_t>(std::min(week, weeks - 1))];
    core::RecommenderContext context{&full.social, &prefs, &workload};
    auto release = session.ProcessSnapshot(context, users, 20);
    if (!release.ok()) {
      std::printf("%-6lld %s\n", static_cast<long long>(week),
                  release.status().ToString().c_str());
      break;
    }
    eval::ExactReference reference =
        eval::ExactReference::Compute(context, users, 20);
    std::printf("%-6lld %-10lld %-10.3f %-12.3f %-10lld %.3f\n",
                static_cast<long long>(week),
                static_cast<long long>(prefs.num_edges()),
                release->epsilon_spent, release->cumulative_epsilon,
                static_cast<long long>(release->num_clusters),
                reference.MeanNdcg(release->lists));
  }
  std::printf(
      "\nwith uniform allocation the session hard-stops after the planned "
      "releases; try --allocation=geometric for a session that never "
      "exhausts but decays instead.\n");
  return 0;
}
