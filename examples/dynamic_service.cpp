// A recommendation service over time: the dynamic-graph extension in
// example form.
//
// Simulates a service whose preference data grows week by week. The
// operator committed to ONE total privacy guarantee (ε_total) for the
// whole quarter, so every weekly re-release must be paid for by
// sequential composition — the DynamicRecommenderSession handles the
// accounting and refuses to release once the budget is gone.
//
// With --ledger=PATH the session journals every charge to a crash-safe
// write-ahead ledger: kill the process mid-quarter, rerun with the same
// flags, and it resumes at the correct cumulative ε without double-
// spending (a paid-but-unreleased week is re-derived from the same noise
// stream, not re-randomized). --faults arms the deterministic fault
// harness (see common/fault_injection.h) to rehearse exactly that:
//
//   ./dynamic_service [--weeks=8] [--total_epsilon=1.0]
//                     [--allocation=uniform|geometric]
//                     [--ledger=/tmp/quarter.ledger]
//                     [--faults='dynamic.after_journal=io_error@3']
//                     [--serve_stale]
//                     [--artifact-dir=/tmp/quarter_artifacts]
//
// --artifact-dir routes every weekly release through the two-phase
// pipeline: each snapshot is built into <dir>/snapshot_<t>.pvra and served
// from the saved artifact (bit-identical to the in-process path). The
// .pvra files are the quarter's audit trail — each records its ε_t, seed,
// and ledger id in its provenance section.
//
// With --artifact-dir the example also runs the resilient serving runtime
// (serve::ServeRuntime): every saved snapshot is HOT-RELOADED into a live
// runtime — gates, self-check probe, epoch publication — and a request
// batch is answered from the new epoch, so the printout shows the swap
// protocol working week over week. The --serve-* flags size the runtime:
//
//   --serve-deadline-ms --serve-queue-depth --serve-max-concurrency
//   --serve-breaker-failures --serve-breaker-cooldown-ms
//   --serve-reload-period (reload every Nth week; default every week)
//
// The runtime also carries the serving-telemetry sink: every request the
// weekly batches issue lands in the wide-event stream and the rolling SLO
// windows. --statusz-every=N dumps the live statusz page every N weeks
// (to --statusz-out=PATH, or stderr when unset); --telemetry-jsonl=PATH
// writes the sampled wide-event stream on exit.

#include <cstdio>
#include <string>

#include "common/fault_injection.h"
#include "common/driver_flags.h"
#include "common/experiment_inputs.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "core/dynamic_recommender.h"
#include "data/synthetic.h"
#include "eval/exact_reference.h"
#include "obs/export.h"
#include "serve/runtime.h"
#include "serve/statusz.h"
#include "serve/telemetry.h"

int main(int argc, char** argv) {
  using namespace privrec;
  FlagParser flags(argc, argv);
  ObsSession obs_session = ApplyDriverFlags(flags);
  const int64_t weeks = flags.GetInt("weeks", 8);
  const double total_epsilon = flags.GetDouble("total_epsilon", 1.0);
  const std::string allocation =
      flags.GetString("allocation", "uniform");
  const std::string ledger_path = flags.GetString("ledger", "");
  const std::string faults = flags.GetString("faults", "");
  const bool serve_stale = flags.GetBool("serve_stale", false);
  const std::string artifact_dir = flags.GetString("artifact-dir", "");
  const ServeFlagSettings serve_settings = ApplyServeFlags(flags);
  const TelemetryFlagSettings tel_settings = ApplyTelemetryFlags(flags);
  if (!flags.Validate()) return 1;

  // The live runtime the quarter's snapshots are hot-swapped into. Weekly
  // ε legitimately varies under geometric allocation and the preference
  // graph grows every week, so this stream adopts each artifact's
  // provenance ε and does not pin the dataset fingerprint (a static-
  // dataset deployment would leave pin_graph_hash on).
  serve::ServeTelemetryOptions tel_options;
  tel_options.sample_every = tel_settings.sample_every;
  tel_options.slow_ms = tel_settings.slow_ms;
  tel_options.window_ms = tel_settings.window_ms;
  tel_options.budget.p99_ms = tel_settings.window_p99_ms;
  tel_options.budget.max_shed_rate = tel_settings.window_shed_rate;
  tel_options.budget.lookback = tel_settings.burn_lookback;
  tel_options.budget.burn_threshold = tel_settings.burn_threshold;
  serve::ServeTelemetry telemetry(tel_options);
  serve::ServeRuntimeOptions serve_options;
  serve_options.swap.adopt_artifact_epsilon = true;
  serve_options.swap.pin_graph_hash = false;
  serve_options.admission.queue_depth = serve_settings.queue_depth;
  serve_options.admission.max_concurrency = serve_settings.max_concurrency;
  serve_options.breaker.failure_threshold = serve_settings.breaker_failures;
  serve_options.breaker.cooldown_ms = serve_settings.breaker_cooldown_ms;
  serve_options.batch.window_ms = serve_settings.batch_window_ms;
  serve_options.batch.max_requests = serve_settings.batch_max_requests;
  serve_options.batch.max_users = serve_settings.batch_max_users;
  serve_options.telemetry = &telemetry;
  serve::ServeRuntime runtime(serve_options);
  // Dumps the live statusz page: to --statusz-out (overwritten each time,
  // like a real /statusz endpoint) or stderr.
  auto dump_statusz = [&] {
    const std::string page = serve::StatuszText(runtime.Introspect());
    if (tel_settings.statusz_out.empty()) {
      std::fprintf(stderr, "%s", page.c_str());
      return;
    }
    std::string error;
    if (!obs::WriteTextFile(tel_settings.statusz_out, page, &error)) {
      std::fprintf(stderr, "statusz write failed: %s\n", error.c_str());
    }
  };
  const int64_t reload_every =
      serve_settings.reload_period > 0 ? serve_settings.reload_period : 1;

  // PRIVREC_FAULTS from the environment composes with --faults; the
  // explicit flag wins for points named in both.
  (void)fault::FaultInjector::Instance().ArmFromEnv();
  if (!faults.empty()) {
    Status armed = fault::FaultInjector::Instance().ArmFromSpec(faults);
    if (!armed.ok()) {
      std::fprintf(stderr, "--faults: %s\n", armed.ToString().c_str());
      return 1;
    }
  }

  // Shared driver prologue; the session re-clusters per snapshot itself.
  ExperimentInputsOptions inputs_options;
  inputs_options.tiny_users = 400;
  inputs_options.tiny_items = 500;
  inputs_options.tiny_seed = 77;
  inputs_options.run_louvain = false;
  auto inputs = LoadExperimentInputs(inputs_options);
  if (!inputs.ok()) {
    std::fprintf(stderr, "%s\n", inputs.status().ToString().c_str());
    return 1;
  }
  const data::Dataset& full = inputs->dataset;
  auto snapshots =
      data::GrowingPreferenceSnapshots(full.preferences, weeks, 78);
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < full.social.num_nodes(); u += 4) {
    users.push_back(u);
  }

  core::DynamicRecommenderOptions opt;
  opt.total_epsilon = total_epsilon;
  opt.planned_snapshots = weeks;
  opt.allocation = allocation == "geometric"
                       ? core::BudgetAllocation::kGeometric
                       : core::BudgetAllocation::kUniform;
  opt.louvain.restarts = 5;
  opt.seed = 79;
  opt.ledger_path = ledger_path;
  opt.serve_stale_on_exhaustion = serve_stale;
  opt.artifact_dir = artifact_dir;
  auto session = core::DynamicRecommenderSession::Open(opt);
  if (!session.ok()) {
    std::fprintf(stderr, "cannot open session: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  if (!ledger_path.empty() && session->snapshots_processed() > 0) {
    std::printf("resumed from %s: %lld weeks already released, "
                "epsilon spent %.3f\n",
                ledger_path.c_str(),
                static_cast<long long>(session->snapshots_processed()),
                session->epsilon_spent());
  }

  std::printf("quarterly guarantee: epsilon_total = %.2f, %s allocation, "
              "%lld weekly releases planned\n\n",
              total_epsilon, allocation.c_str(),
              static_cast<long long>(weeks));
  std::printf("%-6s %-10s %-10s %-12s %-10s %-8s %s\n", "week", "edges",
              "eps_t", "cumulative", "clusters", "NDCG@20", "notes");
  for (int64_t week = session->snapshots_processed(); week <= weeks;
       ++week) {  // one past the budget
    const graph::PreferenceGraph& prefs =
        snapshots[static_cast<size_t>(std::min(week, weeks - 1))];
    core::RecommenderContext context{&full.social, &prefs,
                                     &inputs->workload};
    auto release = session->ProcessSnapshot(context, users, 20);
    if (!release.ok()) {
      std::printf("%-6lld %s\n", static_cast<long long>(week),
                  release.status().ToString().c_str());
      if (release.status().code() == StatusCode::kIoError &&
          !ledger_path.empty()) {
        std::printf("\nthe charge is journaled in %s — rerun with the "
                    "same flags to resume without double-spending.\n",
                    ledger_path.c_str());
      }
      break;
    }
    std::string notes;
    if (release->stale) notes = "stale replay";
    if (release->resumed_from_intent) notes = "resumed paid release";
    if (!release->report.Clean()) {
      if (!notes.empty()) notes += "; ";
      notes += release->report.ToString();
    }
    eval::ExactReference reference =
        eval::ExactReference::Compute(context, users, 20);
    std::printf("%-6lld %-10lld %-10.3f %-12.3f %-10lld %-8.3f %s\n",
                static_cast<long long>(week),
                static_cast<long long>(prefs.num_edges()),
                release->epsilon_spent, release->cumulative_epsilon,
                static_cast<long long>(release->num_clusters),
                reference.MeanNdcg(release->lists), notes.c_str());

    // Hot-swap the just-saved snapshot into the live runtime and answer a
    // request batch from the new epoch. A gate or probe failure rolls the
    // swap back and the runtime keeps serving last week's epoch.
    if (!artifact_dir.empty() &&
        release->snapshot_index % reload_every == 0) {
      const std::string snapshot_path =
          artifact_dir + "/snapshot_" +
          std::to_string(release->snapshot_index) + ".pvra";
      Status swapped = runtime.Activate(snapshot_path);
      if (!swapped.ok()) {
        std::printf("       hot swap rolled back: %s (still serving epoch "
                    "%lld)\n",
                    swapped.ToString().c_str(),
                    static_cast<long long>(runtime.swapper().current_epoch()));
      } else {
        serve::ServeRequest request;
        request.users = users;
        request.top_n = 20;
        request.deadline_ms = serve_settings.deadline_ms;
        serve::ServeResponse response = runtime.Handle(request);
        std::printf("       hot swap -> epoch %lld (seed %llu, eps %.3f): "
                    "served %zu users%s\n",
                    static_cast<long long>(response.epoch),
                    static_cast<unsigned long long>(response.artifact_seed),
                    runtime.swapper().Acquire()->epsilon,
                    response.batch.lists.size(),
                    response.degraded_fallback ? " [degraded fallback]"
                                               : "");
      }
    }
    if (tel_settings.statusz_every > 0 &&
        week % tel_settings.statusz_every == 0) {
      dump_statusz();
    }
  }
  if (!artifact_dir.empty()) {
    std::printf("\nserving runtime: %lld swaps, %lld rollbacks, epoch %lld "
                "live%s%s\n",
                static_cast<long long>(runtime.swapper().swaps()),
                static_cast<long long>(runtime.swapper().rollbacks()),
                static_cast<long long>(runtime.swapper().current_epoch()),
                runtime.swapper().rollbacks() > 0 ? "; last error: " : "",
                runtime.swapper().rollbacks() > 0
                    ? runtime.swapper().last_error().c_str()
                    : "");
  }
  std::printf(
      "\nwith uniform allocation the session hard-stops after the planned "
      "releases; try --allocation=geometric for a session that never "
      "exhausts but decays instead, or --serve_stale to replay the last "
      "paid release when the budget runs dry.\n");
  telemetry.Flush(serve::SteadyClock::Instance()->NowMs());
  if (!tel_settings.jsonl.empty()) {
    std::string error;
    if (!obs::WriteTextFile(tel_settings.jsonl, telemetry.EventsJsonl(),
                            &error)) {
      std::fprintf(stderr, "telemetry jsonl write failed: %s\n",
                   error.c_str());
    }
  }
  return 0;
}
