// Quickstart: build a small social + preference graph, cluster the users
// with Louvain, publish a differentially private model artifact, and serve
// top-N recommendations from it.
//
//   ./quickstart [--epsilon=0.5] [--top_n=5]
//
// This walks the full public API surface in ~100 lines: experiment inputs
// (graphs + similarity workload + clustering), the two-phase
// build→save→load→serve pipeline, and the NDCG evaluator. The serve step
// reads ONLY the sanitized artifact — the private preference graph is out
// of reach by construction.

#include <cstdio>

#include "artifact/builder.h"
#include "artifact/model_io.h"
#include "artifact/serving.h"
#include "common/driver_flags.h"
#include "common/experiment_inputs.h"
#include "common/flags.h"
#include "core/exact_recommender.h"
#include "eval/exact_reference.h"

int main(int argc, char** argv) {
  using namespace privrec;
  FlagParser flags(argc, argv);
  ObsSession obs_session = ApplyDriverFlags(flags);
  const double epsilon = flags.GetDouble("epsilon", 0.5);
  const int64_t top_n = flags.GetInt("top_n", 5);
  if (!flags.Validate()) return 1;

  // 1. Inputs: a synthetic community-structured dataset plus the public
  //    precomputations — similarity workload and Louvain clusters (swap in
  //    real TSV files via ExperimentInputsOptions::social_path/prefs_path).
  ExperimentInputsOptions inputs_options;
  inputs_options.tiny_users = 300;
  inputs_options.tiny_items = 400;
  inputs_options.tiny_seed = 42;
  inputs_options.louvain.seed = 7;
  auto inputs = LoadExperimentInputs(inputs_options);
  if (!inputs.ok()) {
    std::fprintf(stderr, "%s\n", inputs.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %lld users, %lld social edges, %lld items, "
              "%lld preference edges\n",
              static_cast<long long>(inputs->dataset.social.num_nodes()),
              static_cast<long long>(inputs->dataset.social.num_edges()),
              static_cast<long long>(
                  inputs->dataset.preferences.num_items()),
              static_cast<long long>(
                  inputs->dataset.preferences.num_edges()));
  std::printf("louvain: %lld clusters, modularity %.3f\n",
              static_cast<long long>(
                  inputs->louvain.partition.num_clusters()),
              inputs->louvain.modularity);

  // 2. BUILD: run Algorithm 1's publication step (the only ε-spending
  //    moment) and freeze it into a .pvra model artifact.
  artifact::ModelArtifactBuilder builder(&inputs->dataset.social,
                                         &inputs->dataset.preferences);
  builder.SetPartition(&inputs->louvain.partition);
  builder.SetWorkload(&inputs->workload);
  artifact::BuildOptions build_options;
  build_options.epsilon = epsilon;
  build_options.seed = 1;
  build_options.include_reference_sections = false;
  auto model = builder.Build(build_options);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  const std::string artifact_path = "/tmp/privrec_quickstart.pvra";
  Status saved = serving::SaveArtifact(*model, artifact_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("built + saved model artifact: %s\n", artifact_path.c_str());

  // 3. SERVE: load the artifact back and reconstruct recommendations from
  //    the sanitized release alone. Serving is post-processing — rerun it
  //    as often as you like at zero additional privacy cost.
  auto engine = serving::ServingEngine::Load(artifact_path);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  serving::ServeSpec spec;
  spec.mechanism = "Cluster";
  spec.epsilon = epsilon;
  spec.expected_graph_hash = builder.graph_hash();
  auto server = serving::MakeServeRecommender(&*engine, spec);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }

  // 4. Compare private (served) vs non-private lists for one user.
  core::RecommenderContext context = inputs->Context();
  core::ExactRecommender exact_rec(context);
  const graph::NodeId user = 17;
  core::RecommendationList private_list =
      (*server)->Recommend({user}, top_n).lists[0];
  core::RecommendationList exact_list = exact_rec.RecommendOne(user, top_n);
  std::printf("\nuser %lld, epsilon = %.2f\n",
              static_cast<long long>(user), epsilon);
  std::printf("%-6s %-18s %-18s\n", "rank", "exact item(util)",
              "served item(util)");
  for (int64_t k = 0; k < top_n; ++k) {
    char exact_cell[32] = "-";
    char private_cell[32] = "-";
    if (k < static_cast<int64_t>(exact_list.size())) {
      std::snprintf(exact_cell, sizeof(exact_cell), "%lld (%.2f)",
                    static_cast<long long>(exact_list[k].item),
                    exact_list[k].utility);
    }
    if (k < static_cast<int64_t>(private_list.size())) {
      std::snprintf(private_cell, sizeof(private_cell), "%lld (%.2f)",
                    static_cast<long long>(private_list[k].item),
                    private_list[k].utility);
    }
    std::printf("%-6lld %-18s %-18s\n", static_cast<long long>(k + 1),
                exact_cell, private_cell);
  }

  // 5. Accuracy across all users (Equation 2), served from the artifact.
  std::vector<graph::NodeId> users = inputs->AllUsers();
  eval::ExactReference reference =
      eval::ExactReference::Compute(context, users, top_n);
  double ndcg =
      reference.MeanNdcg((*server)->Recommend(users, top_n).lists);
  std::printf("\nNDCG@%lld across %zu users (served): %.3f\n",
              static_cast<long long>(top_n), users.size(), ndcg);
  return 0;
}
