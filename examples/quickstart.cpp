// Quickstart: build a small social + preference graph, cluster the users
// with Louvain, and produce differentially private top-N recommendations.
//
//   ./quickstart [--epsilon=0.5] [--top_n=5]
//
// This walks the full public API surface in ~80 lines: graphs, similarity
// workloads, community detection, the private recommender and the NDCG
// evaluator.

#include <cstdio>

#include "common/driver_flags.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "core/exact_recommender.h"
#include "data/synthetic.h"
#include "eval/exact_reference.h"
#include "similarity/common_neighbors.h"
#include "similarity/workload.h"

int main(int argc, char** argv) {
  using namespace privrec;
  FlagParser flags(argc, argv);
  ObsSession obs_session = ApplyDriverFlags(flags);
  const double epsilon = flags.GetDouble("epsilon", 0.5);
  const int64_t top_n = flags.GetInt("top_n", 5);
  if (!flags.Validate()) return 1;

  // 1. Data: a synthetic community-structured dataset (swap in
  //    data::LoadHetRecLastFm(dir) if you have the real files).
  data::Dataset dataset = data::MakeTinyDataset(/*num_users=*/300,
                                                /*num_items=*/400,
                                                /*seed=*/42);
  std::printf("dataset: %lld users, %lld social edges, %lld items, "
              "%lld preference edges\n",
              static_cast<long long>(dataset.social.num_nodes()),
              static_cast<long long>(dataset.social.num_edges()),
              static_cast<long long>(dataset.preferences.num_items()),
              static_cast<long long>(dataset.preferences.num_edges()));

  // 2. Similarity workload over the PUBLIC social graph only.
  similarity::CommonNeighbors measure;
  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::Compute(dataset.social, measure);

  // 3. createClusters(G_s): Louvain with restarts, exactly as the paper
  //    configures it.
  community::LouvainResult louvain =
      community::RunLouvain(dataset.social, {.restarts = 10, .seed = 7});
  std::printf("louvain: %lld clusters, modularity %.3f\n",
              static_cast<long long>(louvain.partition.num_clusters()),
              louvain.modularity);

  // 4. The private recommender (Algorithm 1).
  core::RecommenderContext context{&dataset.social, &dataset.preferences,
                                   &workload};
  core::ClusterRecommender private_rec(context, louvain.partition,
                                       {.epsilon = epsilon, .seed = 1});
  core::ExactRecommender exact_rec(context);

  // 5. Compare private vs non-private lists for one user.
  const graph::NodeId user = 17;
  core::RecommendationList private_list =
      private_rec.RecommendOne(user, top_n);
  core::RecommendationList exact_list = exact_rec.RecommendOne(user, top_n);
  std::printf("\nuser %lld, epsilon = %.2f\n",
              static_cast<long long>(user), epsilon);
  std::printf("%-6s %-18s %-18s\n", "rank", "exact item(util)",
              "private item(util)");
  for (int64_t k = 0; k < top_n; ++k) {
    char exact_cell[32] = "-";
    char private_cell[32] = "-";
    if (k < static_cast<int64_t>(exact_list.size())) {
      std::snprintf(exact_cell, sizeof(exact_cell), "%lld (%.2f)",
                    static_cast<long long>(exact_list[k].item),
                    exact_list[k].utility);
    }
    if (k < static_cast<int64_t>(private_list.size())) {
      std::snprintf(private_cell, sizeof(private_cell), "%lld (%.2f)",
                    static_cast<long long>(private_list[k].item),
                    private_list[k].utility);
    }
    std::printf("%-6lld %-18s %-18s\n", static_cast<long long>(k + 1),
                exact_cell, private_cell);
  }

  // 6. Accuracy across all users (Equation 2).
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < dataset.social.num_nodes(); ++u) {
    users.push_back(u);
  }
  eval::ExactReference reference =
      eval::ExactReference::Compute(context, users, top_n);
  double ndcg = reference.MeanNdcg(private_rec.Recommend(users, top_n));
  std::printf("\nNDCG@%lld across %zu users: %.3f\n",
              static_cast<long long>(top_n), users.size(), ndcg);
  return 0;
}
