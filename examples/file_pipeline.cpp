// End-to-end file pipeline: the shape of a production batch job.
//
// Reads a social edge list and a preference edge list from disk (TSV, one
// edge per line, '#' comments), produces ε-DP top-N recommendations for
// every user, and writes them to an output TSV. When the input files do
// not exist, a demo dataset is generated and saved first, so the example
// is runnable out of the box:
//
//   ./file_pipeline [--social=social.tsv] [--prefs=prefs.tsv]
//                   [--out=recommendations.tsv] [--epsilon=0.5] [--top_n=10]

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/driver_flags.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "community/louvain.h"
#include "community/partition_io.h"
#include "core/cluster_recommender.h"
#include "data/synthetic.h"
#include "graph/graph_io.h"
#include "similarity/common_neighbors.h"
#include "similarity/workload.h"
#include "similarity/workload_io.h"

int main(int argc, char** argv) {
  using namespace privrec;
  FlagParser flags(argc, argv);
  ObsSession obs_session = ApplyDriverFlags(flags);
  const std::string social_path =
      flags.GetString("social", "/tmp/privrec_social.tsv");
  const std::string prefs_path =
      flags.GetString("prefs", "/tmp/privrec_prefs.tsv");
  const std::string out_path =
      flags.GetString("out", "/tmp/privrec_recommendations.tsv");
  const double epsilon = flags.GetDouble("epsilon", 0.5);
  const int64_t top_n = flags.GetInt("top_n", 10);
  // Optional caches: clustering and similarity rows read only public
  // data, so a deployment computes them once and reuses them across
  // releases.
  const std::string partition_path = flags.GetString("partition", "");
  const std::string workload_path = flags.GetString("workload", "");
  if (!flags.Validate()) return 1;

  // Bootstrap demo inputs when absent.
  if (!std::filesystem::exists(social_path) ||
      !std::filesystem::exists(prefs_path)) {
    std::printf("inputs not found; writing a demo dataset to %s / %s\n",
                social_path.c_str(), prefs_path.c_str());
    data::Dataset demo = data::MakeTinyDataset(400, 600, 2024);
    Status s1 = graph::SaveSocialGraph(demo.social, social_path);
    Status s2 = graph::SavePreferenceGraph(demo.preferences, prefs_path);
    if (!s1.ok() || !s2.ok()) {
      std::fprintf(stderr, "failed to write demo inputs: %s %s\n",
                   s1.ToString().c_str(), s2.ToString().c_str());
      return 1;
    }
  }

  WallTimer timer;
  auto social = graph::LoadSocialGraph(social_path);
  if (!social.ok()) {
    std::fprintf(stderr, "%s\n", social.status().ToString().c_str());
    return 1;
  }
  auto prefs = graph::LoadPreferenceGraph(prefs_path);
  if (!prefs.ok()) {
    std::fprintf(stderr, "%s\n", prefs.status().ToString().c_str());
    return 1;
  }
  if (prefs->graph.num_users() != social->graph.num_nodes()) {
    std::fprintf(stderr,
                 "preference users (%lld) do not match social nodes "
                 "(%lld); the graphs must cover the same user set\n",
                 static_cast<long long>(prefs->graph.num_users()),
                 static_cast<long long>(social->graph.num_nodes()));
    return 1;
  }
  std::printf("loaded %lld users, %lld social edges, %lld items, %lld "
              "preference edges (%.0f ms)\n",
              static_cast<long long>(social->graph.num_nodes()),
              static_cast<long long>(social->graph.num_edges()),
              static_cast<long long>(prefs->graph.num_items()),
              static_cast<long long>(prefs->graph.num_edges()),
              timer.ElapsedMillis());

  timer.Reset();
  similarity::SimilarityWorkload workload;
  bool workload_cached = false;
  if (!workload_path.empty() && std::filesystem::exists(workload_path)) {
    auto cached = similarity::LoadWorkload(workload_path);
    if (cached.ok() && cached->num_users() == social->graph.num_nodes()) {
      workload = std::move(*cached);
      workload_cached = true;
      std::printf("loaded cached similarity workload from %s\n",
                  workload_path.c_str());
    }
  }
  if (!workload_cached) {
    workload = similarity::SimilarityWorkload::Compute(
        social->graph, similarity::CommonNeighbors());
    if (!workload_path.empty()) {
      Status s = similarity::SaveWorkload(workload, workload_path);
      if (s.ok()) {
        std::printf("cached similarity workload to %s\n",
                    workload_path.c_str());
      }
    }
  }

  community::Partition clusters;
  bool cache_hit = false;
  if (!partition_path.empty() &&
      std::filesystem::exists(partition_path)) {
    auto cached = community::LoadPartition(partition_path);
    if (cached.ok() && cached->num_nodes() == social->graph.num_nodes()) {
      clusters = std::move(*cached);
      cache_hit = true;
      std::printf("loaded cached clustering from %s (%lld clusters)\n",
                  partition_path.c_str(),
                  static_cast<long long>(clusters.num_clusters()));
    }
  }
  if (!cache_hit) {
    clusters = community::RunLouvain(social->graph,
                                     {.restarts = 10, .seed = 7})
                   .partition;
    if (!partition_path.empty()) {
      Status s = community::SavePartition(clusters, partition_path);
      if (s.ok()) {
        std::printf("cached clustering to %s\n", partition_path.c_str());
      }
    }
  }

  core::RecommenderContext context{&social->graph, &prefs->graph,
                                   &workload};
  core::ClusterRecommender rec(context, clusters,
                               {.epsilon = epsilon, .seed = 11});
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < social->graph.num_nodes(); ++u) {
    users.push_back(u);
  }
  auto lists = rec.Recommend(users, top_n);
  std::printf("recommended top-%lld for %zu users at epsilon=%.2f over "
              "%lld clusters (%.0f ms)\n",
              static_cast<long long>(top_n), users.size(), epsilon,
              static_cast<long long>(clusters.num_clusters()),
              timer.ElapsedMillis());

  // Output uses the ORIGINAL ids from the input files.
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << "# user\trank\titem\tnoisy_utility\n";
  for (size_t k = 0; k < users.size(); ++k) {
    int64_t original_user =
        social->original_id[static_cast<size_t>(users[k])];
    for (size_t p = 0; p < lists[k].size(); ++p) {
      int64_t original_item =
          prefs->original_item_id[static_cast<size_t>(lists[k][p].item)];
      out << original_user << '\t' << p + 1 << '\t' << original_item
          << '\t' << lists[k][p].utility << '\n';
    }
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
