// End-to-end file pipeline: the shape of a production batch job, now in
// two phases.
//
// Reads a social edge list and a preference edge list from disk (TSV, one
// edge per line, '#' comments), BUILDS a model artifact (clustering +
// similarity + the ε-DP publication), then SERVES top-N recommendations
// for every user from that artifact — the serving step never touches the
// raw preference edges. When the input files do not exist, a demo dataset
// is generated and saved first, so the example is runnable out of the box:
//
//   ./file_pipeline [--social=social.tsv] [--prefs=prefs.tsv]
//                   [--out=recommendations.tsv] [--epsilon=0.5] [--top_n=10]
//                   [--artifact-out=model.pvra]   # persist the build phase
//                   [--artifact-in=model.pvra]    # serve a prior build
//                                                 # (no ε re-spend)
//                   [--shards=K]                  # write a sharded .pvram
//                                                 # manifest + K shard files
//                   [--no-mmap]                   # serve sharded artifacts
//                                                 # via the read fallback
//
// --artifact-in replays a previous publication: the build phase is skipped
// entirely and the compatibility gates verify the artifact matches the
// inputs (graph fingerprint) and the requested ε (provenance). It accepts
// either a monolithic .pvra or a sharded .pvram manifest — the loader
// sniffs the magic. With --shards=K the build phase writes the sharded
// layout (cluster-range partitioned, mmap-served in place on load).

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "artifact/builder.h"
#include "artifact/model_io.h"
#include "artifact/serving.h"
#include "artifact/shard_layout.h"
#include "common/driver_flags.h"
#include "common/experiment_inputs.h"
#include "common/flags.h"
#include "common/timer.h"
#include "graph/metrics.h"

int main(int argc, char** argv) {
  using namespace privrec;
  FlagParser flags(argc, argv);
  ObsSession obs_session = ApplyDriverFlags(flags);
  ExperimentInputsOptions inputs_options;
  inputs_options.social_path =
      flags.GetString("social", "/tmp/privrec_social.tsv");
  inputs_options.prefs_path =
      flags.GetString("prefs", "/tmp/privrec_prefs.tsv");
  // Optional caches: clustering and similarity rows read only public
  // data, so a deployment computes them once and reuses them across
  // releases.
  inputs_options.partition_path = flags.GetString("partition", "");
  inputs_options.workload_path = flags.GetString("workload", "");
  inputs_options.louvain.seed = 7;
  inputs_options.verbose = true;
  const std::string out_path =
      flags.GetString("out", "/tmp/privrec_recommendations.tsv");
  const double epsilon = flags.GetDouble("epsilon", 0.5);
  const int64_t top_n = flags.GetInt("top_n", 10);
  const std::string artifact_out = flags.GetString("artifact-out", "");
  const std::string artifact_in = flags.GetString("artifact-in", "");
  const int64_t shards = flags.GetInt("shards", 0);
  const bool no_mmap = flags.GetBool("no-mmap", false);
  const bool table_f32 = flags.GetBool("table-f32", false);
  if (!flags.Validate()) return 1;
  if (no_mmap) setenv("PRIVREC_NO_MMAP", "1", 1);

  WallTimer timer;
  auto inputs = LoadExperimentInputs(inputs_options);
  if (!inputs.ok()) {
    std::fprintf(stderr, "%s\n", inputs.status().ToString().c_str());
    return 1;
  }
  const uint64_t graph_hash = graph::DatasetFingerprint(
      inputs->dataset.social, inputs->dataset.preferences);
  std::printf("inputs ready: %lld users over %lld clusters (%.0f ms)\n",
              static_cast<long long>(inputs->dataset.social.num_nodes()),
              static_cast<long long>(
                  inputs->louvain.partition.num_clusters()),
              timer.ElapsedMillis());

  // ---- Build phase (skipped when serving a prior build) ----
  timer.Reset();
  Result<serving::ServingEngine> engine = [&]() {
    if (!artifact_in.empty()) {
      std::printf("loading model artifact from %s (no epsilon re-spend)\n",
                  artifact_in.c_str());
      return serving::ServingEngine::Load(artifact_in);
    }
    artifact::ModelArtifactBuilder builder(&inputs->dataset.social,
                                           &inputs->dataset.preferences);
    builder.SetPartition(&inputs->louvain.partition);
    builder.SetWorkload(&inputs->workload);
    artifact::BuildOptions build_options;
    build_options.epsilon = epsilon;
    build_options.seed = 11;
    // The sanitized sections alone serve the paper's mechanism.
    build_options.include_reference_sections = false;
    // Optional f32 mirror of the noisy table: DP-free post-processing,
    // halves the reconstruction read set at bounded NDCG cost.
    build_options.table_f32 = table_f32;
    auto model = builder.Build(build_options);
    if (!model.ok()) return Result<serving::ServingEngine>(model.status());
    if (!artifact_out.empty()) {
      Status saved =
          shards > 0
              ? serving::SaveShardedArtifact(*model, artifact_out,
                                             {.shards = shards})
              : serving::SaveArtifact(*model, artifact_out);
      if (!saved.ok()) return Result<serving::ServingEngine>(saved);
      std::printf("saved model artifact to %s%s (epsilon=%.2f frozen in "
                  "its provenance)\n",
                  artifact_out.c_str(),
                  shards > 0 ? " [sharded]" : "", epsilon);
      // Serve what was written, proving the round trip.
      return serving::ServingEngine::Load(artifact_out);
    }
    return serving::ServingEngine::FromModel(std::move(*model));
  }();
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  // ---- Serve phase: sanitized sections only, gated for compatibility ----
  serving::ServeSpec spec;
  spec.mechanism = "Cluster";
  spec.epsilon = epsilon;
  spec.expected_graph_hash = graph_hash;
  auto server = serving::MakeServeRecommender(&*engine, spec);
  if (!server.ok()) {
    std::fprintf(stderr, "artifact rejected: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::vector<graph::NodeId> users = inputs->AllUsers();
  auto batch = (*server)->Recommend(users, top_n);
  std::printf("served top-%lld for %zu users at epsilon=%.2f from the "
              "artifact (%.0f ms total)\n",
              static_cast<long long>(top_n), users.size(), epsilon,
              timer.ElapsedMillis());

  // Output uses the ORIGINAL ids from the input files.
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << "# user\trank\titem\tnoisy_utility\n";
  for (size_t k = 0; k < users.size(); ++k) {
    int64_t original_user =
        inputs->original_user_id[static_cast<size_t>(users[k])];
    for (size_t p = 0; p < batch.lists[k].size(); ++p) {
      int64_t original_item =
          inputs->original_item_id[static_cast<size_t>(
              batch.lists[k][p].item)];
      out << original_user << '\t' << p + 1 << '\t' << original_item
          << '\t' << batch.lists[k][p].utility << '\n';
    }
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
