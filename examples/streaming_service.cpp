// A long-running streaming recommendation service: the batch-snapshot
// dynamic session turned into a pipeline where the graph grows delta by
// delta, ε is never double-spent, and serving never stops.
//
// The driver generates a DETERMINISTIC delta schedule (a pure function of
// --seed and the delta index) and pushes it through a stream::StreamPipeline:
// every delta is WAL-journaled before it is applied, the Louvain partition
// is maintained incrementally, and the RepublishScheduler decides when a
// new artifact is worth a budget charge. Published artifacts are hot-swapped
// into a live serve::ServeRuntime and probed with a request batch.
//
// Because the schedule is deterministic and positioned by the ingester's
// replayed delta count, the SAME invocation doubles as crash recovery:
// kill the process at any point (e.g. with --faults), rerun with the same
// flags, and it resumes exactly where the journal left off. The final
// "state:" line prints the graph fingerprint the crash-recovery CI gate
// compares bit-for-bit against an uninterrupted reference run.
//
//   ./streaming_service [--dir=/tmp/privrec_stream] [--iters=120]
//                       [--users=120] [--items=90] [--seed=7]
//                       [--total_epsilon=1.0] [--planned=10]
//                       [--allocation=uniform|geometric] [--serve_stale]
//                       [--faults='stream.wal.append=io_error@9']
//                       [--stream-fsync-every=1]
//                       [--stream-drift-threshold=0.05]
//                       [--stream-republish-drift=0.05]
//                       [--stream-republish-growth=0.25]
//                       [--stream-republish-every=0]
//                       [--stream-min-deltas=8]
//                       [--audit-ledger]
//
// --audit-ledger re-derives all paid releases from the budget journal with
// dp::AuditLedgerReplay, prints the report, and exits nonzero on any
// double-spend violation — the post-crash invariant check the soak gate
// runs after every kill/restart cycle.
//
// Exit codes: 0 success, 1 usage/config error, 2 a fault-shaped I/O error
// interrupted the run (the "crash" the CI matrix induces on purpose).

#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "common/driver_flags.h"
#include "common/fault_injection.h"
#include "common/flags.h"
#include "common/random.h"
#include "dp/ledger.h"
#include "serve/runtime.h"
#include "stream/pipeline.h"

namespace {

using namespace privrec;

// The delta at schedule position `i` — a pure function of (seed, i), so a
// restarted process can fast-forward past everything the journal already
// holds and regenerate the rest bit-identically.
stream::WalRecord ScheduleRecord(uint64_t seed, int64_t i,
                                 graph::NodeId users, graph::ItemId items) {
  const uint64_t bits = SplitMix64(seed ^ (0x5bd1e995ull * //
                                           static_cast<uint64_t>(i + 1)));
  const uint64_t kind = bits % 100;
  const auto u = static_cast<graph::NodeId>((bits >> 8) % users);
  if (kind < 55) {
    graph::NodeId v = static_cast<graph::NodeId>((bits >> 32) % users);
    if (v == u) v = (v + 1) % users;
    return stream::WalRecord::AddSocial(u, v);
  }
  if (kind < 70) {
    graph::NodeId v = static_cast<graph::NodeId>((bits >> 24) % users);
    if (v == u) v = (v + 1) % users;
    return stream::WalRecord::RemoveSocial(u, v);
  }
  const auto item = static_cast<graph::ItemId>((bits >> 40) % items);
  if (kind < 92) {
    const double weight = 1.0 + static_cast<double>((bits >> 56) % 5);
    return stream::WalRecord::AddPreference(u, item, weight);
  }
  return stream::WalRecord::RemovePreference(u, item);
}

int CrashExit(const Status& status) {
  return status.code() == StatusCode::kIoError ? 2 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace privrec;
  FlagParser flags(argc, argv);
  ObsSession obs_session = ApplyDriverFlags(flags);
  const std::string dir = flags.GetString("dir", "/tmp/privrec_stream");
  const int64_t iters = flags.GetInt("iters", 120);
  const auto num_users =
      static_cast<graph::NodeId>(flags.GetInt("users", 120));
  const auto num_items =
      static_cast<graph::ItemId>(flags.GetInt("items", 90));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const double total_epsilon = flags.GetDouble("total_epsilon", 1.0);
  const int64_t planned = flags.GetInt("planned", 10);
  const std::string allocation = flags.GetString("allocation", "uniform");
  const bool serve_stale = flags.GetBool("serve_stale", true);
  const std::string faults = flags.GetString("faults", "");
  const bool audit_only = flags.GetBool("audit-ledger", false);
  const int64_t top_n = flags.GetInt("top_n", 10);
  const StreamFlagSettings stream_settings = ApplyStreamFlags(flags);
  const ServeFlagSettings serve_settings = ApplyServeFlags(flags);
  if (!flags.Validate()) return 1;

  const std::string ledger_path = dir + "/budget.ledger";

  // The audit runs BEFORE any pipeline state is touched: it must judge the
  // journal exactly as a crash left it.
  if (audit_only) {
    Result<dp::LedgerAuditReport> audit =
        dp::AuditLedgerReplay(ledger_path);
    if (!audit.ok()) {
      std::fprintf(stderr, "ledger audit failed: %s\n",
                   audit.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", audit->ToString().c_str());
    return audit->ok() ? 0 : 3;
  }

  (void)fault::FaultInjector::Instance().ArmFromEnv();
  if (!faults.empty()) {
    Status armed = fault::FaultInjector::Instance().ArmFromSpec(faults);
    if (!armed.ok()) {
      std::fprintf(stderr, "--faults: %s\n", armed.ToString().c_str());
      return 1;
    }
  }

  stream::StreamPipelineOptions options;
  options.ingest.num_users = num_users;
  options.ingest.num_items = num_items;
  options.ingest.wal_path = stream_settings.wal.empty()
                                ? dir + "/stream.wal"
                                : stream_settings.wal;
  options.ingest.fsync_every = stream_settings.fsync_every;
  options.community.drift_threshold = stream_settings.drift_threshold;
  options.republish.drift_threshold = stream_settings.republish_drift;
  options.republish.min_growth = stream_settings.republish_growth;
  options.republish.every_deltas = stream_settings.republish_every;
  options.republish.min_deltas_between = stream_settings.min_deltas;
  options.session.total_epsilon = total_epsilon;
  options.session.planned_snapshots = planned;
  options.session.allocation = allocation == "geometric"
                                   ? core::BudgetAllocation::kGeometric
                                   : core::BudgetAllocation::kUniform;
  options.session.seed = SplitMix64(seed + 0x51ed);
  options.session.ledger_path = ledger_path;
  options.session.serve_stale_on_exhaustion = serve_stale;
  options.session.artifact_dir = dir + "/artifacts";

  // The WAL/ledger directory must exist before either journal opens.
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create --dir '%s': %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  // Live rollout target. The stream's ε varies per snapshot and the graph
  // grows continuously, so the runtime adopts each artifact's provenance ε
  // and does not pin the dataset fingerprint.
  serve::ServeRuntimeOptions serve_options;
  serve_options.swap.adopt_artifact_epsilon = true;
  serve_options.swap.pin_graph_hash = false;
  serve_options.admission.queue_depth = serve_settings.queue_depth;
  serve_options.admission.max_concurrency = serve_settings.max_concurrency;
  serve_options.breaker.failure_threshold = serve_settings.breaker_failures;
  serve_options.breaker.cooldown_ms = serve_settings.breaker_cooldown_ms;
  serve::ServeRuntime runtime(serve_options);

  Result<stream::StreamPipeline> opened =
      stream::StreamPipeline::Open(options, &runtime);
  if (!opened.ok()) {
    std::fprintf(stderr, "cannot open pipeline: %s\n",
                 opened.status().ToString().c_str());
    return CrashExit(opened.status());
  }
  stream::StreamPipeline pipeline = std::move(opened).value();

  std::vector<graph::NodeId> probe_users;
  for (graph::NodeId u = 0; u < num_users; u += 7) probe_users.push_back(u);

  const int64_t resumed = pipeline.ingester().delta_records();
  if (resumed > 0) {
    std::printf("resumed from %s: %lld deltas replayed, %lld snapshots "
                "committed, eps spent %.4f%s\n",
                options.ingest.wal_path.c_str(),
                static_cast<long long>(resumed),
                static_cast<long long>(pipeline.session().snapshots_processed()),
                pipeline.session().epsilon_spent(),
                pipeline.ingester().recovered_torn_tail()
                    ? " (torn WAL tail truncated)"
                    : "");
  }

  // Drain a paid-but-unreleased publish BEFORE new deltas arrive, so the
  // re-derived release covers the same graph prefix the crashed one did.
  bool exhausted = false;
  auto publish = [&](const char* why) -> Status {
    Result<stream::PublishOutcome> out =
        pipeline.Republish(probe_users, top_n);
    if (!out.ok()) {
      if (out.status().code() == StatusCode::kResourceExhausted) {
        std::printf("publish stopped: %s\n", out.status().ToString().c_str());
        exhausted = true;
        return Status::Ok();
      }
      return out.status();
    }
    std::printf("publish[%lld] (%s): eps_t=%.4f cumulative=%.4f "
                "clusters=%lld%s%s\n",
                static_cast<long long>(out->release.snapshot_index),
                out->reason.empty() ? why : out->reason.c_str(),
                out->release.epsilon_spent, out->release.cumulative_epsilon,
                static_cast<long long>(out->release.num_clusters),
                out->release.resumed_from_intent ? " [resumed paid release]"
                                                 : "",
                out->release.stale ? " [stale replay]" : "");
    if (!out->artifact_path.empty()) {
      if (!out->swapped) {
        std::printf("  swap rolled back: %s (epoch %lld still serving)\n",
                    out->swap_status.ToString().c_str(),
                    static_cast<long long>(
                        runtime.swapper().current_epoch()));
      } else {
        serve::ServeRequest request;
        request.users = probe_users;
        request.top_n = top_n;
        request.deadline_ms = serve_settings.deadline_ms;
        serve::ServeResponse response = runtime.Handle(request);
        std::printf("  epoch %lld live (seed %llu), probe served %zu "
                    "users\n",
                    static_cast<long long>(response.epoch),
                    static_cast<unsigned long long>(response.artifact_seed),
                    response.batch.lists.size());
      }
    }
    return Status::Ok();
  };

  if (pipeline.HasPendingRelease()) {
    Status drained = publish("resume");
    if (!drained.ok()) {
      std::fprintf(stderr, "resume publish failed: %s\n",
                   drained.ToString().c_str());
      return CrashExit(drained);
    }
  }

  for (int64_t i = resumed; i < iters; ++i) {
    const stream::WalRecord record =
        ScheduleRecord(seed, i, num_users, num_items);
    Status applied = Status::Ok();
    switch (record.type) {
      case stream::WalRecordType::kAddSocial:
        applied = pipeline.AddSocialEdge(record.a, record.b);
        break;
      case stream::WalRecordType::kRemoveSocial:
        applied = pipeline.RemoveSocialEdge(record.a, record.b);
        break;
      case stream::WalRecordType::kAddPreference:
        applied = pipeline.AddPreference(record.a, record.b,
                                         record.weight());
        break;
      case stream::WalRecordType::kRemovePreference:
        applied = pipeline.RemovePreference(record.a, record.b);
        break;
      default:
        break;
    }
    if (!applied.ok()) {
      std::fprintf(stderr, "delta %lld failed: %s\n",
                   static_cast<long long>(i),
                   applied.ToString().c_str());
      return CrashExit(applied);
    }
    if (!exhausted && !pipeline.RepublishDue().empty()) {
      Status published = publish("due");
      if (!published.ok()) {
        std::fprintf(stderr, "publish failed: %s\n",
                     published.ToString().c_str());
        return CrashExit(published);
      }
    }
  }

  // The line the crash-recovery gate compares against the uninterrupted
  // reference: the graph fingerprint and the community labels hash must be
  // bit-identical however many kill/restart cycles happened on the way.
  // Publish counts and cumulative ε may legitimately differ (at-least-once
  // publication re-arms after a crash between commit and mark), so they
  // are informational.
  std::printf("state: fingerprint=%016llx deltas=%lld social=%lld "
              "prefs=%lld modularity=%.9f clusters=%lld publishes=%lld "
              "eps_spent=%.6f\n",
              static_cast<unsigned long long>(
                  pipeline.ingester().GraphFingerprint()),
              static_cast<long long>(pipeline.ingester().delta_records()),
              static_cast<long long>(pipeline.ingester().social_edges()),
              static_cast<long long>(pipeline.ingester().preference_edges()),
              pipeline.community().modularity(),
              static_cast<long long>(
                  pipeline.community().partition().num_clusters()),
              static_cast<long long>(
                  pipeline.session().snapshots_processed()),
              pipeline.session().epsilon_spent());

  Result<dp::LedgerAuditReport> audit = dp::AuditLedgerReplay(ledger_path);
  if (!audit.ok()) {
    std::fprintf(stderr, "ledger audit failed: %s\n",
                 audit.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", audit->ToString().c_str());
  return audit->ok() ? 0 : 3;
}
