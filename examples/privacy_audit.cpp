// Empirical privacy audit of the framework's noise-injection boundary.
//
// Theorem 4 proves that module A_w (the noisy cluster-item averages) is
// ε-differentially private; everything downstream is post-processing. This
// example audits the claim the way a skeptical practitioner would, using
// the dp::AuditDpRatio falsifier: run A_w many times on two neighboring
// preference graphs (differing in exactly one edge), histogram the
// released value the edge can influence, and check that the measured
// density ratio stays inside e^ε. For contrast, it also audits a
// deliberately broken variant (noise calibrated to a 10x weaker ε) and
// shows the audit catching it.
//
//   ./privacy_audit [--epsilon=0.7] [--samples=40000]

#include <cmath>
#include <cstdio>

#include "common/driver_flags.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "community/partition.h"
#include "core/cluster_recommender.h"
#include "dp/audit.h"
#include "similarity/common_neighbors.h"
#include "similarity/workload.h"

int main(int argc, char** argv) {
  using namespace privrec;
  FlagParser flags(argc, argv);
  ObsSession obs_session = ApplyDriverFlags(flags);
  const double epsilon = flags.GetDouble("epsilon", 0.7);
  const int64_t samples = flags.GetInt("samples", 40000);
  if (!flags.Validate()) return 1;

  // Two triangles bridged by one edge; clusters = the triangles.
  graph::SocialGraph social = graph::SocialGraph::FromEdges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  graph::PreferenceGraph d1 =
      graph::PreferenceGraph::FromEdges(6, 2, {{0, 0}, {1, 0}, {4, 1}});
  graph::PreferenceGraph d2 = d1.WithEdge(2, 0);  // the target edge
  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::Compute(
          social, similarity::CommonNeighbors());
  community::Partition clusters({0, 0, 0, 1, 1, 1});
  core::RecommenderContext ctx1{&social, &d1, &workload};
  core::RecommenderContext ctx2{&social, &d2, &workload};

  std::printf("auditing A_w at epsilon = %.2f, %lld samples per world; "
              "neighboring inputs differ in edge (user 2, item 0)\n\n",
              epsilon, static_cast<long long>(samples));

  dp::AuditOptions opt;
  opt.lo = -1.5;
  opt.hi = 2.5;
  opt.samples = samples;
  // The released value the target edge can influence: cluster 0's average
  // for item 0 (row-major [cluster][item], 2 items per row).
  auto run_audit = [&](double mechanism_epsilon) {
    core::ClusterRecommender m1(ctx1, clusters,
                                {.epsilon = mechanism_epsilon,
                                 .seed = 101});
    core::ClusterRecommender m2(ctx2, clusters,
                                {.epsilon = mechanism_epsilon,
                                 .seed = 202});
    return dp::AuditDpRatio(
        [&] { return m1.ComputeNoisyClusterAverages()[0]; },
        [&] { return m2.ComputeNoisyClusterAverages()[0]; }, epsilon, opt);
  };

  dp::AuditResult honest = run_audit(epsilon);
  std::printf("honest mechanism (noise for eps = %.2f):  %s\n", epsilon,
              honest.ToString().c_str());

  dp::AuditResult broken = run_audit(epsilon * 10.0);
  std::printf("broken mechanism (noise for eps = %.2f): %s\n",
              epsilon * 10.0, broken.ToString().c_str());

  std::printf(
      "\nthe audit is a falsifier, not a proof: the honest release stays "
      "inside e^%.2f = %.3f while the under-noised variant is caught "
      "immediately.\n",
      epsilon, std::exp(epsilon));
  return honest.passed && !broken.passed ? 0 : 1;
}
