// Music-recommendation scenario: the paper's Last.fm motivating workload.
//
// A music service holds listened-to-artist edges (private) and imports
// friendships from a social network (public). It must recommend artists
// without revealing anyone's listening history. This example compares the
// four framework instantiations (CN, GD, AA, KZ) at a user-selected
// privacy level on a Last.fm-shaped synthetic dataset, and shows how the
// privacy budget accountant certifies the end-to-end guarantee.
//
//   ./music_recommendations [--epsilon=0.6] [--users=1892] [--items=17632]

#include <cstdio>
#include <memory>

#include "common/driver_flags.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "data/synthetic.h"
#include "dp/budget.h"
#include "eval/exact_reference.h"
#include "eval/table.h"
#include "similarity/adamic_adar.h"
#include "similarity/common_neighbors.h"
#include "similarity/graph_distance.h"
#include "similarity/katz.h"

#include <iostream>

int main(int argc, char** argv) {
  using namespace privrec;
  FlagParser flags(argc, argv);
  ObsSession obs_session = ApplyDriverFlags(flags);
  const double epsilon = flags.GetDouble("epsilon", 0.6);
  const int64_t num_users = flags.GetInt("users", 1892);
  const int64_t num_items = flags.GetInt("items", 17632);
  if (!flags.Validate()) return 1;

  data::SyntheticLastFmOptions data_opt;
  data_opt.num_users = num_users;
  data_opt.num_items = num_items;
  data::Dataset dataset = data::MakeSyntheticLastFm(data_opt);
  data::DatasetSummary summary = data::Summarize(dataset);
  std::printf(
      "music service: %lld listeners, %lld artists, %lld listen edges "
      "(avg %.1f per listener)\n",
      static_cast<long long>(summary.num_users),
      static_cast<long long>(summary.num_items),
      static_cast<long long>(summary.num_preference_edges),
      summary.avg_prefs_per_user);

  // One clustering serves every instantiation: it reads only the public
  // friendship graph.
  WallTimer timer;
  community::LouvainResult louvain =
      community::RunLouvain(dataset.social, {.restarts = 10, .seed = 3});
  std::printf("clustered %lld listeners into %lld communities "
              "(Q = %.3f) in %.1f ms\n",
              static_cast<long long>(num_users),
              static_cast<long long>(louvain.partition.num_clusters()),
              louvain.modularity, timer.ElapsedMillis());

  // Certify the guarantee with the accountant: every (artist, community)
  // average reads a disjoint slice of the listening data, so the whole
  // release costs max (= one) epsilon by parallel composition.
  dp::PrivacyBudget budget(epsilon);
  bool ok = true;
  for (graph::ItemId artist = 0; artist < dataset.preferences.num_items();
       ++artist) {
    ok = ok &&
         budget.Charge("artist_" + std::to_string(artist), epsilon);
  }
  std::printf("privacy accountant: %lld disjoint releases, total spent "
              "epsilon = %.2f of %.2f (ok=%d)\n",
              static_cast<long long>(dataset.preferences.num_items()),
              budget.Spent(), budget.total_epsilon(), ok ? 1 : 0);

  // Evaluate all four instantiations on a sample of listeners.
  std::vector<graph::NodeId> eval_users;
  for (graph::NodeId u = 0; u < dataset.social.num_nodes(); u += 4) {
    eval_users.push_back(u);
  }
  eval::TablePrinter table({"measure", "NDCG@10", "NDCG@50", "time(s)"});
  std::vector<std::unique_ptr<similarity::SimilarityMeasure>> measures;
  measures.push_back(std::make_unique<similarity::CommonNeighbors>());
  measures.push_back(std::make_unique<similarity::GraphDistance>(2));
  measures.push_back(std::make_unique<similarity::AdamicAdar>());
  measures.push_back(std::make_unique<similarity::Katz>(3, 0.05));
  for (const auto& measure : measures) {
    WallTimer measure_timer;
    similarity::SimilarityWorkload workload =
        similarity::SimilarityWorkload::ComputeForUsers(dataset.social,
                                                        *measure,
                                                        eval_users);
    core::RecommenderContext context{&dataset.social, &dataset.preferences,
                                     &workload};
    eval::ExactReference reference =
        eval::ExactReference::Compute(context, eval_users, 50);
    core::ClusterRecommender rec(context, louvain.partition,
                                 {.epsilon = epsilon, .seed = 11});
    auto lists = rec.Recommend(eval_users, 50);
    double ndcg50 = reference.MeanNdcg(lists);
    for (auto& list : lists) {
      if (list.size() > 10) list.resize(10);
    }
    double ndcg10 = reference.MeanNdcg(lists);
    table.AddRow({measure->Name(), FormatDouble(ndcg10, 3),
                  FormatDouble(ndcg50, 3),
                  FormatDouble(measure_timer.ElapsedSeconds(), 1)});
  }
  std::printf("\naccuracy at epsilon = %.2f (evaluated on %zu listeners):\n",
              epsilon, eval_users.size());
  table.Print(std::cout);
  return 0;
}
