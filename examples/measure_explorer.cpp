// Measure explorer: how the ten similarity measures see the same user.
//
// Builds a small community-structured graph, picks a user, and prints
// each measure's top similar users plus the workload statistics that
// drive DP sensitivity (row size, row sum, max column sum). A compact way
// to develop intuition for why the cluster framework's behaviour is so
// stable across measures (E1) while NOU's sensitivity varies wildly (A2).
//
//   ./measure_explorer [--user=10] [--top=6]

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/driver_flags.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "data/synthetic.h"
#include "similarity/adamic_adar.h"
#include "similarity/common_neighbors.h"
#include "similarity/extra_measures.h"
#include "similarity/graph_distance.h"
#include "similarity/katz.h"
#include "similarity/personalized_pagerank.h"
#include "similarity/workload.h"

int main(int argc, char** argv) {
  using namespace privrec;
  FlagParser flags(argc, argv);
  ObsSession obs_session = ApplyDriverFlags(flags);
  const graph::NodeId user =
      static_cast<graph::NodeId>(flags.GetInt("user", 10));
  const int64_t top = flags.GetInt("top", 6);
  if (!flags.Validate()) return 1;

  data::Dataset d = data::MakeTinyDataset(250, 200, 12);
  if (user < 0 || user >= d.social.num_nodes()) {
    std::fprintf(stderr, "--user must be in [0, %lld)\n",
                 static_cast<long long>(d.social.num_nodes()));
    return 1;
  }
  std::printf("graph: %lld users, %lld edges; exploring user %lld "
              "(degree %lld)\n\n",
              static_cast<long long>(d.social.num_nodes()),
              static_cast<long long>(d.social.num_edges()),
              static_cast<long long>(user),
              static_cast<long long>(d.social.Degree(user)));

  std::vector<std::unique_ptr<similarity::SimilarityMeasure>> measures;
  measures.push_back(std::make_unique<similarity::CommonNeighbors>());
  measures.push_back(std::make_unique<similarity::GraphDistance>(2));
  measures.push_back(std::make_unique<similarity::AdamicAdar>());
  measures.push_back(std::make_unique<similarity::Katz>(3, 0.05));
  measures.push_back(std::make_unique<similarity::Jaccard>());
  measures.push_back(std::make_unique<similarity::SaltonCosine>());
  measures.push_back(std::make_unique<similarity::Sorensen>());
  measures.push_back(std::make_unique<similarity::ResourceAllocation>());
  measures.push_back(std::make_unique<similarity::HubPromoted>());
  measures.push_back(
      std::make_unique<similarity::PersonalizedPageRank>(0.2, 1e-5));

  std::printf("%-5s %-10s %-10s %-12s top similar users (score)\n",
              "name", "|sim(u)|", "row sum", "sensitivity");
  for (const auto& measure : measures) {
    similarity::SimilarityWorkload workload =
        similarity::SimilarityWorkload::Compute(d.social, *measure);
    auto row = workload.Row(user);
    std::vector<similarity::SimilarityEntry> sorted(row.begin(), row.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.score > b.score; });
    std::string preview;
    for (int64_t k = 0; k < top && k < static_cast<int64_t>(sorted.size());
         ++k) {
      char cell[48];
      std::snprintf(cell, sizeof(cell), "%lld(%.3g) ",
                    static_cast<long long>(sorted[static_cast<size_t>(k)]
                                               .user),
                    sorted[static_cast<size_t>(k)].score);
      preview += cell;
    }
    std::printf("%-5s %-10zu %-10.3g %-12.3g %s\n",
                measure->Name().c_str(), row.size(),
                workload.RowSum(user), workload.MaxColumnSum(),
                preview.c_str());
  }
  std::printf(
      "\nsensitivity = max_v sum_u sim(u,v): what NOU must noise against. "
      "Note how it spans orders of magnitude across measures while the "
      "similar-user SETS barely change — exactly why the framework "
      "(whose noise ignores this quantity) is measure-robust.\n");
  return 0;
}
