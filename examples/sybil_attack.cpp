// The Section 2.3 Sybil attack, demonstrated end to end with the attack
// library (core/sybil_attack.h).
//
// Attack recipe from the paper (CN / AA measures):
//   1. the adversary gets a helper node `a` adjacent only to the victim
//      (profile cloning / collusion);
//   2. creates a fake account `b` and befriends `a`;
//   3. reads b's recommendations — since sim(b, ·) is nonzero ONLY for the
//      victim (their sole common-neighbor path runs through `a`), every
//      recommendation b receives is one of the victim's private items.
//
// Against the non-private recommender the attack extracts the victim's
// items verbatim. Against the ClusterRecommender the signal is smoothed
// into a community average plus Laplace noise, and the same inference
// fails. The example quantifies both.
//
//   ./sybil_attack [--epsilon=0.5] [--trials=20]

#include <cstdio>

#include "common/driver_flags.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "core/exact_recommender.h"
#include "core/sybil_attack.h"
#include "data/synthetic.h"
#include "similarity/common_neighbors.h"
#include "similarity/workload.h"

int main(int argc, char** argv) {
  using namespace privrec;
  FlagParser flags(argc, argv);
  ObsSession obs_session = ApplyDriverFlags(flags);
  const double epsilon = flags.GetDouble("epsilon", 0.5);
  const int trials = static_cast<int>(flags.GetInt("trials", 20));
  if (!flags.Validate()) return 1;

  data::Dataset base = data::MakeTinyDataset(300, 400, 99);
  const graph::NodeId victim = 42;
  core::SybilGadget gadget = core::InjectSybilGadget(
      base.social, base.preferences, victim, /*chain_length=*/1);
  const int64_t top_n = 10;
  std::printf("victim %lld holds %lld private preference edges; adversary "
              "observes sybil node %lld\n",
              static_cast<long long>(victim),
              static_cast<long long>(
                  gadget.preferences.UserDegree(victim)),
              static_cast<long long>(gadget.observer));

  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::Compute(
          gadget.social, similarity::CommonNeighbors());
  core::RecommenderContext context{&gadget.social, &gadget.preferences,
                                   &workload};

  // --- Attack on the NON-private recommender ----------------------------
  core::ExactRecommender exact(context);
  core::AttackScore exact_score = core::ScoreSybilInference(
      exact.RecommendOne(gadget.observer, top_n), gadget.preferences,
      victim);
  std::printf(
      "\nnon-private recommender: %lld/%lld observed recommendations are "
      "the victim's private items (precision %.0f%%, recall %.0f%%)\n",
      static_cast<long long>(exact_score.hits),
      static_cast<long long>(exact_score.observed),
      100.0 * exact_score.precision, 100.0 * exact_score.recall);

  // --- Attack on the DP framework ---------------------------------------
  community::LouvainResult louvain =
      community::RunLouvain(gadget.social, {.restarts = 5, .seed = 1});
  core::ClusterRecommender private_rec(context, louvain.partition,
                                       {.epsilon = epsilon, .seed = 2});
  RunningStats precision;
  RunningStats recall;
  for (int t = 0; t < trials; ++t) {
    core::AttackScore s = core::ScoreSybilInference(
        private_rec.RecommendOne(gadget.observer, top_n),
        gadget.preferences, victim);
    precision.Add(s.precision);
    recall.Add(s.recall);
  }
  double random_precision =
      static_cast<double>(gadget.preferences.UserDegree(victim)) /
      static_cast<double>(gadget.preferences.num_items());
  std::printf(
      "private recommender (epsilon = %.2f, %d trials): attack precision "
      "%.1f%% +- %.1f%%, recall %.1f%% (random guessing: %.1f%%)\n",
      epsilon, trials, 100.0 * precision.mean(), 100.0 * precision.stddev(),
      100.0 * recall.mean(), 100.0 * random_precision);
  std::printf(
      "\nthe cluster framework folds the victim's edges into a community "
      "average of %lld users plus Laplace noise, so the sybil's view no "
      "longer identifies individual edges — any residual precision above "
      "random reflects shared community tastes, not the victim's data.\n",
      static_cast<long long>(louvain.partition.ClusterSize(
          louvain.partition.ClusterOf(victim))));
  return 0;
}
