// Tests for the significance helpers (Welch's t-test, Student-t tails,
// bootstrap intervals).

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "eval/significance.h"

namespace privrec::eval {
namespace {

TEST(StudentTTest, KnownTailValues) {
  // P(|T_10| >= 2.228) = 0.05 (classic table value).
  EXPECT_NEAR(StudentTTwoSidedPValue(2.228, 10.0), 0.05, 0.002);
  // P(|T_1| >= 1.0) = 0.5 for the Cauchy (t with df=1).
  EXPECT_NEAR(StudentTTwoSidedPValue(1.0, 1.0), 0.5, 0.005);
  // Large df approaches the normal: P(|Z| >= 1.96) ~ 0.05.
  EXPECT_NEAR(StudentTTwoSidedPValue(1.96, 1000.0), 0.05, 0.003);
  EXPECT_NEAR(StudentTTwoSidedPValue(0.0, 5.0), 1.0, 1e-9);
}

TEST(WelchTTest, IdenticalSamplesAreInsignificant) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  WelchResult r = WelchTTest(a, a);
  EXPECT_NEAR(r.t_statistic, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
  EXPECT_NEAR(r.mean_difference, 0.0, 1e-12);
}

TEST(WelchTTest, ClearlySeparatedSamplesAreSignificant) {
  Rng rng(1);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 20; ++i) {
    a.push_back(rng.Normal(10.0, 1.0));
    b.push_back(rng.Normal(0.0, 1.0));
  }
  WelchResult r = WelchTTest(a, b);
  EXPECT_GT(r.mean_difference, 8.0);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(WelchTTest, SameDistributionUsuallyInsignificant) {
  Rng rng(2);
  int significant = 0;
  const int kRuns = 100;
  for (int run = 0; run < kRuns; ++run) {
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 15; ++i) {
      a.push_back(rng.Normal(0.0, 1.0));
      b.push_back(rng.Normal(0.0, 1.0));
    }
    if (WelchTTest(a, b).p_value < 0.05) ++significant;
  }
  // ~5% false positives expected; allow generous slack.
  EXPECT_LT(significant, 15);
}

TEST(WelchTTest, HandComputedStatistic) {
  // a: mean 2, sample var 1; b: mean 0, sample var 1; n = 3 each.
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {-1.0, 0.0, 1.0};
  WelchResult r = WelchTTest(a, b);
  // t = 2 / sqrt(1/3 + 1/3) = 2 / sqrt(2/3).
  EXPECT_NEAR(r.t_statistic, 2.0 / std::sqrt(2.0 / 3.0), 1e-9);
  EXPECT_NEAR(r.degrees_of_freedom, 4.0, 1e-9);
}

TEST(WelchTTest, ConstantSamplesEdgeCase) {
  std::vector<double> a = {5.0, 5.0, 5.0};
  std::vector<double> b = {5.0, 5.0};
  WelchResult same = WelchTTest(a, b);
  EXPECT_NEAR(same.p_value, 1.0, 1e-12);
  std::vector<double> c = {6.0, 6.0};
  WelchResult diff = WelchTTest(a, c);
  EXPECT_NEAR(diff.p_value, 0.0, 1e-12);
}

TEST(BootstrapTest, IntervalCoversTrueMean) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) samples.push_back(rng.Normal(7.0, 2.0));
  BootstrapInterval ci =
      BootstrapMeanInterval(samples, 0.95, 2000, 4);
  EXPECT_LT(ci.lower, 7.0);
  EXPECT_GT(ci.upper, 7.0);
  EXPECT_LT(ci.upper - ci.lower, 1.5);
  EXPECT_GE(ci.mean, ci.lower);
  EXPECT_LE(ci.mean, ci.upper);
}

TEST(BootstrapTest, DeterministicForSeed) {
  std::vector<double> samples = {1.0, 2.0, 3.0, 4.0, 5.0};
  BootstrapInterval a = BootstrapMeanInterval(samples, 0.9, 500, 5);
  BootstrapInterval b = BootstrapMeanInterval(samples, 0.9, 500, 5);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(BootstrapTest, NarrowerWithLowerConfidence) {
  Rng rng(6);
  std::vector<double> samples;
  for (int i = 0; i < 100; ++i) samples.push_back(rng.Normal(0.0, 1.0));
  BootstrapInterval wide = BootstrapMeanInterval(samples, 0.99, 2000, 7);
  BootstrapInterval narrow = BootstrapMeanInterval(samples, 0.8, 2000, 7);
  EXPECT_LT(narrow.upper - narrow.lower, wide.upper - wide.lower);
}

}  // namespace
}  // namespace privrec::eval
