// Tests for the structural graph metrics (clustering coefficients,
// sampled path lengths, neighborhood coverage) and the Louvain resolution
// parameter.

#include <gtest/gtest.h>

#include "community/louvain.h"
#include "community/modularity.h"
#include "community/simple_clusterings.h"
#include "graph/generators/erdos_renyi.h"
#include "graph/generators/planted_partition.h"
#include "graph/generators/watts_strogatz.h"
#include "graph/metrics.h"

namespace privrec::graph {
namespace {

TEST(ClusteringCoefficientTest, TriangleIsOne) {
  SocialGraph g = SocialGraph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 1.0);
  EXPECT_DOUBLE_EQ(AverageLocalClusteringCoefficient(g), 1.0);
}

TEST(ClusteringCoefficientTest, StarIsZero) {
  SocialGraph g = SocialGraph::FromEdges(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 0.0);
  EXPECT_DOUBLE_EQ(AverageLocalClusteringCoefficient(g), 0.0);
}

TEST(ClusteringCoefficientTest, PathHasNoTriples) {
  SocialGraph g = SocialGraph::FromEdges(2, {{0, 1}});
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 0.0);
}

TEST(ClusteringCoefficientTest, TriangleWithPendant) {
  // Triangle 0-1-2 plus pendant 3 on node 0.
  SocialGraph g =
      SocialGraph::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  // Triples: node0 C(3,2)=3, node1 C(2,2)=1, node2 1, node3 0 -> 5.
  // Closed triples: 3 (one triangle seen from 3 corners).
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 3.0 / 5.0);
  // Local: node0 1/3, node1 1, node2 1, node3 0 -> avg = (1/3+2)/4.
  EXPECT_NEAR(AverageLocalClusteringCoefficient(g), (1.0 / 3.0 + 2.0) / 4.0,
              1e-12);
}

TEST(ClusteringCoefficientTest, CommunityGraphsAreClusteredVsRandom) {
  PlantedPartitionOptions opt;
  opt.num_nodes = 800;
  opt.num_communities = 8;
  opt.mean_degree = 12.0;
  opt.mixing = 0.1;
  opt.seed = 1;
  auto planted = GeneratePlantedPartition(opt);
  SocialGraph random =
      GenerateErdosRenyi(800, planted.graph.num_edges(), 2);
  EXPECT_GT(GlobalClusteringCoefficient(planted.graph),
            2.0 * GlobalClusteringCoefficient(random));
}

TEST(PathLengthTest, PathGraphExact) {
  // 0-1-2-3: distances from all sources (exact mode).
  SocialGraph g = SocialGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  PathLengthStats stats = SampleShortestPaths(g, 100, 3);
  // Pairwise distances (ordered pairs): 1,2,3,1,1,2 (and symmetric) ->
  // mean = (2*(1+2+3+1+1+2))/12 = 10/6.
  EXPECT_NEAR(stats.average_distance, 10.0 / 6.0, 1e-12);
  EXPECT_EQ(stats.observed_diameter, 3);
  EXPECT_EQ(stats.sampled_sources, 4);
}

TEST(PathLengthTest, SmallWorldGraphHasShortPaths) {
  SocialGraph g = GenerateWattsStrogatz(1000, 3, 0.1, 4);
  PathLengthStats stats = SampleShortestPaths(g, 30, 5);
  // A rewired ring of 1000 nodes has average distance far below the
  // lattice's ~83.
  EXPECT_LT(stats.average_distance, 15.0);
  EXPECT_GT(stats.average_distance, 2.0);
}

TEST(NeighborhoodCoverageTest, ExplodesAfterTwoHops) {
  // The Section 2.2 observation on a community graph at social scale.
  PlantedPartitionOptions opt;
  opt.num_nodes = 1500;
  opt.num_communities = 12;
  opt.mean_degree = 14.0;
  opt.seed = 6;
  auto planted = GeneratePlantedPartition(opt);
  double one_hop = MeanNeighborhoodCoverage(planted.graph, 1, 50, 7);
  double two_hop = MeanNeighborhoodCoverage(planted.graph, 2, 50, 7);
  double three_hop = MeanNeighborhoodCoverage(planted.graph, 3, 50, 7);
  EXPECT_LT(one_hop, 0.05);
  EXPECT_GT(three_hop, 5.0 * two_hop * 0.2);  // monotone growth
  EXPECT_GT(three_hop, 0.3);  // most of the graph within 3 hops
  EXPECT_GT(two_hop, one_hop);
}

TEST(NeighborhoodCoverageTest, ZeroHopsIsZero) {
  SocialGraph g = SocialGraph::FromEdges(3, {{0, 1}, {1, 2}});
  EXPECT_DOUBLE_EQ(MeanNeighborhoodCoverage(g, 0, 10, 8), 0.0);
}

// ---------------------------------------------------- Louvain resolution

TEST(LouvainResolutionTest, GeneralizedModularityRecoversStandard) {
  SocialGraph g = GenerateErdosRenyi(100, 300, 9);
  community::Partition p = community::RandomClusters(100, 5, 10);
  EXPECT_DOUBLE_EQ(community::Modularity(g, p),
                   community::GeneralizedModularity(g, p, 1.0));
}

TEST(LouvainResolutionTest, HigherResolutionFindsMoreClusters) {
  PlantedPartitionOptions opt;
  opt.num_nodes = 1200;
  opt.num_communities = 8;
  opt.sub_communities_per_community = 4;
  opt.sub_mixing = 0.35;
  opt.mean_degree = 14.0;
  opt.seed = 11;
  auto planted = GeneratePlantedPartition(opt);
  community::LouvainOptions base;
  base.restarts = 3;
  base.seed = 12;
  base.resolution = 1.0;
  auto coarse = community::RunLouvain(planted.graph, base);
  base.resolution = 4.0;
  auto fine = community::RunLouvain(planted.graph, base);
  EXPECT_GT(fine.partition.num_clusters(),
            coarse.partition.num_clusters());
}

TEST(LouvainResolutionTest, LowResolutionMergesClusters) {
  PlantedPartitionOptions opt;
  opt.num_nodes = 800;
  opt.num_communities = 10;
  opt.mixing = 0.25;
  opt.seed = 13;
  auto planted = GeneratePlantedPartition(opt);
  community::LouvainOptions base;
  base.restarts = 3;
  base.seed = 14;
  base.resolution = 1.0;
  auto standard = community::RunLouvain(planted.graph, base);
  base.resolution = 0.1;
  auto merged = community::RunLouvain(planted.graph, base);
  EXPECT_LE(merged.partition.num_clusters(),
            standard.partition.num_clusters());
}

}  // namespace
}  // namespace privrec::graph
