// Tests for the observability layer (src/obs): registry semantics under
// concurrency, span nesting, exporter goldens, driver flag plumbing, and
// the determinism guard (metrics + tracing must never perturb
// recommendation output).
//
// Live-registry assertions are gated on obs::kCompiledIn so this suite
// stays green in a PRIVREC_OBS=OFF build (where the no-op shells always
// report zero and exporters emit empty documents).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/driver_flags.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "data/synthetic.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/rolling_window.h"
#include "obs/trace.h"
#include "obs/wide_event.h"
#include "similarity/common_neighbors.h"
#include "similarity/workload.h"

namespace privrec {
namespace {

// ---------------------------------------------------------------- Buckets

TEST(BucketsTest, LinearBuckets) {
  std::vector<double> b = obs::LinearBuckets(0.0, 10.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 0.0);
  EXPECT_DOUBLE_EQ(b[1], 10.0);
  EXPECT_DOUBLE_EQ(b[2], 20.0);
  EXPECT_DOUBLE_EQ(b[3], 30.0);
}

TEST(BucketsTest, ExponentialBuckets) {
  std::vector<double> b = obs::ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 2.0);
  EXPECT_DOUBLE_EQ(b[2], 4.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
}

// --------------------------------------------------------------- Registry

TEST(MetricsRegistryTest, CounterIsExactUnderConcurrency) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Counter& counter = obs::GetCounter("privrec.test.concurrent");
  counter.ResetValue();
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (int64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Gauge& gauge = obs::GetGauge("privrec.test.gauge");
  gauge.Set(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
  gauge.Add(0.25);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.75);
  gauge.ResetValue();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(MetricsRegistryTest, HistogramBucketing) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Histogram& hist = obs::GetHistogram(
      "privrec.test.hist", std::vector<double>{1.0, 10.0, 100.0});
  hist.ResetValue();
  hist.Observe(0.5);    // <= 1     -> bucket 0
  hist.Observe(1.0);    // <= 1     -> bucket 0 (bounds are inclusive)
  hist.Observe(5.0);    // <= 10    -> bucket 1
  hist.Observe(100.0);  // <= 100   -> bucket 2
  hist.Observe(1e6);    // overflow -> bucket 3
  ASSERT_EQ(hist.num_buckets(), 4u);
  EXPECT_EQ(hist.bucket_count(0), 2);
  EXPECT_EQ(hist.bucket_count(1), 1);
  EXPECT_EQ(hist.bucket_count(2), 1);
  EXPECT_EQ(hist.bucket_count(3), 1);
  EXPECT_EQ(hist.count(), 5);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
}

TEST(MetricsRegistryTest, HistogramTotalsExactUnderConcurrency) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Histogram& hist = obs::GetHistogram(
      "privrec.test.hist_concurrent", std::vector<double>{0.5});
  hist.ResetValue();
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&hist] {
      for (int64_t i = 0; i < kPerThread; ++i) hist.Observe(1.0);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(hist.sum(),
                   static_cast<double>(kThreads * kPerThread));
  EXPECT_EQ(hist.bucket_count(1), kThreads * kPerThread);  // overflow
}

TEST(MetricsRegistryTest, SameNameReturnsSameObject) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Counter& a = obs::GetCounter("privrec.test.same");
  obs::Counter& b = obs::GetCounter("privrec.test.same");
  EXPECT_EQ(&a, &b);
  // Re-registration with different bounds returns the first histogram.
  obs::Histogram& h1 = obs::GetHistogram("privrec.test.same_hist",
                                         std::vector<double>{1.0, 2.0});
  obs::Histogram& h2 = obs::GetHistogram("privrec.test.same_hist",
                                         std::vector<double>{99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h1.bounds().size(), 2u);
}

TEST(MetricsRegistryTest, ResetValuesKeepsRegistrations) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Counter& counter = obs::GetCounter("privrec.test.reset");
  counter.Add(41);
  obs::MetricsRegistry::Instance().ResetValues();
  EXPECT_EQ(counter.value(), 0);
  // The cached reference is still live and still registered.
  counter.Increment();
  obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Instance().Snapshot();
  bool found = false;
  for (const obs::CounterSample& c : snapshot.counters) {
    if (c.name == "privrec.test.reset") {
      found = true;
      EXPECT_EQ(c.value, 1);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::GetCounter("privrec.test.zz");
  obs::GetCounter("privrec.test.aa");
  obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Instance().Snapshot();
  for (size_t k = 1; k < snapshot.counters.size(); ++k) {
    EXPECT_LT(snapshot.counters[k - 1].name, snapshot.counters[k].name);
  }
}

// ----------------------------------------------------------------- Tracer

TEST(TracerTest, DisabledRecordsNothing) {
  obs::Tracer::Instance().SetEnabled(false);
  obs::Tracer::Instance().Clear();
  { PRIVREC_SPAN("test.disabled"); }
  EXPECT_TRUE(obs::Tracer::Instance().Snapshot().empty());
}

TEST(TracerTest, RecordsNestedSpansWithDepthAndChunk) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Tracer::Instance().Clear();
  obs::Tracer::Instance().SetEnabled(true);
  {
    PRIVREC_SPAN("test.outer");
    {
      PRIVREC_SPAN_CHUNK("test.inner", 7);
    }
  }
  obs::Tracer::Instance().SetEnabled(false);
  std::vector<obs::SpanRecord> spans = obs::Tracer::Instance().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by (thread, start): the outer span starts first.
  EXPECT_EQ(spans[0].name, "test.outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[0].chunk, -1);
  EXPECT_EQ(spans[1].name, "test.inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].chunk, 7);
  // Containment: the inner interval nests inside the outer one.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].start_ns + spans[1].duration_ns,
            spans[0].start_ns + spans[0].duration_ns);
  obs::Tracer::Instance().Clear();
}

TEST(TracerTest, SpansFromParallelChunksCarryChunkIds) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Tracer::Instance().Clear();
  obs::Tracer::Instance().SetEnabled(true);
  ScopedThreadCount scoped(4);
  Status run = ParallelFor(1000, [](int64_t, int64_t, int64_t) {});
  ASSERT_TRUE(run.ok());
  obs::Tracer::Instance().SetEnabled(false);
  std::vector<obs::SpanRecord> spans = obs::Tracer::Instance().Snapshot();
  int64_t chunk_spans = 0;
  for (const obs::SpanRecord& s : spans) {
    if (s.name == "parallel.chunk") {
      ++chunk_spans;
      EXPECT_GE(s.chunk, 0);
    }
  }
  EXPECT_GT(chunk_spans, 0);
  obs::Tracer::Instance().Clear();
}

// -------------------------------------------------------------- Exporters

obs::MetricsSnapshot GoldenSnapshot() {
  obs::MetricsSnapshot snapshot;
  snapshot.counters.push_back({"privrec.a.count", 3});
  snapshot.gauges.push_back({"privrec.b.eps", 0.5});
  obs::HistogramSample hist;
  hist.name = "privrec.c.ms";
  hist.bounds = {1.0, 10.0};
  hist.counts = {2, 1, 0};
  hist.count = 3;
  hist.sum = 12.5;
  snapshot.histograms.push_back(hist);
  return snapshot;
}

TEST(ExportTest, TableGolden) {
  std::ostringstream out;
  obs::MetricsToTable(GoldenSnapshot(), out);
  EXPECT_EQ(out.str(),
            "--- metrics ---\n"
            "privrec.a.count  3\n"
            "privrec.b.eps    0.5\n"
            "privrec.c.ms     count=3 sum=12.5 "
            "mean=4.166666666666667\n");
}

TEST(ExportTest, TableEmptySnapshot) {
  std::ostringstream out;
  obs::MetricsToTable(obs::MetricsSnapshot{}, out);
  EXPECT_EQ(out.str(), "--- metrics ---\n(no metrics registered)\n");
}

TEST(ExportTest, JsonGolden) {
  EXPECT_EQ(obs::MetricsToJson(GoldenSnapshot()),
            "{\n"
            "  \"counters\": {\n"
            "    \"privrec.a.count\": 3\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"privrec.b.eps\": 0.5\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"privrec.c.ms\": {\"bounds\": [1, 10], "
            "\"counts\": [2, 1, 0], \"count\": 3, \"sum\": 12.5}\n"
            "  }\n"
            "}\n");
}

TEST(ExportTest, JsonEmptySnapshot) {
  EXPECT_EQ(obs::MetricsToJson(obs::MetricsSnapshot{}),
            "{\n"
            "  \"counters\": {},\n"
            "  \"gauges\": {},\n"
            "  \"histograms\": {}\n"
            "}\n");
}

TEST(ExportTest, ChromeTraceGolden) {
  std::vector<obs::SpanRecord> spans;
  spans.push_back({"phase.outer", 1000, 5000, 0, 0, -1});
  spans.push_back({"phase.chunk", 2000, 1000, 1, 1, 3});
  EXPECT_EQ(obs::SpansToChromeTrace(spans),
            "{\"traceEvents\": [\n"
            "  {\"name\": \"phase.outer\", \"cat\": \"privrec\", "
            "\"ph\": \"X\", \"ts\": 1, \"dur\": 5, \"pid\": 1, "
            "\"tid\": 0, \"args\": {\"depth\": 0}},\n"
            "  {\"name\": \"phase.chunk\", \"cat\": \"privrec\", "
            "\"ph\": \"X\", \"ts\": 2, \"dur\": 1, \"pid\": 1, "
            "\"tid\": 1, \"args\": {\"depth\": 1, \"chunk\": 3}}\n"
            "],\n"
            "\"displayTimeUnit\": \"ms\"}\n");
}

TEST(ExportTest, ChromeTraceEmpty) {
  EXPECT_EQ(obs::SpansToChromeTrace({}),
            "{\"traceEvents\": [],\n\"displayTimeUnit\": \"ms\"}\n");
}

TEST(ExportTest, JsonEscapesSpecialCharacters) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters.push_back({"bad\"name\\with\nnewline", 1});
  std::string json = obs::MetricsToJson(snapshot);
  EXPECT_NE(json.find("bad\\\"name\\\\with\\nnewline"), std::string::npos);
}

TEST(ExportTest, HistogramQuantileGuardsNanAndOutOfRange) {
  obs::HistogramSample s;
  s.bounds = {1.0, 10.0};
  s.counts = {5, 5, 0};
  s.count = 10;
  s.sum = 30.0;
  // Negative and NaN q both clamp to 0; q > 1 clamps to 1.
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(s, -0.5),
                   obs::HistogramQuantile(s, 0.0));
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(s, std::nan("")),
                   obs::HistogramQuantile(s, 0.0));
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(s, 2.0),
                   obs::HistogramQuantile(s, 1.0));
  // Empty sample reads as 0 at every q.
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(obs::HistogramSample{}, 0.5),
                   0.0);
}

TEST(ExportTest, HistogramQuantileExactRankAtBucketBoundary) {
  // 10 observations, 5 in (0,1] and 5 in (1,10]: the rank-5 observation
  // (q=0.5) is the last of bucket 0, so interpolation lands exactly on
  // the shared bucket edge; rank 6 (q=0.6) steps into the next bucket.
  obs::HistogramSample s;
  s.bounds = {1.0, 10.0};
  s.counts = {5, 5, 0};
  s.count = 10;
  s.sum = 30.0;
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(s, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(s, 0.6),
                   1.0 + (10.0 - 1.0) * (1.0 / 5.0));
  // All mass in the overflow bucket: no upper edge, report the last bound.
  obs::HistogramSample overflow;
  overflow.bounds = {1.0, 10.0};
  overflow.counts = {0, 0, 3};
  overflow.count = 3;
  overflow.sum = 300.0;
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(overflow, 0.99), 10.0);
}

TEST(ExportTest, HistogramQuantileBracketsBruteForceOracle) {
  // Oracle check on the serving grid: fold a deterministic sample into
  // the histogram, sort the same values exactly, and require the
  // interpolated quantile to land inside the bucket holding the true
  // rank-statistic.
  const std::vector<double> bounds = obs::LatencyBucketsMs();
  obs::HistogramSample s;
  s.bounds = bounds;
  s.counts.assign(bounds.size() + 1, 0);
  std::vector<double> values;
  uint64_t x = 42;
  for (int i = 0; i < 500; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const double v =
        static_cast<double>(x >> 40) / 16777216.0 * 200.0;  // [0, 200)
    values.push_back(v);
    const size_t b = static_cast<size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), v) -
        bounds.begin());
    ++s.counts[b];
    ++s.count;
    s.sum += v;
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const size_t rank = static_cast<size_t>(std::max(
        1.0, std::ceil(q * static_cast<double>(values.size()))));
    const double exact = values[rank - 1];
    const size_t b = static_cast<size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), exact) -
        bounds.begin());
    ASSERT_LT(b, bounds.size()) << "oracle value fell off the grid";
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    const double hi = bounds[b];
    const double estimate = obs::HistogramQuantile(s, q);
    EXPECT_GE(estimate, lo) << "q=" << q;
    EXPECT_LE(estimate, hi) << "q=" << q;
  }
}

TEST(ExportTest, ChromeTraceSpanArgsGolden) {
  std::vector<obs::SpanRecord> spans;
  spans.push_back({"serve.request", 1000, 5000, 0, 0, -1});
  spans.back().args = {{"request_id", "17"}, {"ba\"d", "line\nbreak"}};
  EXPECT_EQ(obs::SpansToChromeTrace(spans),
            "{\"traceEvents\": [\n"
            "  {\"name\": \"serve.request\", \"cat\": \"privrec\", "
            "\"ph\": \"X\", \"ts\": 1, \"dur\": 5, \"pid\": 1, "
            "\"tid\": 0, \"args\": {\"depth\": 0, "
            "\"request_id\": \"17\", \"ba\\\"d\": \"line\\nbreak\"}}\n"
            "],\n"
            "\"displayTimeUnit\": \"ms\"}\n");
}

TEST(ExportTest, JsonEscapeControlCharactersAreUnicodeEscaped) {
  // Bytes below 0x20 must come out as \u00XX even when char is signed —
  // the cast chain must not sign-extend.
  EXPECT_EQ(obs::JsonEscape("a" + std::string(1, '\x01') + "b"),
            "a\\u0001b");
  EXPECT_EQ(obs::JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(obs::JsonEscape("q\"b\\s"), "q\\\"b\\\\s");
}

TEST(TracerTest, SpanScopeArgsReachTheSnapshot) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Tracer::Instance().Clear();
  obs::Tracer::Instance().SetEnabled(true);
  {
    obs::SpanScope span("test.args_span");
    span.Arg("request_id", "99");
    span.Arg("epoch", "4");
  }
  obs::Tracer::Instance().SetEnabled(false);
  std::vector<obs::SpanRecord> spans = obs::Tracer::Instance().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].args.size(), 2u);
  EXPECT_EQ(spans[0].args[0].first, "request_id");
  EXPECT_EQ(spans[0].args[0].second, "99");
  EXPECT_EQ(spans[0].args[1].first, "epoch");
  EXPECT_EQ(spans[0].args[1].second, "4");
  obs::Tracer::Instance().Clear();
}

// ------------------------------------------------------------ Wide events

obs::RequestTelemetry GoldenEvent() {
  obs::RequestTelemetry event;
  event.request_id = 7;
  event.arrival_ms = 100;
  event.resolve_ms = 106;
  event.latency_ms = 6.5;
  event.outcome = obs::RequestOutcome::kOk;
  event.admission = obs::AdmissionOutcome::kQueued;
  event.queue_wait_ms = 1;
  event.route_ms = 0.5;
  event.reconstruct_ms = 4.0;
  event.epoch = 3;
  event.artifact_seed = 42;
  event.shard_count = 2;
  event.shards_touched = {0, 1};
  event.users = 4;
  event.top_n = 10;
  event.deadline_ms = 400;
  event.degraded = false;
  event.users_degraded = 0;
  event.retry_after_ms = 0;
  event.batch_requests = 2;
  event.batch_users = 6;
  return event;
}

TEST(WideEventTest, JsonGolden) {
  EXPECT_EQ(obs::RequestTelemetryToJson(GoldenEvent()),
            "{\"type\": \"request\", \"id\": 7, \"arrival_ms\": 100, "
            "\"resolve_ms\": 106, \"latency_ms\": 6.5, "
            "\"outcome\": \"ok\", \"admission\": \"queued\", "
            "\"queue_ms\": 1, \"route_ms\": 0.5, "
            "\"reconstruct_ms\": 4, \"epoch\": 3, \"artifact_seed\": 42, "
            "\"shard_count\": 2, \"shards\": [0, 1], \"users\": 4, "
            "\"top_n\": 10, \"deadline_ms\": 400, \"degraded\": false, "
            "\"users_degraded\": 0, \"retry_after_ms\": 0, "
            "\"batch_requests\": 2, \"batch_users\": 6}");
}

TEST(WideEventTest, SamplingKeepsEveryInterestingRequest) {
  obs::WideEventSampling sampling;  // 1-in-16, slow at 100 ms
  obs::RequestTelemetry event = GoldenEvent();
  event.outcome = obs::RequestOutcome::kShed;
  EXPECT_TRUE(obs::SampleWideEvent(event, sampling));
  event = GoldenEvent();
  event.degraded = true;
  EXPECT_TRUE(obs::SampleWideEvent(event, sampling));
  event = GoldenEvent();
  event.latency_ms = 250.0;
  EXPECT_TRUE(obs::SampleWideEvent(event, sampling));
  // slow_ms < 0 disables the slow keep.
  obs::WideEventSampling no_slow;
  no_slow.slow_ms = -1.0;
  no_slow.sample_every = 1u << 20;
  EXPECT_FALSE(obs::SampleWideEvent(event, no_slow));
  // sample_every <= 1 keeps everything.
  obs::WideEventSampling keep_all;
  keep_all.sample_every = 1;
  EXPECT_TRUE(obs::SampleWideEvent(GoldenEvent(), keep_all));
}

TEST(WideEventTest, OkSamplingIsAPureFunctionOfTheRequestId) {
  // The 1-in-K subset is keyed off a splitmix64 mix of the id: the same
  // id set always yields the same sample, and the rate is close to 1/K.
  obs::WideEventSampling sampling;
  sampling.sample_every = 16;
  sampling.slow_ms = -1.0;
  int64_t kept = 0;
  for (uint64_t id = 1; id <= 4096; ++id) {
    obs::RequestTelemetry event = GoldenEvent();
    event.request_id = id;
    const bool sampled = obs::SampleWideEvent(event, sampling);
    EXPECT_EQ(sampled, obs::MixRequestId(id) % 16 == 0) << "id " << id;
    kept += sampled ? 1 : 0;
  }
  EXPECT_GT(kept, 4096 / 16 / 2);
  EXPECT_LT(kept, 4096 / 16 * 2);
}

// -------------------------------------------------------- Rolling windows

TEST(RollingWindowsTest, AlignsToGridAndClosesEmptyWindows) {
  obs::RollingWindows windows(100);
  windows.Observe(37, obs::RequestOutcome::kOk, false, 2.0);
  windows.Observe(95, obs::RequestOutcome::kShed, true, 0.0);
  windows.Observe(105, obs::RequestOutcome::kOk, false, 4.0);
  // Jump over three idle windows: every one must be closed (idle periods
  // still count toward burn-down), not silently skipped.
  windows.Observe(450, obs::RequestOutcome::kExpired, false, 50.0);
  windows.Flush();
  const obs::WindowSeries& series = windows.series();
  ASSERT_EQ(series.windows.size(), 5u);
  EXPECT_EQ(series.windows[0].start_ms, 0);
  EXPECT_EQ(series.windows[0].requests, 2);
  EXPECT_EQ(series.windows[0].ok, 1);
  EXPECT_EQ(series.windows[0].shed, 1);
  EXPECT_EQ(series.windows[0].degraded, 1);
  EXPECT_DOUBLE_EQ(series.windows[0].rps, 20.0);
  EXPECT_DOUBLE_EQ(series.windows[0].shed_rate, 0.5);
  EXPECT_EQ(series.windows[1].start_ms, 100);
  EXPECT_EQ(series.windows[1].requests, 1);
  EXPECT_EQ(series.windows[2].requests, 0);
  EXPECT_EQ(series.windows[3].requests, 0);
  EXPECT_EQ(series.windows[4].start_ms, 400);
  EXPECT_EQ(series.windows[4].expired, 1);
  for (size_t i = 0; i < series.windows.size(); ++i) {
    EXPECT_EQ(series.windows[i].index, static_cast<int64_t>(i));
  }
  EXPECT_EQ(windows.observed(), 4);
}

TEST(RollingWindowsTest, BudgetBreachRaisesBurnAlert) {
  obs::WindowBudget budget;
  budget.p99_ms = 5.0;
  budget.lookback = 4;
  budget.burn_threshold = 0.2;  // strictly-greater: 1/4 must fire
  obs::RollingWindows windows(100, budget);
  // Two fast windows, then two slow ones: burn crosses the threshold on
  // the first breach (1/4) and stays up on the second.
  windows.Observe(10, obs::RequestOutcome::kOk, false, 1.0);
  windows.Observe(110, obs::RequestOutcome::kOk, false, 1.0);
  windows.Observe(210, obs::RequestOutcome::kOk, false, 80.0);
  windows.Observe(310, obs::RequestOutcome::kOk, false, 80.0);
  windows.Flush();
  const obs::WindowSeries& series = windows.series();
  ASSERT_EQ(series.windows.size(), 4u);
  EXPECT_FALSE(series.windows[0].breach);
  EXPECT_FALSE(series.windows[1].breach);
  EXPECT_TRUE(series.windows[2].breach);
  EXPECT_TRUE(series.windows[3].breach);
  EXPECT_NE(series.windows[2].breach_reason.find("p99"),
            std::string::npos);
  EXPECT_EQ(windows.breaches(), 2);
  ASSERT_EQ(series.alerts.size(), 2u);
  EXPECT_EQ(series.alerts[0].window_index, 2);
  EXPECT_DOUBLE_EQ(series.alerts[0].burn_rate, 0.25);
  EXPECT_DOUBLE_EQ(series.alerts[1].burn_rate, 0.5);
  EXPECT_DOUBLE_EQ(windows.burn_rate(), 0.5);
}

TEST(RollingWindowsTest, BurnRateDecaysThroughIdleWindows) {
  obs::WindowBudget budget;
  budget.max_shed_rate = 0.0;  // any shed at all breaches
  budget.lookback = 2;
  budget.burn_threshold = 0.75;
  obs::RollingWindows windows(100, budget);
  windows.Observe(10, obs::RequestOutcome::kShed, true, 0.0);
  EXPECT_DOUBLE_EQ(windows.burn_rate(), 0.0);  // window still open
  // Six empty windows close behind this observation; the breach bit ages
  // out of the 2-deep ring.
  windows.Observe(710, obs::RequestOutcome::kOk, false, 1.0);
  EXPECT_DOUBLE_EQ(windows.burn_rate(), 0.0);
  EXPECT_EQ(windows.breaches(), 1);
  EXPECT_TRUE(windows.series().alerts.empty());  // 0.5 never beat 0.75
  windows.Flush();
}

TEST(RollingWindowsTest, EvictsOldestWindowPastTheCap) {
  obs::RollingWindows windows(100, obs::WindowBudget{}, /*max_windows=*/3);
  for (int64_t w = 0; w < 6; ++w) {
    windows.Observe(w * 100 + 10, obs::RequestOutcome::kOk, false, 1.0);
  }
  windows.Flush();
  const obs::WindowSeries& series = windows.series();
  ASSERT_EQ(series.windows.size(), 3u);
  EXPECT_EQ(series.dropped_windows, 3);
  EXPECT_EQ(series.windows.front().index, 3);
  EXPECT_EQ(series.windows.back().index, 5);
}

TEST(RollingWindowsTest, SeriesJsonIsDeterministic) {
  auto run = [] {
    obs::WindowBudget budget;
    budget.p99_ms = 3.0;
    obs::RollingWindows windows(50, budget);
    for (int64_t i = 0; i < 40; ++i) {
      windows.Observe(i * 13,
                      i % 7 == 0 ? obs::RequestOutcome::kShed
                                 : obs::RequestOutcome::kOk,
                      i % 7 == 0, static_cast<double>(i % 9));
    }
    windows.Flush();
    return obs::WindowSeriesToJson(windows.series());
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_NE(first.find("\"windows\": ["), std::string::npos);
}

// ------------------------------------------------------------ ScopedTimer

TEST(ScopedTimerTest, AccumulatesIntoHistogram) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Histogram& hist = obs::GetHistogram(
      "privrec.test.timer_ms", obs::ExponentialBuckets(1.0, 10.0, 4));
  hist.ResetValue();
  {
    ScopedTimer timer(&hist);
  }
  EXPECT_EQ(hist.count(), 1);
  EXPECT_GE(hist.sum(), 0.0);
  // Stop() is idempotent: a second stop records nothing more.
  ScopedTimer timer(&hist);
  timer.Stop();
  timer.Stop();
  EXPECT_EQ(hist.count(), 2);
}

TEST(ScopedTimerTest, NullSinkIsSafe) {
  ScopedTimer timer(nullptr);
  timer.Stop();
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
}

// ------------------------------------------------------------- ObsSession

TEST(ObsSessionTest, WritesRequestedExports) {
  const std::string metrics_path = ::testing::TempDir() + "obs_m.json";
  const std::string trace_path = ::testing::TempDir() + "obs_t.json";
  const std::string metrics_arg = "--metrics-json=" + metrics_path;
  const std::string trace_arg = "--trace-out=" + trace_path;
  const char* argv[] = {"prog", metrics_arg.c_str(), trace_arg.c_str()};
  FlagParser flags(3, const_cast<char**>(argv));
  {
    ObsSession session = ApplyDriverFlags(flags);
    EXPECT_TRUE(flags.Validate());
    obs::GetCounter("privrec.test.session").Increment();
    { PRIVREC_SPAN("test.session_span"); }
  }
  // The destructor wrote both files and disabled the tracer.
  EXPECT_FALSE(obs::Tracer::Instance().enabled());
  std::ifstream metrics_in(metrics_path);
  ASSERT_TRUE(metrics_in.good());
  std::stringstream metrics_text;
  metrics_text << metrics_in.rdbuf();
  EXPECT_NE(metrics_text.str().find("\"counters\""), std::string::npos);
  std::ifstream trace_in(trace_path);
  ASSERT_TRUE(trace_in.good());
  std::stringstream trace_text;
  trace_text << trace_in.rdbuf();
  EXPECT_NE(trace_text.str().find("traceEvents"), std::string::npos);
  if (obs::kCompiledIn) {
    EXPECT_NE(metrics_text.str().find("privrec.test.session"),
              std::string::npos);
    EXPECT_NE(trace_text.str().find("test.session_span"),
              std::string::npos);
  }
  obs::Tracer::Instance().Clear();
  std::remove(metrics_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(ObsSessionTest, TypoSuggestionsCoverObsFlags) {
  const char* argv[] = {"prog", "--trace-oot=/tmp/t.json"};
  FlagParser flags(2, const_cast<char**>(argv));
  ObsSession session = ApplyDriverFlags(flags);
  EXPECT_EQ(flags.SuggestionFor("trace-oot"), "trace-out");
  EXPECT_FALSE(flags.Validate());
  EXPECT_EQ(flags.SuggestionFor("metrics-jsan"), "metrics-json");
}

// ---------------------------------------------------- Determinism guard

std::vector<core::RecommendationList> RunPipelineOnce(int64_t threads) {
  ScopedThreadCount scoped(threads);
  static const data::Dataset& dataset =
      *new data::Dataset(data::MakeTinyDataset(300, 400, 3));
  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::Compute(
          dataset.social, similarity::CommonNeighbors());
  core::RecommenderContext context{&dataset.social, &dataset.preferences,
                                   &workload};
  community::LouvainResult louvain =
      community::RunLouvain(dataset.social, {.restarts = 2, .seed = 11});
  core::ClusterRecommender rec(context, louvain.partition,
                               {.epsilon = 0.5, .seed = 12});
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < dataset.social.num_nodes(); ++u) {
    users.push_back(u);
  }
  return rec.Recommend(users, 10);
}

TEST(ObsDeterminismTest, TracingAndMetricsNeverPerturbOutput) {
  // The zero-interference contract: the full pipeline produces
  // bit-identical recommendations whether tracing is on or off, at any
  // thread count. This is what makes it safe to leave instrumentation in
  // the DP release paths — observation cannot consume randomness or
  // change FP evaluation order.
  obs::Tracer::Instance().SetEnabled(false);
  obs::Tracer::Instance().Clear();
  std::vector<core::RecommendationList> baseline = RunPipelineOnce(1);

  for (int64_t threads : {int64_t{1}, int64_t{4}}) {
    obs::Tracer::Instance().SetEnabled(true);
    std::vector<core::RecommendationList> traced =
        RunPipelineOnce(threads);
    obs::Tracer::Instance().SetEnabled(false);
    obs::Tracer::Instance().Clear();
    ASSERT_EQ(traced.size(), baseline.size());
    for (size_t u = 0; u < baseline.size(); ++u) {
      ASSERT_EQ(traced[u].size(), baseline[u].size()) << "user " << u;
      for (size_t k = 0; k < baseline[u].size(); ++k) {
        EXPECT_EQ(traced[u][k].item, baseline[u][k].item)
            << "user " << u << " rank " << k;
        EXPECT_EQ(traced[u][k].utility, baseline[u][k].utility)
            << "user " << u << " rank " << k;
      }
    }
  }
}

}  // namespace
}  // namespace privrec
