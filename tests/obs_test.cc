// Tests for the observability layer (src/obs): registry semantics under
// concurrency, span nesting, exporter goldens, driver flag plumbing, and
// the determinism guard (metrics + tracing must never perturb
// recommendation output).
//
// Live-registry assertions are gated on obs::kCompiledIn so this suite
// stays green in a PRIVREC_OBS=OFF build (where the no-op shells always
// report zero and exporters emit empty documents).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/driver_flags.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "data/synthetic.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "similarity/common_neighbors.h"
#include "similarity/workload.h"

namespace privrec {
namespace {

// ---------------------------------------------------------------- Buckets

TEST(BucketsTest, LinearBuckets) {
  std::vector<double> b = obs::LinearBuckets(0.0, 10.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 0.0);
  EXPECT_DOUBLE_EQ(b[1], 10.0);
  EXPECT_DOUBLE_EQ(b[2], 20.0);
  EXPECT_DOUBLE_EQ(b[3], 30.0);
}

TEST(BucketsTest, ExponentialBuckets) {
  std::vector<double> b = obs::ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 2.0);
  EXPECT_DOUBLE_EQ(b[2], 4.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
}

// --------------------------------------------------------------- Registry

TEST(MetricsRegistryTest, CounterIsExactUnderConcurrency) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Counter& counter = obs::GetCounter("privrec.test.concurrent");
  counter.ResetValue();
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (int64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Gauge& gauge = obs::GetGauge("privrec.test.gauge");
  gauge.Set(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
  gauge.Add(0.25);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.75);
  gauge.ResetValue();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(MetricsRegistryTest, HistogramBucketing) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Histogram& hist = obs::GetHistogram(
      "privrec.test.hist", std::vector<double>{1.0, 10.0, 100.0});
  hist.ResetValue();
  hist.Observe(0.5);    // <= 1     -> bucket 0
  hist.Observe(1.0);    // <= 1     -> bucket 0 (bounds are inclusive)
  hist.Observe(5.0);    // <= 10    -> bucket 1
  hist.Observe(100.0);  // <= 100   -> bucket 2
  hist.Observe(1e6);    // overflow -> bucket 3
  ASSERT_EQ(hist.num_buckets(), 4u);
  EXPECT_EQ(hist.bucket_count(0), 2);
  EXPECT_EQ(hist.bucket_count(1), 1);
  EXPECT_EQ(hist.bucket_count(2), 1);
  EXPECT_EQ(hist.bucket_count(3), 1);
  EXPECT_EQ(hist.count(), 5);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
}

TEST(MetricsRegistryTest, HistogramTotalsExactUnderConcurrency) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Histogram& hist = obs::GetHistogram(
      "privrec.test.hist_concurrent", std::vector<double>{0.5});
  hist.ResetValue();
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&hist] {
      for (int64_t i = 0; i < kPerThread; ++i) hist.Observe(1.0);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(hist.sum(),
                   static_cast<double>(kThreads * kPerThread));
  EXPECT_EQ(hist.bucket_count(1), kThreads * kPerThread);  // overflow
}

TEST(MetricsRegistryTest, SameNameReturnsSameObject) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Counter& a = obs::GetCounter("privrec.test.same");
  obs::Counter& b = obs::GetCounter("privrec.test.same");
  EXPECT_EQ(&a, &b);
  // Re-registration with different bounds returns the first histogram.
  obs::Histogram& h1 = obs::GetHistogram("privrec.test.same_hist",
                                         std::vector<double>{1.0, 2.0});
  obs::Histogram& h2 = obs::GetHistogram("privrec.test.same_hist",
                                         std::vector<double>{99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h1.bounds().size(), 2u);
}

TEST(MetricsRegistryTest, ResetValuesKeepsRegistrations) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Counter& counter = obs::GetCounter("privrec.test.reset");
  counter.Add(41);
  obs::MetricsRegistry::Instance().ResetValues();
  EXPECT_EQ(counter.value(), 0);
  // The cached reference is still live and still registered.
  counter.Increment();
  obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Instance().Snapshot();
  bool found = false;
  for (const obs::CounterSample& c : snapshot.counters) {
    if (c.name == "privrec.test.reset") {
      found = true;
      EXPECT_EQ(c.value, 1);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::GetCounter("privrec.test.zz");
  obs::GetCounter("privrec.test.aa");
  obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Instance().Snapshot();
  for (size_t k = 1; k < snapshot.counters.size(); ++k) {
    EXPECT_LT(snapshot.counters[k - 1].name, snapshot.counters[k].name);
  }
}

// ----------------------------------------------------------------- Tracer

TEST(TracerTest, DisabledRecordsNothing) {
  obs::Tracer::Instance().SetEnabled(false);
  obs::Tracer::Instance().Clear();
  { PRIVREC_SPAN("test.disabled"); }
  EXPECT_TRUE(obs::Tracer::Instance().Snapshot().empty());
}

TEST(TracerTest, RecordsNestedSpansWithDepthAndChunk) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Tracer::Instance().Clear();
  obs::Tracer::Instance().SetEnabled(true);
  {
    PRIVREC_SPAN("test.outer");
    {
      PRIVREC_SPAN_CHUNK("test.inner", 7);
    }
  }
  obs::Tracer::Instance().SetEnabled(false);
  std::vector<obs::SpanRecord> spans = obs::Tracer::Instance().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by (thread, start): the outer span starts first.
  EXPECT_EQ(spans[0].name, "test.outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[0].chunk, -1);
  EXPECT_EQ(spans[1].name, "test.inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].chunk, 7);
  // Containment: the inner interval nests inside the outer one.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].start_ns + spans[1].duration_ns,
            spans[0].start_ns + spans[0].duration_ns);
  obs::Tracer::Instance().Clear();
}

TEST(TracerTest, SpansFromParallelChunksCarryChunkIds) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Tracer::Instance().Clear();
  obs::Tracer::Instance().SetEnabled(true);
  ScopedThreadCount scoped(4);
  Status run = ParallelFor(1000, [](int64_t, int64_t, int64_t) {});
  ASSERT_TRUE(run.ok());
  obs::Tracer::Instance().SetEnabled(false);
  std::vector<obs::SpanRecord> spans = obs::Tracer::Instance().Snapshot();
  int64_t chunk_spans = 0;
  for (const obs::SpanRecord& s : spans) {
    if (s.name == "parallel.chunk") {
      ++chunk_spans;
      EXPECT_GE(s.chunk, 0);
    }
  }
  EXPECT_GT(chunk_spans, 0);
  obs::Tracer::Instance().Clear();
}

// -------------------------------------------------------------- Exporters

obs::MetricsSnapshot GoldenSnapshot() {
  obs::MetricsSnapshot snapshot;
  snapshot.counters.push_back({"privrec.a.count", 3});
  snapshot.gauges.push_back({"privrec.b.eps", 0.5});
  obs::HistogramSample hist;
  hist.name = "privrec.c.ms";
  hist.bounds = {1.0, 10.0};
  hist.counts = {2, 1, 0};
  hist.count = 3;
  hist.sum = 12.5;
  snapshot.histograms.push_back(hist);
  return snapshot;
}

TEST(ExportTest, TableGolden) {
  std::ostringstream out;
  obs::MetricsToTable(GoldenSnapshot(), out);
  EXPECT_EQ(out.str(),
            "--- metrics ---\n"
            "privrec.a.count  3\n"
            "privrec.b.eps    0.5\n"
            "privrec.c.ms     count=3 sum=12.5 "
            "mean=4.166666666666667\n");
}

TEST(ExportTest, TableEmptySnapshot) {
  std::ostringstream out;
  obs::MetricsToTable(obs::MetricsSnapshot{}, out);
  EXPECT_EQ(out.str(), "--- metrics ---\n(no metrics registered)\n");
}

TEST(ExportTest, JsonGolden) {
  EXPECT_EQ(obs::MetricsToJson(GoldenSnapshot()),
            "{\n"
            "  \"counters\": {\n"
            "    \"privrec.a.count\": 3\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"privrec.b.eps\": 0.5\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"privrec.c.ms\": {\"bounds\": [1, 10], "
            "\"counts\": [2, 1, 0], \"count\": 3, \"sum\": 12.5}\n"
            "  }\n"
            "}\n");
}

TEST(ExportTest, JsonEmptySnapshot) {
  EXPECT_EQ(obs::MetricsToJson(obs::MetricsSnapshot{}),
            "{\n"
            "  \"counters\": {},\n"
            "  \"gauges\": {},\n"
            "  \"histograms\": {}\n"
            "}\n");
}

TEST(ExportTest, ChromeTraceGolden) {
  std::vector<obs::SpanRecord> spans;
  spans.push_back({"phase.outer", 1000, 5000, 0, 0, -1});
  spans.push_back({"phase.chunk", 2000, 1000, 1, 1, 3});
  EXPECT_EQ(obs::SpansToChromeTrace(spans),
            "{\"traceEvents\": [\n"
            "  {\"name\": \"phase.outer\", \"cat\": \"privrec\", "
            "\"ph\": \"X\", \"ts\": 1, \"dur\": 5, \"pid\": 1, "
            "\"tid\": 0, \"args\": {\"depth\": 0}},\n"
            "  {\"name\": \"phase.chunk\", \"cat\": \"privrec\", "
            "\"ph\": \"X\", \"ts\": 2, \"dur\": 1, \"pid\": 1, "
            "\"tid\": 1, \"args\": {\"depth\": 1, \"chunk\": 3}}\n"
            "],\n"
            "\"displayTimeUnit\": \"ms\"}\n");
}

TEST(ExportTest, ChromeTraceEmpty) {
  EXPECT_EQ(obs::SpansToChromeTrace({}),
            "{\"traceEvents\": [],\n\"displayTimeUnit\": \"ms\"}\n");
}

TEST(ExportTest, JsonEscapesSpecialCharacters) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters.push_back({"bad\"name\\with\nnewline", 1});
  std::string json = obs::MetricsToJson(snapshot);
  EXPECT_NE(json.find("bad\\\"name\\\\with\\nnewline"), std::string::npos);
}

// ------------------------------------------------------------ ScopedTimer

TEST(ScopedTimerTest, AccumulatesIntoHistogram) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::Histogram& hist = obs::GetHistogram(
      "privrec.test.timer_ms", obs::ExponentialBuckets(1.0, 10.0, 4));
  hist.ResetValue();
  {
    ScopedTimer timer(&hist);
  }
  EXPECT_EQ(hist.count(), 1);
  EXPECT_GE(hist.sum(), 0.0);
  // Stop() is idempotent: a second stop records nothing more.
  ScopedTimer timer(&hist);
  timer.Stop();
  timer.Stop();
  EXPECT_EQ(hist.count(), 2);
}

TEST(ScopedTimerTest, NullSinkIsSafe) {
  ScopedTimer timer(nullptr);
  timer.Stop();
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
}

// ------------------------------------------------------------- ObsSession

TEST(ObsSessionTest, WritesRequestedExports) {
  const std::string metrics_path = ::testing::TempDir() + "obs_m.json";
  const std::string trace_path = ::testing::TempDir() + "obs_t.json";
  const std::string metrics_arg = "--metrics-json=" + metrics_path;
  const std::string trace_arg = "--trace-out=" + trace_path;
  const char* argv[] = {"prog", metrics_arg.c_str(), trace_arg.c_str()};
  FlagParser flags(3, const_cast<char**>(argv));
  {
    ObsSession session = ApplyDriverFlags(flags);
    EXPECT_TRUE(flags.Validate());
    obs::GetCounter("privrec.test.session").Increment();
    { PRIVREC_SPAN("test.session_span"); }
  }
  // The destructor wrote both files and disabled the tracer.
  EXPECT_FALSE(obs::Tracer::Instance().enabled());
  std::ifstream metrics_in(metrics_path);
  ASSERT_TRUE(metrics_in.good());
  std::stringstream metrics_text;
  metrics_text << metrics_in.rdbuf();
  EXPECT_NE(metrics_text.str().find("\"counters\""), std::string::npos);
  std::ifstream trace_in(trace_path);
  ASSERT_TRUE(trace_in.good());
  std::stringstream trace_text;
  trace_text << trace_in.rdbuf();
  EXPECT_NE(trace_text.str().find("traceEvents"), std::string::npos);
  if (obs::kCompiledIn) {
    EXPECT_NE(metrics_text.str().find("privrec.test.session"),
              std::string::npos);
    EXPECT_NE(trace_text.str().find("test.session_span"),
              std::string::npos);
  }
  obs::Tracer::Instance().Clear();
  std::remove(metrics_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(ObsSessionTest, TypoSuggestionsCoverObsFlags) {
  const char* argv[] = {"prog", "--trace-oot=/tmp/t.json"};
  FlagParser flags(2, const_cast<char**>(argv));
  ObsSession session = ApplyDriverFlags(flags);
  EXPECT_EQ(flags.SuggestionFor("trace-oot"), "trace-out");
  EXPECT_FALSE(flags.Validate());
  EXPECT_EQ(flags.SuggestionFor("metrics-jsan"), "metrics-json");
}

// ---------------------------------------------------- Determinism guard

std::vector<core::RecommendationList> RunPipelineOnce(int64_t threads) {
  ScopedThreadCount scoped(threads);
  static const data::Dataset& dataset =
      *new data::Dataset(data::MakeTinyDataset(300, 400, 3));
  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::Compute(
          dataset.social, similarity::CommonNeighbors());
  core::RecommenderContext context{&dataset.social, &dataset.preferences,
                                   &workload};
  community::LouvainResult louvain =
      community::RunLouvain(dataset.social, {.restarts = 2, .seed = 11});
  core::ClusterRecommender rec(context, louvain.partition,
                               {.epsilon = 0.5, .seed = 12});
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < dataset.social.num_nodes(); ++u) {
    users.push_back(u);
  }
  return rec.Recommend(users, 10);
}

TEST(ObsDeterminismTest, TracingAndMetricsNeverPerturbOutput) {
  // The zero-interference contract: the full pipeline produces
  // bit-identical recommendations whether tracing is on or off, at any
  // thread count. This is what makes it safe to leave instrumentation in
  // the DP release paths — observation cannot consume randomness or
  // change FP evaluation order.
  obs::Tracer::Instance().SetEnabled(false);
  obs::Tracer::Instance().Clear();
  std::vector<core::RecommendationList> baseline = RunPipelineOnce(1);

  for (int64_t threads : {int64_t{1}, int64_t{4}}) {
    obs::Tracer::Instance().SetEnabled(true);
    std::vector<core::RecommendationList> traced =
        RunPipelineOnce(threads);
    obs::Tracer::Instance().SetEnabled(false);
    obs::Tracer::Instance().Clear();
    ASSERT_EQ(traced.size(), baseline.size());
    for (size_t u = 0; u < baseline.size(); ++u) {
      ASSERT_EQ(traced[u].size(), baseline[u].size()) << "user " << u;
      for (size_t k = 0; k < baseline[u].size(); ++k) {
        EXPECT_EQ(traced[u][k].item, baseline[u][k].item)
            << "user " << u << " rank " << k;
        EXPECT_EQ(traced[u][k].utility, baseline[u][k].utility)
            << "user " << u << " rank " << k;
      }
    }
  }
}

}  // namespace
}  // namespace privrec
