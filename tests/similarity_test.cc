// Tests for the four social similarity measures (Section 2.2) on
// hand-computed graphs, plus parameterized property suites (symmetry,
// non-negativity) and the SimilarityWorkload.

#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "graph/generators/erdos_renyi.h"
#include "graph/generators/planted_partition.h"
#include "similarity/adamic_adar.h"
#include "similarity/common_neighbors.h"
#include "similarity/graph_distance.h"
#include "similarity/katz.h"
#include "similarity/workload.h"
#include "similarity/workload_io.h"

namespace privrec::similarity {
namespace {

using graph::NodeId;
using graph::SocialGraph;

double Score(const std::vector<SimilarityEntry>& row, NodeId v) {
  for (const SimilarityEntry& e : row) {
    if (e.user == v) return e.score;
  }
  return 0.0;
}

// The "kite": 0-1, 0-2, 1-2, 1-3, 2-3, 3-4.
SocialGraph Kite() {
  return SocialGraph::FromEdges(
      5, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}});
}

// ------------------------------------------------------ Common Neighbors

TEST(CommonNeighborsTest, HandComputedKite) {
  SocialGraph g = Kite();
  CommonNeighbors cn;
  DenseScratch scratch;
  auto row0 = cn.Row(g, 0, &scratch);
  // Γ(0) = {1, 2}. Common with 1: Γ(1) = {0,2,3} -> {2}: 1.
  EXPECT_DOUBLE_EQ(Score(row0, 1), 1.0);
  // Common with 2: {1}: 1.
  EXPECT_DOUBLE_EQ(Score(row0, 2), 1.0);
  // Common with 3: Γ(3) = {1,2,4} -> {1,2}: 2.
  EXPECT_DOUBLE_EQ(Score(row0, 3), 2.0);
  // Common with 4: Γ(4) = {3}: none.
  EXPECT_DOUBLE_EQ(Score(row0, 4), 0.0);
  // Self excluded.
  EXPECT_DOUBLE_EQ(Score(row0, 0), 0.0);
}

TEST(CommonNeighborsTest, IsolatedNodeHasEmptyRow) {
  SocialGraph g = SocialGraph::FromEdges(3, {{0, 1}});
  CommonNeighbors cn;
  DenseScratch scratch;
  EXPECT_TRUE(cn.Row(g, 2, &scratch).empty());
}

TEST(CommonNeighborsTest, DirectNeighborsWithoutCommonFriendScoreZero) {
  SocialGraph g = SocialGraph::FromEdges(2, {{0, 1}});
  CommonNeighbors cn;
  DenseScratch scratch;
  EXPECT_TRUE(cn.Row(g, 0, &scratch).empty());
}

// ---------------------------------------------------------- Adamic/Adar

TEST(AdamicAdarTest, HandComputedKite) {
  SocialGraph g = Kite();
  AdamicAdar aa;
  DenseScratch scratch;
  auto row0 = aa.Row(g, 0, &scratch);
  // Common neighbor of 0 and 3: nodes 1 and 2, each of degree 3:
  // 2 / log(3).
  EXPECT_NEAR(Score(row0, 3), 2.0 / std::log(3.0), 1e-12);
  // Common neighbor of 0 and 1: node 2 of degree 3.
  EXPECT_NEAR(Score(row0, 1), 1.0 / std::log(3.0), 1e-12);
}

TEST(AdamicAdarTest, DegreeTwoNeighborUsesLogTwo) {
  // Path 0-1-2: node 1 has degree 2 and is the common neighbor of 0 and 2.
  SocialGraph g = SocialGraph::FromEdges(3, {{0, 1}, {1, 2}});
  AdamicAdar aa;
  DenseScratch scratch;
  auto row0 = aa.Row(g, 0, &scratch);
  EXPECT_NEAR(Score(row0, 2), 1.0 / std::log(2.0), 1e-12);
}

// ------------------------------------------------------- Graph Distance

TEST(GraphDistanceTest, InverseDistanceWithCutoff) {
  // Path 0-1-2-3-4.
  SocialGraph g = SocialGraph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  GraphDistance gd(/*max_distance=*/2);
  DenseScratch scratch;
  auto row0 = gd.Row(g, 0, &scratch);
  EXPECT_DOUBLE_EQ(Score(row0, 1), 1.0);
  EXPECT_DOUBLE_EQ(Score(row0, 2), 0.5);
  EXPECT_DOUBLE_EQ(Score(row0, 3), 0.0);  // beyond the cutoff
  EXPECT_DOUBLE_EQ(Score(row0, 0), 0.0);  // self
}

TEST(GraphDistanceTest, CutoffThreeReachesFurther) {
  SocialGraph g = SocialGraph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  GraphDistance gd(3);
  DenseScratch scratch;
  auto row0 = gd.Row(g, 0, &scratch);
  EXPECT_NEAR(Score(row0, 3), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(Score(row0, 4), 0.0);
}

TEST(GraphDistanceTest, ShortestPathWinsOverLonger) {
  // Triangle plus pendant: distance from 0 to 2 is 1 even though a 2-path
  // exists.
  SocialGraph g = SocialGraph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  GraphDistance gd(2);
  DenseScratch scratch;
  EXPECT_DOUBLE_EQ(Score(gd.Row(g, 0, &scratch), 2), 1.0);
}

// ----------------------------------------------------------------- Katz

TEST(KatzTest, HandComputedTriangle) {
  SocialGraph g = SocialGraph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  const double a = 0.1;
  Katz kz(/*max_length=*/3, /*damping=*/a);
  DenseScratch scratch;
  auto row0 = kz.Row(g, 0, &scratch);
  // Walks 0->1: length1: 1; length2: 0-2-1: 1; length3: 0-1-0-1, 0-1-2-1,
  // 0-2-0-1: 3.
  double expected = a * 1 + a * a * 1 + a * a * a * 3;
  EXPECT_NEAR(Score(row0, 1), expected, 1e-12);
}

TEST(KatzTest, PathLengthOneOnly) {
  SocialGraph g = SocialGraph::FromEdges(2, {{0, 1}});
  Katz kz(1, 0.05);
  DenseScratch scratch;
  auto row0 = kz.Row(g, 0, &scratch);
  EXPECT_NEAR(Score(row0, 1), 0.05, 1e-12);
}

TEST(KatzTest, DampingScalesScores) {
  SocialGraph g = graph::GenerateErdosRenyi(50, 120, 41);
  DenseScratch scratch;
  Katz weak(3, 0.005);
  Katz strong(3, 0.05);
  auto row_weak = weak.Row(g, 0, &scratch);
  auto row_strong = strong.Row(g, 0, &scratch);
  double sum_weak = 0.0;
  double sum_strong = 0.0;
  for (const auto& e : row_weak) sum_weak += e.score;
  for (const auto& e : row_strong) sum_strong += e.score;
  EXPECT_GT(sum_strong, sum_weak);
}

// --------------------------------------------- Parameterized properties

std::unique_ptr<SimilarityMeasure> MakeMeasure(const std::string& name) {
  if (name == "CN") return std::make_unique<CommonNeighbors>();
  if (name == "AA") return std::make_unique<AdamicAdar>();
  if (name == "GD") return std::make_unique<GraphDistance>(2);
  return std::make_unique<Katz>(3, 0.05);
}

class MeasurePropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MeasurePropertyTest, RowsAreSortedPositiveAndExcludeSelf) {
  SocialGraph g = graph::GenerateErdosRenyi(80, 240, 51);
  auto measure = MakeMeasure(GetParam());
  DenseScratch scratch;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto row = measure->Row(g, u, &scratch);
    for (size_t k = 0; k < row.size(); ++k) {
      EXPECT_GT(row[k].score, 0.0);
      EXPECT_NE(row[k].user, u);
      if (k > 0) {
        EXPECT_LT(row[k - 1].user, row[k].user);
      }
    }
  }
}

TEST_P(MeasurePropertyTest, IsSymmetric) {
  // All four paper measures are symmetric on undirected graphs — a
  // property the GS adaptation and the per-item evaluation rely on.
  SocialGraph g = graph::GenerateErdosRenyi(60, 150, 52);
  auto measure = MakeMeasure(GetParam());
  DenseScratch scratch;
  std::map<std::pair<NodeId, NodeId>, double> scores;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& e : measure->Row(g, u, &scratch)) {
      scores[{u, e.user}] = e.score;
    }
  }
  for (const auto& [key, score] : scores) {
    auto it = scores.find({key.second, key.first});
    ASSERT_NE(it, scores.end())
        << "asymmetric support " << key.first << "," << key.second;
    EXPECT_NEAR(it->second, score, 1e-9);
  }
}

TEST_P(MeasurePropertyTest, ScratchReuseMatchesFreshScratch) {
  SocialGraph g = graph::GenerateErdosRenyi(40, 100, 53);
  auto measure = MakeMeasure(GetParam());
  DenseScratch reused;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    DenseScratch fresh;
    EXPECT_EQ(measure->Row(g, u, &reused), measure->Row(g, u, &fresh));
  }
}

TEST_P(MeasurePropertyTest, DisconnectedUsersNeverSimilar) {
  // Two separate triangles.
  SocialGraph g = SocialGraph::FromEdges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  auto measure = MakeMeasure(GetParam());
  DenseScratch scratch;
  for (NodeId u = 0; u < 3; ++u) {
    for (const auto& e : measure->Row(g, u, &scratch)) {
      EXPECT_LT(e.user, 3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, MeasurePropertyTest,
                         ::testing::Values("CN", "AA", "GD", "KZ"),
                         [](const auto& info) { return info.param; });

// -------------------------------------------------------------- Workload

TEST(WorkloadTest, MatchesDirectRows) {
  SocialGraph g = graph::GenerateErdosRenyi(50, 120, 61);
  CommonNeighbors cn;
  SimilarityWorkload w = SimilarityWorkload::Compute(g, cn);
  EXPECT_EQ(w.num_users(), 50);
  EXPECT_EQ(w.measure_name(), "CN");
  DenseScratch scratch;
  for (NodeId u = 0; u < 50; ++u) {
    auto direct = cn.Row(g, u, &scratch);
    auto stored = w.Row(u);
    ASSERT_EQ(stored.size(), direct.size());
    for (size_t k = 0; k < direct.size(); ++k) {
      EXPECT_EQ(stored[k], direct[k]);
    }
  }
}

TEST(WorkloadTest, MaxColumnSumIsMaxRowSumForSymmetricMeasures) {
  SocialGraph g = graph::GenerateErdosRenyi(60, 140, 62);
  SimilarityWorkload w =
      SimilarityWorkload::Compute(g, AdamicAdar());
  double max_row_sum = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    max_row_sum = std::max(max_row_sum, w.RowSum(u));
  }
  EXPECT_NEAR(w.MaxColumnSum(), max_row_sum, 1e-9);
}

TEST(WorkloadTest, MaxEntryIsGlobalMaximum) {
  SocialGraph g = graph::GenerateErdosRenyi(40, 90, 63);
  SimilarityWorkload w = SimilarityWorkload::Compute(g, CommonNeighbors());
  double max_entry = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& e : w.Row(u)) max_entry = std::max(max_entry, e.score);
  }
  EXPECT_DOUBLE_EQ(w.MaxEntry(), max_entry);
}

TEST(WorkloadTest, ComputeForUsersStoresSubsetKeepsGlobalStats) {
  SocialGraph g = graph::GenerateErdosRenyi(50, 120, 64);
  CommonNeighbors cn;
  SimilarityWorkload full = SimilarityWorkload::Compute(g, cn);
  std::vector<NodeId> subset = {3, 7, 11};
  SimilarityWorkload partial =
      SimilarityWorkload::ComputeForUsers(g, cn, subset);
  // Stored rows match for the subset.
  for (NodeId u : subset) {
    auto a = full.Row(u);
    auto b = partial.Row(u);
    ASSERT_EQ(a.size(), b.size());
    for (size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
  // Unstored rows are empty; global statistics are identical.
  EXPECT_TRUE(partial.Row(0).empty());
  EXPECT_DOUBLE_EQ(partial.MaxColumnSum(), full.MaxColumnSum());
  EXPECT_DOUBLE_EQ(partial.MaxEntry(), full.MaxEntry());
}

TEST(WorkloadIoTest, RoundTripPreservesRowsAndStats) {
  namespace fs = std::filesystem;
  fs::path path = fs::temp_directory_path() / "privrec_workload.tsv";
  SocialGraph g = graph::GenerateErdosRenyi(60, 150, 65);
  SimilarityWorkload original =
      SimilarityWorkload::Compute(g, AdamicAdar());
  ASSERT_TRUE(SaveWorkload(original, path.string()).ok());
  auto loaded = LoadWorkload(path.string());
  fs::remove(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_users(), original.num_users());
  EXPECT_EQ(loaded->measure_name(), original.measure_name());
  EXPECT_DOUBLE_EQ(loaded->MaxColumnSum(), original.MaxColumnSum());
  EXPECT_DOUBLE_EQ(loaded->MaxEntry(), original.MaxEntry());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto a = original.Row(u);
    auto b = loaded->Row(u);
    ASSERT_EQ(a.size(), b.size()) << "user " << u;
    for (size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
}

TEST(WorkloadIoTest, HandlesEmptyRowsAtBothEnds) {
  namespace fs = std::filesystem;
  fs::path path = fs::temp_directory_path() / "privrec_workload2.tsv";
  // Node 0 and node 3 are isolated: first and last rows are empty.
  SocialGraph g = SocialGraph::FromEdges(4, {{1, 2}});
  SimilarityWorkload original =
      SimilarityWorkload::Compute(g, CommonNeighbors());
  ASSERT_TRUE(SaveWorkload(original, path.string()).ok());
  auto loaded = LoadWorkload(path.string());
  fs::remove(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_users(), 4);
  EXPECT_TRUE(loaded->Row(0).empty());
  EXPECT_TRUE(loaded->Row(3).empty());
}

TEST(WorkloadIoTest, MalformedHeaderFails) {
  namespace fs = std::filesystem;
  fs::path path = fs::temp_directory_path() / "privrec_workload3.tsv";
  {
    std::ofstream out(path);
    out << "0\t1\t0.5\n";  // no header
  }
  auto loaded = LoadWorkload(path.string());
  fs::remove(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(WorkloadTest, HighDegreeUsersDriveSensitivity) {
  // Star graph: hub 0 with 10 leaves. CN(leaf_i, leaf_j) = 1 (the hub).
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 1; v <= 10; ++v) edges.push_back({0, v});
  SocialGraph g = SocialGraph::FromEdges(11, edges);
  SimilarityWorkload w = SimilarityWorkload::Compute(g, CommonNeighbors());
  // Each leaf is similar to 9 other leaves with score 1 -> column sum 9;
  // the hub has no common neighbors with anyone.
  EXPECT_DOUBLE_EQ(w.MaxColumnSum(), 9.0);
  EXPECT_DOUBLE_EQ(w.RowSum(0), 0.0);
}

}  // namespace
}  // namespace privrec::similarity
