// Stream subsystem tests: WAL framing and torn-tail recovery, journaled
// ingestion replay bit-identity, incremental community maintenance
// invariants, re-publication scheduling, and pipeline crash recovery —
// including the journal-replay determinism matrix across thread counts.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/parallel.h"
#include "community/incremental.h"
#include "community/modularity.h"
#include "core/dynamic_recommender.h"
#include "dp/ledger.h"
#include "stream/ingester.h"
#include "stream/pipeline.h"
#include "stream/scheduler.h"
#include "stream/wal.h"

namespace privrec {
namespace {

namespace fs = std::filesystem;

std::string ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// One of every record type — the golden journal the replay tests use.
std::vector<stream::WalRecord> EveryRecordType() {
  return {
      stream::WalRecord::AddSocial(1, 2),
      stream::WalRecord::AddSocial(2, 3),
      stream::WalRecord::AddPreference(1, 4, 2.5),
      stream::WalRecord::RemoveSocial(2, 3),
      stream::WalRecord::AddPreference(3, 0, 1.0),
      stream::WalRecord::RemovePreference(1, 4),
      stream::WalRecord::PublishMark(0, 6, 0xfeedface),
  };
}

TEST(StreamWal, RoundTripsEveryRecordType) {
  const fs::path dir = FreshDir("privrec_wal_roundtrip");
  const std::string path = (dir / "test.wal").string();
  const std::vector<stream::WalRecord> records = EveryRecordType();
  {
    auto wal = stream::StreamWal::Open(path);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_FALSE(wal->recovered_torn_tail());
    for (const stream::WalRecord& r : records) {
      ASSERT_TRUE(wal->Append(r).ok());
    }
    EXPECT_EQ(wal->records_appended(), static_cast<int64_t>(records.size()));
  }

  // Non-mutating parse sees the same records...
  auto replay = stream::StreamWal::Read(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records, records);
  EXPECT_FALSE(replay->recovered_torn_tail);
  EXPECT_EQ(replay->valid_bytes,
            stream::kWalHeaderBytes +
                records.size() * stream::kWalFrameBytes);

  // ...and so does a reopened appender.
  auto reopened = stream::StreamWal::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->replayed(), records);
}

TEST(StreamWal, GoldenBytesPinTheFormat) {
  const fs::path dir = FreshDir("privrec_wal_golden");
  const std::string path = (dir / "golden.wal").string();
  {
    auto wal = stream::StreamWal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(stream::WalRecord::AddSocial(7, 9)).ok());
  }
  const std::string bytes = ReadAllBytes(path);
  ASSERT_EQ(bytes.size(), stream::kWalHeaderBytes + stream::kWalFrameBytes);
  // Header: magic + little-endian version 1.
  EXPECT_EQ(bytes.substr(0, 8), "PVRECWAL");
  EXPECT_EQ(static_cast<uint8_t>(bytes[8]), 1);
  EXPECT_EQ(static_cast<uint8_t>(bytes[9]), 0);
  // Frame: length 25, then payload starting with the record type and the
  // little-endian i64 fields.
  EXPECT_EQ(static_cast<uint8_t>(bytes[12]), stream::kWalPayloadBytes);
  const size_t payload = 12 + 8;
  EXPECT_EQ(static_cast<uint8_t>(bytes[payload]), 1);      // kAddSocial
  EXPECT_EQ(static_cast<uint8_t>(bytes[payload + 1]), 7);  // a, LE
  EXPECT_EQ(static_cast<uint8_t>(bytes[payload + 9]), 9);  // b, LE
}

TEST(StreamWal, TornTailTruncatedAtEveryOffset) {
  const fs::path dir = FreshDir("privrec_wal_torn");
  const std::string base = (dir / "base.wal").string();
  const std::vector<stream::WalRecord> records = EveryRecordType();
  {
    auto wal = stream::StreamWal::Open(base);
    ASSERT_TRUE(wal.ok());
    for (const stream::WalRecord& r : records) {
      ASSERT_TRUE(wal->Append(r).ok());
    }
  }
  const std::string bytes = ReadAllBytes(base);
  const uint64_t intact =
      stream::kWalHeaderBytes +
      (records.size() - 1) * stream::kWalFrameBytes;

  // Cut the final frame at every byte offset: every cut must recover to
  // exactly the first records.size()-1 records, never an error.
  for (uint64_t cut = intact + 1; cut < bytes.size(); ++cut) {
    const std::string path =
        (dir / ("cut_" + std::to_string(cut) + ".wal")).string();
    WriteAllBytes(path, bytes.substr(0, cut));
    auto wal = stream::StreamWal::Open(path);
    ASSERT_TRUE(wal.ok()) << "cut at " << cut << ": "
                          << wal.status().ToString();
    EXPECT_TRUE(wal->recovered_torn_tail()) << "cut at " << cut;
    ASSERT_EQ(wal->replayed().size(), records.size() - 1) << "cut at "
                                                          << cut;
    // Open truncated the torn bytes: the file is appendable again and a
    // fresh append round-trips.
    ASSERT_TRUE(wal->Append(records.back()).ok());
  }

  // A cut exactly on a frame boundary is not torn at all.
  const std::string clean = (dir / "clean_cut.wal").string();
  WriteAllBytes(clean, bytes.substr(0, intact));
  auto wal = stream::StreamWal::Open(clean);
  ASSERT_TRUE(wal.ok());
  EXPECT_FALSE(wal->recovered_torn_tail());
  EXPECT_EQ(wal->replayed().size(), records.size() - 1);
}

TEST(StreamWal, MidFileCorruptionIsDataLossNotRecovery) {
  const fs::path dir = FreshDir("privrec_wal_corrupt");
  const std::string path = (dir / "corrupt.wal").string();
  {
    auto wal = stream::StreamWal::Open(path);
    ASSERT_TRUE(wal.ok());
    for (const stream::WalRecord& r : EveryRecordType()) {
      ASSERT_TRUE(wal->Append(r).ok());
    }
  }
  std::string bytes = ReadAllBytes(path);
  // Flip a payload bit in the SECOND frame: not the final frame, so this
  // must report corruption, not torn-tail recovery.
  const size_t victim =
      stream::kWalHeaderBytes + stream::kWalFrameBytes + 10;
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x01);
  WriteAllBytes(path, bytes);
  auto wal = stream::StreamWal::Open(path);
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kDataLoss);
}

TEST(StreamWal, InjectedAppendFaultsLeaveARecoverableJournal) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault injection compiled out";
  const fs::path dir = FreshDir("privrec_wal_fault");
  const std::string path = (dir / "fault.wal").string();
  {
    auto wal = stream::StreamWal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(stream::WalRecord::AddSocial(0, 1)).ok());
    // A short-read fault writes half a frame and fails the call — the
    // on-disk image is exactly a crash mid-write.
    fault::ScopedFaultInjection scope(
        "stream.wal.append", {.kind = fault::FaultKind::kShortRead});
    Status torn = wal->Append(stream::WalRecord::AddSocial(1, 2));
    EXPECT_FALSE(torn.ok());
  }
  auto recovered = stream::StreamWal::Open(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->recovered_torn_tail());
  ASSERT_EQ(recovered->replayed().size(), 1u);
  EXPECT_EQ(recovered->replayed()[0], stream::WalRecord::AddSocial(0, 1));
}

TEST(EdgeStreamIngester, ReplayIsBitIdenticalAndIdempotent) {
  const fs::path dir = FreshDir("privrec_ingester_replay");
  stream::EdgeStreamOptions options;
  options.num_users = 10;
  options.num_items = 6;
  options.wal_path = (dir / "edges.wal").string();

  uint64_t fingerprint = 0;
  int64_t deltas = 0;
  {
    auto ingester = stream::EdgeStreamIngester::Open(options);
    ASSERT_TRUE(ingester.ok()) << ingester.status().ToString();
    ASSERT_TRUE(ingester->AddSocialEdge(1, 2).ok());
    ASSERT_TRUE(ingester->AddSocialEdge(2, 1).ok());  // duplicate: no-op
    ASSERT_TRUE(ingester->AddSocialEdge(3, 4).ok());
    ASSERT_TRUE(ingester->RemoveSocialEdge(5, 6).ok());  // absent: no-op
    ASSERT_TRUE(ingester->AddPreference(1, 3, 2.0).ok());
    ASSERT_TRUE(ingester->AddPreference(1, 3, 4.0).ok());  // overwrite
    ASSERT_TRUE(ingester->RemovePreference(2, 2).ok());    // absent
    EXPECT_EQ(ingester->social_edges(), 2);
    EXPECT_EQ(ingester->preference_edges(), 1);
    // Every valid delta is journaled, state no-ops included — the count
    // is the stream position, not the state size.
    EXPECT_EQ(ingester->delta_records(), 7);
    fingerprint = ingester->GraphFingerprint();
    deltas = ingester->delta_records();
  }

  int64_t observed = 0;
  auto replayed = stream::EdgeStreamIngester::Open(
      options, [&observed](const stream::WalRecord&,
                           const stream::EdgeStreamIngester&) {
        ++observed;
      });
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->GraphFingerprint(), fingerprint);
  EXPECT_EQ(replayed->delta_records(), deltas);
  EXPECT_EQ(observed, deltas);
  // The materialized graphs reflect the replayed state.
  EXPECT_EQ(replayed->BuildSocialGraph().num_edges(), 2);
  graph::PreferenceGraph prefs = replayed->BuildPreferenceGraph();
  EXPECT_EQ(prefs.num_edges(), 1);
}

TEST(EdgeStreamIngester, RejectsInvalidDeltasBeforeJournaling) {
  const fs::path dir = FreshDir("privrec_ingester_validate");
  stream::EdgeStreamOptions options;
  options.num_users = 4;
  options.num_items = 3;
  options.wal_path = (dir / "edges.wal").string();
  auto ingester = stream::EdgeStreamIngester::Open(options);
  ASSERT_TRUE(ingester.ok());

  EXPECT_EQ(ingester->AddSocialEdge(0, 4).code(),
            StatusCode::kInvalidArgument);  // out of range
  EXPECT_EQ(ingester->AddSocialEdge(2, 2).code(),
            StatusCode::kInvalidArgument);  // self loop
  EXPECT_EQ(ingester->AddPreference(0, 0, 0.0).code(),
            StatusCode::kInvalidArgument);  // non-positive weight
  EXPECT_EQ(ingester->AddPreference(0, 0, 1.0 / 0.0).code(),
            StatusCode::kInvalidArgument);  // non-finite weight
  EXPECT_EQ(ingester->RemovePreference(-1, 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ingester->delta_records(), 0);

  // Nothing reached the journal: a reopen replays zero records.
  auto replay = stream::StreamWal::Read(options.wal_path);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->records.empty());
}

// The maintained modularity must equal a from-scratch recomputation on the
// materialized graph after EVERY delta — the integer sufficient statistics
// cannot drift.
TEST(IncrementalCommunity, MatchesRecomputedModularityUnderChurn) {
  community::IncrementalCommunityOptions options;
  options.drift_threshold = 0.10;
  community::IncrementalCommunity maintained(24, options);

  uint64_t bits = 12345;
  auto next = [&bits] {
    bits ^= bits << 13;
    bits ^= bits >> 7;
    bits ^= bits << 17;
    return bits;
  };
  for (int step = 0; step < 300; ++step) {
    const auto u = static_cast<graph::NodeId>(next() % 24);
    auto v = static_cast<graph::NodeId>(next() % 24);
    if (v == u) v = (v + 1) % 24;
    if (next() % 4 == 0) {
      maintained.RemoveEdge(u, v);
    } else {
      maintained.AddEdge(u, v);
    }
    const double recomputed = maintained.num_edges() == 0
                                  ? 0.0
                                  : community::Modularity(
                                        maintained.BuildGraph(),
                                        maintained.partition());
    ASSERT_NEAR(maintained.modularity(), recomputed, 1e-9)
        << "after step " << step;
  }
  // Local moves actually happened — the maintenance is not a no-op.
  EXPECT_GT(maintained.local_moves(), 0);
}

// Local moves only relocate the touched endpoints, so diluting a clean
// community structure with cross-cluster edges decays Q until the drift
// threshold forces a full Louvain restart.
TEST(IncrementalCommunity, DriftTriggersFullRestart) {
  community::IncrementalCommunityOptions options;
  options.drift_threshold = 0.05;
  community::IncrementalCommunity maintained(24, options);
  // Three 8-cliques: crisp structure, high baseline modularity.
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 8; ++i) {
      for (int j = i + 1; j < 8; ++j) {
        maintained.AddEdge(c * 8 + i, c * 8 + j);
      }
    }
  }
  maintained.ForceRestart();
  const int64_t restarts_before = maintained.full_restarts();
  ASSERT_GT(maintained.baseline(), 0.3);

  // Dilute: wire every clique to every other until the drift trips.
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      maintained.AddEdge(i, 8 + j);
      maintained.AddEdge(8 + i, 16 + j);
      maintained.AddEdge(16 + i, j);
    }
  }
  EXPECT_GT(maintained.full_restarts(), restarts_before);
  // After the restart the baseline tracks the fresh clustering: the drift
  // is back under the threshold.
  EXPECT_LT(maintained.drift(), options.drift_threshold);
  // And the invariant still holds post-restart.
  EXPECT_NEAR(maintained.modularity(),
              community::Modularity(maintained.BuildGraph(),
                                    maintained.partition()),
              1e-9);
}

TEST(IncrementalCommunity, ReplayingTheSameDeltasIsBitIdentical) {
  auto run = [] {
    community::IncrementalCommunity c(16, {});
    for (int i = 0; i < 40; ++i) {
      c.AddEdge(i % 16, (i * 7 + 1) % 16 == i % 16 ? (i % 16 + 1) % 16
                                                   : (i * 7 + 1) % 16);
      if (i % 5 == 0 && i > 0) c.RemoveEdge(i % 16, (i + 3) % 16);
    }
    return c;
  };
  community::IncrementalCommunity a = run();
  community::IncrementalCommunity b = run();
  EXPECT_EQ(a.labels(), b.labels());
  EXPECT_EQ(a.modularity(), b.modularity());  // exactly, not approximately
  EXPECT_EQ(a.full_restarts(), b.full_restarts());
}

TEST(RepublishScheduler, TriggersFireInPriorityOrder) {
  stream::RepublishPolicy policy;
  policy.min_deltas_between = 3;
  policy.every_deltas = 0;
  policy.drift_threshold = 0.05;
  policy.min_growth = 0.5;
  stream::RepublishScheduler scheduler(policy);

  // Below the hysteresis floor: silent.
  const stream::WalRecord delta = stream::WalRecord::AddSocial(0, 1);
  scheduler.Observe(delta, 0.4, 1);
  scheduler.Observe(delta, 0.4, 2);
  EXPECT_EQ(scheduler.DueReason(), "");
  // Floor reached, nothing published yet: initial publication.
  scheduler.Observe(delta, 0.4, 3);
  EXPECT_NE(scheduler.DueReason().find("initial"), std::string::npos);

  // A publish mark resets the baselines.
  scheduler.Observe(stream::WalRecord::PublishMark(0, 3, 1), 0.4, 3);
  EXPECT_EQ(scheduler.DueReason(), "");

  // Drift past the threshold.
  scheduler.Observe(delta, 0.4, 4);
  scheduler.Observe(delta, 0.4, 5);
  scheduler.Observe(delta, 0.30, 5);
  EXPECT_NE(scheduler.DueReason().find("drift"), std::string::npos);

  // Growth trigger (fresh baselines, stable modularity).
  scheduler.Observe(stream::WalRecord::PublishMark(1, 6, 2), 0.4, 5);
  scheduler.Observe(delta, 0.4, 6);
  scheduler.Observe(delta, 0.4, 7);
  scheduler.Observe(delta, 0.4, 9);
  EXPECT_NE(scheduler.DueReason().find("growth"), std::string::npos);

  // Exhaustion mutes automatic triggers; a publish mark does not unmute.
  scheduler.MuteExhausted();
  EXPECT_EQ(scheduler.DueReason(), "");
}

TEST(RepublishScheduler, PeriodicTrigger) {
  stream::RepublishPolicy policy;
  policy.min_deltas_between = 2;
  policy.every_deltas = 4;
  policy.drift_threshold = 1e9;  // keep the other triggers out
  policy.min_growth = 1e9;
  stream::RepublishScheduler scheduler(policy);
  const stream::WalRecord delta = stream::WalRecord::AddSocial(0, 1);
  // Baseline at a nonzero edge count so the growth-from-empty trigger
  // stays out of the way (it is the growth family's bootstrap case).
  scheduler.Observe(stream::WalRecord::PublishMark(0, 0, 0), 0.0, 5);
  scheduler.Observe(delta, 0.0, 5);
  scheduler.Observe(delta, 0.0, 5);
  scheduler.Observe(delta, 0.0, 5);
  EXPECT_EQ(scheduler.DueReason(), "");
  scheduler.Observe(delta, 0.0, 5);
  EXPECT_NE(scheduler.DueReason().find("periodic"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pipeline crash recovery and replay determinism.

struct PipelineRun {
  uint64_t fingerprint = 0;
  std::vector<int64_t> labels;
  std::string ledger_bytes;
  std::string last_artifact_bytes;
  std::vector<std::vector<core::RecommendationList>> published;
  int64_t snapshots = 0;
};

stream::StreamPipelineOptions SmallPipelineOptions(const fs::path& dir) {
  stream::StreamPipelineOptions options;
  options.ingest.num_users = 30;
  options.ingest.num_items = 20;
  options.ingest.wal_path = (dir / "stream.wal").string();
  options.republish.min_deltas_between = 10;
  options.republish.min_growth = 0.6;
  options.session.total_epsilon = 2.0;
  options.session.planned_snapshots = 10;
  options.session.seed = 91;
  options.session.ledger_path = (dir / "budget.ledger").string();
  options.session.artifact_dir = (dir / "artifacts").string();
  return options;
}

// A fixed 60-delta schedule exercising every delta type.
std::vector<stream::WalRecord> PipelineSchedule() {
  std::vector<stream::WalRecord> schedule;
  for (int i = 0; i < 60; ++i) {
    const int u = (i * 7) % 30;
    int v = (i * 11 + 1) % 30;
    if (v == u) v = (v + 1) % 30;
    switch (i % 5) {
      case 0:
      case 1:
      case 2:
        schedule.push_back(stream::WalRecord::AddSocial(u, v));
        break;
      case 3:
        schedule.push_back(stream::WalRecord::AddPreference(
            u, (i * 3) % 20, 1.0 + i % 4));
        break;
      default:
        schedule.push_back(i % 2 == 0
                               ? stream::WalRecord::RemoveSocial(u, v)
                               : stream::WalRecord::RemovePreference(
                                     u, (i * 3) % 20));
        break;
    }
  }
  return schedule;
}

Status ApplyDelta(stream::StreamPipeline* pipeline,
                  const stream::WalRecord& record) {
  switch (record.type) {
    case stream::WalRecordType::kAddSocial:
      return pipeline->AddSocialEdge(record.a, record.b);
    case stream::WalRecordType::kRemoveSocial:
      return pipeline->RemoveSocialEdge(record.a, record.b);
    case stream::WalRecordType::kAddPreference:
      return pipeline->AddPreference(record.a, record.b, record.weight());
    default:
      return pipeline->RemovePreference(record.a, record.b);
  }
}

std::vector<graph::NodeId> ProbeUsers() { return {0, 5, 10, 15, 20, 25}; }

Result<PipelineRun> DrivePipeline(const fs::path& dir) {
  stream::StreamPipelineOptions options = SmallPipelineOptions(dir);
  auto opened = stream::StreamPipeline::Open(options);
  if (!opened.ok()) return opened.status();
  stream::StreamPipeline pipeline = std::move(opened).value();

  PipelineRun run;
  if (pipeline.HasPendingRelease()) {
    auto drained = pipeline.Republish(ProbeUsers(), 5);
    if (!drained.ok()) return drained.status();
    run.published.push_back(drained->release.lists);
  }
  const std::vector<stream::WalRecord> schedule = PipelineSchedule();
  for (int64_t i = pipeline.ingester().delta_records();
       i < static_cast<int64_t>(schedule.size()); ++i) {
    Status applied = ApplyDelta(&pipeline, schedule[static_cast<size_t>(i)]);
    if (!applied.ok()) return applied;
    if (!pipeline.RepublishDue().empty()) {
      auto out = pipeline.Republish(ProbeUsers(), 5);
      if (!out.ok()) return out.status();
      run.published.push_back(out->release.lists);
      run.last_artifact_bytes = ReadAllBytes(out->artifact_path);
    }
  }
  run.fingerprint = pipeline.ingester().GraphFingerprint();
  run.labels = pipeline.community().labels();
  run.ledger_bytes = ReadAllBytes(options.session.ledger_path);
  run.snapshots = pipeline.session().snapshots_processed();
  return run;
}

// The replay-determinism matrix: the same journal driven to completion
// under 1 and 4 threads must produce byte-identical ledgers, artifacts,
// and graph fingerprints.
TEST(StreamPipeline, ReplayDeterministicAcrossThreadCounts) {
  // The SAME directory, sequentially (FreshDir wipes it between runs):
  // artifact provenance embeds the ledger id, so byte-identity is only
  // meaningful when both runs publish under identical paths.
  const int64_t restore = GlobalThreadCount();
  SetGlobalThreadCount(1);
  auto one = DrivePipeline(FreshDir("privrec_pipeline_threads"));
  SetGlobalThreadCount(4);
  auto four = DrivePipeline(FreshDir("privrec_pipeline_threads"));
  SetGlobalThreadCount(restore);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  ASSERT_TRUE(four.ok()) << four.status().ToString();

  EXPECT_GT(one->snapshots, 0);
  EXPECT_EQ(one->fingerprint, four->fingerprint);
  EXPECT_EQ(one->labels, four->labels);
  EXPECT_EQ(one->ledger_bytes, four->ledger_bytes);
  EXPECT_FALSE(one->last_artifact_bytes.empty());
  EXPECT_EQ(one->last_artifact_bytes, four->last_artifact_bytes);
  ASSERT_EQ(one->published.size(), four->published.size());
  for (size_t i = 0; i < one->published.size(); ++i) {
    EXPECT_EQ(one->published[i], four->published[i]) << "publish " << i;
  }
}

// A crash between ledger intent and commit: the restarted pipeline reports
// the pending release and re-derives it bit-identically, charging nothing.
TEST(StreamPipeline, ResumesPendingReleaseBitIdentically) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault injection compiled out";
  // Reference: the same schedule with no crash.
  auto reference = DrivePipeline(FreshDir("privrec_pipeline_ref"));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_FALSE(reference->published.empty());

  const fs::path dir = FreshDir("privrec_pipeline_crash");
  stream::StreamPipelineOptions options = SmallPipelineOptions(dir);
  const std::vector<stream::WalRecord> schedule = PipelineSchedule();
  int64_t crash_index = -1;
  {
    auto opened = stream::StreamPipeline::Open(options);
    ASSERT_TRUE(opened.ok());
    stream::StreamPipeline pipeline = std::move(opened).value();
    fault::ScopedFaultInjection scope(
        "dynamic.after_journal", {.kind = fault::FaultKind::kIoError});
    for (int64_t i = 0; i < static_cast<int64_t>(schedule.size()); ++i) {
      ASSERT_TRUE(
          ApplyDelta(&pipeline, schedule[static_cast<size_t>(i)]).ok());
      if (!pipeline.RepublishDue().empty()) {
        auto out = pipeline.Republish(ProbeUsers(), 5);
        ASSERT_FALSE(out.ok()) << "fault did not fire";
        EXPECT_EQ(out.status().code(), StatusCode::kIoError);
        crash_index = i;
        break;  // the "process" dies here
      }
    }
    ASSERT_GE(crash_index, 0);
  }

  // Restart: the pending (paid) release must be drained first and must be
  // bit-identical to the uninterrupted reference's first publish.
  auto reopened = stream::StreamPipeline::Open(SmallPipelineOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  stream::StreamPipeline pipeline = std::move(reopened).value();
  EXPECT_TRUE(pipeline.HasPendingRelease());
  EXPECT_NE(pipeline.RepublishDue().find("resume"), std::string::npos);
  auto resumed = pipeline.Republish(ProbeUsers(), 5);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->release.resumed_from_intent);
  EXPECT_EQ(resumed->release.epsilon_spent, 0.0);
  EXPECT_EQ(resumed->release.lists, reference->published[0]);

  // Finish the schedule: the end state matches the reference exactly, and
  // the ledger audits clean with the same spent ε (the crash cost nothing
  // extra — the intent was re-derived, not re-charged).
  for (int64_t i = pipeline.ingester().delta_records();
       i < static_cast<int64_t>(schedule.size()); ++i) {
    ASSERT_TRUE(
        ApplyDelta(&pipeline, schedule[static_cast<size_t>(i)]).ok());
    if (!pipeline.RepublishDue().empty()) {
      auto out = pipeline.Republish(ProbeUsers(), 5);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
    }
  }
  EXPECT_EQ(pipeline.ingester().GraphFingerprint(), reference->fingerprint);
  EXPECT_EQ(pipeline.community().labels(), reference->labels);

  auto audit =
      dp::AuditLedgerReplay((dir / "budget.ledger").string());
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->ok()) << audit->ToString();
  auto reference_audit = dp::AuditLedgerReplay(
      (fs::temp_directory_path() / "privrec_pipeline_ref" / "budget.ledger")
          .string());
  ASSERT_TRUE(reference_audit.ok());
  EXPECT_EQ(audit->epsilon_spent, reference_audit->epsilon_spent);
  EXPECT_EQ(audit->intents, reference_audit->intents);
}

// A crash between ledger commit and WAL publish mark: the trigger re-arms
// and the next publish is a FRESH accounted charge — at-least-once
// publication, never a double-spend.
TEST(StreamPipeline, CrashBeforePublishMarkReArmsTheTrigger) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault injection compiled out";
  const fs::path dir = FreshDir("privrec_pipeline_mark");
  stream::StreamPipelineOptions options = SmallPipelineOptions(dir);
  const std::vector<stream::WalRecord> schedule = PipelineSchedule();
  {
    auto opened = stream::StreamPipeline::Open(options);
    ASSERT_TRUE(opened.ok());
    stream::StreamPipeline pipeline = std::move(opened).value();
    bool crashed = false;
    for (int64_t i = 0; i < static_cast<int64_t>(schedule.size()); ++i) {
      ASSERT_TRUE(
          ApplyDelta(&pipeline, schedule[static_cast<size_t>(i)]).ok());
      if (!pipeline.RepublishDue().empty()) {
        // The only WAL append inside Republish is the publish mark, which
        // lands AFTER the ledger commit — arming the first hit here
        // simulates a crash in exactly that window.
        fault::FaultInjector::Instance().ArmNth(
            "stream.wal.append", fault::FaultKind::kIoError, 1);
        auto out = pipeline.Republish(ProbeUsers(), 5);
        fault::FaultInjector::Instance().Reset();
        ASSERT_FALSE(out.ok()) << "mark append fault did not fire";
        crashed = true;
        break;
      }
    }
    ASSERT_TRUE(crashed);
  }

  auto reopened = stream::StreamPipeline::Open(SmallPipelineOptions(dir));
  ASSERT_TRUE(reopened.ok());
  stream::StreamPipeline pipeline = std::move(reopened).value();
  // The ε is committed (no pending intent), but no mark reached the WAL,
  // so the scheduler still wants a publish.
  EXPECT_FALSE(pipeline.HasPendingRelease());
  EXPECT_EQ(pipeline.session().snapshots_processed(), 1);
  EXPECT_FALSE(pipeline.RepublishDue().empty());
  auto out = pipeline.Republish(ProbeUsers(), 5);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(out->release.resumed_from_intent);
  EXPECT_GT(out->release.epsilon_spent, 0.0);  // a fresh accounted charge

  auto audit = dp::AuditLedgerReplay(options.session.ledger_path);
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->ok()) << audit->ToString();
  EXPECT_EQ(audit->intents, 2);  // both charges audited, no double-spend
}

}  // namespace
}  // namespace privrec
