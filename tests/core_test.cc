// Tests for the core recommendation primitives and the non-private
// ExactRecommender against hand-computed utilities.

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/exact_recommender.h"
#include "core/recommendation.h"
#include "core/recommender.h"
#include "similarity/common_neighbors.h"
#include "similarity/graph_distance.h"

namespace privrec::core {
namespace {

using graph::ItemId;
using graph::NodeId;
using graph::PreferenceGraph;
using graph::SocialGraph;

// ------------------------------------------------------------- Top-N

TEST(TopNFromDenseTest, RanksByUtilityThenItem) {
  std::vector<double> utilities = {0.5, 2.0, 2.0, 0.1};
  RecommendationList list = TopNFromDense(utilities, 3);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].item, 1);  // ties broken by smaller item id
  EXPECT_EQ(list[1].item, 2);
  EXPECT_EQ(list[2].item, 0);
}

TEST(TopNFromDenseTest, NLargerThanInput) {
  std::vector<double> utilities = {1.0, 2.0};
  RecommendationList list = TopNFromDense(utilities, 10);
  EXPECT_EQ(list.size(), 2u);
}

TEST(TopNFromSparseTest, MatchesDense) {
  std::vector<double> dense = {0.0, 3.0, 0.0, 1.0, 2.0};
  std::vector<std::pair<ItemId, double>> sparse = {{1, 3.0}, {3, 1.0},
                                                   {4, 2.0}};
  RecommendationList a = TopNFromDense(dense, 3);
  RecommendationList b = TopNFromSparse(sparse, 3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].item, b[k].item);
    EXPECT_DOUBLE_EQ(a[k].utility, b[k].utility);
  }
}

TEST(TopNAccumulatorTest, KeepsBestN) {
  TopNAccumulator acc(3);
  for (ItemId i = 0; i < 10; ++i) {
    acc.Offer(i, static_cast<double>(i % 5));
  }
  RecommendationList list = acc.Take();
  ASSERT_EQ(list.size(), 3u);
  // Utilities offered: 0,1,2,3,4,0,1,2,3,4 — best are the two 4s and a 3;
  // ties broken by item id: item 4 (util 4), item 9 (util 4), item 3
  // (util 3).
  EXPECT_EQ(list[0].item, 4);
  EXPECT_EQ(list[1].item, 9);
  EXPECT_EQ(list[2].item, 3);
}

TEST(TopNAccumulatorTest, MatchesTopNFromDense) {
  std::vector<double> utilities;
  Rng rng(42);
  for (int i = 0; i < 500; ++i) utilities.push_back(rng.Normal());
  TopNAccumulator acc(20);
  for (size_t i = 0; i < utilities.size(); ++i) {
    acc.Offer(static_cast<ItemId>(i), utilities[i]);
  }
  RecommendationList streaming = acc.Take();
  RecommendationList direct = TopNFromDense(utilities, 20);
  ASSERT_EQ(streaming.size(), direct.size());
  for (size_t k = 0; k < direct.size(); ++k) {
    EXPECT_EQ(streaming[k].item, direct[k].item);
    EXPECT_DOUBLE_EQ(streaming[k].utility, direct[k].utility);
  }
}

TEST(TopNAccumulatorTest, TakeResets) {
  TopNAccumulator acc(2);
  acc.Offer(0, 1.0);
  EXPECT_EQ(acc.Take().size(), 1u);
  EXPECT_TRUE(acc.Take().empty());
}

// -------------------------------------------------------- Exact utilities

// Fixture: the kite social graph and a small preference graph with
// hand-computable utilities.
//
// Social: 0-1, 0-2, 1-2, 1-3, 2-3, 3-4.
// CN similarities from user 0: sim(0,1)=1, sim(0,2)=1, sim(0,3)=2.
// Preferences: user1 -> {0, 1}; user2 -> {1}; user3 -> {2}; user4 -> {0}.
class ExactRecommenderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    social_ = SocialGraph::FromEdges(
        5, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}});
    prefs_ = PreferenceGraph::FromEdges(
        5, 3, {{1, 0}, {1, 1}, {2, 1}, {3, 2}, {4, 0}});
    workload_ = similarity::SimilarityWorkload::Compute(
        social_, similarity::CommonNeighbors());
    context_ = {&social_, &prefs_, &workload_};
  }

  SocialGraph social_;
  PreferenceGraph prefs_;
  similarity::SimilarityWorkload workload_;
  RecommenderContext context_;
};

TEST_F(ExactRecommenderTest, HandComputedUtilities) {
  ExactRecommender rec(context_);
  auto row = rec.UtilityRow(0);
  // mu_0^0 = sim(0,1)*w(1,0) = 1.
  // mu_0^1 = sim(0,1)*w(1,1) + sim(0,2)*w(2,1) = 2.
  // mu_0^2 = sim(0,3)*w(3,2) = 2.
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0].first, 0);
  EXPECT_DOUBLE_EQ(row[0].second, 1.0);
  EXPECT_DOUBLE_EQ(row[1].second, 2.0);
  EXPECT_DOUBLE_EQ(row[2].second, 2.0);
}

TEST_F(ExactRecommenderTest, TopNRankingWithTieBreak) {
  ExactRecommender rec(context_);
  RecommendationList list = rec.RecommendOne(0, 2);
  ASSERT_EQ(list.size(), 2u);
  // Items 1 and 2 tie at utility 2; item id breaks the tie.
  EXPECT_EQ(list[0].item, 1);
  EXPECT_EQ(list[1].item, 2);
}

TEST_F(ExactRecommenderTest, UserWithNoSimilarityGetsEmptyList) {
  // User 4's only CN similarity is with users at distance 2 through node 3:
  // sim(4, 1) and sim(4, 2) via common neighbor 3.
  ExactRecommender rec(context_);
  auto row4 = rec.UtilityRow(4);
  // sim(4,1)=1 (common neighbor 3), sim(4,2)=1 -> items {0,1} from user 1
  // and {1} from user 2.
  ASSERT_EQ(row4.size(), 2u);
  EXPECT_DOUBLE_EQ(row4[0].second, 1.0);  // item 0
  EXPECT_DOUBLE_EQ(row4[1].second, 2.0);  // item 1
}

TEST_F(ExactRecommenderTest, OwnPreferencesDoNotAffectOwnUtilities) {
  // The utility query sums over OTHER users v in sim(u); u itself is never
  // in sim(u), so u's own edges contribute nothing to u's utilities.
  PreferenceGraph with_own = prefs_.WithEdge(0, 2);
  RecommenderContext ctx{&social_, &with_own, &workload_};
  ExactRecommender a(ctx);
  ExactRecommender b(context_);
  EXPECT_EQ(a.UtilityRow(0), b.UtilityRow(0));
}

TEST_F(ExactRecommenderTest, BatchMatchesSingle) {
  ExactRecommender rec(context_);
  auto batch = rec.Recommend({0, 1, 2}, 3);
  ASSERT_EQ(batch.size(), 3u);
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(batch[k], rec.RecommendOne(static_cast<NodeId>(k), 3));
  }
}

TEST_F(ExactRecommenderTest, GraphDistanceMeasureChangesRanking) {
  auto gd_workload = similarity::SimilarityWorkload::Compute(
      social_, similarity::GraphDistance(2));
  RecommenderContext ctx{&social_, &prefs_, &gd_workload};
  ExactRecommender rec(ctx);
  auto row = rec.UtilityRow(0);
  // GD: sim(0,1)=sim(0,2)=1 (neighbors), sim(0,3)=1/2.
  // mu_0^0 = 1, mu_0^1 = 2, mu_0^2 = 0.5.
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0].second, 1.0);
  EXPECT_DOUBLE_EQ(row[1].second, 2.0);
  EXPECT_DOUBLE_EQ(row[2].second, 0.5);
}

TEST(RecommenderContextDeathTest, RejectsMisalignedGraphs) {
  SocialGraph social = SocialGraph::FromEdges(3, {{0, 1}});
  PreferenceGraph prefs = PreferenceGraph::FromEdges(2, 2, {{0, 0}});
  auto workload = similarity::SimilarityWorkload::Compute(
      social, similarity::CommonNeighbors());
  RecommenderContext ctx{&social, &prefs, &workload};
  EXPECT_DEATH(ExactRecommender rec(ctx), "CHECK");
}

}  // namespace
}  // namespace privrec::core
