// Robustness tests for the ingestion layer: strict vs lenient parse modes,
// per-defect-class LoadReport accounting, truncated/empty/BOM/CRLF inputs,
// injected I/O faults and bounded retry.

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "artifact/builder.h"
#include "artifact/model_io.h"
#include "common/fault_injection.h"
#include "community/louvain.h"
#include "community/partition_io.h"
#include "data/hetrec_lastfm.h"
#include "graph/graph_io.h"
#include "similarity/common_neighbors.h"
#include "similarity/workload_io.h"

namespace privrec {
namespace {

namespace fs = std::filesystem;

class DataRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("privrec_robust_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Writes `content` verbatim (no newline appended — callers control the
  // final byte to exercise truncation heuristics).
  std::string WriteFile(const std::string& name, const std::string& content) {
    const std::string path = (dir_ / name).string();
    std::ofstream out(path, std::ios::binary);
    out << content;
    return path;
  }

  fs::path dir_;
};

// ------------------------------------------------------------- graph I/O

TEST_F(DataRobustnessTest, LenientSocialLoadCountsEveryDefectClass) {
  const std::string path = WriteFile("social.txt",
                                     "# comment\n"
                                     "0 1\n"
                                     "1 0\n"       // duplicate (undirected)
                                     "2 2\n"       // self loop
                                     "3 -4\n"      // out of range
                                     "5 six\n"     // malformed
                                     "0 2\n"
                                     "\n"
                                     "1 2\n");
  auto loaded = graph::LoadSocialGraph(path, {.mode = ParseMode::kLenient});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const LoadReport& r = loaded->report;
  EXPECT_EQ(r.lines_scanned, 7);
  EXPECT_EQ(r.records_loaded, 3);
  EXPECT_EQ(r.skipped_duplicates, 1);
  EXPECT_EQ(r.skipped_self_loops, 1);
  EXPECT_EQ(r.skipped_out_of_range, 1);
  EXPECT_EQ(r.skipped_malformed, 1);
  EXPECT_EQ(r.TotalSkipped(), 4);
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(loaded->graph.num_nodes(), 3);  // ids 0, 1, 2
  EXPECT_EQ(loaded->graph.num_edges(), 3);
}

TEST_F(DataRobustnessTest, StrictSocialLoadFailsOnFirstDefect) {
  const std::string path = WriteFile("social.txt", "0 1\n5 six\n1 2\n");
  auto loaded = graph::LoadSocialGraph(path);  // default strict
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST_F(DataRobustnessTest, StrictSocialLoadRejectsNegativeIds) {
  const std::string path = WriteFile("social.txt", "0 -1\n");
  auto loaded = graph::LoadSocialGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST_F(DataRobustnessTest, TruncatedFinalRecordIsTruncationNotMalformation) {
  // The file ends mid-record with no trailing newline — a short copy, not
  // a malformed source.
  const std::string path = WriteFile("social.txt", "0 1\n1 2\n3");
  auto lenient = graph::LoadSocialGraph(path, {.mode = ParseMode::kLenient});
  ASSERT_TRUE(lenient.ok());
  EXPECT_TRUE(lenient->report.truncated);
  EXPECT_EQ(lenient->report.skipped_malformed, 0);
  EXPECT_EQ(lenient->report.records_loaded, 2);

  auto strict = graph::LoadSocialGraph(path);
  ASSERT_FALSE(strict.ok());
}

TEST_F(DataRobustnessTest, CrlfAndBomInputsLoadCleanly) {
  const std::string path = WriteFile(
      "social.txt", "\xEF\xBB\xBF# exported from Windows\r\n0 1\r\n1 2\r\n");
  auto loaded = graph::LoadSocialGraph(path, {.mode = ParseMode::kLenient});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->report.bom_stripped);
  EXPECT_EQ(loaded->report.records_loaded, 2);
  EXPECT_EQ(loaded->report.TotalSkipped(), 0);
  EXPECT_EQ(loaded->graph.num_edges(), 2);
}

TEST_F(DataRobustnessTest, EmptyFileLoadsAsEmptyGraph) {
  for (ParseMode mode : {ParseMode::kStrict, ParseMode::kLenient}) {
    const std::string path = WriteFile("empty.txt", "");
    auto loaded = graph::LoadSocialGraph(path, {.mode = mode});
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_TRUE(loaded->report.empty_input);
    EXPECT_EQ(loaded->graph.num_nodes(), 0);
  }
}

TEST_F(DataRobustnessTest, LenientPreferenceLoadCountsWeightAndDuplicates) {
  const std::string path = WriteFile("prefs.txt",
                                     "0 10 2.0\n"
                                     "0 10 5.0\n"   // duplicate pair
                                     "1 11 -3.0\n"  // bad weight
                                     "1 12 x\n"     // bad weight
                                     "2 10\n");     // unweighted line is fine
  auto loaded =
      graph::LoadPreferenceGraph(path, {.mode = ParseMode::kLenient});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->report.records_loaded, 2);
  EXPECT_EQ(loaded->report.skipped_duplicates, 1);
  EXPECT_EQ(loaded->report.skipped_bad_weight, 2);
  EXPECT_TRUE(loaded->graph.is_weighted());
}

// --------------------------------------------------- faults and retrying

TEST_F(DataRobustnessTest, TransientOpenFaultIsRetriedAway) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  const std::string path = WriteFile("social.txt", "0 1\n1 2\n");
  fault::ScopedFaultInjection scope;
  // Fails on the first open only; attempt 2 succeeds.
  fault::FaultInjector::Instance().ArmNth("graph_io.open",
                                          fault::FaultKind::kIoError, 1);
  auto loaded = graph::LoadSocialGraph(path, {.max_attempts = 3});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->report.io_retries, 1);
  EXPECT_EQ(loaded->graph.num_edges(), 2);
}

TEST_F(DataRobustnessTest, PersistentOpenFaultExhaustsAttempts) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  const std::string path = WriteFile("social.txt", "0 1\n");
  fault::ScopedFaultInjection scope(
      "graph_io.open", fault::FaultSpec{.kind = fault::FaultKind::kIoError});
  auto loaded = graph::LoadSocialGraph(path, {.max_attempts = 3});
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_EQ(fault::FaultInjector::Instance().HitCount("graph_io.open"), 3);
}

TEST_F(DataRobustnessTest, InjectedShortReadMarksTruncation) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  const std::string path = WriteFile("social.txt", "0 1\n1 2\n2 3\n");
  fault::ScopedFaultInjection scope;
  fault::FaultInjector::Instance().ArmNth("graph_io.read",
                                          fault::FaultKind::kShortRead, 3);
  auto lenient = graph::LoadSocialGraph(path, {.mode = ParseMode::kLenient});
  ASSERT_TRUE(lenient.ok());
  EXPECT_TRUE(lenient->report.truncated);
  EXPECT_EQ(lenient->report.records_loaded, 2);

  fault::FaultInjector::Instance().ArmNth("graph_io.read",
                                          fault::FaultKind::kShortRead, 3);
  auto strict = graph::LoadSocialGraph(path);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kIoError);
}

TEST_F(DataRobustnessTest, InjectedAllocFailureIsResourceExhausted) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  const std::string path = WriteFile("social.txt", "0 1\n");
  fault::ScopedFaultInjection scope(
      "graph_io.alloc",
      fault::FaultSpec{.kind = fault::FaultKind::kBadAlloc});
  auto loaded = graph::LoadSocialGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kResourceExhausted);
}

// ------------------------------------------------------- Last.fm loader

class LastFmRobustnessTest : public DataRobustnessTest {
 protected:
  // A Last.fm-format directory with one defect of every class. Expected
  // lenient accounting, exactly:
  //   friends: 6 records scanned — 2 valid, 1 duplicate (1-2 twice),
  //            1 self loop, 1 malformed, 1 out-of-range
  //   artists: 6 records scanned — 2 valid, 1 duplicate (1-10 twice),
  //            1 malformed, 1 below min_weight (filtered, not a defect),
  //            1 for an unknown user (filtered, not a defect)
  void WriteCorruptedDataset() {
    WriteFile("user_friends.dat",
              "userID\tfriendID\n"
              "1\t2\n"
              "2\t1\n"
              "3\t3\n"
              "4\tx\n"
              "-5\t6\n"
              "1\t3\n");
    WriteFile("user_artists.dat",
              "userID\tartistID\tweight\n"
              "1\t10\t5\n"
              "1\t10\t7\n"
              "2\t11\t1\n"
              "3\t12\t2\n"
              "9\t13\t4\n"
              "2\tbad\t3\n");
  }
};

TEST_F(LastFmRobustnessTest, LenientLoadRecoversValidSubsetWithExactCounts) {
  WriteCorruptedDataset();
  auto ds = data::LoadHetRecLastFm(dir_.string(),
                                   {.parse_mode = ParseMode::kLenient});
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  const LoadReport& r = ds->report;
  EXPECT_EQ(r.lines_scanned, 12);
  EXPECT_EQ(r.records_loaded, 4);  // 2 social + 2 preference edges
  EXPECT_EQ(r.skipped_duplicates, 2);
  EXPECT_EQ(r.skipped_malformed, 2);
  EXPECT_EQ(r.skipped_out_of_range, 1);
  EXPECT_EQ(r.skipped_self_loops, 1);
  EXPECT_EQ(r.skipped_bad_weight, 0);
  EXPECT_FALSE(r.truncated);

  EXPECT_EQ(ds->social.num_nodes(), 3);        // users 1, 2, 3
  EXPECT_EQ(ds->social.num_edges(), 2);        // 1-2, 1-3
  EXPECT_EQ(ds->preferences.num_items(), 2);   // artists 10, 12
  EXPECT_EQ(ds->preferences.num_edges(), 2);
}

TEST_F(LastFmRobustnessTest, StrictLoadRejectsTheCorruptedDataset) {
  WriteCorruptedDataset();
  auto ds = data::LoadHetRecLastFm(dir_.string());
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kParseError);
}

TEST_F(LastFmRobustnessTest, TruncatedArtistsFileIsDetected) {
  WriteFile("user_friends.dat", "userID\tfriendID\n1\t2\n");
  // Final record cut mid-row, no trailing newline.
  WriteFile("user_artists.dat", "userID\tartistID\tweight\n1\t10\t5\n1\t11");
  auto lenient = data::LoadHetRecLastFm(
      dir_.string(), {.parse_mode = ParseMode::kLenient});
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_TRUE(lenient->report.truncated);
  EXPECT_EQ(lenient->preferences.num_edges(), 1);

  auto strict = data::LoadHetRecLastFm(dir_.string());
  ASSERT_FALSE(strict.ok());
}

TEST_F(LastFmRobustnessTest, BomHeaderIsStripped) {
  WriteFile("user_friends.dat", "\xEF\xBB\xBFuserID\tfriendID\n1\t2\n");
  WriteFile("user_artists.dat", "userID\tartistID\tweight\n1\t10\t5\n");
  auto ds = data::LoadHetRecLastFm(dir_.string(),
                                   {.parse_mode = ParseMode::kLenient});
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_TRUE(ds->report.bom_stripped);
}

// -------------------------------------- workload / partition cache files
//
// The two-phase pipeline caches materialized similarity workloads and
// Louvain partitions on disk (LoadExperimentInputs) and the artifact
// builder consumes them; a corrupted cache must surface as a status error,
// never crash or silently feed a shorter workload into a DP release.

class CacheFileRobustnessTest : public DataRobustnessTest {
 protected:
  // A tiny valid workload file: 3 users, 4 entries.
  std::string WriteWorkloadFile() {
    return WriteFile("workload.tsv",
                     "# privrec workload measure=cn users=3 entries=4 "
                     "max_column_sum=3 max_entry=2\n"
                     "0\t1\t2\n"
                     "0\t2\t1\n"
                     "1\t0\t2\n"
                     "2\t0\t1\n");
  }
  // A tiny valid partition file: 4 nodes in 2 clusters.
  std::string WritePartitionFile() {
    return WriteFile("partition.tsv",
                     "# privrec partition: 4 nodes, 2 clusters\n"
                     "0\t0\n"
                     "1\t0\n"
                     "2\t1\n"
                     "3\t1\n");
  }
};

TEST_F(CacheFileRobustnessTest, WorkloadSaveLoadRoundTripsEntryCount) {
  auto loaded = similarity::LoadWorkload(WriteWorkloadFile());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_users(), 3);
  EXPECT_EQ(loaded->TotalEntries(), 4);

  const std::string resaved = (dir_ / "resaved.tsv").string();
  ASSERT_TRUE(similarity::SaveWorkload(*loaded, resaved).ok());
  auto again = similarity::LoadWorkload(resaved);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->TotalEntries(), 4);
}

TEST_F(CacheFileRobustnessTest, WorkloadTruncatedAtLineBoundaryIsDetected) {
  // Drop the final entry line — every remaining line parses, so only the
  // header's entries= count can catch the loss.
  const std::string path =
      WriteFile("workload.tsv",
                "# privrec workload measure=cn users=3 entries=4 "
                "max_column_sum=3 max_entry=2\n"
                "0\t1\t2\n"
                "0\t2\t1\n"
                "1\t0\t2\n");
  auto loaded = similarity::LoadWorkload(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("truncated workload"),
            std::string::npos);
}

TEST_F(CacheFileRobustnessTest, WorkloadTruncatedMidRecordIsParseError) {
  const std::string path =
      WriteFile("workload.tsv",
                "# privrec workload measure=cn users=3 entries=4 "
                "max_column_sum=3 max_entry=2\n"
                "0\t1\t2\n"
                "0\t2\t1.");  // cut mid-double, no trailing newline
  auto loaded = similarity::LoadWorkload(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST_F(CacheFileRobustnessTest, WorkloadBitFlipIsParseErrorNotACrash) {
  // Flip a byte in an id field (digit -> letter) and one in the header.
  const std::string good =
      "# privrec workload measure=cn users=3 entries=4 "
      "max_column_sum=3 max_entry=2\n"
      "0\t1\t2\n0\t2\t1\n1\t0\t2\n2\t0\t1\n";
  for (size_t flip : {size_t(30), size_t(70), good.size() - 2}) {
    std::string bad = good;
    bad[flip] = static_cast<char>(bad[flip] ^ 0x40);
    auto loaded = similarity::LoadWorkload(
        WriteFile("flip_" + std::to_string(flip) + ".tsv", bad));
    ASSERT_FALSE(loaded.ok()) << "flip at byte " << flip;
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  }
}

TEST_F(CacheFileRobustnessTest, WorkloadShortReadFaultIsTruncation) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  const std::string path = WriteWorkloadFile();
  fault::ScopedFaultInjection scope;
  fault::FaultInjector::Instance().ArmNth("workload_io.read",
                                          fault::FaultKind::kShortRead, 2);
  auto loaded = similarity::LoadWorkload(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("short read"), std::string::npos);
}

TEST_F(CacheFileRobustnessTest, WorkloadOpenAndReadFaultsAreIoErrors) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  const std::string path = WriteWorkloadFile();
  {
    fault::ScopedFaultInjection scope(
        "workload_io.open",
        fault::FaultSpec{.kind = fault::FaultKind::kIoError});
    auto loaded = similarity::LoadWorkload(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  }
  {
    fault::ScopedFaultInjection scope(
        "workload_io.read",
        fault::FaultSpec{.kind = fault::FaultKind::kIoError});
    auto loaded = similarity::LoadWorkload(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  }
  // Disarmed again: the same file loads cleanly.
  auto loaded = similarity::LoadWorkload(path);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
}

TEST_F(CacheFileRobustnessTest, PartitionTruncatedAtLineBoundaryIsDetected) {
  const std::string path =
      WriteFile("partition.tsv",
                "# privrec partition: 4 nodes, 2 clusters\n"
                "0\t0\n"
                "1\t0\n"
                "2\t1\n");  // node 3 lost to truncation
  auto loaded = community::LoadPartition(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("truncated partition"),
            std::string::npos);
}

TEST_F(CacheFileRobustnessTest, PartitionBitFlipIsParseErrorNotACrash) {
  const std::string good =
      "# privrec partition: 4 nodes, 2 clusters\n"
      "0\t0\n1\t0\n2\t1\n3\t1\n";
  // Flip bytes across header and body (digit -> letter / '#' -> 'c').
  for (size_t flip : {size_t(0), size_t(21), size_t(41), good.size() - 2}) {
    std::string bad = good;
    bad[flip] = static_cast<char>(bad[flip] ^ 0x40);
    auto loaded = community::LoadPartition(
        WriteFile("flip_" + std::to_string(flip) + ".tsv", bad));
    ASSERT_FALSE(loaded.ok()) << "flip at byte " << flip;
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError)
        << "flip at byte " << flip;
  }
}

TEST_F(CacheFileRobustnessTest, PartitionShortReadAndIoFaultsSurface) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  const std::string path = WritePartitionFile();
  {
    fault::ScopedFaultInjection scope;
    fault::FaultInjector::Instance().ArmNth("partition_io.read",
                                            fault::FaultKind::kShortRead, 3);
    auto loaded = community::LoadPartition(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
    EXPECT_NE(loaded.status().message().find("short read"),
              std::string::npos);
  }
  {
    fault::ScopedFaultInjection scope(
        "partition_io.open",
        fault::FaultSpec{.kind = fault::FaultKind::kIoError});
    auto loaded = community::LoadPartition(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  }
  auto loaded = community::LoadPartition(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes(), 4);
}

TEST_F(LastFmRobustnessTest, TransientReadFaultIsRetriedAway) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  WriteFile("user_friends.dat", "userID\tfriendID\n1\t2\n2\t3\n");
  WriteFile("user_artists.dat", "userID\tartistID\tweight\n1\t10\t5\n");
  fault::ScopedFaultInjection scope;
  fault::FaultInjector::Instance().ArmNth("data.lastfm.open",
                                          fault::FaultKind::kIoError, 1);
  auto ds = data::LoadHetRecLastFm(dir_.string(), {.max_attempts = 2});
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->report.io_retries, 1);
  EXPECT_EQ(ds->social.num_edges(), 2);
}

// ------------------------------------------------- atomic artifact saves

// SaveArtifact publishes via write-temp-then-rename: a crash (simulated by
// a fault between the temp write and the rename) must leave the previous
// artifact byte-intact and no temp debris a reloader could mistake for a
// release.
class ArtifactSaveRobustnessTest : public DataRobustnessTest {
 protected:
  serving::ArtifactModel BuildModel(uint64_t seed) {
    artifact::ModelArtifactBuilder builder(&social_, &prefs_);
    builder.SetPartition(&partition_);
    builder.SetWorkload(&workload_);
    artifact::BuildOptions build_options;
    build_options.epsilon = 0.9;
    build_options.seed = seed;
    auto model = builder.Build(build_options);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    return std::move(*model);
  }

  graph::SocialGraph social_ =
      graph::SocialGraph::FromEdges(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  graph::PreferenceGraph prefs_ = graph::PreferenceGraph::FromEdges(
      5, 3, {{0, 0}, {1, 0}, {2, 1}, {3, 2}});
  similarity::SimilarityWorkload workload_ =
      similarity::SimilarityWorkload::Compute(social_,
                                              similarity::CommonNeighbors());
  community::Partition partition_{{0, 0, 0, 1, 1}};
};

TEST_F(ArtifactSaveRobustnessTest, SuccessfulSaveLeavesNoTempFile) {
  const std::string path = (dir_ / "model.pvra").string();
  serving::ArtifactModel model = BuildModel(5);
  ASSERT_TRUE(serving::SaveArtifact(model, path).ok());
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_TRUE(serving::LoadArtifact(path).ok());
}

TEST_F(ArtifactSaveRobustnessTest, CrashBeforeRenameKeepsOldArtifact) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  const std::string path = (dir_ / "model.pvra").string();
  ASSERT_TRUE(serving::SaveArtifact(BuildModel(5), path).ok());

  // The overwrite "crashes" after fully writing the temp file, before the
  // rename: the published artifact must still be generation 5.
  fault::ScopedFaultInjection scope(
      "artifact.rename",
      fault::FaultSpec{.kind = fault::FaultKind::kIoError});
  Status failed = serving::SaveArtifact(BuildModel(6), path);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  auto survivor = serving::LoadArtifact(path);
  ASSERT_TRUE(survivor.ok()) << survivor.status().ToString();
  EXPECT_EQ(survivor->provenance.seed, 5u);
}

TEST_F(ArtifactSaveRobustnessTest, WriteFaultNeverTouchesDestination) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  const std::string path = (dir_ / "model.pvra").string();
  ASSERT_TRUE(serving::SaveArtifact(BuildModel(5), path).ok());

  fault::ScopedFaultInjection scope(
      "artifact.write",
      fault::FaultSpec{.kind = fault::FaultKind::kIoError});
  ASSERT_FALSE(serving::SaveArtifact(BuildModel(6), path).ok());
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  auto survivor = serving::LoadArtifact(path);
  ASSERT_TRUE(survivor.ok());
  EXPECT_EQ(survivor->provenance.seed, 5u);
}

}  // namespace
}  // namespace privrec
