// Robustness tests for the ingestion layer: strict vs lenient parse modes,
// per-defect-class LoadReport accounting, truncated/empty/BOM/CRLF inputs,
// injected I/O faults and bounded retry.

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "data/hetrec_lastfm.h"
#include "graph/graph_io.h"

namespace privrec {
namespace {

namespace fs = std::filesystem;

class DataRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("privrec_robust_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Writes `content` verbatim (no newline appended — callers control the
  // final byte to exercise truncation heuristics).
  std::string WriteFile(const std::string& name, const std::string& content) {
    const std::string path = (dir_ / name).string();
    std::ofstream out(path, std::ios::binary);
    out << content;
    return path;
  }

  fs::path dir_;
};

// ------------------------------------------------------------- graph I/O

TEST_F(DataRobustnessTest, LenientSocialLoadCountsEveryDefectClass) {
  const std::string path = WriteFile("social.txt",
                                     "# comment\n"
                                     "0 1\n"
                                     "1 0\n"       // duplicate (undirected)
                                     "2 2\n"       // self loop
                                     "3 -4\n"      // out of range
                                     "5 six\n"     // malformed
                                     "0 2\n"
                                     "\n"
                                     "1 2\n");
  auto loaded = graph::LoadSocialGraph(path, {.mode = ParseMode::kLenient});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const LoadReport& r = loaded->report;
  EXPECT_EQ(r.lines_scanned, 7);
  EXPECT_EQ(r.records_loaded, 3);
  EXPECT_EQ(r.skipped_duplicates, 1);
  EXPECT_EQ(r.skipped_self_loops, 1);
  EXPECT_EQ(r.skipped_out_of_range, 1);
  EXPECT_EQ(r.skipped_malformed, 1);
  EXPECT_EQ(r.TotalSkipped(), 4);
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(loaded->graph.num_nodes(), 3);  // ids 0, 1, 2
  EXPECT_EQ(loaded->graph.num_edges(), 3);
}

TEST_F(DataRobustnessTest, StrictSocialLoadFailsOnFirstDefect) {
  const std::string path = WriteFile("social.txt", "0 1\n5 six\n1 2\n");
  auto loaded = graph::LoadSocialGraph(path);  // default strict
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST_F(DataRobustnessTest, StrictSocialLoadRejectsNegativeIds) {
  const std::string path = WriteFile("social.txt", "0 -1\n");
  auto loaded = graph::LoadSocialGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST_F(DataRobustnessTest, TruncatedFinalRecordIsTruncationNotMalformation) {
  // The file ends mid-record with no trailing newline — a short copy, not
  // a malformed source.
  const std::string path = WriteFile("social.txt", "0 1\n1 2\n3");
  auto lenient = graph::LoadSocialGraph(path, {.mode = ParseMode::kLenient});
  ASSERT_TRUE(lenient.ok());
  EXPECT_TRUE(lenient->report.truncated);
  EXPECT_EQ(lenient->report.skipped_malformed, 0);
  EXPECT_EQ(lenient->report.records_loaded, 2);

  auto strict = graph::LoadSocialGraph(path);
  ASSERT_FALSE(strict.ok());
}

TEST_F(DataRobustnessTest, CrlfAndBomInputsLoadCleanly) {
  const std::string path = WriteFile(
      "social.txt", "\xEF\xBB\xBF# exported from Windows\r\n0 1\r\n1 2\r\n");
  auto loaded = graph::LoadSocialGraph(path, {.mode = ParseMode::kLenient});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->report.bom_stripped);
  EXPECT_EQ(loaded->report.records_loaded, 2);
  EXPECT_EQ(loaded->report.TotalSkipped(), 0);
  EXPECT_EQ(loaded->graph.num_edges(), 2);
}

TEST_F(DataRobustnessTest, EmptyFileLoadsAsEmptyGraph) {
  for (ParseMode mode : {ParseMode::kStrict, ParseMode::kLenient}) {
    const std::string path = WriteFile("empty.txt", "");
    auto loaded = graph::LoadSocialGraph(path, {.mode = mode});
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_TRUE(loaded->report.empty_input);
    EXPECT_EQ(loaded->graph.num_nodes(), 0);
  }
}

TEST_F(DataRobustnessTest, LenientPreferenceLoadCountsWeightAndDuplicates) {
  const std::string path = WriteFile("prefs.txt",
                                     "0 10 2.0\n"
                                     "0 10 5.0\n"   // duplicate pair
                                     "1 11 -3.0\n"  // bad weight
                                     "1 12 x\n"     // bad weight
                                     "2 10\n");     // unweighted line is fine
  auto loaded =
      graph::LoadPreferenceGraph(path, {.mode = ParseMode::kLenient});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->report.records_loaded, 2);
  EXPECT_EQ(loaded->report.skipped_duplicates, 1);
  EXPECT_EQ(loaded->report.skipped_bad_weight, 2);
  EXPECT_TRUE(loaded->graph.is_weighted());
}

// --------------------------------------------------- faults and retrying

TEST_F(DataRobustnessTest, TransientOpenFaultIsRetriedAway) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  const std::string path = WriteFile("social.txt", "0 1\n1 2\n");
  fault::ScopedFaultInjection scope;
  // Fails on the first open only; attempt 2 succeeds.
  fault::FaultInjector::Instance().ArmNth("graph_io.open",
                                          fault::FaultKind::kIoError, 1);
  auto loaded = graph::LoadSocialGraph(path, {.max_attempts = 3});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->report.io_retries, 1);
  EXPECT_EQ(loaded->graph.num_edges(), 2);
}

TEST_F(DataRobustnessTest, PersistentOpenFaultExhaustsAttempts) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  const std::string path = WriteFile("social.txt", "0 1\n");
  fault::ScopedFaultInjection scope(
      "graph_io.open", fault::FaultSpec{.kind = fault::FaultKind::kIoError});
  auto loaded = graph::LoadSocialGraph(path, {.max_attempts = 3});
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_EQ(fault::FaultInjector::Instance().HitCount("graph_io.open"), 3);
}

TEST_F(DataRobustnessTest, InjectedShortReadMarksTruncation) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  const std::string path = WriteFile("social.txt", "0 1\n1 2\n2 3\n");
  fault::ScopedFaultInjection scope;
  fault::FaultInjector::Instance().ArmNth("graph_io.read",
                                          fault::FaultKind::kShortRead, 3);
  auto lenient = graph::LoadSocialGraph(path, {.mode = ParseMode::kLenient});
  ASSERT_TRUE(lenient.ok());
  EXPECT_TRUE(lenient->report.truncated);
  EXPECT_EQ(lenient->report.records_loaded, 2);

  fault::FaultInjector::Instance().ArmNth("graph_io.read",
                                          fault::FaultKind::kShortRead, 3);
  auto strict = graph::LoadSocialGraph(path);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kIoError);
}

TEST_F(DataRobustnessTest, InjectedAllocFailureIsResourceExhausted) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  const std::string path = WriteFile("social.txt", "0 1\n");
  fault::ScopedFaultInjection scope(
      "graph_io.alloc",
      fault::FaultSpec{.kind = fault::FaultKind::kBadAlloc});
  auto loaded = graph::LoadSocialGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kResourceExhausted);
}

// ------------------------------------------------------- Last.fm loader

class LastFmRobustnessTest : public DataRobustnessTest {
 protected:
  // A Last.fm-format directory with one defect of every class. Expected
  // lenient accounting, exactly:
  //   friends: 6 records scanned — 2 valid, 1 duplicate (1-2 twice),
  //            1 self loop, 1 malformed, 1 out-of-range
  //   artists: 6 records scanned — 2 valid, 1 duplicate (1-10 twice),
  //            1 malformed, 1 below min_weight (filtered, not a defect),
  //            1 for an unknown user (filtered, not a defect)
  void WriteCorruptedDataset() {
    WriteFile("user_friends.dat",
              "userID\tfriendID\n"
              "1\t2\n"
              "2\t1\n"
              "3\t3\n"
              "4\tx\n"
              "-5\t6\n"
              "1\t3\n");
    WriteFile("user_artists.dat",
              "userID\tartistID\tweight\n"
              "1\t10\t5\n"
              "1\t10\t7\n"
              "2\t11\t1\n"
              "3\t12\t2\n"
              "9\t13\t4\n"
              "2\tbad\t3\n");
  }
};

TEST_F(LastFmRobustnessTest, LenientLoadRecoversValidSubsetWithExactCounts) {
  WriteCorruptedDataset();
  auto ds = data::LoadHetRecLastFm(dir_.string(),
                                   {.parse_mode = ParseMode::kLenient});
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  const LoadReport& r = ds->report;
  EXPECT_EQ(r.lines_scanned, 12);
  EXPECT_EQ(r.records_loaded, 4);  // 2 social + 2 preference edges
  EXPECT_EQ(r.skipped_duplicates, 2);
  EXPECT_EQ(r.skipped_malformed, 2);
  EXPECT_EQ(r.skipped_out_of_range, 1);
  EXPECT_EQ(r.skipped_self_loops, 1);
  EXPECT_EQ(r.skipped_bad_weight, 0);
  EXPECT_FALSE(r.truncated);

  EXPECT_EQ(ds->social.num_nodes(), 3);        // users 1, 2, 3
  EXPECT_EQ(ds->social.num_edges(), 2);        // 1-2, 1-3
  EXPECT_EQ(ds->preferences.num_items(), 2);   // artists 10, 12
  EXPECT_EQ(ds->preferences.num_edges(), 2);
}

TEST_F(LastFmRobustnessTest, StrictLoadRejectsTheCorruptedDataset) {
  WriteCorruptedDataset();
  auto ds = data::LoadHetRecLastFm(dir_.string());
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kParseError);
}

TEST_F(LastFmRobustnessTest, TruncatedArtistsFileIsDetected) {
  WriteFile("user_friends.dat", "userID\tfriendID\n1\t2\n");
  // Final record cut mid-row, no trailing newline.
  WriteFile("user_artists.dat", "userID\tartistID\tweight\n1\t10\t5\n1\t11");
  auto lenient = data::LoadHetRecLastFm(
      dir_.string(), {.parse_mode = ParseMode::kLenient});
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_TRUE(lenient->report.truncated);
  EXPECT_EQ(lenient->preferences.num_edges(), 1);

  auto strict = data::LoadHetRecLastFm(dir_.string());
  ASSERT_FALSE(strict.ok());
}

TEST_F(LastFmRobustnessTest, BomHeaderIsStripped) {
  WriteFile("user_friends.dat", "\xEF\xBB\xBFuserID\tfriendID\n1\t2\n");
  WriteFile("user_artists.dat", "userID\tartistID\tweight\n1\t10\t5\n");
  auto ds = data::LoadHetRecLastFm(dir_.string(),
                                   {.parse_mode = ParseMode::kLenient});
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_TRUE(ds->report.bom_stripped);
}

TEST_F(LastFmRobustnessTest, TransientReadFaultIsRetriedAway) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  WriteFile("user_friends.dat", "userID\tfriendID\n1\t2\n2\t3\n");
  WriteFile("user_artists.dat", "userID\tartistID\tweight\n1\t10\t5\n");
  fault::ScopedFaultInjection scope;
  fault::FaultInjector::Instance().ArmNth("data.lastfm.open",
                                          fault::FaultKind::kIoError, 1);
  auto ds = data::LoadHetRecLastFm(dir_.string(), {.max_attempts = 2});
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->report.io_retries, 1);
  EXPECT_EQ(ds->social.num_edges(), 2);
}

}  // namespace
}  // namespace privrec
