// Tests for the resilient serving runtime (src/serve): the circuit
// breaker state machine on an injected clock, admission control
// (shedding, deadlines, slot recycling), the epoch-based hot artifact
// swap with rollback, and the ServeRuntime composition — including the
// degradation-tier interplay (shed requests answered from the
// global-average fallback, isolated users stable across swaps).

#include "serve/admission.h"
#include "serve/circuit_breaker.h"
#include "serve/clock.h"
#include "serve/runtime.h"
#include "serve/statusz.h"
#include "serve/swapper.h"
#include "serve/telemetry.h"

// The serving runtime inherits the include-level privacy isolation of the
// serving layer: none of the headers above may pull in the private graph
// containers.
#if defined(PRIVREC_GRAPH_PREFERENCE_GRAPH_H_) || \
    defined(PRIVREC_GRAPH_SOCIAL_GRAPH_H_)
#error "serve headers must not include the private graph containers"
#endif

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "artifact/builder.h"
#include "artifact/model_io.h"
#include "common/driver_flags.h"
#include "common/flags.h"
#include "community/louvain.h"
#include "data/synthetic.h"
#include "graph/preference_graph.h"
#include "graph/social_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/wide_event.h"
#include "similarity/common_neighbors.h"

namespace privrec {
namespace {

namespace fs = std::filesystem;

using core::DegradationReason;
using serve::AdmissionController;
using serve::AdmissionOptions;
using serve::AdmissionTicket;
using serve::ArtifactSwapper;
using serve::AsyncServe;
using serve::BreakerState;
using serve::CircuitBreaker;
using serve::CircuitBreakerOptions;
using serve::ManualClock;
using serve::ServeRequest;
using serve::ServeResponse;
using serve::ServeRuntime;
using serve::ServeRuntimeOptions;
using serve::SwapPolicy;

// ------------------------------------------------------------ breaker

TEST(CircuitBreakerTest, OpensAfterThresholdRejectsThenRecovers) {
  ManualClock clock;
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.cooldown_ms = 100;
  CircuitBreaker breaker("test", options, &clock);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);

  int calls = 0;
  auto fail = [&] {
    ++calls;
    return Status::IoError("backing store down");
  };
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(breaker.Run(fail).code(), StatusCode::kIoError);
  }
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_GT(breaker.retry_after_ms(), 0);

  // Open: fail fast with a typed rejection, the operation never runs.
  Status rejected = breaker.Run(fail);
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rejected.ToString().find("retry in"), std::string::npos);
  EXPECT_EQ(calls, 3);

  // Cooldown elapses -> half-open; a successful probe closes it.
  clock.Advance(100);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.Run([&] { return Status::Ok(); }).ok());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(CircuitBreakerTest, HalfOpenProbeGetsBoundedRetries) {
  ManualClock clock;
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown_ms = 50;
  options.probe_retry.max_attempts = 3;
  CircuitBreaker breaker("probe", options, &clock);

  ASSERT_EQ(breaker.Run([] { return Status::IoError("x"); }).code(),
            StatusCode::kIoError);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  clock.Advance(50);

  // The half-open probe wraps the op in RetryWithBackoff: two transient
  // failures then success all inside ONE probe, and the breaker closes.
  int calls = 0;
  Status probed = breaker.Run([&] {
    return ++calls < 3 ? Status::IoError("flaky") : Status::Ok();
  });
  EXPECT_TRUE(probed.ok()) << probed.ToString();
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, FailedProbeRestartsCooldown) {
  ManualClock clock;
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown_ms = 100;
  options.probe_retry.max_attempts = 1;
  CircuitBreaker breaker("restart", options, &clock);

  ASSERT_EQ(breaker.Run([] { return Status::IoError("x"); }).code(),
            StatusCode::kIoError);
  clock.Advance(100);
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
  // The probe itself fails: back to open for a FULL new cooldown.
  EXPECT_EQ(breaker.Run([] { return Status::IoError("still down"); }).code(),
            StatusCode::kIoError);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  clock.Advance(99);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  clock.Advance(1);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, NonFailureCodesDoNotAccumulateAcrossSuccess) {
  ManualClock clock;
  CircuitBreakerOptions options;
  options.failure_threshold = 2;
  CircuitBreaker breaker("reset", options, &clock);
  EXPECT_EQ(breaker.Run([] { return Status::IoError("x"); }).code(),
            StatusCode::kIoError);
  EXPECT_TRUE(breaker.Run([] { return Status::Ok(); }).ok());
  // The success reset the streak; one more failure must not trip it.
  EXPECT_EQ(breaker.Run([] { return Status::IoError("x"); }).code(),
            StatusCode::kIoError);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

// ------------------------------------------------------------ admission

TEST(AdmissionTest, ShedsImmediatelyWhenQueueFull) {
  ManualClock clock;
  AdmissionOptions options;
  options.max_concurrency = 1;
  options.queue_depth = 0;
  options.retry_after_ms = 25;
  AdmissionController admission(options, &clock);

  Result<AdmissionTicket> first = admission.Admit(1000);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(admission.in_flight(), 1);

  Result<AdmissionTicket> second = admission.Admit(1000);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(second.status().ToString().find("retry in 25ms"),
            std::string::npos);

  // Releasing the slot makes the next admit succeed.
  first->Release();
  EXPECT_EQ(admission.in_flight(), 0);
  EXPECT_TRUE(admission.Admit(1000).ok());
}

TEST(AdmissionTest, ExpiredDeadlineIsTyped) {
  ManualClock clock;
  clock.Set(500);
  AdmissionController admission({}, &clock);
  Result<AdmissionTicket> late = admission.Admit(500);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(AdmissionTest, QueuedRequestTimesOutOnInjectedClock) {
  ManualClock clock;
  AdmissionOptions options;
  options.max_concurrency = 1;
  options.queue_depth = 4;
  AdmissionController admission(options, &clock);
  Result<AdmissionTicket> holder = admission.Admit(10'000);
  ASSERT_TRUE(holder.ok());

  std::atomic<int> code{-1};
  std::thread waiter([&] {
    Result<AdmissionTicket> queued = admission.Admit(100);
    code.store(static_cast<int>(queued.status().code()));
  });
  // Let the waiter queue up, then advance the injected clock past its
  // deadline; the timed cv slices re-check the clock and give up.
  while (admission.waiting() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  clock.Advance(200);
  waiter.join();
  EXPECT_EQ(code.load(), static_cast<int>(StatusCode::kDeadlineExceeded));
  EXPECT_EQ(admission.waiting(), 0);
}

TEST(AdmissionTest, QueuedRequestGetsSlotWhenReleased) {
  ManualClock clock;
  AdmissionOptions options;
  options.max_concurrency = 1;
  options.queue_depth = 4;
  AdmissionController admission(options, &clock);
  Result<AdmissionTicket> holder = admission.Admit(10'000);
  ASSERT_TRUE(holder.ok());

  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    Result<AdmissionTicket> queued = admission.Admit(10'000);
    admitted.store(queued.ok());
  });
  while (admission.waiting() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  holder->Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(admission.in_flight(), 0);  // waiter's ticket already destroyed
}

TEST(AdmissionTest, TicketIsMoveOnlyRaii) {
  ManualClock clock;
  AdmissionOptions options;
  options.max_concurrency = 1;
  AdmissionController admission(options, &clock);
  {
    Result<AdmissionTicket> ticket = admission.Admit(1000);
    ASSERT_TRUE(ticket.ok());
    AdmissionTicket moved = std::move(*ticket);
    EXPECT_TRUE(moved.holds_slot());
    EXPECT_FALSE(ticket->holds_slot());
    EXPECT_EQ(admission.in_flight(), 1);
  }
  // Scope exit released exactly once despite the move.
  EXPECT_EQ(admission.in_flight(), 0);
}

// Satellite: the retry-after hint is load-aware — an EWMA of observed
// slot-hold times scaled by queue occupancy, floored at the configured
// constant.
TEST(AdmissionTest, RetryAfterHintScalesWithQueueOccupancy) {
  ManualClock clock;
  AdmissionOptions options;
  options.max_concurrency = 2;
  options.queue_depth = 3;
  options.retry_after_ms = 5;     // the floor
  options.hold_ewma_alpha = 1.0;  // track the latest hold exactly
  AdmissionController admission(options, &clock);

  // Before any hold has been observed the hint is the bare floor.
  EXPECT_EQ(admission.RetryAfterHintMs(), 5);

  serve::PendingAdmit first = admission.AdmitAsync(10'000);
  ASSERT_EQ(first.state(), serve::PendingAdmit::State::kAdmitted);
  AdmissionTicket ticket = first.TakeTicket();
  clock.Advance(100);
  ticket.Release();
  EXPECT_DOUBLE_EQ(admission.EstimatedHoldMs(), 100.0);

  // Idle system: ceil(100 * (0 + 1) / 2 slots) = 50.
  EXPECT_EQ(admission.RetryAfterHintMs(), 50);

  // Two slots held, three waiters queued: ceil(100 * 4 / 2) = 200.
  serve::PendingAdmit s1 = admission.AdmitAsync(10'000);
  serve::PendingAdmit s2 = admission.AdmitAsync(10'000);
  serve::PendingAdmit w1 = admission.AdmitAsync(10'000);
  serve::PendingAdmit w2 = admission.AdmitAsync(10'000);
  serve::PendingAdmit w3 = admission.AdmitAsync(10'000);
  ASSERT_EQ(admission.waiting(), 3);
  EXPECT_EQ(admission.RetryAfterHintMs(), 200);

  // A request shed off the full queue carries the scaled hint, not the
  // floor.
  serve::PendingAdmit shed = admission.AdmitAsync(10'000);
  ASSERT_EQ(shed.state(), serve::PendingAdmit::State::kShed);
  EXPECT_EQ(shed.retry_after_ms(), 200);
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().ToString().find("retry in 200ms"),
            std::string::npos);
}

// Satellite regression: a queued request whose deadline has passed is
// purged when the next slot frees — the slot goes to the first LIVE
// waiter instead of waking a dead request just to fail it.
TEST(AdmissionTest, ExpiredWaiterIsPurgedWhenSlotFrees) {
  ManualClock clock;
  AdmissionOptions options;
  options.max_concurrency = 1;
  options.queue_depth = 4;
  AdmissionController admission(options, &clock);

  serve::PendingAdmit holder = admission.AdmitAsync(10'000);
  ASSERT_EQ(holder.state(), serve::PendingAdmit::State::kAdmitted);
  AdmissionTicket ticket = holder.TakeTicket();

  serve::PendingAdmit dead = admission.AdmitAsync(50);
  serve::PendingAdmit live = admission.AdmitAsync(10'000);
  ASSERT_EQ(dead.state(), serve::PendingAdmit::State::kQueued);
  ASSERT_EQ(admission.waiting(), 2);

  clock.Advance(100);  // dead's deadline passes while it waits
  ticket.Release();

  EXPECT_EQ(dead.state(), serve::PendingAdmit::State::kExpired);
  EXPECT_EQ(dead.status().code(), StatusCode::kDeadlineExceeded);
  // The freed slot was handed past the corpse to the live waiter —
  // in_flight never dipped (slot transfer, not release + re-admit).
  EXPECT_EQ(live.state(), serve::PendingAdmit::State::kAdmitted);
  EXPECT_EQ(admission.waiting(), 0);
  EXPECT_EQ(admission.in_flight(), 1);
  live.TakeTicket().Release();
  EXPECT_EQ(admission.in_flight(), 0);
}

TEST(AdmissionTest, PurgeExpiredResolvesWaitersWithoutTraffic) {
  ManualClock clock;
  AdmissionOptions options;
  options.max_concurrency = 1;
  options.queue_depth = 4;
  AdmissionController admission(options, &clock);

  serve::PendingAdmit holder = admission.AdmitAsync(10'000);
  AdmissionTicket ticket = holder.TakeTicket();
  serve::PendingAdmit w1 = admission.AdmitAsync(20);
  serve::PendingAdmit w2 = admission.AdmitAsync(40);
  ASSERT_EQ(admission.waiting(), 2);

  // A clock-advancing driver purges without any release happening.
  clock.Advance(30);
  EXPECT_EQ(admission.PurgeExpired(), 1);
  EXPECT_EQ(w1.state(), serve::PendingAdmit::State::kExpired);
  EXPECT_EQ(w2.state(), serve::PendingAdmit::State::kQueued);
  clock.Advance(20);
  EXPECT_EQ(admission.PurgeExpired(), 1);
  EXPECT_EQ(w2.state(), serve::PendingAdmit::State::kExpired);
  EXPECT_EQ(admission.waiting(), 0);
  EXPECT_EQ(admission.PurgeExpired(), 0);
}

// Async and blocking admissions share ONE FIFO queue: a release grants
// whichever waiter is in front, regardless of style.
TEST(AdmissionTest, AsyncAndBlockingShareOneFifoQueue) {
  ManualClock clock;
  AdmissionOptions options;
  options.max_concurrency = 1;
  options.queue_depth = 4;
  AdmissionController admission(options, &clock);

  serve::PendingAdmit holder = admission.AdmitAsync(10'000);
  AdmissionTicket ticket = holder.TakeTicket();

  serve::PendingAdmit front = admission.AdmitAsync(10'000);
  ASSERT_EQ(front.state(), serve::PendingAdmit::State::kQueued);

  std::atomic<bool> blocking_admitted{false};
  std::thread blocking([&] {
    Result<AdmissionTicket> queued = admission.Admit(10'000);
    blocking_admitted.store(queued.ok());
  });
  while (admission.waiting() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  ticket.Release();  // front of the queue is the async waiter
  EXPECT_EQ(front.state(), serve::PendingAdmit::State::kAdmitted);
  front.TakeTicket().Release();  // ...and the next grant is the blocker
  blocking.join();
  EXPECT_TRUE(blocking_admitted.load());
  EXPECT_EQ(admission.in_flight(), 0);
}

// ------------------------------------------------------------ swapper

class ServeSwapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("privrec_serve_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    dataset_ = data::MakeTinyDataset(/*num_users=*/60, /*num_items=*/40,
                                     /*seed=*/7);
    workload_ = similarity::SimilarityWorkload::Compute(
        dataset_.social, similarity::CommonNeighbors());
    louvain_ = community::RunLouvain(dataset_.social,
                                     {.restarts = 2, .seed = 3});
    for (graph::NodeId u = 0; u < dataset_.social.num_nodes(); u += 3) {
      users_.push_back(u);
    }
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  // Builds a fresh artifact (fresh builder: invocation 0) at `path`.
  std::string BuildArtifact(const std::string& name, uint64_t seed,
                            double epsilon) {
    artifact::ModelArtifactBuilder builder(&dataset_.social,
                                           &dataset_.preferences);
    builder.SetPartition(&louvain_.partition);
    builder.SetWorkload(&workload_);
    artifact::BuildOptions build_options;
    build_options.epsilon = epsilon;
    build_options.seed = seed;
    auto model = builder.Build(build_options);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    const std::string path = Path(name);
    Status saved = serving::SaveArtifact(*model, path);
    EXPECT_TRUE(saved.ok()) << saved.ToString();
    return path;
  }

  SwapPolicy ClusterPolicy(double epsilon) const {
    SwapPolicy policy;
    policy.spec.mechanism = "Cluster";
    policy.spec.epsilon = epsilon;
    return policy;
  }

  static constexpr double kEps = 0.7;

  fs::path dir_;
  data::Dataset dataset_;
  similarity::SimilarityWorkload workload_;
  community::LouvainResult louvain_;
  std::vector<graph::NodeId> users_;
};

TEST_F(ServeSwapTest, ActivatePublishesEpochAndServes) {
  const std::string path = BuildArtifact("a.pvra", 11, kEps);
  ArtifactSwapper swapper(ClusterPolicy(kEps));
  EXPECT_EQ(swapper.Acquire(), nullptr);

  Status activated = swapper.Activate(path);
  ASSERT_TRUE(activated.ok()) << activated.ToString();
  EXPECT_EQ(swapper.current_epoch(), 1);
  EXPECT_EQ(swapper.swaps(), 1);
  EXPECT_EQ(swapper.rollbacks(), 0);

  auto epoch = swapper.AcquireMutable();
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->epoch, 1);
  core::RecommendedBatch batch = epoch->recommender->Recommend(users_, 10);
  ASSERT_EQ(batch.lists.size(), users_.size());

  // Same artifact served directly must be bit-identical.
  auto engine = serving::ServingEngine::Load(path);
  ASSERT_TRUE(engine.ok());
  auto server = serving::MakeServeRecommender(&*engine,
                                              ClusterPolicy(kEps).spec);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ((*server)->Recommend(users_, 10).lists, batch.lists);
  EXPECT_EQ(epoch->artifact_seed, 11u);
}

TEST_F(ServeSwapTest, CorruptArtifactRollsBackAndKeepsServing) {
  const std::string good = BuildArtifact("good.pvra", 11, kEps);
  const std::string bad = BuildArtifact("bad.pvra", 12, kEps);
  {
    // Flip one payload bit: CRC must reject the section.
    std::fstream f(bad, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(200);
    char byte = 0;
    f.seekg(200);
    f.read(&byte, 1);
    byte ^= 0x10;
    f.seekp(200);
    f.write(&byte, 1);
  }

  obs::Tracer::Instance().SetEnabled(true);
  obs::Counter& rollback_metric =
      obs::GetCounter("privrec.serve.swap_rollback_total");
  const int64_t rollbacks_before = rollback_metric.value();

  ArtifactSwapper swapper(ClusterPolicy(kEps));
  ASSERT_TRUE(swapper.Activate(good).ok());
  auto before = swapper.Acquire();
  core::RecommendedBatch reference =
      swapper.AcquireMutable()->recommender->Recommend(users_, 10);

  Status swapped = swapper.Activate(bad);
  EXPECT_FALSE(swapped.ok());
  EXPECT_EQ(swapper.current_epoch(), 1);
  EXPECT_EQ(swapper.rollbacks(), 1);
  EXPECT_FALSE(swapper.last_error().empty());
  if (obs::kCompiledIn) {
    EXPECT_EQ(rollback_metric.value(), rollbacks_before + 1);
  }

  // The published epoch is untouched and still serves identically.
  auto after = swapper.AcquireMutable();
  EXPECT_EQ(after->epoch, 1);
  EXPECT_EQ(after->recommender->Recommend(users_, 10).lists,
            reference.lists);
  EXPECT_EQ(before, swapper.Acquire());

  // Every attempt (success and rollback) traced a serve.swap span.
  std::vector<obs::SpanRecord> spans = obs::Tracer::Instance().Snapshot();
  obs::Tracer::Instance().SetEnabled(false);
  int64_t swap_spans = 0;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == "serve.swap") ++swap_spans;
  }
  if (obs::kCompiledIn) EXPECT_GE(swap_spans, 2);
}

TEST_F(ServeSwapTest, ProvenanceGateRollsBack) {
  const std::string good = BuildArtifact("good.pvra", 11, kEps);
  const std::string other = BuildArtifact("other.pvra", 11, kEps / 2);
  ArtifactSwapper swapper(ClusterPolicy(kEps));
  ASSERT_TRUE(swapper.Activate(good).ok());
  Status swapped = swapper.Activate(other);
  EXPECT_EQ(swapped.code(), StatusCode::kProvenanceMismatch);
  EXPECT_EQ(swapper.current_epoch(), 1);
  EXPECT_EQ(swapper.rollbacks(), 1);
}

TEST_F(ServeSwapTest, PinnedGraphHashRejectsForeignDataset) {
  const std::string good = BuildArtifact("good.pvra", 11, kEps);

  // Same shape, different dataset: a different fingerprint.
  data::Dataset foreign = data::MakeTinyDataset(60, 40, /*seed=*/8);
  auto foreign_workload = similarity::SimilarityWorkload::Compute(
      foreign.social, similarity::CommonNeighbors());
  auto foreign_louvain =
      community::RunLouvain(foreign.social, {.restarts = 2, .seed = 3});
  artifact::ModelArtifactBuilder builder(&foreign.social,
                                         &foreign.preferences);
  builder.SetPartition(&foreign_louvain.partition);
  builder.SetWorkload(&foreign_workload);
  artifact::BuildOptions build_options;
  build_options.epsilon = kEps;
  build_options.seed = 11;
  auto model = builder.Build(build_options);
  ASSERT_TRUE(model.ok());
  const std::string foreign_path = Path("foreign.pvra");
  ASSERT_TRUE(serving::SaveArtifact(*model, foreign_path).ok());

  ArtifactSwapper swapper(ClusterPolicy(kEps));
  ASSERT_TRUE(swapper.Activate(good).ok());
  EXPECT_EQ(swapper.Activate(foreign_path).code(),
            StatusCode::kGraphMismatch);
  EXPECT_EQ(swapper.current_epoch(), 1);
}

TEST_F(ServeSwapTest, InFlightEpochSurvivesSwap) {
  const std::string a = BuildArtifact("a.pvra", 11, kEps);
  const std::string b = BuildArtifact("b.pvra", 12, kEps);
  ArtifactSwapper swapper(ClusterPolicy(kEps));
  ASSERT_TRUE(swapper.Activate(a).ok());

  auto held = swapper.AcquireMutable();
  core::RecommendedBatch before = held->recommender->Recommend(users_, 10);

  ASSERT_TRUE(swapper.Activate(b).ok());
  EXPECT_EQ(swapper.current_epoch(), 2);

  // The held snapshot still serves epoch 1, bit-identically, even though
  // the swapper has moved on.
  EXPECT_EQ(held->epoch, 1);
  EXPECT_EQ(held->recommender->Recommend(users_, 10).lists, before.lists);
  EXPECT_EQ(swapper.Acquire()->epoch, 2);
}

// ------------------------------------------------------------ runtime

TEST_F(ServeSwapTest, RuntimeServesAndRecordsEpochIdentity) {
  const std::string path = BuildArtifact("a.pvra", 21, kEps);
  ManualClock clock;
  ServeRuntimeOptions options;
  options.swap = ClusterPolicy(kEps);
  options.clock = &clock;
  ServeRuntime runtime(options);

  // Before activation: typed precondition failure.
  ServeRequest request{users_, 10, 1000};
  EXPECT_EQ(runtime.Handle(request).status.code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(runtime.Activate(path).ok());
  ServeResponse first = runtime.Handle(request);
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(first.epoch, 1);
  EXPECT_EQ(first.artifact_seed, 21u);
  EXPECT_FALSE(first.degraded_fallback);
  ASSERT_EQ(first.batch.lists.size(), users_.size());

  // Cluster serving is frozen-release post-processing: repeat requests
  // within one epoch are bit-identical.
  ServeResponse second = runtime.Handle(request);
  EXPECT_EQ(second.batch.lists, first.batch.lists);
}

TEST_F(ServeSwapTest, ShedRequestGetsGlobalFallbackTier) {
  const std::string path = BuildArtifact("a.pvra", 21, kEps);
  ManualClock clock;
  ServeRuntimeOptions options;
  options.swap = ClusterPolicy(kEps);
  options.clock = &clock;
  options.admission.max_concurrency = 0;  // no slots: everything sheds...
  options.admission.queue_depth = 0;      // ...immediately, never queued
  options.admission.retry_after_ms = 40;
  ServeRuntime runtime(options);
  ASSERT_TRUE(runtime.Activate(path).ok());

  ServeRequest request{users_, 10, 1000};
  ServeResponse shed = runtime.Handle(request);
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.retry_after_ms, 40);
  EXPECT_TRUE(shed.degraded_fallback);
  ASSERT_EQ(shed.batch.lists.size(), users_.size());
  ASSERT_EQ(shed.batch.degradation.size(), users_.size());
  for (const core::DegradationInfo& info : shed.batch.degradation) {
    EXPECT_EQ(info.reason, DegradationReason::kLoadShed);
  }

  // The fallback ranking is the epoch's global-average row.
  auto epoch = runtime.swapper().Acquire();
  core::RecommendationList expected =
      core::TopNFromDense(epoch->engine.global_average(), 10);
  for (const core::RecommendationList& list : shed.batch.lists) {
    EXPECT_EQ(list, expected);
  }
}

TEST_F(ServeSwapTest, ExpiredDeadlineFallsBackWithTypedStatus) {
  const std::string path = BuildArtifact("a.pvra", 21, kEps);
  ManualClock clock;
  clock.Set(100);
  ServeRuntimeOptions options;
  options.swap = ClusterPolicy(kEps);
  options.clock = &clock;
  ServeRuntime runtime(options);
  ASSERT_TRUE(runtime.Activate(path).ok());

  ServeRequest request{users_, 10, /*deadline_ms=*/0};
  ServeResponse expired = runtime.Handle(request);
  EXPECT_EQ(expired.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(expired.retry_after_ms, 0);
  EXPECT_TRUE(expired.degraded_fallback);

  // With the fallback tier disabled the rejection is bare.
  options.degraded_fallback = false;
  ServeRuntime bare(options);
  ASSERT_TRUE(bare.Activate(path).ok());
  ServeResponse rejected = bare.Handle(request);
  EXPECT_EQ(rejected.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(rejected.batch.lists.empty());
}

TEST_F(ServeSwapTest, ReloadBreakerOpensOnRepeatedBadArtifacts) {
  const std::string good = BuildArtifact("good.pvra", 21, kEps);
  ManualClock clock;
  ServeRuntimeOptions options;
  options.swap = ClusterPolicy(kEps);
  options.clock = &clock;
  options.breaker.failure_threshold = 2;
  options.breaker.cooldown_ms = 500;
  options.breaker.probe_retry.max_attempts = 1;
  ServeRuntime runtime(options);
  ASSERT_TRUE(runtime.Activate(good).ok());

  const std::string missing = Path("missing.pvra");
  EXPECT_EQ(runtime.Activate(missing).code(), StatusCode::kNotFound);
  EXPECT_EQ(runtime.Activate(missing).code(), StatusCode::kNotFound);
  EXPECT_EQ(runtime.reload_breaker().state(), BreakerState::kOpen);

  // Open breaker: the reload fails fast WITHOUT touching the swapper.
  const int64_t rollbacks = runtime.swapper().rollbacks();
  EXPECT_EQ(runtime.Activate(good).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(runtime.swapper().rollbacks(), rollbacks);

  // After cooldown the half-open probe lets the good artifact through.
  clock.Advance(500);
  EXPECT_TRUE(runtime.Activate(good).ok());
  EXPECT_EQ(runtime.reload_breaker().state(), BreakerState::kClosed);
  EXPECT_EQ(runtime.swapper().current_epoch(), 2);
}

// Satellite hardening: an empty user list is a valid no-op request — it
// succeeds with epoch identity attached and consumes no admission slot.
TEST_F(ServeSwapTest, EmptyUserListServedWithoutSlot) {
  const std::string path = BuildArtifact("a.pvra", 21, kEps);
  ManualClock clock;
  ServeRuntimeOptions options;
  options.swap = ClusterPolicy(kEps);
  options.clock = &clock;
  options.admission.max_concurrency = 0;  // any slot grab would shed
  options.admission.queue_depth = 0;
  ServeRuntime runtime(options);
  ASSERT_TRUE(runtime.Activate(path).ok());

  ServeRequest request{{}, 10, 1000};
  ServeResponse response = runtime.Handle(request);
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.epoch, 1);
  EXPECT_EQ(response.artifact_seed, 21u);
  EXPECT_FALSE(response.degraded_fallback);
  EXPECT_TRUE(response.batch.lists.empty());
}

// Satellite hardening: non-positive top_n is a caller bug, not a load
// condition — typed kInvalidArgument, no fallback tier.
TEST_F(ServeSwapTest, NonPositiveTopNIsInvalidArgument) {
  const std::string path = BuildArtifact("a.pvra", 21, kEps);
  ManualClock clock;
  ServeRuntimeOptions options;
  options.swap = ClusterPolicy(kEps);
  options.clock = &clock;
  ServeRuntime runtime(options);
  ASSERT_TRUE(runtime.Activate(path).ok());

  for (int64_t top_n : {int64_t{0}, int64_t{-3}}) {
    ServeRequest request{users_, top_n, 1000};
    ServeResponse response = runtime.Handle(request);
    EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
    EXPECT_FALSE(response.degraded_fallback);
    EXPECT_TRUE(response.batch.lists.empty());
    // Epoch identity is still stamped so the rejection is attributable.
    EXPECT_EQ(response.epoch, 1);
  }
}

// Satellite hardening: a negative deadline is already expired on arrival
// and takes the same typed degrade path as deadline_ms=0.
TEST_F(ServeSwapTest, NegativeDeadlineExpiresWithTypedStatus) {
  const std::string path = BuildArtifact("a.pvra", 21, kEps);
  ManualClock clock;
  clock.Set(100);
  ServeRuntimeOptions options;
  options.swap = ClusterPolicy(kEps);
  options.clock = &clock;
  ServeRuntime runtime(options);
  ASSERT_TRUE(runtime.Activate(path).ok());

  ServeRequest request{users_, 10, /*deadline_ms=*/-10};
  ServeResponse expired = runtime.Handle(request);
  EXPECT_EQ(expired.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(expired.degraded_fallback);
  ASSERT_EQ(expired.batch.lists.size(), users_.size());
}

// Satellite hardening: Activate racing an in-flight request. The async
// request pins its epoch at BeginAsync; a hot swap completing before
// FinishAsync must not change what it serves — including a request that
// was still QUEUED for admission when the swap landed.
TEST_F(ServeSwapTest, AsyncServeMatchesBlockingHandleAcrossSwap) {
  const std::string a = BuildArtifact("a.pvra", 21, kEps);
  const std::string b = BuildArtifact("b.pvra", 22, kEps);
  ManualClock clock;
  ServeRuntimeOptions options;
  options.swap = ClusterPolicy(kEps);
  options.clock = &clock;
  options.admission.max_concurrency = 1;
  options.admission.queue_depth = 2;
  ServeRuntime runtime(options);
  ASSERT_TRUE(runtime.Activate(a).ok());

  ServeRequest request{users_, 10, 10'000};
  ServeResponse reference = runtime.Handle(request);
  ASSERT_TRUE(reference.status.ok());

  AsyncServe first = runtime.BeginAsync(request, clock.NowMs());
  ASSERT_TRUE(runtime.PollAsync(first));  // slot free: admitted at once
  AsyncServe queued = runtime.BeginAsync(request, clock.NowMs());
  EXPECT_FALSE(runtime.PollAsync(queued));  // one slot: waits behind first

  // Hot swap lands while both requests are in flight.
  ASSERT_TRUE(runtime.Activate(b).ok());

  ServeResponse first_response = runtime.FinishAsync(first);
  ASSERT_TRUE(first_response.status.ok());
  EXPECT_EQ(first_response.epoch, 1);
  EXPECT_EQ(first_response.artifact_seed, 21u);
  EXPECT_EQ(first_response.batch.lists, reference.batch.lists);

  // first's slot transferred to the queued waiter on FinishAsync.
  ASSERT_TRUE(runtime.PollAsync(queued));
  ServeResponse queued_response = runtime.FinishAsync(queued);
  ASSERT_TRUE(queued_response.status.ok());
  EXPECT_EQ(queued_response.epoch, 1);
  EXPECT_EQ(queued_response.artifact_seed, 21u);
  EXPECT_EQ(queued_response.batch.lists, reference.batch.lists);

  // Fresh traffic sees the new epoch.
  ServeResponse fresh = runtime.Handle(request);
  ASSERT_TRUE(fresh.status.ok());
  EXPECT_EQ(fresh.epoch, 2);
  EXPECT_EQ(fresh.artifact_seed, 22u);
}

// Satellite: an isolated user served from the global fallback tier must
// get the SAME ranking before, during, and after a hot swap to an
// artifact with identical provenance (same inputs, seed, and ε).
TEST(ServeIsolatedUserTest, FallbackRankingStableAcrossHotSwap) {
  namespace fsn = std::filesystem;
  const fsn::path dir =
      fsn::temp_directory_path() / "privrec_serve_isolated";
  fsn::remove_all(dir);
  fsn::create_directories(dir);

  // Node 4 has no social edges: empty similarity row -> isolated user.
  graph::SocialGraph social =
      graph::SocialGraph::FromEdges(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  graph::PreferenceGraph prefs =
      graph::PreferenceGraph::FromEdges(5, 3, {{0, 0}, {1, 0}, {2, 1},
                                               {3, 2}});
  auto workload = similarity::SimilarityWorkload::Compute(
      social, similarity::CommonNeighbors());
  community::Partition partition({0, 0, 0, 1, 1});

  auto build = [&](const std::string& name) {
    artifact::ModelArtifactBuilder builder(&social, &prefs);
    builder.SetPartition(&partition);
    builder.SetWorkload(&workload);
    artifact::BuildOptions build_options;
    build_options.epsilon = 0.9;
    build_options.seed = 33;
    auto model = builder.Build(build_options);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    const std::string path = (dir / name).string();
    EXPECT_TRUE(serving::SaveArtifact(*model, path).ok());
    return path;
  };
  const std::string a = build("a.pvra");
  const std::string b = build("b.pvra");

  ServeRuntimeOptions options;
  options.swap.spec.mechanism = "Cluster";
  options.swap.spec.epsilon = 0.9;
  ServeRuntime runtime(options);
  ASSERT_TRUE(runtime.Activate(a).ok());

  ServeRequest request{{4}, 3, 1000};
  ServeResponse before = runtime.Handle(request);
  ASSERT_TRUE(before.status.ok());
  ASSERT_EQ(before.batch.degradation.size(), 1u);
  EXPECT_EQ(before.batch.degradation[0].reason,
            DegradationReason::kIsolatedUser);

  // "During": a request that pinned epoch 1 and completes after the swap.
  auto held = runtime.swapper().AcquireMutable();
  ASSERT_TRUE(runtime.Activate(b).ok());
  core::RecommendedBatch during = held->recommender->Recommend({4}, 3);

  ServeResponse after = runtime.Handle(request);
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.epoch, 2);

  EXPECT_EQ(during.lists, before.batch.lists);
  EXPECT_EQ(after.batch.lists, before.batch.lists);
  // Identical provenance: both epochs carry the same seed.
  EXPECT_EQ(before.artifact_seed, after.artifact_seed);

  fsn::remove_all(dir);
}

// Satellite: the --serve-* flags are consumed by ApplyServeFlags, so the
// typo suggester knows the vocabulary.
TEST(ServeFlagsTest, ValuesParsedAndTyposSuggested) {
  const char* argv[] = {"driver",
                        "--serve-deadline-ms=250",
                        "--serve-queue-depth=16",
                        "--serve-max-concurrency=2",
                        "--serve-breaker-failures=5",
                        "--serve-breaker-cooldown-ms=750",
                        "--serve-reload-period=4",
                        "--serve-batch-window-ms=5",
                        "--serve-batch-max-requests=3",
                        "--serve-batch-max-users=64"};
  FlagParser flags(10, const_cast<char**>(argv));
  ServeFlagSettings settings = ApplyServeFlags(flags);
  EXPECT_TRUE(flags.Validate());
  EXPECT_EQ(settings.deadline_ms, 250);
  EXPECT_EQ(settings.queue_depth, 16);
  EXPECT_EQ(settings.max_concurrency, 2);
  EXPECT_EQ(settings.breaker_failures, 5);
  EXPECT_EQ(settings.breaker_cooldown_ms, 750);
  EXPECT_EQ(settings.reload_period, 4);
  EXPECT_EQ(settings.batch_window_ms, 5);
  EXPECT_EQ(settings.batch_max_requests, 3);
  EXPECT_EQ(settings.batch_max_users, 64);

  const char* typo_argv[] = {"driver", "--serve-quue-depth=9"};
  FlagParser typo(2, const_cast<char**>(typo_argv));
  (void)ApplyServeFlags(typo);
  EXPECT_FALSE(typo.Validate());
  EXPECT_EQ(typo.SuggestionFor("serve-quue-depth"), "serve-queue-depth");
  EXPECT_EQ(typo.SuggestionFor("serve-deadlin-ms"), "serve-deadline-ms");
  EXPECT_EQ(typo.SuggestionFor("serve-max-concurency"),
            "serve-max-concurrency");
  EXPECT_EQ(typo.SuggestionFor("serve-batch-windw-ms"),
            "serve-batch-window-ms");
}

// ------------------------------------------- telemetry wide events

TEST_F(ServeSwapTest, TelemetryRecordsWideEventsPerOutcomeClass) {
  const std::string path = BuildArtifact("a.pvra", 21, kEps);
  ManualClock clock;
  clock.Set(100);
  serve::ServeTelemetryOptions tel_options;
  tel_options.sample_every = 1;  // keep every event
  serve::ServeTelemetry telemetry(tel_options);
  ServeRuntimeOptions options;
  options.swap = ClusterPolicy(kEps);
  options.clock = &clock;
  options.telemetry = &telemetry;
  ServeRuntime runtime(options);

  // Before activation: the rejection still emits a no-epoch wide event
  // with an auto-assigned 1-based request id echoed on the response.
  ServeRequest request{users_, 10, 1000};
  ServeResponse no_epoch = runtime.Handle(request);
  EXPECT_EQ(no_epoch.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(no_epoch.request_id, 1u);
  ASSERT_EQ(telemetry.recorded(), 1);
  std::vector<obs::RequestTelemetry> events = telemetry.sampled_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].outcome, obs::RequestOutcome::kNoEpoch);
  EXPECT_EQ(events[0].request_id, 1u);
  EXPECT_EQ(events[0].arrival_ms, 100);

  ASSERT_TRUE(runtime.Activate(path).ok());

  // Served OK with a free slot: immediate admission, epoch identity and
  // request shape attached.
  ServeResponse ok = runtime.Handle(request);
  ASSERT_TRUE(ok.status.ok());
  EXPECT_EQ(ok.request_id, 2u);
  events = telemetry.sampled_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].outcome, obs::RequestOutcome::kOk);
  EXPECT_EQ(events[1].admission, obs::AdmissionOutcome::kImmediate);
  EXPECT_EQ(events[1].epoch, 1);
  EXPECT_EQ(events[1].artifact_seed, 21u);
  EXPECT_EQ(events[1].users, static_cast<int64_t>(users_.size()));
  EXPECT_EQ(events[1].top_n, 10);
  EXPECT_FALSE(events[1].degraded);

  // A caller-supplied id is honored verbatim (idempotency keys,
  // cross-system correlation).
  ServeRequest tagged = request;
  tagged.request_id = 777;
  EXPECT_EQ(runtime.Handle(tagged).request_id, 777u);
  events = telemetry.sampled_events();
  EXPECT_EQ(events.back().request_id, 777u);

  // The empty-users fast path is OK without touching admission.
  ServeRequest empty{{}, 10, 1000};
  ASSERT_TRUE(runtime.Handle(empty).status.ok());
  events = telemetry.sampled_events();
  EXPECT_EQ(events.back().outcome, obs::RequestOutcome::kOk);
  EXPECT_EQ(events.back().admission, obs::AdmissionOutcome::kNone);

  // Caller bugs and expiries classify as their own outcome classes.
  ServeRequest bad = request;
  bad.top_n = 0;
  (void)runtime.Handle(bad);
  events = telemetry.sampled_events();
  EXPECT_EQ(events.back().outcome, obs::RequestOutcome::kInvalid);

  ServeRequest late = request;
  late.deadline_ms = 0;
  (void)runtime.Handle(late);
  events = telemetry.sampled_events();
  EXPECT_EQ(events.back().outcome, obs::RequestOutcome::kExpired);
  EXPECT_EQ(events.back().admission, obs::AdmissionOutcome::kExpired);
  EXPECT_TRUE(events.back().degraded);

  // Every event landed in the JSONL stream (sample_every=1).
  EXPECT_EQ(telemetry.sampled(), telemetry.recorded());
  const std::string jsonl = telemetry.EventsJsonl();
  EXPECT_NE(jsonl.find("\"outcome\": \"no_epoch\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"outcome\": \"invalid\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"id\": 777"), std::string::npos);
}

TEST_F(ServeSwapTest, TelemetryClassifiesShedWithRetryHint) {
  const std::string path = BuildArtifact("a.pvra", 21, kEps);
  ManualClock clock;
  serve::ServeTelemetryOptions tel_options;
  tel_options.sample_every = 64;  // shed events bypass the sampler
  serve::ServeTelemetry telemetry(tel_options);
  ServeRuntimeOptions options;
  options.swap = ClusterPolicy(kEps);
  options.clock = &clock;
  options.telemetry = &telemetry;
  options.admission.max_concurrency = 0;
  options.admission.queue_depth = 0;
  options.admission.retry_after_ms = 40;
  ServeRuntime runtime(options);
  ASSERT_TRUE(runtime.Activate(path).ok());

  ServeRequest request{users_, 10, 1000};
  ServeResponse shed = runtime.Handle(request);
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  std::vector<obs::RequestTelemetry> events = telemetry.sampled_events();
  ASSERT_EQ(events.size(), 1u);  // non-OK is always kept
  EXPECT_EQ(events[0].outcome, obs::RequestOutcome::kShed);
  EXPECT_EQ(events[0].admission, obs::AdmissionOutcome::kShed);
  EXPECT_TRUE(events[0].degraded);
  EXPECT_EQ(events[0].retry_after_ms, 40);
  EXPECT_EQ(events[0].users_degraded,
            static_cast<int64_t>(users_.size()));
}

TEST(ServeTelemetryTest, WindowsBreachAndAlertsFlowIntoJsonl) {
  serve::ServeTelemetryOptions opts;
  opts.sample_every = 1;
  opts.window_ms = 100;
  opts.budget.p99_ms = 5.0;
  opts.budget.lookback = 4;
  opts.budget.burn_threshold = 0.2;
  serve::ServeTelemetry telemetry(opts);

  obs::RequestTelemetry event;
  event.outcome = obs::RequestOutcome::kOk;
  for (int64_t i = 0; i < 4; ++i) {
    event.request_id = static_cast<uint64_t>(i) + 1;
    event.arrival_ms = i * 100 + 10;
    event.resolve_ms = event.arrival_ms;
    event.latency_ms = i < 2 ? 1.0 : 80.0;  // last two windows breach
    telemetry.Record(event);
  }
  telemetry.Flush(400);

  EXPECT_EQ(telemetry.recorded(), 4);
  EXPECT_EQ(telemetry.window_breaches(), 2);
  // Alerts on the two breaching windows, plus the empty Flush window
  // that closes while the lookback ring is still burning at 0.5.
  EXPECT_EQ(telemetry.burn_alerts(), 3);
  EXPECT_DOUBLE_EQ(telemetry.burn_rate(), 0.5);
  obs::WindowSeries series = telemetry.series();
  // Four event windows plus the empty partial Flush closes at 400 ms.
  ASSERT_EQ(series.windows.size(), 5u);
  EXPECT_FALSE(series.windows[1].breach);
  EXPECT_TRUE(series.windows[2].breach);
  EXPECT_TRUE(series.windows[3].breach);
  EXPECT_FALSE(series.windows[4].breach);
  const std::string jsonl = telemetry.EventsJsonl();
  EXPECT_NE(jsonl.find("\"type\": \"alert\""), std::string::npos);
  EXPECT_NE(jsonl.find("p99"), std::string::npos);

  if (obs::kCompiledIn) {
    obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Instance().Snapshot();
    for (const obs::GaugeSample& g : snapshot.gauges) {
      if (g.name == "privrec.serve.slo_burn_rate") {
        EXPECT_DOUBLE_EQ(g.value, 0.5);
      }
    }
  }
}

TEST(ServeTelemetryTest, EventCapDropsAreCountedNeverSilent) {
  serve::ServeTelemetryOptions opts;
  opts.sample_every = 1;
  opts.max_events = 2;
  serve::ServeTelemetry telemetry(opts);
  obs::RequestTelemetry event;
  event.outcome = obs::RequestOutcome::kOk;
  for (int64_t i = 0; i < 5; ++i) {
    event.request_id = static_cast<uint64_t>(i) + 1;
    event.resolve_ms = i;
    telemetry.Record(event);
  }
  telemetry.Flush(250);
  EXPECT_EQ(telemetry.recorded(), 5);
  EXPECT_EQ(telemetry.sampled(), 5);
  EXPECT_EQ(telemetry.dropped_events(), 3);
  EXPECT_EQ(telemetry.sampled_events().size(), 2u);
  // The window aggregates still saw every request.
  obs::WindowSeries series = telemetry.series();
  ASSERT_GE(series.windows.size(), 1u);
  EXPECT_EQ(series.windows[0].requests, 5);
}

// --------------------------------------------------------- statusz

TEST_F(ServeSwapTest, StatuszSurfacesRuntimeAndTelemetryState) {
  const std::string path = BuildArtifact("a.pvra", 21, kEps);
  ManualClock clock;
  clock.Set(50);
  serve::ServeTelemetryOptions tel_options;
  tel_options.sample_every = 1;
  tel_options.window_ms = 100;
  serve::ServeTelemetry telemetry(tel_options);
  ServeRuntimeOptions options;
  options.swap = ClusterPolicy(kEps);
  options.clock = &clock;
  options.telemetry = &telemetry;
  options.admission.max_concurrency = 4;
  options.admission.queue_depth = 8;
  ServeRuntime runtime(options);

  serve::RuntimeIntrospection before = runtime.Introspect();
  EXPECT_FALSE(before.has_epoch);
  EXPECT_EQ(before.now_ms, 50);
  EXPECT_NE(serve::StatuszText(before).find("none (no artifact"),
            std::string::npos);

  ASSERT_TRUE(runtime.Activate(path).ok());
  ServeRequest request{users_, 10, 1000};
  ASSERT_TRUE(runtime.Handle(request).status.ok());
  clock.Advance(49);  // flush inside [0,100): closes it as the partial
  telemetry.Flush(clock.NowMs());

  serve::RuntimeIntrospection status = runtime.Introspect();
  EXPECT_TRUE(status.has_epoch);
  EXPECT_EQ(status.epoch, 1);
  EXPECT_EQ(status.artifact_seed, 21u);
  EXPECT_DOUBLE_EQ(status.epsilon, kEps);
  EXPECT_EQ(status.num_users, 60);
  EXPECT_EQ(status.shard_count, 1);
  EXPECT_EQ(status.breaker_state, "closed");
  EXPECT_EQ(status.swaps, 1);
  EXPECT_EQ(status.admission_max_concurrency, 4);
  EXPECT_EQ(status.admission_queue_depth, 8);
  EXPECT_EQ(status.admission_in_flight, 0);
  EXPECT_EQ(status.sharded_requests, -1);  // unsharded runtime
  ASSERT_TRUE(status.has_telemetry);
  EXPECT_EQ(status.telemetry_recorded, 1);
  EXPECT_TRUE(status.has_last_window);
  EXPECT_EQ(status.last_window.requests, 1);

  const std::string text = serve::StatuszText(status);
  EXPECT_NE(text.find("epoch:      1"), std::string::npos);
  EXPECT_NE(text.find("breaker:    closed"), std::string::npos);
  EXPECT_NE(text.find("telemetry:  1 recorded"), std::string::npos);

  const std::string json = serve::StatuszJson(status);
  EXPECT_NE(json.find("\"artifact_seed\": 21"), std::string::npos);
  EXPECT_NE(json.find("\"breaker\": {\"state\": \"closed\""),
            std::string::npos);
  EXPECT_NE(json.find("\"telemetry\": {\"recorded\": 1"),
            std::string::npos);
  if (obs::kCompiledIn) {
    EXPECT_FALSE(status.serve_counters.empty());
    for (const obs::CounterSample& c : status.serve_counters) {
      EXPECT_EQ(c.name.rfind("privrec.serve.", 0), 0u) << c.name;
    }
  }
}

// Satellite: the --telemetry-*/--statusz-* vocabulary, same contract as
// the other driver-flag families.
TEST(TelemetryFlagsTest, ValuesParsedAndTyposSuggested) {
  const char* argv[] = {"driver",
                        "--telemetry-sample-every=8",
                        "--telemetry-slow-ms=25",
                        "--telemetry-window-ms=500",
                        "--telemetry-burn-lookback=12",
                        "--telemetry-burn-threshold=0.5",
                        "--telemetry-window-p99-ms=30",
                        "--telemetry-window-shed-rate=0.4",
                        "--telemetry-jsonl=events.jsonl",
                        "--statusz-every=2",
                        "--statusz-out=statusz.txt"};
  FlagParser flags(11, const_cast<char**>(argv));
  TelemetryFlagSettings settings = ApplyTelemetryFlags(flags);
  EXPECT_TRUE(flags.Validate());
  EXPECT_EQ(settings.sample_every, 8);
  EXPECT_DOUBLE_EQ(settings.slow_ms, 25.0);
  EXPECT_EQ(settings.window_ms, 500);
  EXPECT_EQ(settings.burn_lookback, 12);
  EXPECT_DOUBLE_EQ(settings.burn_threshold, 0.5);
  EXPECT_DOUBLE_EQ(settings.window_p99_ms, 30.0);
  EXPECT_DOUBLE_EQ(settings.window_shed_rate, 0.4);
  EXPECT_EQ(settings.jsonl, "events.jsonl");
  EXPECT_EQ(settings.statusz_every, 2);
  EXPECT_EQ(settings.statusz_out, "statusz.txt");

  const char* typo_argv[] = {"driver", "--telemetry-sampel-every=4"};
  FlagParser typo(2, const_cast<char**>(typo_argv));
  (void)ApplyTelemetryFlags(typo);
  EXPECT_FALSE(typo.Validate());
  EXPECT_EQ(typo.SuggestionFor("telemetry-sampel-every"),
            "telemetry-sample-every");
  EXPECT_EQ(typo.SuggestionFor("statuz-every"), "statusz-every");
}

// Satellite: the --load-* vocabulary for bench_serve_load, same contract.
TEST(LoadFlagsTest, ValuesParsedAndTyposSuggested) {
  const char* argv[] = {"driver",
                        "--load-rps=5000",
                        "--load-duration-ms=1500",
                        "--load-seed=9",
                        "--load-zipf-s=1.3",
                        "--load-users-per-request=6",
                        "--load-burst-factor=8",
                        "--load-burst-period-ms=400",
                        "--load-burst-duration-ms=80",
                        "--load-swap-period-ms=125",
                        "--load-swap-storm",
                        "--load-threads=2",
                        "--load-wall",
                        "--load-slo-p50-ms=2",
                        "--load-slo-p99-ms=20",
                        "--load-slo-p999-ms=80",
                        "--load-slo-shed-rate=0.2",
                        "--load-slo-rollback-rate=0.5",
                        "--load-report=out.json"};
  FlagParser flags(19, const_cast<char**>(argv));
  LoadFlagSettings settings = ApplyLoadFlags(flags);
  EXPECT_TRUE(flags.Validate());
  EXPECT_DOUBLE_EQ(settings.rps, 5000.0);
  EXPECT_EQ(settings.duration_ms, 1500);
  EXPECT_EQ(settings.seed, 9);
  EXPECT_DOUBLE_EQ(settings.zipf_s, 1.3);
  EXPECT_EQ(settings.users_per_request, 6);
  EXPECT_DOUBLE_EQ(settings.burst_factor, 8.0);
  EXPECT_EQ(settings.burst_period_ms, 400);
  EXPECT_EQ(settings.burst_duration_ms, 80);
  EXPECT_EQ(settings.swap_period_ms, 125);
  EXPECT_TRUE(settings.swap_storm);
  EXPECT_EQ(settings.threads, 2);
  EXPECT_TRUE(settings.wall);
  EXPECT_DOUBLE_EQ(settings.slo_p50_ms, 2.0);
  EXPECT_DOUBLE_EQ(settings.slo_p99_ms, 20.0);
  EXPECT_DOUBLE_EQ(settings.slo_p999_ms, 80.0);
  EXPECT_DOUBLE_EQ(settings.slo_shed_rate, 0.2);
  EXPECT_DOUBLE_EQ(settings.slo_rollback_rate, 0.5);
  EXPECT_EQ(settings.report, "out.json");

  const char* typo_argv[] = {"driver", "--load-swap-strom"};
  FlagParser typo(2, const_cast<char**>(typo_argv));
  (void)ApplyLoadFlags(typo);
  EXPECT_FALSE(typo.Validate());
  EXPECT_EQ(typo.SuggestionFor("load-swap-strom"), "load-swap-storm");
  EXPECT_EQ(typo.SuggestionFor("load-slo-p9-ms"), "load-slo-p99-ms");
  EXPECT_EQ(typo.SuggestionFor("load-durration-ms"), "load-duration-ms");
}

// ------------------------------------------- cross-request batching

// Tentpole: concurrent Handle() calls coalesced by the window batcher
// must be bit-identical to serving every request alone — batching may
// only change amortization, never a single ranked list.
TEST_F(ServeSwapTest, BatchedHandleBitIdenticalToUnbatchedAcrossThreads) {
  const std::string path = BuildArtifact("a.pvra", 31, kEps);

  // Reference: unbatched runtime on the same artifact, one Recommend per
  // request.
  ServeRuntimeOptions ref_options;
  ref_options.swap = ClusterPolicy(kEps);
  ServeRuntime reference(ref_options);
  ASSERT_TRUE(reference.Activate(path).ok());

  std::vector<std::vector<graph::NodeId>> slices(4);
  for (size_t i = 0; i < users_.size(); ++i) {
    slices[i % 4].push_back(users_[i]);
  }
  std::vector<core::RecommendedBatch> expected;
  for (const auto& slice : slices) {
    ServeResponse resp = reference.Handle({slice, 10, 1000});
    ASSERT_TRUE(resp.status.ok());
    expected.push_back(resp.batch);
  }

  ServeRuntimeOptions options;
  options.swap = ClusterPolicy(kEps);
  options.admission.max_concurrency = 4;
  options.batch.window_ms = 25;
  options.batch.max_requests = 4;
  ServeRuntime runtime(options);
  ASSERT_TRUE(runtime.Activate(path).ok());
  ASSERT_NE(runtime.batcher(), nullptr);

  std::vector<ServeResponse> responses(4);
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      responses[static_cast<size_t>(t)] =
          runtime.Handle({slices[static_cast<size_t>(t)], 10, 1000});
    });
  }
  for (auto& th : threads) th.join();

  for (size_t t = 0; t < 4; ++t) {
    ASSERT_TRUE(responses[t].status.ok());
    EXPECT_EQ(responses[t].batch.lists, expected[t].lists) << "slice " << t;
    EXPECT_EQ(responses[t].batch.report.users_degraded,
              expected[t].report.users_degraded);
  }

  // Every request went through the batcher; how they coalesced depends
  // on thread timing, but the occupancy accounting must balance.
  EXPECT_EQ(runtime.batcher()->requests_batched(), 4);
  EXPECT_GE(runtime.batcher()->batches_formed(), 1);
  EXPECT_LE(runtime.batcher()->batches_formed(), 4);

  serve::RuntimeIntrospection status = runtime.Introspect();
  EXPECT_EQ(status.batched_requests, 4);
  EXPECT_EQ(status.batches_formed, runtime.batcher()->batches_formed());
  EXPECT_FALSE(status.kernel_dispatch.empty());
  const std::string text = serve::StatuszText(status);
  EXPECT_NE(text.find("kernels:    dispatch " + status.kernel_dispatch),
            std::string::npos);
  const std::string json = serve::StatuszJson(status);
  EXPECT_NE(json.find("\"batched_requests\": 4"), std::string::npos);
}

// A full batch (max_requests reached) closes before the window expires,
// so the window is a bound, not a floor.
TEST_F(ServeSwapTest, FullBatchClosesBeforeWindowExpires) {
  const std::string path = BuildArtifact("a.pvra", 32, kEps);
  ServeRuntimeOptions options;
  options.swap = ClusterPolicy(kEps);
  options.admission.max_concurrency = 2;
  // A window far longer than the test budget: if early close were
  // broken, the 120 s ctest timeout would trip long before this window.
  options.batch.window_ms = 300000;
  options.batch.max_requests = 2;
  ServeRuntime runtime(options);
  ASSERT_TRUE(runtime.Activate(path).ok());

  std::vector<graph::NodeId> left(users_.begin(),
                                  users_.begin() + users_.size() / 2);
  std::vector<graph::NodeId> right(users_.begin() + users_.size() / 2,
                                   users_.end());
  ServeResponse r1, r2;
  std::thread t1([&] { r1 = runtime.Handle({left, 10, 1000000}); });
  std::thread t2([&] { r2 = runtime.Handle({right, 10, 1000000}); });
  t1.join();
  t2.join();
  ASSERT_TRUE(r1.status.ok());
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(runtime.batcher()->requests_batched(), 2);
}

// The async counterpart: FinishAsyncBatch groups admitted operations by
// (epoch, top_n), serves each group in one Recommend, and the slices are
// bit-identical to finishing the operations one by one.
TEST_F(ServeSwapTest, FinishAsyncBatchMatchesIndividualFinishes) {
  const std::string path = BuildArtifact("a.pvra", 33, kEps);
  ManualClock clock;
  clock.Set(10);
  serve::ServeTelemetryOptions tel_options;
  tel_options.sample_every = 1;
  serve::ServeTelemetry telemetry(tel_options);
  ServeRuntimeOptions options;
  options.swap = ClusterPolicy(kEps);
  options.clock = &clock;
  options.telemetry = &telemetry;
  options.admission.max_concurrency = 4;
  ServeRuntime runtime(options);
  ASSERT_TRUE(runtime.Activate(path).ok());

  ServeRuntimeOptions ref_options;
  ref_options.swap = ClusterPolicy(kEps);
  ServeRuntime reference(ref_options);
  ASSERT_TRUE(reference.Activate(path).ok());

  std::vector<std::vector<graph::NodeId>> slices(3);
  for (size_t i = 0; i < users_.size(); ++i) {
    slices[i % 3].push_back(users_[i]);
  }

  AsyncServe op0 = runtime.BeginAsync({slices[0], 10, 1000}, clock.NowMs());
  AsyncServe op1 = runtime.BeginAsync({slices[1], 10, 1000}, clock.NowMs());
  // Different top_n: must land in its own group, never merged with the
  // top-10 pair.
  AsyncServe op2 = runtime.BeginAsync({slices[2], 7, 1000}, clock.NowMs());
  ASSERT_TRUE(op0.admitted && op1.admitted && op2.admitted);

  runtime.FinishAsyncBatch({&op0, &op1, &op2});
  ASSERT_TRUE(op0.done && op1.done && op2.done);
  ASSERT_TRUE(op0.response.status.ok());
  ASSERT_TRUE(op1.response.status.ok());
  ASSERT_TRUE(op2.response.status.ok());

  EXPECT_EQ(op0.response.batch.lists,
            reference.Handle({slices[0], 10, 1000}).batch.lists);
  EXPECT_EQ(op1.response.batch.lists,
            reference.Handle({slices[1], 10, 1000}).batch.lists);
  EXPECT_EQ(op2.response.batch.lists,
            reference.Handle({slices[2], 7, 1000}).batch.lists);

  // Two groups: {op0, op1} merged, {op2} alone.
  EXPECT_EQ(runtime.async_batches(), 2);
  EXPECT_EQ(runtime.async_batched_requests(), 3);
  EXPECT_EQ(op0.telemetry.batch_requests, 2);
  EXPECT_EQ(op1.telemetry.batch_requests, 2);
  EXPECT_EQ(op0.telemetry.batch_users,
            static_cast<int64_t>(slices[0].size() + slices[1].size()));
  EXPECT_EQ(op2.telemetry.batch_requests, 1);
  EXPECT_EQ(op2.telemetry.batch_users,
            static_cast<int64_t>(slices[2].size()));

  // All slots released: the runtime can immediately admit again.
  EXPECT_EQ(runtime.admission().in_flight(), 0);

  serve::RuntimeIntrospection status = runtime.Introspect();
  EXPECT_EQ(status.batches_formed, 2);
  EXPECT_EQ(status.batched_requests, 3);
}

// ------------------------------------------- lazy global-average row

// Satellite: BuildDerived no longer pays the O(clusters × items)
// global-average pass, so a swap storm publishes epochs without it; the
// first fallback-tier request computes the row once per epoch (traced as
// artifact.global_average) and every later request reuses it.
TEST_F(ServeSwapTest, SwapSkipsGlobalAverageUntilFallbackNeedsIt) {
  const std::string a = BuildArtifact("a.pvra", 41, kEps);
  const std::string b = BuildArtifact("b.pvra", 42, kEps);

  SwapPolicy policy = ClusterPolicy(kEps);
  policy.probe_users = 0;  // probes may touch isolated users; isolate the
                           // swap path itself for the span accounting
  ServeRuntimeOptions options;
  options.swap = policy;
  ServeRuntime runtime(options);

  obs::Tracer::Instance().Clear();
  obs::Tracer::Instance().SetEnabled(true);
  auto global_spans = [] {
    int64_t n = 0;
    for (const obs::SpanRecord& span : obs::Tracer::Instance().Snapshot()) {
      if (span.name == "artifact.global_average") ++n;
    }
    return n;
  };

  // A two-epoch swap storm: neither activation computes the row.
  ASSERT_TRUE(runtime.Activate(a).ok());
  ASSERT_TRUE(runtime.Activate(b).ok());
  if (obs::kCompiledIn) EXPECT_EQ(global_spans(), 0);

  // First fallback-tier answer (deadline 0 expires at admission) pays
  // the pass exactly once...
  ServeResponse first = runtime.Handle({users_, 10, 0});
  EXPECT_EQ(first.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(first.degraded_fallback);
  const int64_t after_first = global_spans();
  if (obs::kCompiledIn) EXPECT_EQ(after_first, 1);

  // ...and the cached row serves every later fallback on this epoch.
  ServeResponse second = runtime.Handle({users_, 10, 0});
  EXPECT_TRUE(second.degraded_fallback);
  EXPECT_EQ(global_spans(), after_first);
  EXPECT_EQ(second.batch.lists, first.batch.lists);

  obs::Tracer::Instance().SetEnabled(false);
  obs::Tracer::Instance().Clear();
}

}  // namespace
}  // namespace privrec
