// Tests for the graph generators, including the planted-partition and
// preference generators that back the synthetic datasets.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "community/modularity.h"
#include "community/partition.h"
#include "graph/components.h"
#include "graph/generators/barabasi_albert.h"
#include "graph/generators/erdos_renyi.h"
#include "graph/generators/planted_partition.h"
#include "graph/generators/preference_generator.h"
#include "graph/generators/watts_strogatz.h"

namespace privrec::graph {
namespace {

// ------------------------------------------------------------ Erdős–Rényi

TEST(ErdosRenyiTest, ExactEdgeCount) {
  SocialGraph g = GenerateErdosRenyi(50, 100, 1);
  EXPECT_EQ(g.num_nodes(), 50);
  EXPECT_EQ(g.num_edges(), 100);
}

TEST(ErdosRenyiTest, DeterministicForSeed) {
  SocialGraph a = GenerateErdosRenyi(30, 60, 5);
  SocialGraph b = GenerateErdosRenyi(30, 60, 5);
  EXPECT_EQ(a.Edges(), b.Edges());
}

TEST(ErdosRenyiTest, CompleteGraph) {
  SocialGraph g = GenerateErdosRenyi(5, 10, 2);
  EXPECT_EQ(g.num_edges(), 10);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(g.Degree(u), 4);
}

// ------------------------------------------------------- Barabási–Albert

TEST(BarabasiAlbertTest, SizeAndMinDegree) {
  SocialGraph g = GenerateBarabasiAlbert(200, 3, 7);
  EXPECT_EQ(g.num_nodes(), 200);
  // Every non-seed node attaches with >= 3 edges.
  for (NodeId u = 4; u < 200; ++u) EXPECT_GE(g.Degree(u), 3);
}

TEST(BarabasiAlbertTest, ProducesSkewedDegrees) {
  SocialGraph g = GenerateBarabasiAlbert(2000, 2, 11);
  // Preferential attachment: the max degree should far exceed the mean.
  EXPECT_GT(static_cast<double>(g.MaxDegree()), 4.0 * g.AverageDegree());
}

TEST(BarabasiAlbertTest, Connected) {
  SocialGraph g = GenerateBarabasiAlbert(300, 2, 13);
  ComponentInfo info = ConnectedComponents(g);
  EXPECT_EQ(info.num_components, 1);
}

// --------------------------------------------------------- Watts-Strogatz

TEST(WattsStrogatzTest, NoRewireIsRingLattice) {
  SocialGraph g = GenerateWattsStrogatz(20, 2, 0.0, 3);
  EXPECT_EQ(g.num_edges(), 40);
  for (NodeId u = 0; u < 20; ++u) EXPECT_EQ(g.Degree(u), 4);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(WattsStrogatzTest, RewiringPreservesEdgeBudgetApproximately) {
  SocialGraph g = GenerateWattsStrogatz(100, 3, 0.2, 5);
  // Rewiring can only drop edges in rare retry-exhaustion cases.
  EXPECT_GE(g.num_edges(), 290);
  EXPECT_LE(g.num_edges(), 300);
}

TEST(WattsStrogatzTest, FullRewireChangesStructure) {
  SocialGraph lattice = GenerateWattsStrogatz(200, 2, 0.0, 9);
  SocialGraph random = GenerateWattsStrogatz(200, 2, 1.0, 9);
  // Count surviving lattice edges in the rewired graph.
  int64_t kept = 0;
  for (auto [u, v] : lattice.Edges()) {
    if (random.HasEdge(u, v)) ++kept;
  }
  EXPECT_LT(kept, lattice.num_edges() / 2);
}

// ------------------------------------------------------ Planted partition

TEST(PlantedPartitionTest, SizesAndCommunityLabels) {
  PlantedPartitionOptions opt;
  opt.num_nodes = 500;
  opt.num_communities = 8;
  opt.mean_degree = 10.0;
  opt.seed = 21;
  PlantedPartitionResult r = GeneratePlantedPartition(opt);
  EXPECT_EQ(r.graph.num_nodes(), 500);
  EXPECT_EQ(r.num_communities, 8);
  EXPECT_EQ(r.community_of.size(), 500u);
  for (int64_t c : r.community_of) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 8);
  }
}

TEST(PlantedPartitionTest, MeanDegreeNearTarget) {
  PlantedPartitionOptions opt;
  opt.num_nodes = 3000;
  opt.num_communities = 12;
  opt.mean_degree = 14.0;
  opt.seed = 22;
  PlantedPartitionResult r = GeneratePlantedPartition(opt);
  EXPECT_NEAR(r.graph.AverageDegree(), 14.0, 2.0);
}

TEST(PlantedPartitionTest, GroundTruthHasHighModularity) {
  PlantedPartitionOptions opt;
  opt.num_nodes = 1000;
  opt.num_communities = 10;
  opt.mean_degree = 12.0;
  opt.mixing = 0.1;
  opt.seed = 23;
  PlantedPartitionResult r = GeneratePlantedPartition(opt);
  community::Partition truth(r.community_of);
  EXPECT_GT(community::Modularity(r.graph, truth), 0.6);
}

TEST(PlantedPartitionTest, MixingControlsCrossEdges) {
  auto cross_fraction = [](double mixing) {
    PlantedPartitionOptions opt;
    opt.num_nodes = 2000;
    opt.num_communities = 10;
    opt.mean_degree = 12.0;
    opt.mixing = mixing;
    opt.seed = 24;
    PlantedPartitionResult r = GeneratePlantedPartition(opt);
    int64_t cross = 0;
    auto edges = r.graph.Edges();
    for (auto [u, v] : edges) {
      if (r.community_of[static_cast<size_t>(u)] !=
          r.community_of[static_cast<size_t>(v)]) {
        ++cross;
      }
    }
    return static_cast<double>(cross) / static_cast<double>(edges.size());
  };
  double low = cross_fraction(0.05);
  double high = cross_fraction(0.4);
  EXPECT_LT(low, 0.15);
  EXPECT_GT(high, low + 0.1);
}

TEST(PlantedPartitionTest, SmallComponentsAppended) {
  PlantedPartitionOptions opt;
  opt.num_nodes = 800;
  opt.num_communities = 6;
  opt.mean_degree = 10.0;
  opt.num_small_components = 10;
  opt.seed = 25;
  PlantedPartitionResult r = GeneratePlantedPartition(opt);
  ComponentInfo info = ConnectedComponents(r.graph);
  // Main component + 10 tiny ones (the main part may itself split in rare
  // stub-matching corner cases, so allow >=).
  EXPECT_GE(info.num_components, 11);
  // Tiny components are in [2, 7] nodes.
  for (size_t c = 1; c < info.sizes.size(); ++c) {
    EXPECT_LE(info.sizes[c], 7);
  }
  // Extra communities were assigned to the tiny components.
  EXPECT_EQ(r.num_communities, 16);
}

TEST(PlantedPartitionTest, NoIsolatedNodes) {
  PlantedPartitionOptions opt;
  opt.num_nodes = 600;
  opt.num_communities = 5;
  opt.mean_degree = 8.0;
  opt.seed = 26;
  PlantedPartitionResult r = GeneratePlantedPartition(opt);
  for (NodeId u = 0; u < r.graph.num_nodes(); ++u) {
    EXPECT_GT(r.graph.Degree(u), 0) << "node " << u;
  }
}

TEST(PlantedPartitionTest, SubCommunitiesRefineCommunities) {
  PlantedPartitionOptions opt;
  opt.num_nodes = 600;
  opt.num_communities = 6;
  opt.sub_communities_per_community = 4;
  opt.sub_mixing = 0.5;
  opt.seed = 28;
  PlantedPartitionResult r = GeneratePlantedPartition(opt);
  EXPECT_EQ(r.num_sub_communities, 24);
  // Refinement: same sub => same community; each sub within one community.
  std::vector<int64_t> community_of_sub(
      static_cast<size_t>(r.num_sub_communities), -1);
  for (NodeId u = 0; u < 600; ++u) {
    int64_t sub = r.sub_community_of[static_cast<size_t>(u)];
    ASSERT_GE(sub, 0);
    ASSERT_LT(sub, r.num_sub_communities);
    int64_t c = r.community_of[static_cast<size_t>(u)];
    if (community_of_sub[static_cast<size_t>(sub)] == -1) {
      community_of_sub[static_cast<size_t>(sub)] = c;
    }
    EXPECT_EQ(community_of_sub[static_cast<size_t>(sub)], c)
        << "sub " << sub << " straddles communities";
  }
}

TEST(PlantedPartitionTest, SubStructureBiasesEdgesWithinSubs) {
  PlantedPartitionOptions opt;
  opt.num_nodes = 1200;
  opt.num_communities = 4;
  opt.mean_degree = 14.0;
  opt.mixing = 0.1;
  opt.sub_communities_per_community = 5;
  opt.sub_mixing = 0.3;  // strong sub preference
  opt.seed = 29;
  PlantedPartitionResult r = GeneratePlantedPartition(opt);
  // Among intra-community edges, the within-sub fraction must far exceed
  // the ~1/5 a sub-blind wiring would give.
  int64_t intra_comm = 0;
  int64_t intra_sub = 0;
  for (auto [u, v] : r.graph.Edges()) {
    if (r.community_of[static_cast<size_t>(u)] !=
        r.community_of[static_cast<size_t>(v)]) {
      continue;
    }
    ++intra_comm;
    if (r.sub_community_of[static_cast<size_t>(u)] ==
        r.sub_community_of[static_cast<size_t>(v)]) {
      ++intra_sub;
    }
  }
  ASSERT_GT(intra_comm, 0);
  EXPECT_GT(static_cast<double>(intra_sub) /
                static_cast<double>(intra_comm),
            0.45);
}

TEST(PlantedPartitionTest, SingleSubCommunityMatchesCoarseLabels) {
  PlantedPartitionOptions opt;
  opt.num_nodes = 300;
  opt.num_communities = 5;
  opt.sub_communities_per_community = 1;
  opt.num_small_components = 2;
  opt.seed = 30;
  PlantedPartitionResult r = GeneratePlantedPartition(opt);
  EXPECT_EQ(r.sub_community_of, r.community_of);
  EXPECT_EQ(r.num_sub_communities, r.num_communities);
}

TEST(PlantedPartitionTest, DeterministicForSeed) {
  PlantedPartitionOptions opt;
  opt.num_nodes = 400;
  opt.num_communities = 4;
  opt.seed = 27;
  PlantedPartitionResult a = GeneratePlantedPartition(opt);
  PlantedPartitionResult b = GeneratePlantedPartition(opt);
  EXPECT_EQ(a.graph.Edges(), b.graph.Edges());
  EXPECT_EQ(a.community_of, b.community_of);
}

// ------------------------------------------------- Preference generation

std::vector<int64_t> TwoCommunities(int64_t n) {
  std::vector<int64_t> community(static_cast<size_t>(n));
  for (int64_t u = 0; u < n; ++u) {
    community[static_cast<size_t>(u)] = u < n / 2 ? 0 : 1;
  }
  return community;
}

TEST(PreferenceGeneratorTest, PerUserCountsNearMean) {
  PreferenceGeneratorOptions opt;
  opt.num_items = 500;
  opt.mean_prefs_per_user = 20.0;
  opt.stddev_prefs_per_user = 3.0;
  opt.seed = 31;
  PreferenceGraph g = GeneratePreferences(TwoCommunities(400), opt);
  EXPECT_EQ(g.num_users(), 400);
  EXPECT_NEAR(g.AverageUserDegree(), 20.0, 2.0);
  for (NodeId u = 0; u < g.num_users(); ++u) {
    EXPECT_GE(g.UserDegree(u), 1);
  }
}

TEST(PreferenceGeneratorTest, HomophilyCreatesCommunityOverlap) {
  // With high homophily, two users in the same community should share far
  // more items than users in different communities.
  PreferenceGeneratorOptions opt;
  opt.num_items = 2000;
  opt.mean_prefs_per_user = 30.0;
  opt.homophily = 0.95;
  opt.seed = 32;
  std::vector<int64_t> community = TwoCommunities(200);
  PreferenceGraph g = GeneratePreferences(community, opt);

  auto overlap = [&](NodeId a, NodeId b) {
    auto ia = g.ItemsOf(a);
    auto ib = g.ItemsOf(b);
    std::vector<ItemId> shared;
    std::set_intersection(ia.begin(), ia.end(), ib.begin(), ib.end(),
                          std::back_inserter(shared));
    return static_cast<int64_t>(shared.size());
  };
  int64_t same = 0;
  int64_t diff = 0;
  for (NodeId u = 0; u < 50; ++u) {
    same += overlap(u, u + 1);         // both in community 0
    diff += overlap(u, u + 100);       // communities 0 vs 1
  }
  EXPECT_GT(same, 2 * diff);
}

TEST(PreferenceGeneratorTest, ZeroHomophilyIsCommunityAgnostic) {
  PreferenceGeneratorOptions opt;
  opt.num_items = 2000;
  opt.mean_prefs_per_user = 30.0;
  opt.homophily = 0.0;
  opt.seed = 33;
  std::vector<int64_t> community = TwoCommunities(200);
  PreferenceGraph g = GeneratePreferences(community, opt);
  // Global popularity: item 0 must be the most preferred item overall.
  int64_t best_degree = 0;
  for (ItemId i = 0; i < g.num_items(); ++i) {
    best_degree = std::max(best_degree, g.ItemDegree(i));
  }
  EXPECT_EQ(g.ItemDegree(0), best_degree);
}

TEST(PreferenceGeneratorTest, DeterministicForSeed) {
  PreferenceGeneratorOptions opt;
  opt.num_items = 100;
  opt.mean_prefs_per_user = 10.0;
  opt.seed = 34;
  std::vector<int64_t> community = TwoCommunities(60);
  PreferenceGraph a = GeneratePreferences(community, opt);
  PreferenceGraph b = GeneratePreferences(community, opt);
  EXPECT_EQ(a.Edges(), b.Edges());
}

}  // namespace
}  // namespace privrec::graph
