// Tests for the Section 5.1 error decomposition (Equations 5 and 6).

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "community/louvain.h"
#include "community/partition.h"
#include "core/cluster_recommender.h"
#include "core/exact_recommender.h"
#include "data/synthetic.h"
#include "dp/mechanisms.h"
#include "eval/error_decomposition.h"
#include "similarity/common_neighbors.h"

namespace privrec::eval {
namespace {

using community::Partition;
using graph::NodeId;

class ErrorDecompositionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = data::MakeTinyDataset(150, 120, 41);
    workload_ = similarity::SimilarityWorkload::Compute(
        dataset_.social, similarity::CommonNeighbors());
    context_ = {&dataset_.social, &dataset_.preferences, &workload_};
    for (NodeId u = 0; u < dataset_.social.num_nodes(); u += 3) {
      users_.push_back(u);
    }
  }

  data::Dataset dataset_;
  similarity::SimilarityWorkload workload_;
  core::RecommenderContext context_;
  std::vector<NodeId> users_;
};

TEST_F(ErrorDecompositionTest, SingletonPartitionHasZeroApproximationError) {
  // With |c| = 1 each "average" IS the edge weight: Equation 6 vanishes.
  auto per_user = DecomposeErrors(
      context_, Partition::Singletons(dataset_.social.num_nodes()), users_,
      {.epsilon = 0.5, .top_n = 20});
  for (const auto& d : per_user) {
    EXPECT_NEAR(d.approximation_error, 0.0, 1e-9) << "user " << d.user;
  }
}

TEST_F(ErrorDecompositionTest,
       SingletonPerturbationEqualsNoeExpectedError) {
  // Size-1 clusters make the framework identical to NOE, so Equation 5's
  // noise term must equal the NOE expected error exactly.
  auto per_user = DecomposeErrors(
      context_, Partition::Singletons(dataset_.social.num_nodes()), users_,
      {.epsilon = 0.3, .top_n = 10});
  for (const auto& d : per_user) {
    EXPECT_NEAR(d.cluster_perturbation_error, d.noe_expected_error, 1e-9)
        << "user " << d.user;
  }
}

TEST_F(ErrorDecompositionTest, InfinityEpsilonZeroesNoiseTerms) {
  auto per_user = DecomposeErrors(
      context_, Partition::Whole(dataset_.social.num_nodes()), users_,
      {.epsilon = dp::kEpsilonInfinity, .top_n = 10});
  for (const auto& d : per_user) {
    EXPECT_DOUBLE_EQ(d.cluster_perturbation_error, 0.0);
    EXPECT_DOUBLE_EQ(d.nou_expected_error, 0.0);
    EXPECT_DOUBLE_EQ(d.noe_expected_error, 0.0);
  }
}

TEST_F(ErrorDecompositionTest, WholePartitionPerturbationFormula) {
  // One cluster of n users: Eq 5 = sqrt(2) * w_max / (eps * n) * rowsum.
  const double eps = 0.4;
  const NodeId n = dataset_.social.num_nodes();
  auto per_user = DecomposeErrors(context_, Partition::Whole(n), users_,
                                  {.epsilon = eps, .top_n = 10});
  for (const auto& d : per_user) {
    double expected = std::sqrt(2.0) / (eps * static_cast<double>(n)) *
                      workload_.RowSum(d.user);
    EXPECT_NEAR(d.cluster_perturbation_error, expected, 1e-9);
  }
}

TEST_F(ErrorDecompositionTest, NouErrorIsUserIndependentAndDominant) {
  community::LouvainResult louvain =
      community::RunLouvain(dataset_.social, {.restarts = 2, .seed = 42});
  auto per_user = DecomposeErrors(context_, louvain.partition, users_,
                                  {.epsilon = 0.5, .top_n = 10});
  double expected_nou =
      std::sqrt(2.0) * workload_.MaxColumnSum() / 0.5;
  for (const auto& d : per_user) {
    EXPECT_NEAR(d.nou_expected_error, expected_nou, 1e-9);
    // The Section 5.1 ordering: NOU >= NOE >= cluster noise.
    EXPECT_GE(d.nou_expected_error, d.noe_expected_error - 1e-9);
    EXPECT_GE(d.noe_expected_error,
              d.cluster_perturbation_error - 1e-9);
  }
}

TEST_F(ErrorDecompositionTest, PerturbationScalesInverselyWithEpsilon) {
  community::LouvainResult louvain =
      community::RunLouvain(dataset_.social, {.restarts = 2, .seed = 43});
  auto strong = DecomposeErrors(context_, louvain.partition, users_,
                                {.epsilon = 0.1, .top_n = 10});
  auto weak = DecomposeErrors(context_, louvain.partition, users_,
                              {.epsilon = 1.0, .top_n = 10});
  for (size_t k = 0; k < users_.size(); ++k) {
    EXPECT_NEAR(strong[k].cluster_perturbation_error,
                10.0 * weak[k].cluster_perturbation_error, 1e-6);
  }
}

TEST_F(ErrorDecompositionTest,
       EquationFiveUpperBoundsEmpiricalUtilityNoise) {
  // Eq 5 sums per-cluster expected magnitudes, so it upper-bounds the
  // std of the actual reconstructed utility (independent noises add in
  // quadrature). Verify empirically on one user/item.
  community::LouvainResult louvain =
      community::RunLouvain(dataset_.social, {.restarts = 2, .seed = 44});
  const double eps = 0.5;
  const NodeId u = users_[1];
  core::ExactRecommender exact(context_);
  auto top = exact.RecommendOne(u, 1);
  ASSERT_FALSE(top.empty());
  const graph::ItemId item = top[0].item;

  // Empirical std of the reconstructed utility.
  core::ClusterRecommender rec(context_, louvain.partition,
                               {.epsilon = eps, .seed = 45});
  const int64_t num_items = dataset_.preferences.num_items();
  RunningStats stats;
  for (int t = 0; t < 3000; ++t) {
    auto averages = rec.ComputeNoisyClusterAverages();
    double estimate = 0.0;
    for (const similarity::SimilarityEntry& e : workload_.Row(u)) {
      int64_t c = louvain.partition.ClusterOf(e.user);
      estimate += e.score * averages[static_cast<size_t>(c * num_items +
                                                         item)];
    }
    stats.Add(estimate);
  }

  auto per_user = DecomposeErrors(context_, louvain.partition, {u},
                                  {.epsilon = eps, .top_n = 1});
  double bound = per_user[0].cluster_perturbation_error;
  EXPECT_LE(stats.stddev(), bound * 1.05);
  EXPECT_GE(stats.stddev(), bound * 0.2);  // same order of magnitude
}

TEST_F(ErrorDecompositionTest, MeanAggregatesFields) {
  std::vector<UserErrorDecomposition> fake(2);
  fake[0].mean_top_utility = 2.0;
  fake[0].approximation_error = 1.0;
  fake[0].nou_expected_error = 10.0;
  fake[1].mean_top_utility = 4.0;
  fake[1].approximation_error = 3.0;
  fake[1].nou_expected_error = 20.0;
  UserErrorDecomposition mean = MeanDecomposition(fake);
  EXPECT_DOUBLE_EQ(mean.mean_top_utility, 3.0);
  EXPECT_DOUBLE_EQ(mean.approximation_error, 2.0);
  EXPECT_DOUBLE_EQ(mean.nou_expected_error, 15.0);
}

TEST_F(ErrorDecompositionTest, EmptyInputGivesZeroMean) {
  UserErrorDecomposition mean = MeanDecomposition({});
  EXPECT_DOUBLE_EQ(mean.mean_top_utility, 0.0);
}

}  // namespace
}  // namespace privrec::eval
