// Unit tests for src/common: Status/Result, Rng distributions, statistics
// helpers, string utilities and the flag parser.

#include <cmath>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/flags.h"
#include "common/random.h"
#include "common/retry.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace privrec {
namespace {

// ----------------------------------------------------------- retry jitter

TEST(RetryJitterTest, DisabledJitterKeepsExactExponentialSchedule) {
  RetryOptions options;
  options.max_attempts = 4;
  options.initial_backoff_ms = 10.0;
  options.backoff_multiplier = 2.0;
  RetryStats stats;
  Status result = RetryWithBackoff(
      [] { return Status::IoError("transient"); }, options, &stats);
  EXPECT_EQ(result.code(), StatusCode::kIoError);
  EXPECT_EQ(stats.attempts, 4);
  ASSERT_EQ(stats.backoff_schedule_ms.size(), 3u);
  EXPECT_EQ(stats.backoff_schedule_ms[0], 10.0);
  EXPECT_EQ(stats.backoff_schedule_ms[1], 20.0);
  EXPECT_EQ(stats.backoff_schedule_ms[2], 40.0);
}

TEST(RetryJitterTest, SeededJitterIsBitIdenticalAndBounded) {
  RetryOptions options;
  options.max_attempts = 5;
  options.initial_backoff_ms = 10.0;
  options.backoff_multiplier = 2.0;
  options.jitter = 0.25;
  options.jitter_seed = 42;

  auto schedule = [&] {
    RetryStats stats;
    (void)RetryWithBackoff([] { return Status::IoError("transient"); },
                           options, &stats);
    return stats.backoff_schedule_ms;
  };
  const std::vector<double> first = schedule();
  // Deterministic: the same seed reproduces the same schedule, bit for
  // bit — no global entropy, no wall clock.
  EXPECT_EQ(schedule(), first);

  ASSERT_EQ(first.size(), 4u);
  double nominal = 10.0;
  bool any_jittered = false;
  for (double applied : first) {
    EXPECT_GE(applied, nominal * 0.75);
    EXPECT_LE(applied, nominal * 1.25);
    if (applied != nominal) any_jittered = true;
    nominal *= 2.0;
  }
  EXPECT_TRUE(any_jittered);

  // A different seed de-synchronizes the schedule (the herd fix).
  options.jitter_seed = 43;
  EXPECT_NE(schedule(), first);
}

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllCodeNamesAreDistinct) {
  std::set<std::string> names;
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kIoError,
        StatusCode::kParseError, StatusCode::kInternal,
        StatusCode::kResourceExhausted, StatusCode::kDeadlineExceeded}) {
    names.insert(StatusCodeName(code));
  }
  EXPECT_EQ(names.size(), 9u);
}

TEST(StatusTest, DeadlineExceededFactory) {
  Status s = Status::DeadlineExceeded("too slow");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.ToString(), "DEADLINE_EXCEEDED: too slow");
}

TEST(StatusTest, ResourceExhaustedFactory) {
  Status s = Status::ResourceExhausted("budget gone");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.ToString(), "RESOURCE_EXHAUSTED: budget gone");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsIndependentOfParentConsumption) {
  Rng parent(7);
  Rng child1 = parent.Fork(5);
  Rng child2 = Rng(7).Fork(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child1.Next(), child2.Next());
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    uint64_t x = rng.UniformInt(17);
    EXPECT_LT(x, 17u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(10);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntSignedRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    int64_t x = rng.UniformInt(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.UniformDouble());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(15);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMoments) {
  Rng rng(16);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
  EXPECT_GT(stats.min(), 0.0);
}

TEST(RngTest, LaplaceMomentsMatchTheory) {
  // Lap(b) has mean 0 and variance 2b^2 — the calibration Theorem 1 relies
  // on.
  Rng rng(17);
  const double b = 1.5;
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Laplace(b));
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.variance(), 2.0 * b * b, 0.15);
}

TEST(RngTest, LaplaceIsSymmetric) {
  Rng rng(18);
  int positive = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Laplace(1.0) > 0) ++positive;
  }
  EXPECT_NEAR(static_cast<double>(positive) / kTrials, 0.5, 0.01);
}

TEST(RngTest, TwoSidedGeometricMoments) {
  // Var = 2a/(1-a)^2 for parameter a.
  Rng rng(19);
  const double a = 0.5;
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.Add(static_cast<double>(rng.TwoSidedGeometric(a)));
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.variance(), 2.0 * a / ((1 - a) * (1 - a)), 0.2);
}

TEST(RngTest, ZipfFavorsSmallRanks) {
  Rng rng(20);
  int64_t first = 0;
  int64_t total = 50000;
  for (int64_t i = 0; i < total; ++i) {
    if (rng.Zipf(1000, 1.1) == 0) ++first;
  }
  // Rank 0 should carry far more than the uniform share of 1/1000.
  EXPECT_GT(first, total / 100);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(21);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Zipf(37, 0.8), 37u);
  }
}

TEST(RngTest, ZipfZeroSkewIsRoughlyUniform) {
  Rng rng(22);
  std::vector<int64_t> counts(10, 0);
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) ++counts[rng.Zipf(10, 0.0)];
  for (int64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.1, 0.01);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(24);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (uint64_t x : sample) EXPECT_LT(x, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(25);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(SplitMix64Test, IsDeterministicAndMixing) {
  EXPECT_EQ(SplitMix64(1), SplitMix64(1));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
  // Single-bit input flips should flip many output bits.
  uint64_t d = SplitMix64(0) ^ SplitMix64(1);
  EXPECT_GT(__builtin_popcountll(d), 16);
}

// ---------------------------------------------------------------- Stats

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  Rng rng(26);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Normal();
    whole.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
}

TEST(PercentileTest, MedianAndExtremes) {
  std::vector<double> v = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.5);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);    // bin 0
  h.Add(9.99);   // bin 9
  h.Add(-5.0);   // clamped to bin 0
  h.Add(42.0);   // clamped to bin 9
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(9), 2);
  EXPECT_EQ(h.total(), 4);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 0.5);
}

// ---------------------------------------------------------- string_util

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, SplitWhitespaceDropsRuns) {
  auto parts = SplitWhitespace("  a\t\tb  c\n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\r\n"), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, ParseInt64Strict) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64(" -7 ", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("4x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
}

TEST(StringUtilTest, ParseDoubleStrict) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.0junk", &v));
}

TEST(StringUtilTest, JoinAndStartsWith) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

// ----------------------------------------------------------------- Flags

TEST(FlagsTest, ParsesTypedValues) {
  const char* argv[] = {"prog", "--trials=5", "--eps=0.5", "--name=x",
                        "--fast"};
  FlagParser flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("trials", 1), 5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 1.0), 0.5);
  EXPECT_EQ(flags.GetString("name", ""), "x");
  EXPECT_TRUE(flags.GetBool("fast", false));
  EXPECT_TRUE(flags.Validate());
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  FlagParser flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("trials", 7), 7);
  EXPECT_TRUE(flags.Validate());
}

TEST(FlagsTest, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--bogus=1"};
  FlagParser flags(2, const_cast<char**>(argv));
  EXPECT_FALSE(flags.Validate());
}

TEST(FlagsTest, RejectsMalformedInt) {
  const char* argv[] = {"prog", "--trials=abc"};
  FlagParser flags(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("trials", 3), 3);
  EXPECT_FALSE(flags.Validate());
}

TEST(StringUtilTest, EditDistance) {
  EXPECT_EQ(EditDistance("", ""), 0);
  EXPECT_EQ(EditDistance("abc", "abc"), 0);
  EXPECT_EQ(EditDistance("", "abc"), 3);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistance("allocaton", "allocation"), 1);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2);
}

TEST(FlagsTest, SuggestsCloseKnownFlagForTypo) {
  // The classic silent-misconfiguration bug: --allocaton=geometric parses
  // fine, matches nothing, and the program runs with the default policy.
  const char* argv[] = {"prog", "--allocaton=geometric"};
  FlagParser flags(2, const_cast<char**>(argv));
  flags.GetString("allocation", "uniform");
  flags.GetInt("snapshots", 10);
  EXPECT_EQ(flags.SuggestionFor("allocaton"), "allocation");
  EXPECT_FALSE(flags.Validate());
}

TEST(FlagsTest, NoSuggestionWhenNothingIsClose) {
  const char* argv[] = {"prog", "--zzzqqq=1"};
  FlagParser flags(2, const_cast<char**>(argv));
  flags.GetInt("trials", 3);
  EXPECT_EQ(flags.SuggestionFor("zzzqqq"), "");
  EXPECT_FALSE(flags.Validate());
}

// ----------------------------------------------------------------- Timer

TEST(TimerTest, ElapsedIsMonotonicAndResets) {
  WallTimer timer;
  double t1 = timer.ElapsedSeconds();
  double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  // Millis and seconds are separate clock reads, so only the unit
  // relation holds: millis of a later read >= 1e3 * seconds of an
  // earlier one.
  EXPECT_GE(timer.ElapsedMillis(), t2 * 1e3);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 60.0);
}

// ------------------------------------------------------- More statistics

TEST(StatsTest, PercentileInterpolatesBetweenRanks) {
  std::vector<double> values = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100.0), 40.0);
  // Rank position for p=50 over 4 samples: 1.5 -> midpoint of 20 and 30.
  EXPECT_DOUBLE_EQ(Percentile(values, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 25.0), 17.5);
  // Unsorted input is sorted internally.
  EXPECT_DOUBLE_EQ(Percentile({40.0, 10.0, 30.0, 20.0}, 50.0), 25.0);
}

TEST(StatsTest, HistogramBinsAndClamps) {
  Histogram hist(0.0, 10.0, 5);  // bins of width 2
  hist.Add(1.0);   // bin 0
  hist.Add(3.0);   // bin 1
  hist.Add(9.9);   // bin 4
  hist.Add(-5.0);  // clamped into bin 0
  hist.Add(42.0);  // clamped into bin 4
  EXPECT_EQ(hist.num_bins(), 5);
  EXPECT_EQ(hist.total(), 5);
  EXPECT_EQ(hist.bin_count(0), 2);
  EXPECT_EQ(hist.bin_count(1), 1);
  EXPECT_EQ(hist.bin_count(2), 0);
  EXPECT_EQ(hist.bin_count(4), 2);
  EXPECT_DOUBLE_EQ(hist.Fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(hist.BinCenter(0), 1.0);
  EXPECT_DOUBLE_EQ(hist.BinCenter(4), 9.0);
}

TEST(StatsTest, RunningStatsMergeMatchesCombinedStream) {
  Rng rng(77);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.Normal());

  RunningStats all;
  for (double v : values) all.Add(v);

  RunningStats left;
  RunningStats right;
  for (size_t i = 0; i < values.size(); ++i) {
    (i < 80 ? left : right).Add(values[i]);
  }
  left.Merge(right);

  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(StatsTest, MergeWithEmptySidesIsIdentity) {
  RunningStats stats;
  stats.Add(2.0);
  stats.Add(4.0);
  RunningStats empty;
  stats.Merge(empty);
  EXPECT_EQ(stats.count(), 2);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  empty.Merge(stats);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

// ----------------------------------------------------------------- crc32

// Bit-at-a-time reference, independent of the production tables and SIMD
// folding. Any divergence between the fast paths and the mathematical
// definition of CRC-32 (reflected 0xEDB88320, pre/post inversion) fails
// here before it can corrupt an artifact CRC in the field.
uint32_t ReferenceCrc32(const unsigned char* data, size_t size,
                        uint32_t seed) {
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc ^= data[i];
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? 0xEDB88320u ^ (crc >> 1) : crc >> 1;
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

TEST(Crc32Test, MatchesKnownVectors) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
}

TEST(Crc32Test, MatchesBitwiseReferenceAcrossSizesAndSeeds) {
  // Sizes straddle every dispatch boundary: the byte loop (<8), the
  // slicing-by-8 loop, and the 64-byte-block SIMD fold with all possible
  // tail lengths. Data and seeds are deterministic pseudo-random.
  Rng rng(20260808);
  std::vector<unsigned char> buf(4096 + 63);
  for (auto& b : buf) b = static_cast<unsigned char>(rng.UniformInt(0, 255));
  for (size_t size : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                      size_t{63}, size_t{64}, size_t{65}, size_t{127},
                      size_t{128}, size_t{191}, size_t{192}, size_t{255},
                      size_t{256}, size_t{1023}, size_t{1024}, size_t{4096},
                      buf.size()}) {
    ASSERT_LE(size, buf.size());
    for (uint32_t seed : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
      EXPECT_EQ(Crc32(buf.data(), size, seed),
                ReferenceCrc32(buf.data(), size, seed))
          << "size=" << size << " seed=" << seed;
    }
  }
}

TEST(Crc32Test, SeedChainsIncrementalComputation) {
  Rng rng(77);
  std::vector<unsigned char> buf(777);
  for (auto& b : buf) b = static_cast<unsigned char>(rng.UniformInt(0, 255));
  const uint32_t whole = Crc32(buf.data(), buf.size());
  for (size_t split : {size_t{1}, size_t{64}, size_t{100}, size_t{640}}) {
    const uint32_t first = Crc32(buf.data(), split);
    const uint32_t chained = Crc32(buf.data() + split, buf.size() - split,
                                   first);
    EXPECT_EQ(chained, whole) << "split=" << split;
  }
}

TEST(Crc32Test, UnalignedBuffersMatchAlignedResults) {
  // The mmap reader hands Crc32 section payloads at 64-byte-aligned
  // offsets, but nothing in the contract requires alignment; make sure
  // the SIMD path's unaligned loads really are unaligned-safe.
  std::vector<unsigned char> backing(512 + 16);
  Rng rng(5150);
  for (auto& b : backing) {
    b = static_cast<unsigned char>(rng.UniformInt(0, 255));
  }
  for (size_t offset = 0; offset < 16; ++offset) {
    EXPECT_EQ(Crc32(backing.data() + offset, 512),
              ReferenceCrc32(backing.data() + offset, 512, 0))
        << "offset=" << offset;
  }
}

}  // namespace
}  // namespace privrec
