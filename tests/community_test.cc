// Tests for the community module: Partition invariants, modularity
// hand-checks, Louvain recovery of planted structure, label propagation
// and the degenerate clusterings.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/modularity.h"
#include "community/partition.h"
#include "community/partition_io.h"
#include "community/quality.h"
#include "community/simple_clusterings.h"
#include "graph/generators/erdos_renyi.h"
#include "graph/generators/planted_partition.h"

namespace privrec::community {
namespace {

using graph::NodeId;
using graph::SocialGraph;

// Two triangles joined by one bridge edge — the canonical two-community
// graph.
SocialGraph TwoTriangles() {
  return SocialGraph::FromEdges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
}

// -------------------------------------------------------------- Partition

TEST(PartitionTest, CompactsLabels) {
  Partition p({7, 7, 42, 7, 42});
  EXPECT_EQ(p.num_nodes(), 5);
  EXPECT_EQ(p.num_clusters(), 2);
  EXPECT_EQ(p.ClusterOf(0), p.ClusterOf(1));
  EXPECT_EQ(p.ClusterOf(2), p.ClusterOf(4));
  EXPECT_NE(p.ClusterOf(0), p.ClusterOf(2));
  EXPECT_EQ(p.ClusterSize(p.ClusterOf(0)), 3);
}

TEST(PartitionTest, SingletonsAndWhole) {
  Partition s = Partition::Singletons(4);
  EXPECT_EQ(s.num_clusters(), 4);
  EXPECT_EQ(s.LargestClusterSize(), 1);
  Partition w = Partition::Whole(4);
  EXPECT_EQ(w.num_clusters(), 1);
  EXPECT_EQ(w.LargestClusterSize(), 4);
}

TEST(PartitionTest, SizesSumToNodeCount) {
  Partition p({0, 1, 0, 2, 1, 0});
  int64_t total = 0;
  for (int64_t s : p.sizes()) total += s;
  EXPECT_EQ(total, p.num_nodes());
}

TEST(PartitionTest, MembersRoundTrip) {
  Partition p({0, 1, 0, 1});
  auto members = p.Members();
  ASSERT_EQ(members.size(), 2u);
  for (int64_t c = 0; c < 2; ++c) {
    for (NodeId u : members[static_cast<size_t>(c)]) {
      EXPECT_EQ(p.ClusterOf(u), c);
    }
  }
}

TEST(PartitionTest, SamePartitionUpToRelabeling) {
  Partition a({0, 0, 1, 1});
  Partition b({5, 5, 2, 2});
  Partition c({0, 1, 0, 1});
  EXPECT_TRUE(a.SamePartitionAs(b));
  EXPECT_FALSE(a.SamePartitionAs(c));
}

TEST(PartitionTest, SizeStatistics) {
  Partition p({0, 0, 0, 1});
  EXPECT_DOUBLE_EQ(p.AverageClusterSize(), 2.0);
  EXPECT_DOUBLE_EQ(p.ClusterSizeStddev(), 1.0);
}

TEST(PartitionDeathTest, RejectsNegativeLabel) {
  EXPECT_DEATH(Partition({0, -1}), "negative");
}

// ------------------------------------------------------------- Modularity

TEST(ModularityTest, TwoTrianglesGroundTruth) {
  SocialGraph g = TwoTriangles();
  // Q = sum_c [e_c/m - (d_c/2m)^2]; m = 7, each community: e_c = 3,
  // d_c = 7 -> Q = 2*(3/7 - (7/14)^2) = 6/7 - 1/2.
  Partition truth({0, 0, 0, 1, 1, 1});
  EXPECT_NEAR(Modularity(g, truth), 6.0 / 7.0 - 0.5, 1e-12);
}

TEST(ModularityTest, WholePartitionScoresZero) {
  SocialGraph g = TwoTriangles();
  EXPECT_NEAR(Modularity(g, Partition::Whole(6)), 0.0, 1e-12);
}

TEST(ModularityTest, SingletonsAreNegative) {
  SocialGraph g = TwoTriangles();
  EXPECT_LT(Modularity(g, Partition::Singletons(6)), 0.0);
}

TEST(ModularityTest, EmptyGraphIsZero) {
  SocialGraph g = SocialGraph::FromEdges(3, {});
  EXPECT_DOUBLE_EQ(Modularity(g, Partition::Whole(3)), 0.0);
}

TEST(ModularityTest, BoundedAboveByOne) {
  graph::PlantedPartitionOptions opt;
  opt.num_nodes = 300;
  opt.num_communities = 5;
  opt.seed = 71;
  auto planted = graph::GeneratePlantedPartition(opt);
  Partition truth(planted.community_of);
  double q = Modularity(planted.graph, truth);
  EXPECT_GT(q, -0.5);
  EXPECT_LT(q, 1.0);
}

// ---------------------------------------------------------------- Louvain

TEST(LouvainTest, RecoversTwoTriangles) {
  SocialGraph g = TwoTriangles();
  LouvainOptions opt;
  opt.restarts = 3;
  opt.seed = 81;
  LouvainResult r = RunLouvain(g, opt);
  Partition truth({0, 0, 0, 1, 1, 1});
  EXPECT_TRUE(r.partition.SamePartitionAs(truth));
  EXPECT_NEAR(r.modularity, 6.0 / 7.0 - 0.5, 1e-12);
}

TEST(LouvainTest, RecoversPlantedCommunities) {
  graph::PlantedPartitionOptions opt;
  opt.num_nodes = 1200;
  opt.num_communities = 8;
  opt.mean_degree = 14.0;
  opt.mixing = 0.1;
  opt.seed = 82;
  auto planted = graph::GeneratePlantedPartition(opt);
  LouvainOptions lopt;
  lopt.restarts = 5;
  lopt.seed = 83;
  LouvainResult r = RunLouvain(planted.graph, lopt);
  // Louvain must be at least as good as the ground truth (it maximizes Q).
  double truth_q =
      Modularity(planted.graph, Partition(planted.community_of));
  EXPECT_GE(r.modularity, truth_q - 0.02);
  // And find roughly the planted number of communities.
  EXPECT_GE(r.partition.num_clusters(), 5);
  EXPECT_LE(r.partition.num_clusters(), 16);
}

TEST(LouvainTest, ModularityMatchesPartition) {
  SocialGraph g = graph::GenerateErdosRenyi(120, 400, 84);
  LouvainResult r = RunLouvain(g, {.restarts = 2, .seed = 85});
  EXPECT_NEAR(r.modularity, Modularity(g, r.partition), 1e-12);
}

TEST(LouvainTest, SeparateComponentsStaySeparate) {
  // Two disjoint triangles: no modularity gain from merging across them.
  SocialGraph g = SocialGraph::FromEdges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  LouvainResult r = RunLouvain(g, {.restarts = 2, .seed = 86});
  EXPECT_EQ(r.partition.num_clusters(), 2);
  EXPECT_NE(r.partition.ClusterOf(0), r.partition.ClusterOf(3));
}

TEST(LouvainTest, DeterministicForSeed) {
  SocialGraph g = graph::GenerateErdosRenyi(100, 300, 87);
  LouvainOptions opt;
  opt.restarts = 3;
  opt.seed = 88;
  LouvainResult a = RunLouvain(g, opt);
  LouvainResult b = RunLouvain(g, opt);
  EXPECT_EQ(a.partition.cluster_of(), b.partition.cluster_of());
  EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
}

TEST(LouvainTest, RefinementNeverHurtsModularity) {
  graph::PlantedPartitionOptions opt;
  opt.num_nodes = 800;
  opt.num_communities = 6;
  opt.mixing = 0.25;  // noisy enough that refinement has room to act
  opt.seed = 89;
  auto planted = graph::GeneratePlantedPartition(opt);
  LouvainOptions base;
  base.restarts = 3;
  base.seed = 90;
  base.refine = false;
  double q_plain = RunLouvain(planted.graph, base).modularity;
  base.refine = true;
  double q_refined = RunLouvain(planted.graph, base).modularity;
  EXPECT_GE(q_refined, q_plain - 1e-9);
}

TEST(LouvainTest, MoreRestartsNeverWorse) {
  SocialGraph g = graph::GenerateErdosRenyi(150, 500, 91);
  LouvainOptions one;
  one.restarts = 1;
  one.seed = 92;
  LouvainOptions ten;
  ten.restarts = 10;
  ten.seed = 92;
  // Restart r of the 10-run uses Fork(r), identical to the single run's
  // Fork(0): the best-of-10 can only improve on run 0.
  EXPECT_GE(RunLouvain(g, ten).modularity,
            RunLouvain(g, one).modularity - 1e-12);
}

TEST(LouvainTest, EmptyGraphYieldsSingletons) {
  SocialGraph g = SocialGraph::FromEdges(4, {});
  LouvainResult r = RunLouvain(g, {.restarts = 1, .seed = 93});
  EXPECT_EQ(r.partition.num_clusters(), 4);
}

// ------------------------------------------------------ Label propagation

TEST(LabelPropagationTest, FindsTwoTriangles) {
  SocialGraph g = TwoTriangles();
  Partition p = RunLabelPropagation(g, {.max_iterations = 50, .seed = 94});
  // Label propagation may merge across the bridge occasionally, but the
  // two-triangle structure is stable: expect 1 or 2 clusters, and if 2,
  // the triangles must be intact.
  ASSERT_LE(p.num_clusters(), 2);
  if (p.num_clusters() == 2) {
    EXPECT_EQ(p.ClusterOf(0), p.ClusterOf(1));
    EXPECT_EQ(p.ClusterOf(3), p.ClusterOf(5));
  }
}

TEST(LabelPropagationTest, CoversAllNodes) {
  SocialGraph g = graph::GenerateErdosRenyi(100, 250, 95);
  Partition p = RunLabelPropagation(g, {.seed = 96});
  EXPECT_EQ(p.num_nodes(), 100);
  int64_t total = 0;
  for (int64_t s : p.sizes()) total += s;
  EXPECT_EQ(total, 100);
}

// ----------------------------------------------------------- Partition IO

TEST(PartitionIoTest, RoundTrip) {
  namespace fs = std::filesystem;
  fs::path path = fs::temp_directory_path() / "privrec_partition.tsv";
  Partition original({0, 1, 0, 2, 1, 0});
  ASSERT_TRUE(SavePartition(original, path.string()).ok());
  auto loaded = LoadPartition(path.string());
  fs::remove(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->SamePartitionAs(original));
}

TEST(PartitionIoTest, LouvainResultRoundTrip) {
  namespace fs = std::filesystem;
  fs::path path = fs::temp_directory_path() / "privrec_partition2.tsv";
  SocialGraph g = graph::GenerateErdosRenyi(200, 600, 99);
  LouvainResult r = RunLouvain(g, {.restarts = 2, .seed = 100});
  ASSERT_TRUE(SavePartition(r.partition, path.string()).ok());
  auto loaded = LoadPartition(path.string());
  fs::remove(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->SamePartitionAs(r.partition));
  EXPECT_DOUBLE_EQ(Modularity(g, *loaded), r.modularity);
}

TEST(PartitionIoTest, RejectsMissingNode) {
  namespace fs = std::filesystem;
  fs::path path = fs::temp_directory_path() / "privrec_partition3.tsv";
  {
    std::ofstream out(path);
    out << "0\t0\n2\t1\n";  // node 1 missing
  }
  auto loaded = LoadPartition(path.string());
  fs::remove(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(PartitionIoTest, RejectsDuplicateNode) {
  namespace fs = std::filesystem;
  fs::path path = fs::temp_directory_path() / "privrec_partition4.tsv";
  {
    std::ofstream out(path);
    out << "0\t0\n0\t1\n";
  }
  auto loaded = LoadPartition(path.string());
  fs::remove(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

// ------------------------------------------------------------- Quality

TEST(PartitionQualityTest, PerfectSeparationTwoTriangles) {
  SocialGraph g = SocialGraph::FromEdges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  Partition truth({0, 0, 0, 1, 1, 1});
  PartitionQuality q = EvaluatePartitionQuality(g, truth);
  EXPECT_DOUBLE_EQ(q.coverage, 1.0);
  EXPECT_DOUBLE_EQ(q.mean_conductance, 0.0);
  EXPECT_DOUBLE_EQ(q.max_conductance, 0.0);
  EXPECT_DOUBLE_EQ(ClusterConductance(g, truth, 0), 0.0);
}

TEST(PartitionQualityTest, BridgedTrianglesConductance) {
  SocialGraph g = TwoTriangles();  // bridge 2-3 added
  Partition truth({0, 0, 0, 1, 1, 1});
  // Each cluster: cut = 1, volume = 7, total volume = 14 -> 1/7.
  EXPECT_NEAR(ClusterConductance(g, truth, 0), 1.0 / 7.0, 1e-12);
  PartitionQuality q = EvaluatePartitionQuality(g, truth);
  EXPECT_NEAR(q.coverage, 6.0 / 7.0, 1e-12);
  EXPECT_NEAR(q.mean_conductance, 1.0 / 7.0, 1e-12);
  EXPECT_NEAR(q.modularity, Modularity(g, truth), 1e-12);
}

TEST(PartitionQualityTest, WholePartitionCoversEverything) {
  SocialGraph g = graph::GenerateErdosRenyi(60, 150, 101);
  PartitionQuality q =
      EvaluatePartitionQuality(g, Partition::Whole(60));
  EXPECT_DOUBLE_EQ(q.coverage, 1.0);
  EXPECT_DOUBLE_EQ(q.mean_conductance, 0.0);
}

TEST(PartitionQualityTest, RandomClustersHaveHighConductance) {
  graph::PlantedPartitionOptions opt;
  opt.num_nodes = 400;
  opt.num_communities = 5;
  opt.mixing = 0.1;
  opt.seed = 102;
  auto planted = graph::GeneratePlantedPartition(opt);
  PartitionQuality truth = EvaluatePartitionQuality(
      planted.graph, Partition(planted.community_of));
  PartitionQuality random = EvaluatePartitionQuality(
      planted.graph, RandomClusters(400, 5, 103));
  EXPECT_LT(truth.mean_conductance, 0.5 * random.mean_conductance);
  EXPECT_GT(truth.coverage, random.coverage);
}

TEST(PartitionQualityTest, EmptyGraphIsNeutral) {
  SocialGraph g = SocialGraph::FromEdges(4, {});
  PartitionQuality q =
      EvaluatePartitionQuality(g, Partition::Singletons(4));
  EXPECT_DOUBLE_EQ(q.coverage, 0.0);
  EXPECT_DOUBLE_EQ(q.mean_conductance, 0.0);
}

// ------------------------------------------------------ Simple clusterings

TEST(RandomClustersTest, EqualSizes) {
  Partition p = RandomClusters(100, 10, 97);
  EXPECT_EQ(p.num_clusters(), 10);
  for (int64_t c = 0; c < 10; ++c) EXPECT_EQ(p.ClusterSize(c), 10);
}

TEST(RandomClustersTest, UnevenDivision) {
  Partition p = RandomClusters(10, 3, 98);
  EXPECT_EQ(p.num_clusters(), 3);
  std::multiset<int64_t> sizes(p.sizes().begin(), p.sizes().end());
  EXPECT_EQ(sizes, (std::multiset<int64_t>{3, 3, 4}));
}

TEST(RandomClustersTest, DifferentSeedsDiffer) {
  Partition a = RandomClusters(60, 6, 1);
  Partition b = RandomClusters(60, 6, 2);
  EXPECT_FALSE(a.SamePartitionAs(b));
}

}  // namespace
}  // namespace privrec::community
