// Tests for the baseline mechanisms: NOU, NOE, GS and LRM.

#include <set>

#include <gtest/gtest.h>

#include "core/exact_recommender.h"
#include "core/group_smooth_recommender.h"
#include "core/low_rank_recommender.h"
#include "core/noe_recommender.h"
#include "core/nou_recommender.h"
#include "data/synthetic.h"
#include "dp/mechanisms.h"
#include "eval/exact_reference.h"
#include "similarity/common_neighbors.h"

namespace privrec::core {
namespace {

using graph::ItemId;
using graph::NodeId;

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = data::MakeTinyDataset(/*num_users=*/150, /*num_items=*/120,
                                     /*seed=*/6);
    workload_ = similarity::SimilarityWorkload::Compute(
        dataset_.social, similarity::CommonNeighbors());
    context_ = {&dataset_.social, &dataset_.preferences, &workload_};
    for (NodeId u = 0; u < dataset_.social.num_nodes(); ++u) {
      all_users_.push_back(u);
    }
  }

  // Lists must rank items identically on the exact recommender's nonzero
  // prefix.
  void ExpectMatchesExactPrefix(
      const std::vector<RecommendationList>& lists) {
    ExactRecommender exact(context_);
    auto truth = exact.Recommend(all_users_, 10);
    for (size_t k = 0; k < all_users_.size(); ++k) {
      for (size_t p = 0; p < truth[k].size(); ++p) {
        ASSERT_LT(p, lists[k].size());
        EXPECT_EQ(lists[k][p].item, truth[k][p].item)
            << "user " << all_users_[k] << " position " << p;
      }
    }
  }

  data::Dataset dataset_;
  similarity::SimilarityWorkload workload_;
  RecommenderContext context_;
  std::vector<NodeId> all_users_;
};

// -------------------------------------------------------------------- NOU

TEST_F(BaselinesTest, NouWithoutNoiseEqualsExact) {
  NouRecommender rec(context_,
                     {.epsilon = dp::kEpsilonInfinity, .seed = 1});
  ExpectMatchesExactPrefix(rec.Recommend(all_users_, 10));
}

TEST_F(BaselinesTest, NouSensitivityIsWorkloadColumnSum) {
  NouRecommender rec(context_, {.epsilon = 1.0, .seed = 2});
  EXPECT_DOUBLE_EQ(rec.sensitivity(), workload_.MaxColumnSum());
  EXPECT_GT(rec.sensitivity(), 1.0);  // far above the per-edge scale
}

TEST_F(BaselinesTest, NouAtModerateEpsilonIsNearRandom) {
  // The paper's headline negative result: NOU recommendations are "no
  // better than random guessing" even at lenient settings. Compare
  // against an actual uniform-random ranking baseline (on a small catalog
  // random guessing scores nontrivially, so an absolute threshold would
  // be wrong).
  eval::ExactReference ref =
      eval::ExactReference::Compute(context_, all_users_, 10);
  NouRecommender rec(context_, {.epsilon = 1.0, .seed = 3});
  double nou_ndcg = ref.MeanNdcg(rec.Recommend(all_users_, 10));

  Rng rng(4);
  std::vector<RecommendationList> random_lists;
  for (size_t k = 0; k < all_users_.size(); ++k) {
    RecommendationList list;
    for (uint64_t raw : rng.SampleWithoutReplacement(
             static_cast<uint64_t>(dataset_.preferences.num_items()), 10)) {
      list.push_back({static_cast<graph::ItemId>(raw), 0.0});
    }
    random_lists.push_back(std::move(list));
  }
  double random_ndcg = ref.MeanNdcg(random_lists);
  // NOU must be indistinguishable from random guessing (generous slack
  // for sampling noise) and nowhere near the exact recommender's 1.0.
  EXPECT_LT(nou_ndcg, random_ndcg + 0.1);
  EXPECT_LT(nou_ndcg, 0.5);
}

// -------------------------------------------------------------------- NOE

TEST_F(BaselinesTest, NoeWithoutNoiseEqualsExact) {
  NoeRecommender rec(context_,
                     {.epsilon = dp::kEpsilonInfinity, .seed = 4});
  ExpectMatchesExactPrefix(rec.Recommend(all_users_, 10));
}

TEST_F(BaselinesTest, NoeDeterministicForSeed) {
  NoeRecommenderOptions opt{.epsilon = 1.0, .seed = 5};
  NoeRecommender a(context_, opt);
  NoeRecommender b(context_, opt);
  EXPECT_EQ(a.Recommend({0, 1}, 5), b.Recommend({0, 1}, 5));
}

TEST_F(BaselinesTest, NoeBeatsNouAtWeakPrivacy) {
  // Matches Figure 4(a): NOE performs much better than NOU at eps = 1.0.
  eval::ExactReference ref =
      eval::ExactReference::Compute(context_, all_users_, 10);
  NoeRecommender noe(context_, {.epsilon = 1.0, .seed = 6});
  NouRecommender nou(context_, {.epsilon = 1.0, .seed = 6});
  double noe_ndcg = ref.MeanNdcg(noe.Recommend(all_users_, 10));
  double nou_ndcg = ref.MeanNdcg(nou.Recommend(all_users_, 10));
  EXPECT_GT(noe_ndcg, nou_ndcg);
}

// --------------------------------------------------------------------- GS

TEST_F(BaselinesTest, GsProducesFullLengthRankings) {
  GroupSmoothRecommender rec(
      context_, {.epsilon = 1.0, .group_size = 32, .seed = 7});
  auto lists = rec.Recommend({0, 5, 9}, 10);
  ASSERT_EQ(lists.size(), 3u);
  for (const auto& list : lists) {
    EXPECT_EQ(list.size(), 10u);
    // Items must be distinct.
    std::set<ItemId> items;
    for (const auto& r : list) items.insert(r.item);
    EXPECT_EQ(items.size(), list.size());
  }
}

TEST_F(BaselinesTest, GsDeterministicForSeed) {
  GroupSmoothRecommenderOptions opt{
      .epsilon = 0.5, .group_size = 16, .seed = 8};
  GroupSmoothRecommender a(context_, opt);
  GroupSmoothRecommender b(context_, opt);
  EXPECT_EQ(a.Recommend({0, 1, 2}, 5), b.Recommend({0, 1, 2}, 5));
}

TEST_F(BaselinesTest, GsGroupSizeOneWithoutNoiseEqualsExact) {
  // m = 1 means every query is its own group: the group mean IS the true
  // utility, so eps = inf reproduces exact rankings.
  GroupSmoothRecommender rec(
      context_,
      {.epsilon = dp::kEpsilonInfinity, .group_size = 1, .seed = 9});
  ExpectMatchesExactPrefix(rec.Recommend(all_users_, 10));
}

TEST_F(BaselinesTest, GsSmoothingDegradesWithGiantGroups) {
  // With m = |U| every user gets the same utility for an item — rankings
  // lose all personalization and NDCG drops well below the exact prefix.
  eval::ExactReference ref =
      eval::ExactReference::Compute(context_, all_users_, 10);
  GroupSmoothRecommender rec(
      context_,
      {.epsilon = dp::kEpsilonInfinity, .group_size = 100000, .seed = 10});
  double ndcg = ref.MeanNdcg(rec.Recommend(all_users_, 10));
  EXPECT_LT(ndcg, 0.9);
}

// -------------------------------------------------------------------- LRM

TEST_F(BaselinesTest, LrmFactorizationReportsQuality) {
  LowRankRecommender rec(context_,
                         {.epsilon = 1.0, .target_rank = 40, .seed = 11});
  EXPECT_EQ(rec.rank(), 40);
  EXPECT_GT(rec.noise_sensitivity(), 0.0);
  EXPECT_GE(rec.factorization_error(), 0.0);
  EXPECT_LT(rec.factorization_error(), 1.0);
}

TEST_F(BaselinesTest, LrmFullRankWithoutNoiseScoresPerfectNdcg) {
  // At full rank the factorization is (numerically) exact, so eps = inf
  // reproduces the exact utilities. The ~1e-10 reconstruction residue can
  // flip exact ties, so compare by NDCG (tie swaps carry no penalty)
  // rather than item-by-item.
  LowRankRecommender rec(
      context_,
      {.epsilon = dp::kEpsilonInfinity, .target_rank = 150, .seed = 12});
  EXPECT_LT(rec.factorization_error(), 1e-6);
  eval::ExactReference ref =
      eval::ExactReference::Compute(context_, all_users_, 10);
  EXPECT_NEAR(ref.MeanNdcg(rec.Recommend(all_users_, 10)), 1.0, 1e-6);
}

TEST_F(BaselinesTest, LrmHigherRankReducesFactorizationError) {
  LowRankRecommender low(context_,
                         {.epsilon = 1.0, .target_rank = 10, .seed = 13});
  LowRankRecommender high(context_,
                          {.epsilon = 1.0, .target_rank = 80, .seed = 13});
  EXPECT_LT(high.factorization_error(), low.factorization_error() + 1e-12);
}

TEST_F(BaselinesTest, LrmDeterministicForSeed) {
  LowRankRecommenderOptions opt{
      .epsilon = 0.5, .target_rank = 30, .seed = 14};
  LowRankRecommender a(context_, opt);
  LowRankRecommender b(context_, opt);
  EXPECT_EQ(a.Recommend({0, 3}, 5), b.Recommend({0, 3}, 5));
}

// ------------------------------------------------- Cross-mechanism shape

TEST_F(BaselinesTest, AllMechanismNamesAreDistinct) {
  NouRecommender nou(context_, {});
  NoeRecommender noe(context_, {});
  GroupSmoothRecommender gs(context_, {});
  LowRankRecommender lrm(context_, {.target_rank = 10});
  std::set<std::string> names = {nou.Name(), noe.Name(), gs.Name(),
                                 lrm.Name()};
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace privrec::core
