// Tests for the deterministic fault-injection harness: arming semantics,
// hit windows, seeded probabilistic firing, the spec-string grammar, value
// poisoning and scoped cleanup.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"

namespace privrec::fault {
namespace {

// Under -DPRIVREC_DISABLE_FAULT_INJECTION=ON the probes are constexpr
// no-ops, so tests that expect a fault to actually fire must skip.
#define PRIVREC_REQUIRE_FAULT_PROBES()                       \
  do {                                                       \
    if (!kCompiledIn) {                                      \
      GTEST_SKIP() << "fault probes compiled out";           \
    }                                                        \
  } while (false)

TEST(FaultInjectionTest, UnarmedPointNeverFiresAndCountsNoHits) {
  ScopedFaultInjection scope;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(Hit("nowhere"), FaultKind::kNone);
  }
  EXPECT_EQ(FaultInjector::Instance().HitCount("nowhere"), 0);
}

TEST(FaultInjectionTest, EveryHitFiresWhenArmedWithDefaults) {
  PRIVREC_REQUIRE_FAULT_PROBES();
  ScopedFaultInjection scope("p", FaultSpec{.kind = FaultKind::kIoError});
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(Hit("p"), FaultKind::kIoError);
  }
  EXPECT_EQ(FaultInjector::Instance().HitCount("p"), 5);
  EXPECT_EQ(Hit("other"), FaultKind::kNone);
}

TEST(FaultInjectionTest, ArmNthFiresExactlyOnce) {
  PRIVREC_REQUIRE_FAULT_PROBES();
  ScopedFaultInjection scope;
  FaultInjector::Instance().ArmNth("p", FaultKind::kShortRead, 3);
  EXPECT_EQ(Hit("p"), FaultKind::kNone);
  EXPECT_EQ(Hit("p"), FaultKind::kNone);
  EXPECT_EQ(Hit("p"), FaultKind::kShortRead);
  EXPECT_EQ(Hit("p"), FaultKind::kNone);
}

TEST(FaultInjectionTest, HitWindowFiresInRange) {
  PRIVREC_REQUIRE_FAULT_PROBES();
  ScopedFaultInjection scope(
      "p", FaultSpec{.kind = FaultKind::kNaN, .first_hit = 2, .count = 2});
  std::vector<FaultKind> observed;
  for (int i = 0; i < 5; ++i) observed.push_back(Hit("p"));
  EXPECT_EQ(observed, (std::vector<FaultKind>{
                          FaultKind::kNone, FaultKind::kNaN, FaultKind::kNaN,
                          FaultKind::kNone, FaultKind::kNone}));
}

TEST(FaultInjectionTest, SeededCoinIsDeterministic) {
  PRIVREC_REQUIRE_FAULT_PROBES();
  const FaultSpec spec{.kind = FaultKind::kIoError,
                       .probability = 0.5,
                       .seed = 42};
  std::vector<FaultKind> first;
  {
    ScopedFaultInjection scope("p", spec);
    for (int i = 0; i < 64; ++i) first.push_back(Hit("p"));
  }
  std::vector<FaultKind> second;
  {
    ScopedFaultInjection scope("p", spec);
    for (int i = 0; i < 64; ++i) second.push_back(Hit("p"));
  }
  EXPECT_EQ(first, second);
  // A fair-ish coin over 64 hits fires at least once and skips at least
  // once (deterministic given the seed, so this cannot flake).
  int fired = 0;
  for (FaultKind k : first) fired += (k != FaultKind::kNone);
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
}

TEST(FaultInjectionTest, ZeroProbabilityNeverFires) {
  ScopedFaultInjection scope("p", FaultSpec{.kind = FaultKind::kIoError,
                                            .probability = 0.0,
                                            .seed = 7});
  for (int i = 0; i < 32; ++i) EXPECT_EQ(Hit("p"), FaultKind::kNone);
}

TEST(FaultInjectionTest, LatencyKindArmsFromSpecString) {
  PRIVREC_REQUIRE_FAULT_PROBES();
  ScopedFaultInjection scope;
  Status s = FaultInjector::Instance().ArmFromSpec("slow.read=latency@2");
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(Hit("slow.read"), FaultKind::kNone);
  EXPECT_EQ(Hit("slow.read"), FaultKind::kLatency);
  EXPECT_EQ(Hit("slow.read"), FaultKind::kNone);
}

TEST(FaultInjectionTest, SpecStringArmsMultiplePoints) {
  PRIVREC_REQUIRE_FAULT_PROBES();
  ScopedFaultInjection scope;
  Status s = FaultInjector::Instance().ArmFromSpec(
      "a=io_error@2;b=nan;c=short_read@1+2");
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(Hit("a"), FaultKind::kNone);
  EXPECT_EQ(Hit("a"), FaultKind::kIoError);
  EXPECT_EQ(Hit("a"), FaultKind::kNone);
  EXPECT_EQ(Hit("b"), FaultKind::kNaN);
  EXPECT_EQ(Hit("b"), FaultKind::kNaN);
  EXPECT_EQ(Hit("c"), FaultKind::kShortRead);
  EXPECT_EQ(Hit("c"), FaultKind::kShortRead);
  EXPECT_EQ(Hit("c"), FaultKind::kNone);
}

TEST(FaultInjectionTest, SpecStringOpenEndedTailAndProbability) {
  PRIVREC_REQUIRE_FAULT_PROBES();
  ScopedFaultInjection scope;
  ASSERT_TRUE(FaultInjector::Instance()
                  .ArmFromSpec("tail=bad_alloc@3+;coin=inf%1.0:9")
                  .ok());
  EXPECT_EQ(Hit("tail"), FaultKind::kNone);
  EXPECT_EQ(Hit("tail"), FaultKind::kNone);
  EXPECT_EQ(Hit("tail"), FaultKind::kBadAlloc);
  EXPECT_EQ(Hit("tail"), FaultKind::kBadAlloc);
  // Probability 1.0 through the coin path still always fires.
  EXPECT_EQ(Hit("coin"), FaultKind::kInf);
}

TEST(FaultInjectionTest, MalformedSpecIsRejected) {
  ScopedFaultInjection scope;
  FaultInjector& inj = FaultInjector::Instance();
  EXPECT_FALSE(inj.ArmFromSpec("nokind").ok());
  EXPECT_FALSE(inj.ArmFromSpec("p=frobnicate").ok());
  EXPECT_FALSE(inj.ArmFromSpec("p=io_error@zero").ok());
  EXPECT_FALSE(inj.ArmFromSpec("p=io_error%2.0:1").ok());
}

TEST(FaultInjectionTest, MaybePoisonInjectsNaNAndInf) {
  PRIVREC_REQUIRE_FAULT_PROBES();
  {
    ScopedFaultInjection scope("v", FaultSpec{.kind = FaultKind::kNaN});
    EXPECT_TRUE(std::isnan(MaybePoison("v", 1.5)));
  }
  {
    ScopedFaultInjection scope("v", FaultSpec{.kind = FaultKind::kInf});
    EXPECT_TRUE(std::isinf(MaybePoison("v", 1.5)));
  }
  {
    // Non-poison kinds leave the value alone.
    ScopedFaultInjection scope("v", FaultSpec{.kind = FaultKind::kIoError});
    EXPECT_DOUBLE_EQ(MaybePoison("v", 1.5), 1.5);
  }
  EXPECT_DOUBLE_EQ(MaybePoison("v", 1.5), 1.5);
}

TEST(FaultInjectionTest, ScopedInjectionDisarmsOnExit) {
  PRIVREC_REQUIRE_FAULT_PROBES();
  {
    ScopedFaultInjection scope("p", FaultSpec{.kind = FaultKind::kIoError});
    EXPECT_EQ(Hit("p"), FaultKind::kIoError);
  }
  EXPECT_EQ(Hit("p"), FaultKind::kNone);
  EXPECT_FALSE(FaultInjector::Instance().AnyArmed());
}

TEST(FaultInjectionTest, RearmingResetsTheHitCounter) {
  PRIVREC_REQUIRE_FAULT_PROBES();
  ScopedFaultInjection scope;
  FaultInjector& inj = FaultInjector::Instance();
  inj.ArmNth("p", FaultKind::kIoError, 2);
  EXPECT_EQ(Hit("p"), FaultKind::kNone);
  EXPECT_EQ(Hit("p"), FaultKind::kIoError);
  inj.ArmNth("p", FaultKind::kIoError, 2);
  EXPECT_EQ(inj.HitCount("p"), 0);
  EXPECT_EQ(Hit("p"), FaultKind::kNone);
  EXPECT_EQ(Hit("p"), FaultKind::kIoError);
}

TEST(FaultInjectionTest, KindNamesRoundTrip) {
  for (FaultKind kind :
       {FaultKind::kIoError, FaultKind::kShortRead, FaultKind::kNaN,
        FaultKind::kInf, FaultKind::kBadAlloc, FaultKind::kLatency}) {
    FaultKind parsed = FaultKind::kNone;
    ASSERT_TRUE(ParseFaultKind(FaultKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  FaultKind parsed = FaultKind::kNone;
  EXPECT_FALSE(ParseFaultKind("frobnicate", &parsed));
}

}  // namespace
}  // namespace privrec::fault
