// Tests for src/data: synthetic dataset factories (statistics match the
// requested targets), and the HetRec Last.fm / Flixster parsers on small
// fixture files that exercise the paper's preprocessing rules.

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/export.h"
#include "data/flixster.h"
#include "data/hetrec_lastfm.h"
#include "data/synthetic.h"
#include "graph/components.h"

namespace privrec::data {
namespace {

// ---------------------------------------------------------- Synthetic

TEST(SyntheticTest, TinyDatasetIsAlignedAndNonTrivial) {
  Dataset d = MakeTinyDataset(200, 150, 1);
  EXPECT_TRUE(IsAligned(d));
  EXPECT_EQ(d.social.num_nodes(), 200);
  EXPECT_EQ(d.preferences.num_items(), 150);
  EXPECT_GT(d.social.num_edges(), 100);
  EXPECT_GT(d.preferences.num_edges(), 200);
}

TEST(SyntheticTest, TinyDatasetDeterministic) {
  Dataset a = MakeTinyDataset(100, 80, 9);
  Dataset b = MakeTinyDataset(100, 80, 9);
  EXPECT_EQ(a.social.Edges(), b.social.Edges());
  EXPECT_EQ(a.preferences.Edges(), b.preferences.Edges());
}

TEST(SyntheticTest, LastFmScaleMatchesTable1) {
  // Full published scale; verify the Table 1 statistics the generator
  // targets (loose tolerances — these are distributional).
  Dataset d = MakeSyntheticLastFm();
  DatasetSummary s = Summarize(d);
  EXPECT_EQ(s.num_users, 1892);
  EXPECT_EQ(s.num_items, 17632);
  EXPECT_NEAR(s.avg_user_degree, 13.4, 2.0);
  EXPECT_NEAR(s.avg_prefs_per_user, 48.7, 3.0);
  EXPECT_GT(s.sparsity, 0.99);
  // Degree tail: std should be comparable to the published 17.3.
  EXPECT_GT(s.user_degree_stddev, 8.0);
}

TEST(SyntheticTest, LastFmHasTinyComponents) {
  Dataset d = MakeSyntheticLastFm();
  graph::ComponentInfo info = graph::ConnectedComponents(d.social);
  // 19 tiny components requested; the main component may shed a couple of
  // extra fragments.
  EXPECT_GE(info.num_components, 20);
  // Main component holds the vast majority of users (97.4% in the paper).
  EXPECT_GT(static_cast<double>(info.sizes[0]) /
                static_cast<double>(d.social.num_nodes()),
            0.9);
}

TEST(SyntheticTest, FlixsterScaledStatistics) {
  SyntheticFlixsterOptions opt;
  opt.num_users = 3000;  // reduced for test speed; ratios preserved
  opt.num_items = 2000;
  Dataset d = MakeSyntheticFlixster(opt);
  DatasetSummary s = Summarize(d);
  EXPECT_EQ(s.num_users, 3000);
  EXPECT_NEAR(s.avg_user_degree, 18.5, 3.0);
  EXPECT_NEAR(s.avg_prefs_per_user, 54.8, 5.0);
}

TEST(SyntheticTest, SummaryMatchesManualComputation) {
  Dataset d = MakeTinyDataset(80, 60, 3);
  DatasetSummary s = Summarize(d);
  EXPECT_EQ(s.num_social_edges, d.social.num_edges());
  EXPECT_DOUBLE_EQ(s.avg_user_degree, d.social.AverageDegree());
  EXPECT_DOUBLE_EQ(
      s.avg_prefs_per_user,
      static_cast<double>(d.preferences.num_edges()) / 80.0);
}

// ------------------------------------------------------- Dataset export

class DatasetExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "privrec_export";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(DatasetExportTest, RoundTripPreservesEverything) {
  Dataset original = MakeTinyDataset(90, 70, 31);
  ASSERT_TRUE(SaveDataset(original, dir_.string()).ok());
  auto loaded = LoadDataset(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, original.name);
  EXPECT_EQ(loaded->social.num_nodes(), original.social.num_nodes());
  EXPECT_EQ(loaded->social.Edges(), original.social.Edges());
  EXPECT_EQ(loaded->preferences.num_items(),
            original.preferences.num_items());
  EXPECT_EQ(loaded->preferences.Edges(), original.preferences.Edges());
}

TEST_F(DatasetExportTest, PreservesEdgelessUsersAndItems) {
  // User 2 has no edges anywhere; item 3 is never preferred.
  Dataset d;
  d.name = "sparse";
  d.social = graph::SocialGraph::FromEdges(3, {{0, 1}});
  d.preferences = graph::PreferenceGraph::FromEdges(3, 4, {{0, 0}, {1, 2}});
  ASSERT_TRUE(SaveDataset(d, dir_.string()).ok());
  auto loaded = LoadDataset(dir_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->social.num_nodes(), 3);
  EXPECT_EQ(loaded->preferences.num_items(), 4);
  EXPECT_EQ(loaded->preferences.UserDegree(2), 0);
}

TEST_F(DatasetExportTest, RoundTripsWeights) {
  Dataset d;
  d.name = "rated";
  d.social = graph::SocialGraph::FromEdges(2, {{0, 1}});
  d.preferences = graph::PreferenceGraph::FromWeightedEdges(
      2, 2, {{0, 0, 3.5}, {1, 1, 2.0}});
  ASSERT_TRUE(SaveDataset(d, dir_.string()).ok());
  auto loaded = LoadDataset(dir_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->preferences.is_weighted());
  EXPECT_DOUBLE_EQ(loaded->preferences.Weight(0, 0), 3.5);
}

TEST_F(DatasetExportTest, MissingMetaFails) {
  std::filesystem::create_directories(dir_);
  auto loaded = LoadDataset(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(DatasetExportTest, EdgeOutsideMetaRangeFails) {
  Dataset d = MakeTinyDataset(30, 20, 32);
  ASSERT_TRUE(SaveDataset(d, dir_.string()).ok());
  // Corrupt: append a social edge referencing node 999.
  std::ofstream out(dir_ / "social.tsv", std::ios::app);
  out << "0\t999\n";
  out.close();
  auto loaded = LoadDataset(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

// --------------------------------------------------------------- Fixtures

class ParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "privrec_parsers";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(dir_ / name);
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(ParserTest, HetRecLastFmAppliesWeightThreshold) {
  WriteFile("user_friends.dat",
            "userID\tfriendID\n"
            "10\t20\n"
            "20\t30\n");
  WriteFile("user_artists.dat",
            "userID\tartistID\tweight\n"
            "10\t100\t5\n"
            "10\t200\t1\n"   // dropped: weight < 2
            "20\t100\t2\n"
            "30\t300\t99\n");
  auto d = LoadHetRecLastFm(dir_.string());
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->social.num_nodes(), 3);
  EXPECT_EQ(d->social.num_edges(), 2);
  // 3 preference edges survive; artist 200 never appears as an item.
  EXPECT_EQ(d->preferences.num_edges(), 3);
  EXPECT_EQ(d->preferences.num_items(), 2);
}

TEST_F(ParserTest, HetRecLastFmSkipsUsersWithoutSocialPresence) {
  WriteFile("user_friends.dat", "h\n1\t2\n");
  WriteFile("user_artists.dat",
            "h\n"
            "1\t100\t3\n"
            "99\t100\t3\n");  // user 99 has no friendships -> dropped
  auto d = LoadHetRecLastFm(dir_.string());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->preferences.num_edges(), 1);
}

TEST_F(ParserTest, HetRecLastFmMissingFileFails) {
  WriteFile("user_friends.dat", "h\n1\t2\n");
  auto d = LoadHetRecLastFm(dir_.string());
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kIoError);
}

TEST_F(ParserTest, FlixsterPipelineMainComponentAndThreshold) {
  // Users 1,2,3 form a triangle; users 4,5 a separate pair; user 6 has no
  // kept ratings and is excluded entirely.
  WriteFile("links.txt",
            "1\t2\n"
            "2\t3\n"
            "1\t3\n"
            "4\t5\n"
            "1\t6\n");
  WriteFile("ratings.txt",
            "1\t100\t4.5\n"
            "2\t100\t3.0\n"
            "2\t200\t1.0\n"   // dropped: rating < 2
            "3\t300\t2.0\n"
            "4\t100\t5.0\n"
            "5\t400\t4.0\n"
            "6\t100\t0.5\n");  // dropped -> user 6 has no ratings
  auto d = LoadFlixster(dir_.string());
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  // Main component of the induced graph = {1, 2, 3}.
  EXPECT_EQ(d->social.num_nodes(), 3);
  EXPECT_EQ(d->social.num_edges(), 3);
  // Ratings kept: (1,100), (2,100), (3,300) — users 4,5 are outside the
  // main component.
  EXPECT_EQ(d->preferences.num_edges(), 3);
  EXPECT_EQ(d->preferences.num_items(), 2);
}

TEST_F(ParserTest, FlixsterHalfStarRatingsParsed) {
  WriteFile("links.txt", "1\t2\n");
  WriteFile("ratings.txt",
            "1\t10\t0.5\n"
            "1\t11\t2.5\n"
            "2\t10\t3.5\n");
  auto d = LoadFlixster(dir_.string());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->preferences.num_edges(), 2);  // the 0.5 is dropped
}

TEST_F(ParserTest, FlixsterMalformedRatingFails) {
  WriteFile("links.txt", "1\t2\n");
  WriteFile("ratings.txt", "1\t10\tfive\n");
  auto d = LoadFlixster(dir_.string());
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kParseError);
}

TEST_F(ParserTest, GarbageInputsFailGracefully) {
  // Parsers must reject arbitrary junk with ParseError, never crash.
  const char* kJunk[] = {
      "\x01\x02\x03 binary garbage\n",
      "1\n",                      // too few fields
      "999999999999999999999999999999 1 1\n",  // overflow
      "a b c d e f\n",
      "1\t2\t3\t4\t5\t-\n",
  };
  for (const char* junk : kJunk) {
    WriteFile("links.txt", junk);
    WriteFile("ratings.txt", "1\t10\t3.0\n");
    auto d = LoadFlixster(dir_.string());
    if (d.ok()) continue;  // some junk lines parse as valid pairs; fine
    EXPECT_EQ(d.status().code(), StatusCode::kParseError) << junk;
  }
}

TEST_F(ParserTest, HetRecHeaderOnlyFilesYieldEmptyDataset) {
  WriteFile("user_friends.dat", "userID\tfriendID\n");
  WriteFile("user_artists.dat", "userID\tartistID\tweight\n");
  auto d = LoadHetRecLastFm(dir_.string());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->social.num_nodes(), 0);
  EXPECT_EQ(d->preferences.num_edges(), 0);
}

TEST_F(ParserTest, FlixsterEmptyRatingsYieldsEmptyMainComponent) {
  WriteFile("links.txt", "1\t2\n");
  WriteFile("ratings.txt", "");
  auto d = LoadFlixster(dir_.string());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->social.num_nodes(), 0);
  EXPECT_EQ(d->preferences.num_edges(), 0);
}

}  // namespace
}  // namespace privrec::data
