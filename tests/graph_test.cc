// Unit tests for src/graph: SocialGraph, PreferenceGraph, components/BFS
// and the edge-list I/O round trip.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "graph/components.h"
#include "graph/graph_io.h"
#include "graph/preference_graph.h"
#include "graph/social_graph.h"

namespace privrec::graph {
namespace {

SocialGraph Triangle() {
  return SocialGraph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
}

// ----------------------------------------------------------- SocialGraph

TEST(SocialGraphTest, BasicProperties) {
  SocialGraph g = Triangle();
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 0));
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0);
  EXPECT_DOUBLE_EQ(g.DegreeStddev(), 0.0);
}

TEST(SocialGraphTest, DeduplicatesEdges) {
  SocialGraph g = SocialGraph::FromEdges(3, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.Degree(0), 1);
}

TEST(SocialGraphTest, NeighborsSorted) {
  SocialGraph g = SocialGraph::FromEdges(5, {{3, 0}, {3, 4}, {3, 1}, {3, 2}});
  auto nbrs = g.Neighbors(3);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(SocialGraphTest, EdgesReportsEachOnce) {
  SocialGraph g = Triangle();
  auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 3u);
  for (auto [u, v] : edges) EXPECT_LT(u, v);
}

TEST(SocialGraphTest, IsolatedNodesHaveZeroDegree) {
  SocialGraph g = SocialGraph::FromEdges(4, {{0, 1}});
  EXPECT_EQ(g.Degree(2), 0);
  EXPECT_EQ(g.Degree(3), 0);
  EXPECT_TRUE(g.Neighbors(2).empty());
}

TEST(SocialGraphTest, MaxDegree) {
  SocialGraph g =
      SocialGraph::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}});
  EXPECT_EQ(g.MaxDegree(), 4);
}

TEST(SocialGraphDeathTest, RejectsSelfLoop) {
  EXPECT_DEATH(SocialGraph::FromEdges(2, {{1, 1}}), "self loop");
}

TEST(SocialGraphDeathTest, RejectsOutOfRangeEndpoint) {
  EXPECT_DEATH(SocialGraph::FromEdges(2, {{0, 5}}), "CHECK");
}

// ------------------------------------------------------- PreferenceGraph

TEST(PreferenceGraphTest, BasicProperties) {
  PreferenceGraph g =
      PreferenceGraph::FromEdges(2, 3, {{0, 0}, {0, 2}, {1, 2}});
  EXPECT_EQ(g.num_users(), 2);
  EXPECT_EQ(g.num_items(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.UserDegree(0), 2);
  EXPECT_EQ(g.ItemDegree(2), 2);
  EXPECT_DOUBLE_EQ(g.Weight(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.Weight(1, 0), 0.0);
}

TEST(PreferenceGraphTest, BothOrientationsConsistent) {
  PreferenceGraph g =
      PreferenceGraph::FromEdges(3, 3, {{0, 1}, {1, 1}, {2, 0}, {2, 1}});
  auto users = g.UsersOf(1);
  ASSERT_EQ(users.size(), 3u);
  EXPECT_TRUE(std::is_sorted(users.begin(), users.end()));
  auto items = g.ItemsOf(2);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0], 0);
  EXPECT_EQ(items[1], 1);
}

TEST(PreferenceGraphTest, DeduplicatesEdges) {
  PreferenceGraph g = PreferenceGraph::FromEdges(1, 1, {{0, 0}, {0, 0}});
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(PreferenceGraphTest, WithEdgeAndWithoutEdgeAreNeighbors) {
  PreferenceGraph g = PreferenceGraph::FromEdges(2, 2, {{0, 0}});
  PreferenceGraph plus = g.WithEdge(1, 1);
  EXPECT_EQ(plus.num_edges(), 2);
  EXPECT_DOUBLE_EQ(plus.Weight(1, 1), 1.0);
  PreferenceGraph back = plus.WithoutEdge(1, 1);
  EXPECT_EQ(back.num_edges(), 1);
  EXPECT_DOUBLE_EQ(back.Weight(1, 1), 0.0);
  // No-ops.
  EXPECT_EQ(g.WithEdge(0, 0).num_edges(), 1);
  EXPECT_EQ(g.WithoutEdge(1, 1).num_edges(), 1);
}

TEST(PreferenceGraphTest, SummaryStatistics) {
  PreferenceGraph g =
      PreferenceGraph::FromEdges(2, 4, {{0, 0}, {0, 1}, {1, 2}});
  EXPECT_DOUBLE_EQ(g.AverageUserDegree(), 1.5);
  EXPECT_DOUBLE_EQ(g.AverageItemDegree(), 0.75);
  EXPECT_DOUBLE_EQ(g.Sparsity(), 1.0 - 3.0 / 8.0);
}

// ------------------------------------------------------------ Components

TEST(ComponentsTest, LabelsBySizeDescending) {
  // Component A: 0-1-2 (size 3); component B: 3-4 (size 2); isolated: 5.
  SocialGraph g = SocialGraph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}});
  ComponentInfo info = ConnectedComponents(g);
  EXPECT_EQ(info.num_components, 3);
  EXPECT_EQ(info.sizes[0], 3);
  EXPECT_EQ(info.sizes[1], 2);
  EXPECT_EQ(info.sizes[2], 1);
  EXPECT_EQ(info.component_of[0], 0);
  EXPECT_EQ(info.component_of[1], 0);
  EXPECT_EQ(info.component_of[3], 1);
  EXPECT_EQ(info.component_of[5], 2);
}

TEST(ComponentsTest, SingleComponent) {
  ComponentInfo info = ConnectedComponents(Triangle());
  EXPECT_EQ(info.num_components, 1);
  EXPECT_EQ(info.sizes[0], 3);
}

TEST(BfsTest, DistancesWithDepthLimit) {
  // Path 0-1-2-3-4.
  SocialGraph g = SocialGraph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto dist = BfsDistances(g, 0, 2);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], -1);  // beyond the cutoff
  EXPECT_EQ(dist[4], -1);
}

TEST(BfsTest, UnreachableNodes) {
  SocialGraph g = SocialGraph::FromEdges(4, {{0, 1}, {2, 3}});
  auto dist = BfsDistances(g, 0, 10);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], -1);
}

TEST(InducedSubgraphTest, KeepsInternalEdgesOnly) {
  SocialGraph g =
      SocialGraph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});
  Subgraph sub = InducedSubgraph(g, {0, 1, 2});
  EXPECT_EQ(sub.graph.num_nodes(), 3);
  EXPECT_EQ(sub.graph.num_edges(), 2);  // 0-1 and 1-2 survive
  ASSERT_EQ(sub.old_of_new.size(), 3u);
  EXPECT_EQ(sub.old_of_new[0], 0);
  EXPECT_EQ(sub.old_of_new[2], 2);
}

// -------------------------------------------------------------- Graph IO

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "privrec_graph_io";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(Path(name));
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(GraphIoTest, SocialGraphRoundTrip) {
  SocialGraph g = SocialGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  ASSERT_TRUE(SaveSocialGraph(g, Path("social.tsv")).ok());
  auto loaded = LoadSocialGraph(Path("social.tsv"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->graph.num_nodes(), 4);
  EXPECT_EQ(loaded->graph.num_edges(), 3);
}

TEST_F(GraphIoTest, PreferenceGraphRoundTrip) {
  PreferenceGraph g =
      PreferenceGraph::FromEdges(2, 3, {{0, 0}, {0, 2}, {1, 1}});
  ASSERT_TRUE(SavePreferenceGraph(g, Path("prefs.tsv")).ok());
  auto loaded = LoadPreferenceGraph(Path("prefs.tsv"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.num_users(), 2);
  EXPECT_EQ(loaded->graph.num_items(), 3);
  EXPECT_EQ(loaded->graph.num_edges(), 3);
}

TEST_F(GraphIoTest, RemapsSparseRawIds) {
  WriteFile("sparse.tsv", "# comment\n100 200\n200 999\n");
  auto loaded = LoadSocialGraph(Path("sparse.tsv"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.num_nodes(), 3);
  EXPECT_EQ(loaded->graph.num_edges(), 2);
  EXPECT_EQ(loaded->original_id[0], 100);
  EXPECT_EQ(loaded->original_id[1], 200);
  EXPECT_EQ(loaded->original_id[2], 999);
}

TEST_F(GraphIoTest, WeightedPreferenceRoundTrip) {
  PreferenceGraph g = PreferenceGraph::FromWeightedEdges(
      2, 3, {{0, 0, 2.5}, {0, 2, 1.0}, {1, 1, 4.0}});
  ASSERT_TRUE(SavePreferenceGraph(g, Path("weighted.tsv")).ok());
  auto loaded = LoadPreferenceGraph(Path("weighted.tsv"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->graph.is_weighted());
  EXPECT_DOUBLE_EQ(loaded->graph.max_weight(), 4.0);
  // Densified ids follow file order; map back through original ids.
  for (const PreferenceEdge& e : loaded->graph.WeightedEdges()) {
    NodeId orig_user = loaded->original_user_id[static_cast<size_t>(e.user)];
    ItemId orig_item = loaded->original_item_id[static_cast<size_t>(e.item)];
    EXPECT_DOUBLE_EQ(e.weight, g.Weight(orig_user, orig_item));
  }
}

TEST_F(GraphIoTest, PreferenceWeightColumnOptionalPerLine) {
  WriteFile("mixed.tsv", "0 5\n1 6 2.5\n");
  auto loaded = LoadPreferenceGraph(Path("mixed.tsv"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->graph.is_weighted());
  EXPECT_DOUBLE_EQ(loaded->graph.Weight(0, 0), 1.0);  // default weight
  EXPECT_DOUBLE_EQ(loaded->graph.Weight(1, 1), 2.5);
}

TEST_F(GraphIoTest, NegativePreferenceWeightIsParseError) {
  WriteFile("neg.tsv", "0 5 -1.0\n");
  auto loaded = LoadPreferenceGraph(Path("neg.tsv"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST_F(GraphIoTest, MissingFileIsIoError) {
  auto loaded = LoadSocialGraph(Path("nope.tsv"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(GraphIoTest, MalformedLineIsParseError) {
  WriteFile("bad.tsv", "1 2\nnot numbers\n");
  auto loaded = LoadSocialGraph(Path("bad.tsv"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST_F(GraphIoTest, SelfLoopIsParseError) {
  WriteFile("loop.tsv", "3 3\n");
  auto loaded = LoadSocialGraph(Path("loop.tsv"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace privrec::graph
