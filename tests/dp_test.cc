// Tests for the DP primitives, including an empirical ε-DP ratio check of
// the Laplace mechanism and the composition accountant.

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "dp/audit.h"
#include "dp/budget.h"
#include "dp/mechanisms.h"

namespace privrec::dp {
namespace {

TEST(EpsilonTest, Validity) {
  EXPECT_TRUE(IsValidEpsilon(0.01));
  EXPECT_TRUE(IsValidEpsilon(1.0));
  EXPECT_TRUE(IsValidEpsilon(kEpsilonInfinity));
  EXPECT_FALSE(IsValidEpsilon(0.0));
  EXPECT_FALSE(IsValidEpsilon(-1.0));
  EXPECT_FALSE(IsValidEpsilon(std::nan("")));
}

TEST(LaplaceMechanismTest, InfinityAddsNoNoise) {
  LaplaceMechanism m(kEpsilonInfinity, Rng(1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(m.Release(3.25, 1.0), 3.25);
  }
  EXPECT_DOUBLE_EQ(m.ExpectedAbsoluteError(1.0), 0.0);
}

TEST(LaplaceMechanismTest, NoiseVarianceMatchesTheory) {
  // Release of a constant with sensitivity Δ at ε has variance 2(Δ/ε)².
  const double eps = 0.5;
  const double sensitivity = 2.0;
  LaplaceMechanism m(eps, Rng(2));
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(m.Release(10.0, sensitivity));
  double b = sensitivity / eps;
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.variance(), 2.0 * b * b, 0.5);
  EXPECT_DOUBLE_EQ(m.ExpectedAbsoluteError(sensitivity), b);
}

TEST(LaplaceMechanismTest, ReleaseVectorIsIndependentPerCoordinate) {
  LaplaceMechanism m(1.0, Rng(3));
  std::vector<double> v(1000, 0.0);
  std::vector<double> out = m.ReleaseVector(v, 1.0);
  RunningStats stats;
  for (double x : out) stats.Add(x);
  EXPECT_NEAR(stats.mean(), 0.0, 0.2);
  EXPECT_GT(stats.stddev(), 0.5);
}

TEST(LaplaceMechanismTest, EmpiricalEpsilonDp) {
  // Histogram-ratio test: for neighboring values x and x' = x + Δ, the
  // densities of the released value must differ by at most e^ε everywhere.
  // We bin a large sample and check populated bins.
  const double eps = 1.0;
  const double sensitivity = 1.0;
  const int kSamples = 400000;
  Histogram h0(-6.0, 6.0, 24);
  Histogram h1(-6.0, 6.0, 24);
  LaplaceMechanism m0(eps, Rng(4));
  LaplaceMechanism m1(eps, Rng(5));
  for (int i = 0; i < kSamples; ++i) {
    h0.Add(m0.Release(0.0, sensitivity));
    h1.Add(m1.Release(1.0, sensitivity));
  }
  // Allow sampling slack on top of e^eps.
  const double bound = std::exp(eps) * 1.15;
  for (int b = 0; b < h0.num_bins(); ++b) {
    if (h0.bin_count(b) < 500 || h1.bin_count(b) < 500) continue;
    double ratio = h0.Fraction(b) / h1.Fraction(b);
    EXPECT_LT(ratio, bound) << "bin " << b;
    EXPECT_GT(ratio, 1.0 / bound) << "bin " << b;
  }
}

TEST(LaplaceMechanismTest, SmallerEpsilonMeansMoreNoise) {
  LaplaceMechanism strong(0.1, Rng(6));
  LaplaceMechanism weak(10.0, Rng(7));
  RunningStats s_strong;
  RunningStats s_weak;
  for (int i = 0; i < 50000; ++i) {
    s_strong.Add(std::fabs(strong.Release(0.0, 1.0)));
    s_weak.Add(std::fabs(weak.Release(0.0, 1.0)));
  }
  EXPECT_GT(s_strong.mean(), 10.0 * s_weak.mean());
}

TEST(GeometricMechanismTest, ReturnsIntegersCenteredOnValue) {
  GeometricMechanism m(1.0, Rng(8));
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(static_cast<double>(m.Release(7, 1)));
  }
  EXPECT_NEAR(stats.mean(), 7.0, 0.05);
}

TEST(GeometricMechanismTest, InfinityIsExact) {
  GeometricMechanism m(kEpsilonInfinity, Rng(9));
  EXPECT_EQ(m.Release(42, 3), 42);
}

TEST(GeometricMechanismTest, EmpiricalRatioBound) {
  // For integer outputs the DP ratio check is exact per value.
  const double eps = 0.8;
  GeometricMechanism m0(eps, Rng(10));
  GeometricMechanism m1(eps, Rng(11));
  const int kSamples = 300000;
  std::map<int64_t, int64_t> c0;
  std::map<int64_t, int64_t> c1;
  for (int i = 0; i < kSamples; ++i) {
    ++c0[m0.Release(0, 1)];
    ++c1[m1.Release(1, 1)];
  }
  const double bound = std::exp(eps) * 1.15;
  for (const auto& [value, count] : c0) {
    auto it = c1.find(value);
    if (count < 500 || it == c1.end() || it->second < 500) continue;
    double ratio =
        static_cast<double>(count) / static_cast<double>(it->second);
    EXPECT_LT(ratio, bound) << "value " << value;
    EXPECT_GT(ratio, 1.0 / bound) << "value " << value;
  }
}

// ---------------------------------------------------- Exponential mech

TEST(ExponentialMechanismTest, InfinityReturnsArgmax) {
  ExponentialMechanism m(kEpsilonInfinity, Rng(20));
  EXPECT_EQ(m.Select({1.0, 5.0, 3.0}, 1.0), 1);
  EXPECT_EQ(m.Select({7.0, 7.0, 3.0}, 1.0), 0);  // tie -> smallest index
}

TEST(ExponentialMechanismTest, PrefersHighQuality) {
  ExponentialMechanism m(2.0, Rng(21));
  std::vector<int64_t> counts(3, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[static_cast<size_t>(m.Select({0.0, 5.0, 0.0}, 1.0))];
  }
  EXPECT_GT(counts[1], counts[0] * 5);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(ExponentialMechanismTest, SelectionProbabilitiesMatchTheory) {
  // Two candidates with quality gap g: P(best)/P(other) = exp(eps*g/(2Δ)).
  const double eps = 1.0;
  const double gap = 2.0;
  ExponentialMechanism m(eps, Rng(22));
  int64_t best = 0;
  const int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    if (m.Select({gap, 0.0}, 1.0) == 0) ++best;
  }
  double expected_ratio = std::exp(eps * gap / 2.0);
  double measured_ratio = static_cast<double>(best) /
                          static_cast<double>(kTrials - best);
  EXPECT_NEAR(measured_ratio, expected_ratio, 0.15 * expected_ratio);
}

TEST(ExponentialMechanismTest, EmpiricalDpOnNeighboringQualities) {
  // Neighboring quality vectors differing by sensitivity in one entry:
  // per-outcome probability ratio must stay within e^eps.
  const double eps = 0.8;
  ExponentialMechanism m1(eps, Rng(23));
  ExponentialMechanism m2(eps, Rng(24));
  std::vector<double> q1 = {1.0, 2.0, 0.5};
  std::vector<double> q2 = {2.0, 2.0, 0.5};  // entry 0 shifted by Δ = 1
  std::map<int64_t, int64_t> c1;
  std::map<int64_t, int64_t> c2;
  const int kTrials = 150000;
  for (int i = 0; i < kTrials; ++i) {
    ++c1[m1.Select(q1, 1.0)];
    ++c2[m2.Select(q2, 1.0)];
  }
  for (const auto& [k, n1] : c1) {
    int64_t n2 = c2[k];
    if (n1 < 1000 || n2 < 1000) continue;
    double ratio = static_cast<double>(n1) / static_cast<double>(n2);
    EXPECT_LT(ratio, std::exp(eps) * 1.15) << "outcome " << k;
    EXPECT_GT(ratio, std::exp(-eps) / 1.15) << "outcome " << k;
  }
}

// ----------------------------------------------------------------- Audit

TEST(DpAuditTest, CorrectLaplaceMechanismPasses) {
  const double eps = 0.7;
  LaplaceMechanism m1(eps, Rng(25));
  LaplaceMechanism m2(eps, Rng(26));
  AuditOptions opt;
  opt.lo = -4.0;
  opt.hi = 5.0;
  opt.samples = 60000;
  AuditResult result = AuditDpRatio([&] { return m1.Release(0.0, 1.0); },
                                    [&] { return m2.Release(1.0, 1.0); },
                                    eps, opt);
  EXPECT_TRUE(result.passed) << result.ToString();
  EXPECT_GT(result.bins_checked, 5);
}

TEST(DpAuditTest, UndernoisedMechanismFails) {
  // A mechanism claiming eps = 0.2 but adding eps = 2.0 noise violates
  // the claimed bound and must be caught.
  LaplaceMechanism m1(2.0, Rng(27));
  LaplaceMechanism m2(2.0, Rng(28));
  AuditOptions opt;
  opt.lo = -3.0;
  opt.hi = 4.0;
  opt.samples = 60000;
  AuditResult result = AuditDpRatio([&] { return m1.Release(0.0, 1.0); },
                                    [&] { return m2.Release(1.0, 1.0); },
                                    /*epsilon=*/0.2, opt);
  EXPECT_FALSE(result.passed) << result.ToString();
}

TEST(DpAuditTest, NoiselessMechanismFailsSpectacularly) {
  AuditOptions opt;
  opt.lo = -2.0;
  opt.hi = 3.0;
  opt.samples = 20000;
  opt.min_bin_count = 100;
  AuditResult result = AuditDpRatio([] { return 0.0; },
                                    [] { return 1.0; },
                                    /*epsilon=*/1.0, opt);
  // Disjoint supports: no bin is populated in both worlds, so nothing can
  // be checked — worst_ratio stays 1 but bins_checked reveals the gap.
  EXPECT_EQ(result.bins_checked, 0);
}

TEST(DpAuditTest, ToStringMentionsVerdict) {
  LaplaceMechanism m1(1.0, Rng(29));
  LaplaceMechanism m2(1.0, Rng(30));
  AuditOptions opt;
  opt.samples = 20000;
  AuditResult result = AuditDpRatio([&] { return m1.Release(0.0, 1.0); },
                                    [&] { return m2.Release(1.0, 1.0); },
                                    1.0, opt);
  EXPECT_NE(result.ToString().find(result.passed ? "PASSED" : "FAILED"),
            std::string::npos);
}

// ---------------------------------------------------------------- Budget

TEST(PrivacyBudgetTest, SequentialCompositionWithinGroup) {
  PrivacyBudget budget(1.0);
  EXPECT_TRUE(budget.Charge("same_records", 0.4));
  EXPECT_TRUE(budget.Charge("same_records", 0.4));
  EXPECT_NEAR(budget.GroupSpent("same_records"), 0.8, 1e-12);
  EXPECT_FALSE(budget.Charge("same_records", 0.4));  // would exceed 1.0
  EXPECT_NEAR(budget.Spent(), 0.8, 1e-12);
}

TEST(PrivacyBudgetTest, ParallelCompositionAcrossGroups) {
  // Theorem 3: disjoint inputs cost the max, not the sum — the structure
  // of Algorithm 1's per-(item, cluster) averages.
  PrivacyBudget budget(0.5);
  for (int item = 0; item < 100; ++item) {
    EXPECT_TRUE(budget.Charge("item_" + std::to_string(item), 0.5));
  }
  EXPECT_NEAR(budget.Spent(), 0.5, 1e-12);
  EXPECT_FALSE(budget.Exhausted() && budget.Remaining() < -1e-9);
}

TEST(PrivacyBudgetTest, ExhaustionAndRemaining) {
  PrivacyBudget budget(0.3);
  EXPECT_FALSE(budget.Exhausted());
  EXPECT_TRUE(budget.Charge("g", 0.3));
  EXPECT_TRUE(budget.Exhausted());
  EXPECT_NEAR(budget.Remaining(), 0.0, 1e-12);
  EXPECT_FALSE(budget.Charge("g", 0.1));
}

TEST(PrivacyBudgetTest, RejectedChargeLeavesStateUntouched) {
  PrivacyBudget budget(0.5);
  EXPECT_TRUE(budget.Charge("g", 0.3));
  EXPECT_FALSE(budget.Charge("g", 0.5));
  EXPECT_NEAR(budget.GroupSpent("g"), 0.3, 1e-12);
}

TEST(PrivacyBudgetTest, UniformSplitAllowsExactlyPlannedReleases) {
  // ε_total/N accumulated N times overshoots ε_total by a few ulps in
  // binary floating point; the accountant's relative slack must admit all
  // N planned releases (and no more). Regression for N = 7, ε = 0.1: 0.1
  // is not representable, so seven charges of 0.1/7 sum to slightly more
  // than 0.1.
  const int kPlanned = 7;
  const double kTotal = 0.1;
  PrivacyBudget budget(kTotal);
  const double slice = kTotal / kPlanned;
  for (int i = 0; i < kPlanned; ++i) {
    EXPECT_TRUE(budget.CanCharge("snapshots", slice)) << "release " << i;
    EXPECT_TRUE(budget.Charge("snapshots", slice)) << "release " << i;
  }
  EXPECT_FALSE(budget.CanCharge("snapshots", slice));
  EXPECT_FALSE(budget.Charge("snapshots", slice));
  EXPECT_NEAR(budget.Spent(), kTotal, 1e-9);
  // The slack is relative: it admits float accumulation error, not a real
  // overdraft.
  EXPECT_FALSE(budget.Charge("snapshots", kTotal * 1e-3));
}

TEST(PrivacyBudgetTest, RestoreGroupSpentReplaysBalance) {
  PrivacyBudget budget(1.0);
  budget.RestoreGroupSpent("snapshots", 0.6);
  EXPECT_NEAR(budget.GroupSpent("snapshots"), 0.6, 1e-12);
  EXPECT_NEAR(budget.Spent(), 0.6, 1e-12);
  EXPECT_TRUE(budget.Charge("snapshots", 0.4));
  EXPECT_FALSE(budget.Charge("snapshots", 0.1));
}

}  // namespace
}  // namespace privrec::dp
