// Unit tests for src/la: dense matrices, CSR matrices, Householder QR and
// the randomized/Jacobi SVDs used by the LRM baseline.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "la/csr_matrix.h"
#include "la/dense_matrix.h"
#include "la/svd.h"

namespace privrec::la {
namespace {

DenseMatrix MakeMatrix(int64_t rows, int64_t cols,
                       std::vector<double> values) {
  DenseMatrix m(rows, cols);
  size_t k = 0;
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) m(i, j) = values[k++];
  }
  return m;
}

// ---------------------------------------------------------- DenseMatrix

TEST(DenseMatrixTest, MultiplyKnown) {
  DenseMatrix a = MakeMatrix(2, 3, {1, 2, 3, 4, 5, 6});
  DenseMatrix b = MakeMatrix(3, 2, {7, 8, 9, 10, 11, 12});
  DenseMatrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(DenseMatrixTest, TransposeMultiplyMatchesExplicitTranspose) {
  Rng rng(1);
  DenseMatrix a(5, 3);
  DenseMatrix b(5, 4);
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 3; ++j) a(i, j) = rng.Normal();
    for (int64_t j = 0; j < 4; ++j) b(i, j) = rng.Normal();
  }
  DenseMatrix direct = a.TransposeMultiply(b);
  DenseMatrix via_t = a.Transpose().Multiply(b);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(direct(i, j), via_t(i, j), 1e-12);
    }
  }
}

TEST(DenseMatrixTest, MultiplyVector) {
  DenseMatrix a = MakeMatrix(2, 2, {1, 2, 3, 4});
  std::vector<double> y = a.MultiplyVector({1.0, -1.0});
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(DenseMatrixTest, FrobeniusNorm) {
  DenseMatrix a = MakeMatrix(2, 2, {3, 0, 0, 4});
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
}

TEST(DenseMatrixTest, MaxColumnL1Norm) {
  DenseMatrix a = MakeMatrix(2, 3, {1, -2, 0, 3, 4, -1});
  // Column L1 norms: 4, 6, 1.
  EXPECT_DOUBLE_EQ(a.MaxColumnL1Norm(), 6.0);
}

TEST(HouseholderQTest, ColumnsAreOrthonormal) {
  Rng rng(2);
  DenseMatrix a(12, 5);
  for (int64_t i = 0; i < 12; ++i) {
    for (int64_t j = 0; j < 5; ++j) a(i, j) = rng.Normal();
  }
  DenseMatrix q = HouseholderQ(a);
  DenseMatrix qtq = q.TransposeMultiply(q);
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(qtq(i, j), i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(HouseholderQTest, SpansTheInputRange) {
  // Q Q^T A should equal A when A has full column rank.
  Rng rng(3);
  DenseMatrix a(8, 3);
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = 0; j < 3; ++j) a(i, j) = rng.Normal();
  }
  DenseMatrix q = HouseholderQ(a);
  DenseMatrix proj = q.Multiply(q.TransposeMultiply(a));
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(proj(i, j), a(i, j), 1e-10);
    }
  }
}

// ------------------------------------------------------------ CsrMatrix

TEST(CsrMatrixTest, FromTripletsSumsDuplicates) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      3, 3, {{0, 1, 2.0}, {0, 1, 3.0}, {2, 0, 1.0}});
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.At(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
}

TEST(CsrMatrixTest, EmptyRowsHandled) {
  CsrMatrix m = CsrMatrix::FromTriplets(4, 4, {{3, 3, 1.0}});
  EXPECT_EQ(m.RowNnz(0), 0);
  EXPECT_EQ(m.RowNnz(3), 1);
}

TEST(CsrMatrixTest, MultiplyVector) {
  CsrMatrix m =
      CsrMatrix::FromTriplets(2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  std::vector<double> y = m.MultiplyVector({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(CsrMatrixTest, TransposeMultiplyVectorMatchesTranspose) {
  Rng rng(4);
  std::vector<Triplet> triplets;
  for (int k = 0; k < 40; ++k) {
    triplets.push_back({static_cast<int64_t>(rng.UniformInt(6)),
                        static_cast<int64_t>(rng.UniformInt(8)),
                        rng.Normal()});
  }
  CsrMatrix m = CsrMatrix::FromTriplets(6, 8, triplets);
  std::vector<double> x(6);
  for (double& v : x) v = rng.Normal();
  std::vector<double> direct = m.TransposeMultiplyVector(x);
  std::vector<double> via_t = m.Transpose().MultiplyVector(x);
  ASSERT_EQ(direct.size(), via_t.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], via_t[i], 1e-12);
  }
}

TEST(CsrMatrixTest, RowIndicesSorted) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      1, 5, {{0, 4, 1.0}, {0, 1, 1.0}, {0, 3, 1.0}});
  auto idx = m.RowIndices(0);
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
}

// ------------------------------------------------------------------ SVD

TEST(JacobiSvdTest, DiagonalMatrix) {
  DenseMatrix a = MakeMatrix(3, 3, {3, 0, 0, 0, 5, 0, 0, 0, 4});
  SvdResult svd = JacobiSvd(a);
  ASSERT_EQ(svd.singular_values.size(), 3u);
  EXPECT_NEAR(svd.singular_values[0], 5.0, 1e-10);
  EXPECT_NEAR(svd.singular_values[1], 4.0, 1e-10);
  EXPECT_NEAR(svd.singular_values[2], 3.0, 1e-10);
}

TEST(JacobiSvdTest, ReconstructsInput) {
  Rng rng(5);
  DenseMatrix a(7, 4);
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t j = 0; j < 4; ++j) a(i, j) = rng.Normal();
  }
  SvdResult svd = JacobiSvd(a);
  // Reconstruct U S V^T.
  DenseMatrix us = svd.u;
  for (int64_t i = 0; i < us.rows(); ++i) {
    for (int64_t j = 0; j < us.cols(); ++j) {
      us(i, j) *= svd.singular_values[static_cast<size_t>(j)];
    }
  }
  DenseMatrix rec = us.Multiply(svd.vt);
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(rec(i, j), a(i, j), 1e-8);
    }
  }
}

TEST(RandomizedSvdTest, RecoversExactlyLowRankMatrix) {
  // Build a rank-3 matrix; rank-3 randomized SVD must reconstruct it.
  Rng rng(6);
  DenseMatrix left(20, 3);
  DenseMatrix right(3, 15);
  for (int64_t i = 0; i < 20; ++i) {
    for (int64_t j = 0; j < 3; ++j) left(i, j) = rng.Normal();
  }
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 15; ++j) right(i, j) = rng.Normal();
  }
  DenseMatrix a = left.Multiply(right);

  SvdOptions options;
  options.rank = 3;
  options.seed = 99;
  SvdResult svd = RandomizedSvd(a, options);
  ASSERT_EQ(svd.singular_values.size(), 3u);
  DenseMatrix us = svd.u;
  for (int64_t i = 0; i < us.rows(); ++i) {
    for (int64_t j = 0; j < us.cols(); ++j) {
      us(i, j) *= svd.singular_values[static_cast<size_t>(j)];
    }
  }
  DenseMatrix rec = us.Multiply(svd.vt);
  double err = 0.0;
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      err += (rec(i, j) - a(i, j)) * (rec(i, j) - a(i, j));
    }
  }
  EXPECT_LT(std::sqrt(err) / a.FrobeniusNorm(), 1e-8);
}

TEST(RandomizedSvdTest, SingularValuesDescending) {
  Rng rng(7);
  DenseMatrix a(30, 30);
  for (int64_t i = 0; i < 30; ++i) {
    for (int64_t j = 0; j < 30; ++j) a(i, j) = rng.Normal();
  }
  SvdOptions options;
  options.rank = 10;
  SvdResult svd = RandomizedSvd(a, options);
  for (size_t k = 1; k < svd.singular_values.size(); ++k) {
    EXPECT_GE(svd.singular_values[k - 1], svd.singular_values[k] - 1e-12);
  }
}

TEST(RandomizedSvdTest, DeterministicForSeed) {
  Rng rng(8);
  DenseMatrix a(10, 10);
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t j = 0; j < 10; ++j) a(i, j) = rng.Normal();
  }
  SvdOptions options;
  options.rank = 4;
  options.seed = 5;
  SvdResult s1 = RandomizedSvd(a, options);
  SvdResult s2 = RandomizedSvd(a, options);
  for (size_t k = 0; k < s1.singular_values.size(); ++k) {
    EXPECT_DOUBLE_EQ(s1.singular_values[k], s2.singular_values[k]);
  }
}

TEST(JacobiSvdTest, RankDeficientMatrix) {
  // Two identical columns: one singular value must be ~0.
  DenseMatrix a = MakeMatrix(3, 2, {1, 1, 2, 2, 3, 3});
  SvdResult svd = JacobiSvd(a);
  ASSERT_EQ(svd.singular_values.size(), 2u);
  EXPECT_NEAR(svd.singular_values[0], std::sqrt(28.0), 1e-10);
  EXPECT_NEAR(svd.singular_values[1], 0.0, 1e-10);
  EXPECT_EQ(la::NumericalRank(svd.singular_values, 1e-9), 1);
}

TEST(JacobiSvdTest, ZeroMatrix) {
  DenseMatrix a(4, 3);
  SvdResult svd = JacobiSvd(a);
  for (double sv : svd.singular_values) EXPECT_DOUBLE_EQ(sv, 0.0);
}

TEST(JacobiSvdTest, SingularValuesMatchEigenvaluesOfGram) {
  // For A^T A, singular values squared are its eigenvalues; verify via
  // trace (sum of squared singular values == Frobenius norm squared).
  Rng rng(30);
  DenseMatrix a(6, 4);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 4; ++j) a(i, j) = rng.Normal();
  }
  SvdResult svd = JacobiSvd(a);
  double sum_sq = 0.0;
  for (double sv : svd.singular_values) sum_sq += sv * sv;
  double frob = a.FrobeniusNorm();
  EXPECT_NEAR(sum_sq, frob * frob, 1e-8);
}

TEST(HouseholderQTest, SquareIdentityInput) {
  DenseMatrix eye(3, 3);
  for (int64_t i = 0; i < 3; ++i) eye(i, i) = 1.0;
  DenseMatrix q = HouseholderQ(eye);
  // Q spans the identity's range; Q Q^T = I.
  DenseMatrix qqt = q.Multiply(q.Transpose());
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(qqt(i, j), i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(HouseholderQTest, RankDeficientInputStaysOrthonormal) {
  // Columns 2 = 2 * column 1; Q must still have orthonormal columns.
  DenseMatrix a = MakeMatrix(4, 2, {1, 2, 2, 4, 3, 6, 4, 8});
  DenseMatrix q = HouseholderQ(a);
  DenseMatrix qtq = q.TransposeMultiply(q);
  EXPECT_NEAR(qtq(0, 0), 1.0, 1e-10);
  // The second column is arbitrary but normalized or zero.
  EXPECT_TRUE(std::fabs(qtq(1, 1) - 1.0) < 1e-10 ||
              std::fabs(qtq(1, 1)) < 1e-10);
  EXPECT_NEAR(qtq(0, 1), 0.0, 1e-10);
}

TEST(CsrMatrixTest, EmptyMatrix) {
  CsrMatrix m = CsrMatrix::FromTriplets(3, 4, {});
  EXPECT_EQ(m.nnz(), 0);
  auto y = m.MultiplyVector({1, 2, 3, 4});
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
  CsrMatrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 4);
  EXPECT_EQ(t.cols(), 3);
}

TEST(CsrMatrixTest, DoubleTransposeIsIdentity) {
  Rng rng(31);
  std::vector<Triplet> triplets;
  for (int k = 0; k < 25; ++k) {
    triplets.push_back({static_cast<int64_t>(rng.UniformInt(5)),
                        static_cast<int64_t>(rng.UniformInt(7)),
                        rng.Normal()});
  }
  CsrMatrix m = CsrMatrix::FromTriplets(5, 7, triplets);
  CsrMatrix mtt = m.Transpose().Transpose();
  EXPECT_EQ(mtt.nnz(), m.nnz());
  for (int64_t r = 0; r < 5; ++r) {
    for (int64_t c = 0; c < 7; ++c) {
      EXPECT_DOUBLE_EQ(mtt.At(r, c), m.At(r, c));
    }
  }
}

TEST(NumericalRankTest, CountsAboveTolerance) {
  EXPECT_EQ(NumericalRank({10.0, 5.0, 1e-12}, 1e-9), 2);
  EXPECT_EQ(NumericalRank({10.0, 5.0, 2.0}, 1e-9), 3);
  EXPECT_EQ(NumericalRank({}, 1e-9), 0);
}

}  // namespace
}  // namespace privrec::la
