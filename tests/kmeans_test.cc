// Tests for k-means and the spectral embedding (the matrix-clustering
// strategy of the paper's Section 5 remark).

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "community/kmeans.h"
#include "community/modularity.h"
#include "graph/generators/planted_partition.h"

namespace privrec::community {
namespace {

using graph::SocialGraph;

// Three well-separated Gaussian blobs in 2D.
la::DenseMatrix ThreeBlobs(int per_blob, uint64_t seed) {
  Rng rng(seed);
  la::DenseMatrix points(3 * per_blob, 2);
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < per_blob; ++i) {
      int64_t row = b * per_blob + i;
      points(row, 0) = centers[b][0] + rng.Normal(0, 0.5);
      points(row, 1) = centers[b][1] + rng.Normal(0, 0.5);
    }
  }
  return points;
}

TEST(KMeansTest, SeparatesThreeBlobs) {
  la::DenseMatrix points = ThreeBlobs(40, 1);
  KMeansResult result = RunKMeans(points, {.k = 3, .seed = 2});
  EXPECT_EQ(result.partition.num_clusters(), 3);
  // Every blob lands in a single cluster.
  for (int b = 0; b < 3; ++b) {
    int64_t label = result.partition.ClusterOf(b * 40);
    for (int i = 1; i < 40; ++i) {
      EXPECT_EQ(result.partition.ClusterOf(b * 40 + i), label)
          << "blob " << b;
    }
  }
  // Inertia of the correct clustering: ~ 2 * 0.25 per point.
  EXPECT_LT(result.inertia / 120.0, 1.5);
}

TEST(KMeansTest, KEqualsOneGroupsEverything) {
  la::DenseMatrix points = ThreeBlobs(10, 3);
  KMeansResult result = RunKMeans(points, {.k = 1, .seed = 4});
  EXPECT_EQ(result.partition.num_clusters(), 1);
}

TEST(KMeansTest, KEqualsNSingletons) {
  la::DenseMatrix points = ThreeBlobs(4, 5);
  KMeansResult result = RunKMeans(points, {.k = 12, .seed = 6});
  // Distinct points; with k = n inertia should collapse to ~0.
  EXPECT_LT(result.inertia, 1e-6);
}

TEST(KMeansTest, DeterministicForSeed) {
  la::DenseMatrix points = ThreeBlobs(20, 7);
  KMeansResult a = RunKMeans(points, {.k = 4, .seed = 8});
  KMeansResult b = RunKMeans(points, {.k = 4, .seed = 8});
  EXPECT_EQ(a.partition.cluster_of(), b.partition.cluster_of());
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, DuplicatePointsDoNotCrash) {
  la::DenseMatrix points(10, 2);  // all at the origin
  KMeansResult result = RunKMeans(points, {.k = 3, .seed = 9});
  EXPECT_LE(result.partition.num_clusters(), 3);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(SpectralEmbeddingTest, RowsAreUnitNormOrZero) {
  graph::PlantedPartitionOptions opt;
  opt.num_nodes = 200;
  opt.num_communities = 4;
  opt.seed = 10;
  auto planted = graph::GeneratePlantedPartition(opt);
  la::DenseMatrix embedding =
      SpectralEmbedding(planted.graph, {.dimensions = 4, .seed = 11});
  EXPECT_EQ(embedding.rows(), 200);
  EXPECT_EQ(embedding.cols(), 4);
  for (int64_t i = 0; i < embedding.rows(); ++i) {
    double norm = 0.0;
    for (int64_t j = 0; j < 4; ++j) {
      norm += embedding(i, j) * embedding(i, j);
    }
    EXPECT_TRUE(std::fabs(norm - 1.0) < 1e-9 || norm < 1e-9)
        << "row " << i;
  }
}

TEST(SpectralKMeansTest, RecoversPlantedCommunitiesReasonably) {
  graph::PlantedPartitionOptions opt;
  opt.num_nodes = 600;
  opt.num_communities = 4;
  opt.mean_degree = 16.0;
  opt.mixing = 0.08;
  opt.seed = 12;
  auto planted = graph::GeneratePlantedPartition(opt);
  Partition spectral = SpectralKMeans(planted.graph, 4, 13);
  EXPECT_EQ(spectral.num_clusters(), 4);
  // Spectral clustering on a strong planted partition should attain a
  // modularity comparable to ground truth.
  double truth_q =
      Modularity(planted.graph, Partition(planted.community_of));
  double spectral_q = Modularity(planted.graph, spectral);
  EXPECT_GT(spectral_q, 0.6 * truth_q);
}

TEST(SpectralKMeansTest, HandlesIsolatedNodes) {
  SocialGraph g = SocialGraph::FromEdges(
      6, {{0, 1}, {1, 2}, {0, 2}});  // nodes 3-5 isolated
  Partition p = SpectralKMeans(g, 2, 14);
  EXPECT_EQ(p.num_nodes(), 6);
  EXPECT_LE(p.num_clusters(), 2);
}

}  // namespace
}  // namespace privrec::community
