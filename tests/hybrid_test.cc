// Tests for the hybrid extension: holdout evaluation, the item-based CF
// recommender (with its McSherry-Mironov-style DP release), and the
// rank-fusion hybrid.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "community/louvain.h"
#include "core/exact_recommender.h"
#include "core/hybrid_recommender.h"
#include "core/item_cf_recommender.h"
#include "data/synthetic.h"
#include "dp/audit.h"
#include "dp/mechanisms.h"
#include "eval/holdout.h"
#include "similarity/common_neighbors.h"

namespace privrec::core {
namespace {

using graph::ItemId;
using graph::NodeId;
using graph::PreferenceGraph;
using graph::SocialGraph;

// ---------------------------------------------------------------- holdout

TEST(HoldoutTest, SplitsProportionallyAndKeepsOneEdge) {
  data::Dataset d = data::MakeTinyDataset(120, 100, 51);
  eval::HoldoutSplit split =
      eval::SplitHoldout(d.preferences, {.fraction = 0.25, .seed = 52});
  int64_t held_total = 0;
  for (NodeId u = 0; u < d.preferences.num_users(); ++u) {
    int64_t before = d.preferences.UserDegree(u);
    int64_t after = split.train.UserDegree(u);
    int64_t held =
        static_cast<int64_t>(split.held_out[static_cast<size_t>(u)].size());
    EXPECT_EQ(after + held, before);
    EXPECT_GE(after, 1);
    held_total += held;
  }
  double fraction = static_cast<double>(held_total) /
                    static_cast<double>(d.preferences.num_edges());
  EXPECT_NEAR(fraction, 0.25, 0.05);
}

TEST(HoldoutTest, HeldOutEdgesAbsentFromTrain) {
  data::Dataset d = data::MakeTinyDataset(80, 60, 53);
  eval::HoldoutSplit split =
      eval::SplitHoldout(d.preferences, {.fraction = 0.3, .seed = 54});
  for (NodeId u = 0; u < d.preferences.num_users(); ++u) {
    for (ItemId i : split.held_out[static_cast<size_t>(u)]) {
      EXPECT_DOUBLE_EQ(split.train.Weight(u, i), 0.0);
      EXPECT_DOUBLE_EQ(d.preferences.Weight(u, i), 1.0);
    }
  }
}

TEST(HoldoutTest, ZeroFractionIsIdentity) {
  data::Dataset d = data::MakeTinyDataset(60, 50, 55);
  eval::HoldoutSplit split =
      eval::SplitHoldout(d.preferences, {.fraction = 0.0, .seed = 56});
  EXPECT_EQ(split.train.num_edges(), d.preferences.num_edges());
}

TEST(HoldoutTest, RecallAndHitRateHandComputed) {
  eval::HoldoutSplit split;
  split.held_out = {{1, 2, 3, 4}, {5}, {}};
  std::vector<NodeId> users = {0, 1, 2};
  std::vector<RecommendationList> lists = {
      {{1, 0}, {9, 0}, {2, 0}},  // hits 2 of 4
      {{7, 0}, {8, 0}},          // hits 0 of 1
      {{5, 0}}};                 // empty holdout: excluded
  EXPECT_NEAR(eval::HoldoutRecall(lists, users, split),
              (0.5 + 0.0) / 2.0, 1e-12);
  EXPECT_NEAR(eval::HoldoutHitRate(lists, users, split), 0.5, 1e-12);
}

// --------------------------------------------------------------- item CF

TEST(ItemCfTest, ExactScoresHandComputed) {
  // Users: 0 -> {0,1}; 1 -> {0,1,2}; 2 -> {2,3}. tau large (no clamping).
  // C(0,1) = 2 (users 0,1); C(1,2) = 1 (user 1); C(2,3) = 1 (user 2);
  // C(0,2) = 1 (user 1).
  SocialGraph social = SocialGraph::FromEdges(3, {{0, 1}, {1, 2}});
  PreferenceGraph prefs = PreferenceGraph::FromEdges(
      3, 4, {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {1, 2}, {2, 2}, {2, 3}});
  auto workload = similarity::SimilarityWorkload::Compute(
      social, similarity::CommonNeighbors());
  RecommenderContext ctx{&social, &prefs, &workload};
  ItemCfRecommender cf(ctx,
                       {.epsilon = dp::kEpsilonInfinity, .tau = 10});
  // score(0, i) = C(i,0) + C(i,1):
  //   i=0: C(0,1)=2 -> 2;  i=1: C(1,0)=2 -> 2;
  //   i=2: C(2,0)+C(2,1) = 1+1 = 2;  i=3: 0.
  std::vector<double> s = cf.ExactScores(0);
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_DOUBLE_EQ(s[2], 2.0);
  EXPECT_DOUBLE_EQ(s[3], 0.0);
  // score(2, i) = C(i,2) + C(i,3): i=0: 1; i=1: 1; i=3: 1; i=2: 1 (C(2,3)).
  std::vector<double> s2 = cf.ExactScores(2);
  EXPECT_DOUBLE_EQ(s2[0], 1.0);
  EXPECT_DOUBLE_EQ(s2[3], 1.0);
}

TEST(ItemCfTest, ClampingKeepsSmallestItemIds) {
  SocialGraph social = SocialGraph::FromEdges(2, {{0, 1}});
  PreferenceGraph prefs = PreferenceGraph::FromEdges(
      2, 10, {{0, 9}, {0, 3}, {0, 7}, {0, 1}, {1, 0}});
  auto workload = similarity::SimilarityWorkload::Compute(
      social, similarity::CommonNeighbors());
  RecommenderContext ctx{&social, &prefs, &workload};
  ItemCfRecommender cf(ctx, {.epsilon = 1.0, .tau = 2});
  auto clamped = cf.ClampedItems(0);
  ASSERT_EQ(clamped.size(), 2u);
  EXPECT_EQ(clamped[0], 1);
  EXPECT_EQ(clamped[1], 3);
}

TEST(ItemCfTest, NoiseMatrixConsistentAcrossCalls) {
  data::Dataset d = data::MakeTinyDataset(80, 60, 57);
  auto workload = similarity::SimilarityWorkload::Compute(
      d.social, similarity::CommonNeighbors());
  RecommenderContext ctx{&d.social, &d.preferences, &workload};
  ItemCfRecommender cf(ctx, {.epsilon = 0.5, .tau = 5, .seed = 58});
  // Same single release: repeated queries are identical post-processing.
  EXPECT_EQ(cf.Recommend({3, 7}, 8), cf.Recommend({3, 7}, 8));
}

TEST(ItemCfTest, RecoversHeldOutItemsAboveChance) {
  data::Dataset d = data::MakeTinyDataset(300, 200, 59);
  eval::HoldoutSplit split =
      eval::SplitHoldout(d.preferences, {.fraction = 0.2, .seed = 60});
  auto workload = similarity::SimilarityWorkload::Compute(
      d.social, similarity::CommonNeighbors());
  RecommenderContext ctx{&d.social, &split.train, &workload};
  ItemCfRecommender cf(ctx, {.epsilon = dp::kEpsilonInfinity, .tau = 20});
  std::vector<NodeId> users;
  for (NodeId u = 0; u < d.social.num_nodes(); u += 2) users.push_back(u);
  double recall =
      eval::HoldoutRecall(cf.Recommend(users, 20), users, split);
  // Chance level: 20 of 200 items = 0.1.
  EXPECT_GT(recall, 0.25);
}

TEST(ItemCfTest, EmpiricalDpOnMatrixEntry) {
  // Audit the released entry C̃(0, 1) on neighboring graphs where the
  // differing edge (u=1, item 1) changes C(0, 1) by 1. Rebuild the
  // recommender per sample with a fresh seed to sample the release.
  SocialGraph social = SocialGraph::FromEdges(3, {{0, 1}, {1, 2}});
  PreferenceGraph base =
      PreferenceGraph::FromEdges(3, 3, {{0, 0}, {0, 1}, {1, 0}});
  PreferenceGraph nbr = base.WithEdge(1, 1);
  auto workload = similarity::SimilarityWorkload::Compute(
      social, similarity::CommonNeighbors());
  RecommenderContext ctx1{&social, &base, &workload};
  RecommenderContext ctx2{&social, &nbr, &workload};
  const double eps = 1.0;
  const int64_t tau = 2;
  // The mechanism's per-entry guarantee is eps with sensitivity 2*tau, so
  // a single entry differing by 1 enjoys eps' = eps / (2 tau) ... audit
  // against the full eps bound (a valid, looser check: the entry-level
  // ratio must certainly stay within e^eps).
  uint64_t counter = 0;
  auto sample = [&](RecommenderContext& ctx) {
    // Fresh seed per draw = sampling the single-release distribution.
    ItemCfRecommender cf(ctx, {.epsilon = eps, .tau = tau,
                               .seed = 9000 + counter++});
    // User 0's clamped list is {0, 1}, so the released utility of item 0
    // is C̃(0, 1) = C(0, 1) + noise(0, 1) — exactly the entry the
    // differing edge (user 1, item 1) shifts by 1.
    auto lists = cf.Recommend({0}, 3);
    for (const auto& r : lists[0]) {
      if (r.item == 0) return r.utility;
    }
    return 0.0;
  };
  dp::AuditOptions opt;
  opt.lo = -15.0;
  opt.hi = 18.0;
  opt.num_bins = 16;
  opt.samples = 20000;
  opt.min_bin_count = 200;
  opt.slack = 1.25;
  dp::AuditResult result = dp::AuditDpRatio(
      [&] { return sample(ctx1); }, [&] { return sample(ctx2); }, eps, opt);
  EXPECT_TRUE(result.passed) << result.ToString();
}

// ---------------------------------------------------------------- hybrid

class HybridTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = data::MakeTinyDataset(200, 150, 61);
    workload_ = similarity::SimilarityWorkload::Compute(
        dataset_.social, similarity::CommonNeighbors());
    context_ = {&dataset_.social, &dataset_.preferences, &workload_};
    louvain_ = community::RunLouvain(dataset_.social,
                                     {.restarts = 2, .seed = 62});
    for (NodeId u = 0; u < dataset_.social.num_nodes(); u += 4) {
      users_.push_back(u);
    }
  }

  data::Dataset dataset_;
  similarity::SimilarityWorkload workload_;
  RecommenderContext context_;
  community::LouvainResult louvain_;
  std::vector<NodeId> users_;
};

TEST_F(HybridTest, TotalEpsilonIsSequentialSum) {
  HybridRecommender rec(context_, louvain_.partition,
                        {.epsilon_social = 0.3, .epsilon_cf = 0.2});
  EXPECT_NEAR(rec.TotalEpsilon(), 0.5, 1e-12);
}

TEST_F(HybridTest, AlphaOneMatchesSocialRanking) {
  HybridRecommenderOptions opt;
  opt.epsilon_social = dp::kEpsilonInfinity;
  opt.epsilon_cf = dp::kEpsilonInfinity;
  opt.alpha = 1.0;
  opt.seed = 63;
  HybridRecommender hybrid(context_, louvain_.partition, opt);
  ClusterRecommender social(context_, louvain_.partition,
                            {.epsilon = dp::kEpsilonInfinity, .seed = 1});
  auto h = hybrid.Recommend(users_, 10);
  auto s = social.Recommend(users_, 10);
  for (size_t k = 0; k < users_.size(); ++k) {
    for (size_t p = 0; p < 10 && p < s[k].size(); ++p) {
      EXPECT_EQ(h[k][p].item, s[k][p].item)
          << "user " << users_[k] << " pos " << p;
    }
  }
}

TEST_F(HybridTest, AlphaZeroMatchesCfRanking) {
  HybridRecommenderOptions opt;
  opt.epsilon_social = dp::kEpsilonInfinity;
  opt.epsilon_cf = dp::kEpsilonInfinity;
  opt.alpha = 0.0;
  opt.seed = 64;
  HybridRecommender hybrid(context_, louvain_.partition, opt);
  ItemCfRecommender cf(context_,
                       {.epsilon = dp::kEpsilonInfinity, .tau = 20,
                        .seed = 1});
  auto h = hybrid.Recommend(users_, 10);
  auto c = cf.Recommend(users_, 10);
  for (size_t k = 0; k < users_.size(); ++k) {
    for (size_t p = 0; p < 10 && p < c[k].size(); ++p) {
      EXPECT_EQ(h[k][p].item, c[k][p].item);
    }
  }
}

TEST_F(HybridTest, MidAlphaBlendsBothSources) {
  HybridRecommenderOptions opt;
  opt.epsilon_social = dp::kEpsilonInfinity;
  opt.epsilon_cf = dp::kEpsilonInfinity;
  opt.alpha = 0.5;
  HybridRecommender hybrid(context_, louvain_.partition, opt);
  auto lists = hybrid.Recommend(users_, 10);
  for (const auto& list : lists) {
    EXPECT_LE(list.size(), 10u);
    std::set<ItemId> items;
    for (const auto& r : list) EXPECT_TRUE(items.insert(r.item).second);
  }
}

TEST_F(HybridTest, DeterministicForSeed) {
  HybridRecommenderOptions opt;
  opt.epsilon_social = 0.5;
  opt.epsilon_cf = 0.5;
  opt.seed = 65;
  HybridRecommender a(context_, louvain_.partition, opt);
  HybridRecommender b(context_, louvain_.partition, opt);
  EXPECT_EQ(a.Recommend({0, 4}, 8), b.Recommend({0, 4}, 8));
}

}  // namespace
}  // namespace privrec::core
