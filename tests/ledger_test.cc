// Tests for the write-ahead budget ledger and crash-safe dynamic sessions:
// journal round-trips, torn-tail recovery, corruption detection, and the
// no-double-spend guarantee — a session killed between journaling and
// releasing resumes with the exact cumulative ε and bit-identical releases
// of an uninterrupted run.

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "core/dynamic_recommender.h"
#include "data/synthetic.h"
#include "dp/ledger.h"
#include "similarity/common_neighbors.h"

namespace privrec::dp {
namespace {

namespace fs = std::filesystem;

class LedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("privrec_ledger_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST_F(LedgerTest, CreateAppendReopenRoundTrip) {
  const std::string path = Path("budget.ledger");
  {
    auto ledger = BudgetLedger::Open(path, 1.0);
    ASSERT_TRUE(ledger.ok()) << ledger.status().ToString();
    ASSERT_TRUE(ledger->AppendIntent(0, "snapshots", 0.25).ok());
    ASSERT_TRUE(ledger->AppendCommit(0).ok());
    ASSERT_TRUE(ledger->AppendIntent(1, "snapshots", 0.25).ok());
    // No commit for seq 1: simulated crash before release.
  }
  auto reopened = BudgetLedger::Open(path, 1.0);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(reopened->recovered_torn_tail());
  ASSERT_EQ(reopened->entries().size(), 2u);
  EXPECT_TRUE(reopened->IsCommitted(0));
  EXPECT_TRUE(reopened->HasIntent(1));
  EXPECT_FALSE(reopened->IsCommitted(1));
  EXPECT_EQ(reopened->NumCommitted(), 1);

  // Both intents count as spent — the uncommitted ε already left.
  PrivacyBudget budget(1.0);
  reopened->ReplayInto(&budget);
  EXPECT_NEAR(budget.GroupSpent("snapshots"), 0.5, 1e-15);
}

TEST_F(LedgerTest, EpsilonRoundTripsExactly) {
  // Hexfloat serialization must round-trip values like 0.1/7 bit-for-bit;
  // a decimal format would drift and break exactly-N accounting.
  const std::string path = Path("budget.ledger");
  const double eps = 0.1 / 7.0;
  {
    auto ledger = BudgetLedger::Open(path, 0.1);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE(ledger->AppendIntent(0, "g", eps).ok());
  }
  auto reopened = BudgetLedger::Open(path, 0.1);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened->entries().size(), 1u);
  EXPECT_EQ(reopened->entries()[0].epsilon, eps);  // exact, not NEAR
}

TEST_F(LedgerTest, RejectsTotalMismatch) {
  const std::string path = Path("budget.ledger");
  { ASSERT_TRUE(BudgetLedger::Open(path, 1.0).ok()); }
  auto reopened = BudgetLedger::Open(path, 2.0);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(LedgerTest, RecoversFromTornFinalRecord) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  const std::string path = Path("budget.ledger");
  {
    auto ledger = BudgetLedger::Open(path, 1.0);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE(ledger->AppendIntent(0, "g", 0.3).ok());
    // The next append is torn mid-record by an injected fault (half the
    // bytes, no newline) — a crash during write.
    fault::ScopedFaultInjection scope(
        "ledger.append", fault::FaultSpec{.kind = fault::FaultKind::kShortRead});
    EXPECT_FALSE(ledger->AppendIntent(1, "g", 0.3).ok());
  }
  auto reopened = BudgetLedger::Open(path, 1.0);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened->recovered_torn_tail());
  ASSERT_EQ(reopened->entries().size(), 1u);
  EXPECT_EQ(reopened->entries()[0].seq, 0);

  // The truncated tail leaves a clean boundary: appends work again and a
  // third open sees a healthy file.
  ASSERT_TRUE(reopened->AppendIntent(1, "g", 0.3).ok());
  auto third = BudgetLedger::Open(path, 1.0);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->recovered_torn_tail());
  EXPECT_EQ(third->entries().size(), 2u);
}

TEST_F(LedgerTest, MidFileCorruptionIsAnError) {
  const std::string path = Path("budget.ledger");
  {
    auto ledger = BudgetLedger::Open(path, 1.0);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE(ledger->AppendIntent(0, "g", 0.3).ok());
  }
  {
    // Flip bytes in the middle of the file (the total record), then append
    // a valid-looking line so the damage is not on the final line.
    std::ofstream out(path, std::ios::app);
    out << "garbage that is not a ledger record\n";
    out << "more trailing garbage\n";
  }
  auto reopened = BudgetLedger::Open(path, 1.0);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kParseError);
}

TEST_F(LedgerTest, AppendFaultFailsCleanly) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  const std::string path = Path("budget.ledger");
  auto ledger = BudgetLedger::Open(path, 1.0);
  ASSERT_TRUE(ledger.ok());
  fault::ScopedFaultInjection scope(
      "ledger.append", fault::FaultSpec{.kind = fault::FaultKind::kIoError});
  Status s = ledger->AppendIntent(0, "g", 0.1);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  // A failed append journals nothing.
  EXPECT_FALSE(ledger->HasIntent(0));
}

// ------------------------------------------------------- independent audit
//
// AuditLedgerReplay re-derives the spend from raw bytes — it must agree
// with a healthy BudgetLedger, flag every invariant break the ledger
// class itself cannot see (it happily appends what it is told), and never
// mutate the file it audits.

TEST_F(LedgerTest, AuditAgreesWithACleanLedger) {
  const std::string path = Path("budget.ledger");
  {
    auto ledger = BudgetLedger::Open(path, 1.0);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE(ledger->AppendIntent(0, "snapshots", 0.25).ok());
    ASSERT_TRUE(ledger->AppendCommit(0).ok());
    ASSERT_TRUE(ledger->AppendIntent(1, "snapshots", 0.25).ok());
    ASSERT_TRUE(ledger->AppendCommit(1).ok());
    ASSERT_TRUE(ledger->AppendIntent(2, "snapshots", 0.25).ok());
    // seq 2 is paid but never released: legal crash fallout, not a
    // violation.
  }
  auto report = AuditLedgerReplay(path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->ToString();
  EXPECT_EQ(report->total_epsilon, 1.0);
  EXPECT_NEAR(report->epsilon_spent, 0.75, 1e-15);
  EXPECT_EQ(report->intents, 3);
  EXPECT_EQ(report->commits, 2);
  EXPECT_EQ(report->uncommitted, 1);
  EXPECT_FALSE(report->recovered_torn_tail);
  EXPECT_NE(report->ToString().find(" OK"), std::string::npos);
}

TEST_F(LedgerTest, AuditFlagsDuplicateAndNonAdvancingIntents) {
  // BudgetLedger does not police seq discipline — a buggy caller can
  // journal the same (group, seq) twice, and replay would then charge it
  // twice. Only the auditor catches this.
  const std::string path = Path("budget.ledger");
  {
    auto ledger = BudgetLedger::Open(path, 1.0);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE(ledger->AppendIntent(3, "g", 0.1).ok());
    ASSERT_TRUE(ledger->AppendIntent(3, "g", 0.1).ok());  // duplicate
    ASSERT_TRUE(ledger->AppendIntent(1, "g", 0.1).ok());  // goes backwards
  }
  auto report = AuditLedgerReplay(path);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  ASSERT_EQ(report->violations.size(), 2u) << report->ToString();
  EXPECT_NE(report->violations[0].find("duplicate intent"),
            std::string::npos);
  EXPECT_NE(report->violations[1].find("does not advance"),
            std::string::npos);
  EXPECT_NE(report->ToString().find("VIOLATION"), std::string::npos);
}

TEST_F(LedgerTest, AuditFlagsOverdraft) {
  const std::string path = Path("budget.ledger");
  {
    auto ledger = BudgetLedger::Open(path, 1.0);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE(ledger->AppendIntent(0, "g", 0.6).ok());
    ASSERT_TRUE(ledger->AppendIntent(1, "g", 0.6).ok());
  }
  auto report = AuditLedgerReplay(path);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->epsilon_spent, 1.2, 1e-15);
  ASSERT_EQ(report->violations.size(), 1u) << report->ToString();
  EXPECT_NE(report->violations[0].find("exceeds ledger total"),
            std::string::npos);
}

TEST_F(LedgerTest, AuditFlagsOrphanAndDuplicateCommits) {
  // The commit checksum covers only "commit <seq>", so a commit line
  // spliced in from another ledger verifies fine — structurally valid,
  // semantically an orphan. BudgetLedger::Open refuses to load such a
  // file; the auditor must instead report it as the violation it is.
  const std::string victim = Path("victim.ledger");
  const std::string donor = Path("donor.ledger");
  {
    auto ledger = BudgetLedger::Open(victim, 1.0);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE(ledger->AppendIntent(0, "g", 0.1).ok());
    ASSERT_TRUE(ledger->AppendCommit(0).ok());
    ASSERT_TRUE(ledger->AppendCommit(0).ok());  // duplicate commit
  }
  {
    auto ledger = BudgetLedger::Open(donor, 1.0);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE(ledger->AppendIntent(5, "g", 0.1).ok());
    ASSERT_TRUE(ledger->AppendCommit(5).ok());
  }
  std::string spliced;
  {
    std::ifstream in(donor);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("commit 5 ", 0) == 0) spliced = line;
    }
  }
  ASSERT_FALSE(spliced.empty());
  {
    std::ofstream out(victim, std::ios::app);
    out << spliced << '\n';
  }

  auto report = AuditLedgerReplay(victim);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->ok());
  ASSERT_EQ(report->violations.size(), 2u) << report->ToString();
  EXPECT_NE(report->violations[0].find("duplicate commit"),
            std::string::npos);
  EXPECT_NE(report->violations[1].find("commit without intent for seq 5"),
            std::string::npos);
}

TEST_F(LedgerTest, AuditReportsTornTailWithoutRepairingIt) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  const std::string path = Path("budget.ledger");
  {
    auto ledger = BudgetLedger::Open(path, 1.0);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE(ledger->AppendIntent(0, "g", 0.3).ok());
    fault::ScopedFaultInjection scope(
        "ledger.append", fault::FaultSpec{.kind = fault::FaultKind::kShortRead});
    EXPECT_FALSE(ledger->AppendIntent(1, "g", 0.3).ok());
  }
  const auto bytes_before = fs::file_size(path);

  auto report = AuditLedgerReplay(path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->recovered_torn_tail);
  EXPECT_TRUE(report->ok()) << report->ToString();  // torn tail is legal
  EXPECT_EQ(report->intents, 1);
  EXPECT_NE(report->ToString().find("torn-tail"), std::string::npos);
  // Read-only: the torn bytes are still there after the audit...
  EXPECT_EQ(fs::file_size(path), bytes_before);

  // ...and it is BudgetLedger::Open that actually repairs them.
  ASSERT_TRUE(BudgetLedger::Open(path, 1.0).ok());
  EXPECT_LT(fs::file_size(path), bytes_before);
  auto clean = AuditLedgerReplay(path);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->recovered_torn_tail);
}

TEST_F(LedgerTest, EntryComparesAllFields) {
  const BudgetLedger::Entry a{1, "g", 0.5, true};
  EXPECT_EQ(a, (BudgetLedger::Entry{1, "g", 0.5, true}));
  EXPECT_NE(a, (BudgetLedger::Entry{2, "g", 0.5, true}));
  EXPECT_NE(a, (BudgetLedger::Entry{1, "h", 0.5, true}));
  EXPECT_NE(a, (BudgetLedger::Entry{1, "g", 0.25, true}));
  EXPECT_NE(a, (BudgetLedger::Entry{1, "g", 0.5, false}));
}

// ------------------------------------------------ crash/resume end-to-end

class CrashResumeTest : public LedgerTest {
 protected:
  void SetUp() override {
    LedgerTest::SetUp();
    dataset_ = data::MakeTinyDataset(120, 90, 33);
    workload_ = similarity::SimilarityWorkload::Compute(
        dataset_.social, similarity::CommonNeighbors());
    context_ = {&dataset_.social, &dataset_.preferences, &workload_};
    users_ = {0, 3, 7, 11};
  }

  core::DynamicRecommenderOptions Options(const std::string& ledger) {
    core::DynamicRecommenderOptions opt;
    opt.total_epsilon = 0.8;
    opt.planned_snapshots = 4;
    opt.louvain.restarts = 1;
    opt.seed = 77;
    opt.ledger_path = ledger;
    return opt;
  }

  data::Dataset dataset_;
  similarity::SimilarityWorkload workload_;
  core::RecommenderContext context_;
  std::vector<graph::NodeId> users_;
};

// Recommendation compares with ==, so list equality here is bit-exact on
// both items and utilities.
bool SameLists(const std::vector<core::RecommendationList>& a,
               const std::vector<core::RecommendationList>& b) {
  return a == b;
}

TEST_F(CrashResumeTest, ResumedSessionMatchesUninterruptedRunExactly) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  // Reference: an uninterrupted 4-snapshot run.
  std::vector<std::vector<core::RecommendationList>> reference;
  double reference_cumulative = 0.0;
  {
    auto session = core::DynamicRecommenderSession::Open(
        Options(Path("uninterrupted.ledger")));
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    for (int t = 0; t < 4; ++t) {
      auto release = session->ProcessSnapshot(context_, users_, 5);
      ASSERT_TRUE(release.ok()) << release.status().ToString();
      reference.push_back(release->lists);
    }
    reference_cumulative = session->epsilon_spent();
  }

  // Crashing run: two clean snapshots, then a kill injected AFTER the
  // intent for snapshot 2 is journaled but BEFORE its release goes out.
  const std::string ledger = Path("crashed.ledger");
  {
    auto session = core::DynamicRecommenderSession::Open(Options(ledger));
    ASSERT_TRUE(session.ok());
    for (int t = 0; t < 2; ++t) {
      auto release = session->ProcessSnapshot(context_, users_, 5);
      ASSERT_TRUE(release.ok());
      EXPECT_TRUE(SameLists(release->lists, reference[t]));
    }
    fault::ScopedFaultInjection scope(
        "dynamic.after_journal",
        fault::FaultSpec{.kind = fault::FaultKind::kIoError});
    auto crashed = session->ProcessSnapshot(context_, users_, 5);
    ASSERT_FALSE(crashed.ok());
    EXPECT_EQ(crashed.status().code(), StatusCode::kIoError);
    // The ε is journaled and charged even though nothing was released.
    EXPECT_TRUE(session->ledger()->HasIntent(2));
    EXPECT_FALSE(session->ledger()->IsCommitted(2));
    EXPECT_NEAR(session->epsilon_spent(), 0.6, 1e-12);
  }  // session destroyed: the "crash"

  // Restart from the ledger. The paid-but-unreleased snapshot 2 must be
  // re-derived from the same deterministic noise stream — NOT re-charged,
  // NOT re-randomized — and the session must finish its planned sequence.
  auto resumed = core::DynamicRecommenderSession::Open(Options(ledger));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->snapshots_processed(), 2);
  EXPECT_NEAR(resumed->epsilon_spent(), 0.6, 1e-12);  // intent replayed

  auto redo = resumed->ProcessSnapshot(context_, users_, 5);
  ASSERT_TRUE(redo.ok()) << redo.status().ToString();
  EXPECT_TRUE(redo->resumed_from_intent);
  EXPECT_DOUBLE_EQ(redo->epsilon_spent, 0.0);  // already paid
  EXPECT_TRUE(SameLists(redo->lists, reference[2]));

  auto last = resumed->ProcessSnapshot(context_, users_, 5);
  ASSERT_TRUE(last.ok());
  EXPECT_FALSE(last->resumed_from_intent);
  EXPECT_TRUE(SameLists(last->lists, reference[3]));

  // Identical terminal state: cumulative ε matches the uninterrupted run
  // and the budget admits no fifth release.
  EXPECT_NEAR(resumed->epsilon_spent(), reference_cumulative, 1e-12);
  auto fifth = resumed->ProcessSnapshot(context_, users_, 5);
  ASSERT_FALSE(fifth.ok());
  EXPECT_EQ(fifth.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(CrashResumeTest, RestartWithoutCrashResumesAfterLastCommit) {
  const std::string ledger = Path("clean.ledger");
  {
    auto session = core::DynamicRecommenderSession::Open(Options(ledger));
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session->ProcessSnapshot(context_, users_, 5).ok());
    ASSERT_TRUE(session->ProcessSnapshot(context_, users_, 5).ok());
  }
  auto resumed = core::DynamicRecommenderSession::Open(Options(ledger));
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->snapshots_processed(), 2);
  EXPECT_NEAR(resumed->epsilon_spent(), 0.4, 1e-12);
  auto release = resumed->ProcessSnapshot(context_, users_, 5);
  ASSERT_TRUE(release.ok());
  EXPECT_FALSE(release->resumed_from_intent);
  EXPECT_EQ(release->snapshot_index, 2);
}

TEST_F(CrashResumeTest, StaleReplayOnExhaustion) {
  core::DynamicRecommenderOptions opt = Options("");
  opt.planned_snapshots = 2;
  opt.serve_stale_on_exhaustion = true;
  core::DynamicRecommenderSession session(opt);
  auto first = session.ProcessSnapshot(context_, users_, 5);
  ASSERT_TRUE(first.ok());
  auto second = session.ProcessSnapshot(context_, users_, 5);
  ASSERT_TRUE(second.ok());
  // Budget exhausted: the third call replays the second release, flagged
  // per user, at zero additional ε.
  auto stale = session.ProcessSnapshot(context_, users_, 5);
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  EXPECT_TRUE(stale->stale);
  EXPECT_DOUBLE_EQ(stale->epsilon_spent, 0.0);
  EXPECT_TRUE(SameLists(stale->lists, second->lists));
  ASSERT_EQ(stale->degradation.size(), users_.size());
  for (const core::DegradationInfo& info : stale->degradation) {
    EXPECT_EQ(info.reason, core::DegradationReason::kStaleReplay);
  }
  EXPECT_NEAR(session.epsilon_spent(), opt.total_epsilon, 1e-9);
}

}  // namespace
}  // namespace privrec::dp
