// Parameterized property suite over (mechanism × ε): structural
// invariants every private recommender must satisfy regardless of
// configuration — valid ranked lists, bounded NDCG, determinism under a
// fixed seed, fresh noise across calls, and safe behaviour on degenerate
// inputs.

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "core/exact_recommender.h"
#include "core/group_smooth_recommender.h"
#include "core/low_rank_recommender.h"
#include "core/noe_recommender.h"
#include "core/nou_recommender.h"
#include "core/recommender_factory.h"
#include "data/synthetic.h"
#include "dp/mechanisms.h"
#include "eval/exact_reference.h"
#include "similarity/common_neighbors.h"

namespace privrec::core {
namespace {

using graph::ItemId;
using graph::NodeId;

// Shared fixture data, built once (gtest instantiates per-test).
struct Shared {
  data::Dataset dataset;
  similarity::SimilarityWorkload workload;
  RecommenderContext context;
  community::LouvainResult louvain;
  std::vector<NodeId> users;

  Shared()
      : dataset(data::MakeTinyDataset(160, 130, 77)),
        workload(similarity::SimilarityWorkload::Compute(
            dataset.social, similarity::CommonNeighbors())),
        context{&dataset.social, &dataset.preferences, &workload},
        louvain(community::RunLouvain(dataset.social,
                                      {.restarts = 2, .seed = 78})) {
    for (NodeId u = 0; u < dataset.social.num_nodes(); u += 2) {
      users.push_back(u);
    }
  }
};

Shared& GetShared() {
  static Shared& shared = *new Shared();
  return shared;
}

std::unique_ptr<Recommender> MakeMechanism(const std::string& name,
                                           double epsilon, uint64_t seed) {
  Shared& s = GetShared();
  if (name == "Cluster") {
    return std::make_unique<ClusterRecommender>(
        s.context, s.louvain.partition,
        ClusterRecommenderOptions{.epsilon = epsilon, .seed = seed});
  }
  if (name == "NOU") {
    return std::make_unique<NouRecommender>(
        s.context, NouRecommenderOptions{.epsilon = epsilon, .seed = seed});
  }
  if (name == "NOE") {
    return std::make_unique<NoeRecommender>(
        s.context, NoeRecommenderOptions{.epsilon = epsilon, .seed = seed});
  }
  if (name == "GS") {
    return std::make_unique<GroupSmoothRecommender>(
        s.context, GroupSmoothRecommenderOptions{
                       .epsilon = epsilon, .group_size = 16, .seed = seed});
  }
  return std::make_unique<LowRankRecommender>(
      s.context, LowRankRecommenderOptions{
                     .epsilon = epsilon, .target_rank = 30, .seed = seed});
}

using Param = std::tuple<std::string, double>;

class MechanismPropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  std::string name() const { return std::get<0>(GetParam()); }
  double epsilon() const { return std::get<1>(GetParam()); }
};

TEST_P(MechanismPropertyTest, ListsAreValidRankings) {
  Shared& s = GetShared();
  auto rec = MakeMechanism(name(), epsilon(), 1);
  auto lists = rec->Recommend(s.users, 12);
  ASSERT_EQ(lists.size(), s.users.size());
  for (const RecommendationList& list : lists) {
    EXPECT_LE(list.size(), 12u);
    std::set<ItemId> seen;
    for (size_t k = 0; k < list.size(); ++k) {
      EXPECT_GE(list[k].item, 0);
      EXPECT_LT(list[k].item, s.dataset.preferences.num_items());
      EXPECT_TRUE(seen.insert(list[k].item).second) << "duplicate item";
      if (k > 0) {
        EXPECT_GE(list[k - 1].utility, list[k].utility) << "not ranked";
      }
    }
  }
}

TEST_P(MechanismPropertyTest, NdcgWithinBounds) {
  Shared& s = GetShared();
  eval::ExactReference ref =
      eval::ExactReference::Compute(s.context, s.users, 12);
  auto rec = MakeMechanism(name(), epsilon(), 2);
  double ndcg = ref.MeanNdcg(rec->Recommend(s.users, 12));
  EXPECT_GE(ndcg, 0.0);
  EXPECT_LE(ndcg, 1.0 + 1e-9);
}

TEST_P(MechanismPropertyTest, DeterministicUnderFixedSeed) {
  Shared& s = GetShared();
  auto a = MakeMechanism(name(), epsilon(), 3);
  auto b = MakeMechanism(name(), epsilon(), 3);
  EXPECT_EQ(a->Recommend(s.users, 8), b->Recommend(s.users, 8));
}

TEST_P(MechanismPropertyTest, FreshNoisePerInvocation) {
  if (epsilon() == dp::kEpsilonInfinity) GTEST_SKIP() << "no noise at inf";
  Shared& s = GetShared();
  auto rec = MakeMechanism(name(), epsilon(), 4);
  auto first = rec->Recommend(s.users, 8);
  auto second = rec->Recommend(s.users, 8);
  EXPECT_NE(first, second);
}

TEST_P(MechanismPropertyTest, SingleUserMatchesBatch) {
  Shared& s = GetShared();
  auto batch_rec = MakeMechanism(name(), epsilon(), 5);
  auto single_rec = MakeMechanism(name(), epsilon(), 5);
  // Same seed, same first invocation; a one-user batch must agree with
  // position 0 of a batch starting with that user... for mechanisms whose
  // noise depends only on the invocation (not the user set). GS noise
  // interleaves with the user set only through shared randomness, so we
  // compare single-vs-single instead.
  auto one_a = single_rec->RecommendOne(s.users[0], 6);
  auto one_b = batch_rec->RecommendOne(s.users[0], 6);
  EXPECT_EQ(one_a, one_b);
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanismsAndEpsilons, MechanismPropertyTest,
    ::testing::Combine(
        ::testing::Values("Cluster", "NOU", "NOE", "GS", "LRM"),
        ::testing::Values(dp::kEpsilonInfinity, 1.0, 0.1, 0.01)),
    [](const auto& info) {
      std::string eps = std::get<1>(info.param) == dp::kEpsilonInfinity
                            ? "inf"
                            : std::to_string(static_cast<int>(
                                  std::get<1>(info.param) * 100));
      return std::get<0>(info.param) + "_eps" + eps;
    });

TEST_P(MechanismPropertyTest, RunsOnWeightedPreferences) {
  // The weighted-edge extension: every mechanism must accept rating
  // weights and keep its invariants (sensitivities rescale internally).
  static data::Dataset& weighted_dataset = *new data::Dataset([] {
    data::Dataset d = data::MakeTinyDataset(120, 90, 88);
    std::vector<graph::PreferenceEdge> edges;
    Rng rng(89);
    for (auto [u, i] : d.preferences.Edges()) {
      edges.push_back(
          {u, i, static_cast<double>(rng.UniformInt(1, 5))});
    }
    d.preferences = graph::PreferenceGraph::FromWeightedEdges(
        d.preferences.num_users(), d.preferences.num_items(), edges);
    return d;
  }());
  static similarity::SimilarityWorkload& weighted_workload =
      *new similarity::SimilarityWorkload(
          similarity::SimilarityWorkload::Compute(
              weighted_dataset.social, similarity::CommonNeighbors()));
  RecommenderContext ctx{&weighted_dataset.social,
                         &weighted_dataset.preferences,
                         &weighted_workload};
  community::LouvainResult louvain = community::RunLouvain(
      weighted_dataset.social, {.restarts = 1, .seed = 90});

  std::unique_ptr<Recommender> rec;
  RecommenderSpec spec;
  spec.mechanism = name() == "Cluster" ? "Cluster" : name();
  spec.epsilon = epsilon();
  spec.seed = 91;
  spec.partition = &louvain.partition;
  spec.lrm_target_rank = 25;
  auto made = MakeRecommender(ctx, spec);
  ASSERT_TRUE(made.ok()) << name();
  std::vector<graph::NodeId> users = {0, 11, 22};
  auto lists = (*made)->Recommend(users, 8);
  ASSERT_EQ(lists.size(), users.size());
  eval::ExactReference ref = eval::ExactReference::Compute(ctx, users, 8);
  double ndcg = ref.MeanNdcg(lists);
  EXPECT_GE(ndcg, 0.0);
  EXPECT_LE(ndcg, 1.0 + 1e-9);
}

// ----------------------------------------------------------- factory

TEST(RecommenderFactoryTest, BuildsEveryMechanism) {
  Shared& s = GetShared();
  for (const std::string& name : MechanismNames()) {
    RecommenderSpec spec;
    spec.mechanism = name;
    spec.epsilon = 0.5;
    spec.partition = &s.louvain.partition;
    spec.lrm_target_rank = 20;
    auto rec = MakeRecommender(s.context, spec);
    ASSERT_TRUE(rec.ok()) << name;
    EXPECT_FALSE((*rec)->Recommend({s.users[0]}, 3).empty()) << name;
  }
}

TEST(RecommenderFactoryTest, FactoryMatchesDirectConstruction) {
  Shared& s = GetShared();
  RecommenderSpec spec;
  spec.mechanism = "Cluster";
  spec.epsilon = 0.3;
  spec.seed = 9;
  spec.partition = &s.louvain.partition;
  auto from_factory = MakeRecommender(s.context, spec);
  ASSERT_TRUE(from_factory.ok());
  ClusterRecommender direct(s.context, s.louvain.partition,
                            {.epsilon = 0.3, .seed = 9});
  EXPECT_EQ((*from_factory)->Recommend(s.users, 5),
            direct.Recommend(s.users, 5));
}

TEST(RecommenderFactoryTest, UnknownMechanismFails) {
  Shared& s = GetShared();
  RecommenderSpec spec;
  spec.mechanism = "Magic";
  auto rec = MakeRecommender(s.context, spec);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kInvalidArgument);
}

TEST(RecommenderFactoryTest, ClusterWithoutPartitionFails) {
  Shared& s = GetShared();
  RecommenderSpec spec;
  spec.mechanism = "Cluster";
  spec.partition = nullptr;
  auto rec = MakeRecommender(s.context, spec);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------- degenerate inputs (not parameterized)

TEST(MechanismEdgeCaseTest, EmptyPreferenceGraph) {
  data::Dataset d = data::MakeTinyDataset(60, 40, 80);
  graph::PreferenceGraph empty =
      graph::PreferenceGraph::FromEdges(60, 40, {});
  auto workload = similarity::SimilarityWorkload::Compute(
      d.social, similarity::CommonNeighbors());
  RecommenderContext ctx{&d.social, &empty, &workload};
  community::LouvainResult louvain =
      community::RunLouvain(d.social, {.restarts = 1, .seed = 81});
  ClusterRecommender rec(ctx, louvain.partition,
                         {.epsilon = 0.5, .seed = 82});
  auto lists = rec.Recommend({0, 1, 2}, 5);
  // Pure noise, but still well-formed output.
  for (const auto& list : lists) EXPECT_EQ(list.size(), 5u);
}

TEST(MechanismEdgeCaseTest, EdgelessSocialGraph) {
  graph::SocialGraph social = graph::SocialGraph::FromEdges(20, {});
  graph::PreferenceGraph prefs =
      graph::PreferenceGraph::FromEdges(20, 10, {{0, 1}, {5, 2}});
  auto workload = similarity::SimilarityWorkload::Compute(
      social, similarity::CommonNeighbors());
  RecommenderContext ctx{&social, &prefs, &workload};
  // No similarity mass anywhere: exact utilities are all zero.
  ExactRecommender exact(ctx);
  EXPECT_TRUE(exact.RecommendOne(0, 5).empty());
  // NOU falls back to its degenerate sensitivity without crashing.
  NouRecommender nou(ctx, {.epsilon = 1.0, .seed = 83});
  EXPECT_EQ(nou.RecommendOne(0, 5).size(), 5u);
}

TEST(MechanismEdgeCaseTest, TopNLargerThanCatalog) {
  data::Dataset d = data::MakeTinyDataset(50, 12, 84);
  auto workload = similarity::SimilarityWorkload::Compute(
      d.social, similarity::CommonNeighbors());
  RecommenderContext ctx{&d.social, &d.preferences, &workload};
  community::LouvainResult louvain =
      community::RunLouvain(d.social, {.restarts = 1, .seed = 85});
  ClusterRecommender rec(ctx, louvain.partition,
                         {.epsilon = 0.5, .seed = 86});
  auto list = rec.RecommendOne(0, 500);
  EXPECT_EQ(list.size(), 12u);  // the whole catalog, ranked
}

// --------------------------- SplitRng Laplace stream distribution
//
// The parallel layer replaces one sequential noise stream with one
// independent SplitRng stream per chunk (common/parallel.h). The ε-DP
// calibration only survives that change if every per-chunk stream still
// draws correctly distributed Laplace noise AND the streams are mutually
// uncorrelated. These checks are deterministic: fixed seeds, bounds wide
// enough (≈5σ) that they fail only on a genuine distribution bug.

class SplitRngLaplaceStreamTest : public ::testing::Test {
 protected:
  static constexpr double kEpsilon = 0.5;
  static constexpr double kSensitivity = 1.0;
  static constexpr double kScale = kSensitivity / kEpsilon;  // b = Δ/ε
  static constexpr int kDraws = 40000;

  // The noise draws of chunk `chunk` of invocation `invocation`, exactly
  // as ClusterRecommender derives them.
  static std::vector<double> ChunkNoise(uint64_t seed, uint64_t invocation,
                                        uint64_t chunk, int draws = kDraws) {
    SplitRng split(seed, invocation);
    dp::LaplaceMechanism laplace(kEpsilon, split.StreamFor(chunk));
    std::vector<double> noise(static_cast<size_t>(draws));
    for (double& x : noise) x = laplace.Release(0.0, kSensitivity);
    return noise;
  }

  static double Mean(const std::vector<double>& xs) {
    double s = 0.0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
  }

  static double Variance(const std::vector<double>& xs, double mean) {
    double s = 0.0;
    for (double x : xs) s += (x - mean) * (x - mean);
    return s / static_cast<double>(xs.size() - 1);
  }

  // Lap(0, b) CDF.
  static double LaplaceCdf(double x) {
    if (x < 0.0) return 0.5 * std::exp(x / kScale);
    return 1.0 - 0.5 * std::exp(-x / kScale);
  }
};

TEST_F(SplitRngLaplaceStreamTest, PerChunkStreamsHaveLaplaceMeanAndVariance) {
  // Lap(0, b): mean 0 with stddev-of-sample-mean sqrt(2b²/N); variance 2b²
  // with relative sampling error ~sqrt(5/N) (kurtosis of Laplace is 6).
  const double var_expected = 2.0 * kScale * kScale;
  const double mean_bound = 5.0 * std::sqrt(var_expected / kDraws);
  const double var_rel_bound = 5.0 * std::sqrt(5.0 / kDraws);
  for (uint64_t chunk : {0u, 1u, 7u, 255u}) {
    std::vector<double> noise = ChunkNoise(/*seed=*/301, /*invocation=*/0,
                                           chunk);
    const double mean = Mean(noise);
    const double var = Variance(noise, mean);
    EXPECT_LT(std::abs(mean), mean_bound) << "chunk " << chunk;
    EXPECT_LT(std::abs(var - var_expected) / var_expected, var_rel_bound)
        << "chunk " << chunk << " var " << var;
  }
}

TEST_F(SplitRngLaplaceStreamTest, PerChunkStreamsPassKsBound) {
  // Kolmogorov–Smirnov-style check: the max gap between the empirical and
  // analytic Laplace CDF must stay below ~1.95/sqrt(N) (the α = 0.001
  // critical value), per chunk stream and per invocation.
  const double ks_bound = 1.95 / std::sqrt(static_cast<double>(kDraws));
  for (uint64_t invocation : {0u, 3u}) {
    for (uint64_t chunk : {0u, 42u}) {
      std::vector<double> noise = ChunkNoise(/*seed=*/302, invocation,
                                             chunk);
      std::sort(noise.begin(), noise.end());
      double max_gap = 0.0;
      const double n = static_cast<double>(noise.size());
      for (size_t k = 0; k < noise.size(); ++k) {
        const double cdf = LaplaceCdf(noise[k]);
        max_gap = std::max(max_gap,
                           std::abs(cdf - static_cast<double>(k) / n));
        max_gap = std::max(
            max_gap, std::abs(static_cast<double>(k + 1) / n - cdf));
      }
      EXPECT_LT(max_gap, ks_bound)
          << "invocation " << invocation << " chunk " << chunk;
    }
  }
}

TEST_F(SplitRngLaplaceStreamTest, StreamsAreMutuallyUncorrelated) {
  // Pearson correlation of paired draws across (a) sibling chunk streams,
  // (b) the same chunk across invocations, and (c) adjacent seeds. For
  // independent streams |r| is O(1/sqrt(N)); 5/sqrt(N) is a ≈5σ bound.
  const double corr_bound = 5.0 / std::sqrt(static_cast<double>(kDraws));
  auto correlation = [](const std::vector<double>& a,
                        const std::vector<double>& b) {
    const double ma = Mean(a);
    const double mb = Mean(b);
    double cov = 0.0, va = 0.0, vb = 0.0;
    for (size_t k = 0; k < a.size(); ++k) {
      cov += (a[k] - ma) * (b[k] - mb);
      va += (a[k] - ma) * (a[k] - ma);
      vb += (b[k] - mb) * (b[k] - mb);
    }
    return cov / std::sqrt(va * vb);
  };
  const std::vector<double> base = ChunkNoise(303, 0, 0);
  const std::vector<std::pair<std::string, std::vector<double>>> others = {
      {"sibling chunk", ChunkNoise(303, 0, 1)},
      {"distant chunk", ChunkNoise(303, 0, 200)},
      {"next invocation", ChunkNoise(303, 1, 0)},
      {"adjacent seed", ChunkNoise(304, 0, 0)},
  };
  for (const auto& [label, other] : others) {
    EXPECT_LT(std::abs(correlation(base, other)), corr_bound) << label;
  }
}

TEST_F(SplitRngLaplaceStreamTest, ChunkedUnionIsStillLaplace) {
  // What the release actually publishes is the union of all per-chunk
  // streams; pooled across 64 chunks it must still pass the moment and
  // KS bounds (catches per-stream bias that single-stream checks miss).
  std::vector<double> pooled;
  for (uint64_t chunk = 0; chunk < 64; ++chunk) {
    std::vector<double> noise = ChunkNoise(305, 0, chunk, /*draws=*/1000);
    pooled.insert(pooled.end(), noise.begin(), noise.end());
  }
  const double var_expected = 2.0 * kScale * kScale;
  const double mean = Mean(pooled);
  const double var = Variance(pooled, mean);
  EXPECT_LT(std::abs(mean),
            5.0 * std::sqrt(var_expected / pooled.size()));
  EXPECT_LT(std::abs(var - var_expected) / var_expected,
            5.0 * std::sqrt(5.0 / static_cast<double>(pooled.size())));
  std::sort(pooled.begin(), pooled.end());
  double max_gap = 0.0;
  const double n = static_cast<double>(pooled.size());
  for (size_t k = 0; k < pooled.size(); ++k) {
    const double cdf = LaplaceCdf(pooled[k]);
    max_gap = std::max(max_gap, std::abs(cdf - static_cast<double>(k) / n));
    max_gap =
        std::max(max_gap, std::abs(static_cast<double>(k + 1) / n - cdf));
  }
  EXPECT_LT(max_gap, 1.95 / std::sqrt(n));
}

}  // namespace
}  // namespace privrec::core
