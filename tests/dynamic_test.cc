// Tests for the dynamic-graph extension: budget allocation policies,
// sequential-composition accounting, release validity, and snapshot
// generation.

#include <cmath>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "artifact/serving.h"
#include "common/fault_injection.h"
#include "core/dynamic_recommender.h"
#include "data/synthetic.h"
#include "eval/exact_reference.h"
#include "obs/metrics.h"
#include "similarity/common_neighbors.h"

namespace privrec::core {
namespace {

using graph::NodeId;

class DynamicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = data::MakeTinyDataset(150, 120, 21);
    workload_ = similarity::SimilarityWorkload::Compute(
        dataset_.social, similarity::CommonNeighbors());
    context_ = {&dataset_.social, &dataset_.preferences, &workload_};
    users_ = {0, 5, 10, 15};
  }

  data::Dataset dataset_;
  similarity::SimilarityWorkload workload_;
  RecommenderContext context_;
  std::vector<NodeId> users_;
};

TEST_F(DynamicTest, UniformAllocationSplitsEvenly) {
  DynamicRecommenderOptions opt;
  opt.total_epsilon = 1.0;
  opt.planned_snapshots = 4;
  DynamicRecommenderSession session(opt);
  for (int64_t t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(session.EpsilonForSnapshot(t), 0.25);
  }
}

TEST_F(DynamicTest, GeometricAllocationDecaysAndSumsBelowTotal) {
  DynamicRecommenderOptions opt;
  opt.total_epsilon = 1.0;
  opt.allocation = BudgetAllocation::kGeometric;
  opt.geometric_ratio = 0.5;
  DynamicRecommenderSession session(opt);
  double sum = 0.0;
  double prev = 2.0;
  for (int64_t t = 0; t < 30; ++t) {
    double eps = session.EpsilonForSnapshot(t);
    EXPECT_LT(eps, prev);
    prev = eps;
    sum += eps;
  }
  EXPECT_LT(sum, 1.0 + 1e-9);
  EXPECT_DOUBLE_EQ(session.EpsilonForSnapshot(0), 0.5);
}

TEST_F(DynamicTest, UniformSessionExhaustsAfterPlannedSnapshots) {
  DynamicRecommenderOptions opt;
  opt.total_epsilon = 0.8;
  opt.planned_snapshots = 3;
  opt.louvain.restarts = 1;
  DynamicRecommenderSession session(opt);
  for (int t = 0; t < 3; ++t) {
    auto release = session.ProcessSnapshot(context_, users_, 5);
    ASSERT_TRUE(release.ok()) << release.status().ToString();
    EXPECT_EQ(release->snapshot_index, t);
    EXPECT_NEAR(release->epsilon_spent, 0.8 / 3.0, 1e-12);
    EXPECT_EQ(release->lists.size(), users_.size());
  }
  EXPECT_NEAR(session.epsilon_spent(), 0.8, 1e-9);
  auto fourth = session.ProcessSnapshot(context_, users_, 5);
  ASSERT_FALSE(fourth.ok());
  EXPECT_EQ(fourth.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(DynamicTest, GeometricSessionNeverExhausts) {
  DynamicRecommenderOptions opt;
  opt.total_epsilon = 0.5;
  opt.allocation = BudgetAllocation::kGeometric;
  opt.geometric_ratio = 0.6;
  opt.louvain.restarts = 1;
  DynamicRecommenderSession session(opt);
  for (int t = 0; t < 8; ++t) {
    auto release = session.ProcessSnapshot(context_, users_, 5);
    ASSERT_TRUE(release.ok()) << "snapshot " << t;
    EXPECT_LE(release->cumulative_epsilon, 0.5 + 1e-9);
  }
}

TEST_F(DynamicTest, CumulativeEpsilonTracksSequentialComposition) {
  DynamicRecommenderOptions opt;
  opt.total_epsilon = 1.0;
  opt.planned_snapshots = 5;
  opt.louvain.restarts = 1;
  DynamicRecommenderSession session(opt);
  double expected = 0.0;
  for (int t = 0; t < 5; ++t) {
    auto release = session.ProcessSnapshot(context_, users_, 5);
    ASSERT_TRUE(release.ok());
    expected += 0.2;
    EXPECT_NEAR(release->cumulative_epsilon, expected, 1e-9);
  }
}

TEST_F(DynamicTest, ReleasesAreRankedLists) {
  DynamicRecommenderOptions opt;
  opt.total_epsilon = 2.0;
  opt.planned_snapshots = 2;
  opt.louvain.restarts = 1;
  DynamicRecommenderSession session(opt);
  auto release = session.ProcessSnapshot(context_, users_, 8);
  ASSERT_TRUE(release.ok());
  for (const RecommendationList& list : release->lists) {
    EXPECT_EQ(list.size(), 8u);
    for (size_t k = 1; k < list.size(); ++k) {
      EXPECT_GE(list[k - 1].utility, list[k].utility);
    }
  }
  EXPECT_GT(release->num_clusters, 1);
}

// Artifact-directory crash recovery (the streaming pipeline's resume
// path): a kill mid-publish can leave a torn snapshot_<t>.pvra or a stale
// .tmp — the resumed session must skip-and-rebuild; an INTACT artifact
// whose provenance matches the resumed intent is reused instead of
// rebuilt, and both paths re-derive bit-identical lists.
TEST_F(DynamicTest, ArtifactResumeSkipsTornFilesAndReusesIntactOnes) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault injection compiled out";
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "privrec_dynamic_resume";
  const fs::path ref_dir =
      fs::temp_directory_path() / "privrec_dynamic_resume_ref";
  for (const fs::path& d : {dir, ref_dir}) {
    fs::remove_all(d);
    fs::create_directories(d / "artifacts");
  }
  DynamicRecommenderOptions opt;
  opt.total_epsilon = 1.0;
  opt.planned_snapshots = 4;
  opt.louvain.restarts = 1;
  opt.seed = 77;
  opt.ledger_path = (dir / "budget.ledger").string();
  opt.artifact_dir = (dir / "artifacts").string();

  // The no-crash reference: snapshot noise is a function of (seed, t), so
  // these lists are what every recovery below must reproduce exactly.
  DynamicRecommenderOptions ref_opt = opt;
  ref_opt.ledger_path = (ref_dir / "budget.ledger").string();
  ref_opt.artifact_dir = (ref_dir / "artifacts").string();
  auto reference = DynamicRecommenderSession::Open(ref_opt);
  ASSERT_TRUE(reference.ok());
  auto ref0 = reference->ProcessSnapshot(context_, users_, 5);
  ASSERT_TRUE(ref0.ok()) << ref0.status().ToString();
  auto ref1 = reference->ProcessSnapshot(context_, users_, 5);
  ASSERT_TRUE(ref1.ok());

  // Crash 1: the rename fails after the intent is journaled — no artifact
  // lands. Scatter torn crash debris where the artifact would go.
  {
    auto session = DynamicRecommenderSession::Open(opt);
    ASSERT_TRUE(session.ok());
    fault::FaultInjector::Instance().ArmNth(
        "artifact.rename", fault::FaultKind::kIoError, 1);
    auto crashed = session->ProcessSnapshot(context_, users_, 5);
    fault::FaultInjector::Instance().Reset();
    ASSERT_FALSE(crashed.ok());
    EXPECT_EQ(crashed.status().code(), StatusCode::kIoError);
  }
  const std::string torn = opt.artifact_dir + "/snapshot_0.pvra";
  for (const std::string& path : {torn, torn + ".tmp"}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "PVRA torn garbage";
  }

  // Resume: the pending intent is re-derived, the torn file is skipped
  // and overwritten by a clean rebuild, and no ε is re-charged.
  obs::Counter& reused =
      obs::GetCounter("privrec.dynamic.artifact_reused");
  const int64_t reused_before = reused.value();
  {
    auto session = DynamicRecommenderSession::Open(opt);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    auto release = session->ProcessSnapshot(context_, users_, 5);
    ASSERT_TRUE(release.ok()) << release.status().ToString();
    EXPECT_TRUE(release->resumed_from_intent);
    EXPECT_EQ(release->epsilon_spent, 0.0);
    EXPECT_EQ(release->lists, ref0->lists);
    EXPECT_EQ(reused.value(), reused_before);  // rebuilt, not reused
    auto rebuilt = serving::ServingEngine::Load(torn);
    EXPECT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    EXPECT_FALSE(fs::exists(torn + ".tmp"));

    // Crash 2: snapshot 1's artifact lands intact but the ledger COMMIT
    // fails (the second ledger.append of this call; the intent is the
    // first).
    fault::FaultInjector::Instance().ArmNth(
        "ledger.append", fault::FaultKind::kIoError, 2);
    auto crashed = session->ProcessSnapshot(context_, users_, 5);
    fault::FaultInjector::Instance().Reset();
    ASSERT_FALSE(crashed.ok());
  }

  // Resume again: this time the on-disk artifact matches the resumed
  // intent's (ε, seed) provenance and is served as-is — the reuse counter
  // moves, and the bits still match the reference.
  {
    auto session = DynamicRecommenderSession::Open(opt);
    ASSERT_TRUE(session.ok());
    EXPECT_EQ(session->snapshots_processed(), 1);
    auto release = session->ProcessSnapshot(context_, users_, 5);
    ASSERT_TRUE(release.ok()) << release.status().ToString();
    EXPECT_TRUE(release->resumed_from_intent);
    EXPECT_EQ(release->lists, ref1->lists);
    EXPECT_EQ(reused.value(), reused_before + 1);
    EXPECT_NEAR(session->epsilon_spent(), 0.5, 1e-9);
  }
}

// ------------------------------------------------- snapshot generation

TEST(GrowingSnapshotsTest, NestedAndComplete) {
  data::Dataset d = data::MakeTinyDataset(100, 80, 22);
  auto snapshots =
      data::GrowingPreferenceSnapshots(d.preferences, 4, 23);
  ASSERT_EQ(snapshots.size(), 4u);
  // Growing sizes, final equals the full graph.
  for (size_t t = 1; t < snapshots.size(); ++t) {
    EXPECT_GE(snapshots[t].num_edges(), snapshots[t - 1].num_edges());
  }
  EXPECT_EQ(snapshots.back().num_edges(), d.preferences.num_edges());
  // Nesting: every edge of snapshot t exists in snapshot t+1.
  for (size_t t = 0; t + 1 < snapshots.size(); ++t) {
    for (auto [u, i] : snapshots[t].Edges()) {
      EXPECT_GT(snapshots[t + 1].Weight(u, i), 0.0);
    }
  }
}

TEST(GrowingSnapshotsTest, ApproximatelyLinearGrowth) {
  data::Dataset d = data::MakeTinyDataset(120, 100, 24);
  auto snapshots =
      data::GrowingPreferenceSnapshots(d.preferences, 5, 25);
  int64_t total = d.preferences.num_edges();
  for (size_t t = 0; t < snapshots.size(); ++t) {
    double expected =
        static_cast<double>(total) * static_cast<double>(t + 1) / 5.0;
    EXPECT_NEAR(static_cast<double>(snapshots[t].num_edges()), expected,
                2.0);
  }
}

TEST(GrowingSnapshotsTest, PreservesWeights) {
  graph::PreferenceGraph weighted = graph::PreferenceGraph::FromWeightedEdges(
      3, 3, {{0, 0, 2.0}, {1, 1, 3.0}, {2, 2, 4.0}});
  auto snapshots = data::GrowingPreferenceSnapshots(weighted, 3, 26);
  EXPECT_TRUE(snapshots.back().is_weighted());
  EXPECT_DOUBLE_EQ(snapshots.back().Weight(2, 2), 4.0);
}

}  // namespace
}  // namespace privrec::core
