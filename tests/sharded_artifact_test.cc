// Shard-aware correctness suite for the sharded .pvra layout and the
// mmap zero-copy serve path:
//   - bit-identity: every mechanism served from a sharded artifact (any
//     K, mmap or read-fallback, any thread count) reproduces the exact
//     bytes of the in-memory and monolithic routes, invocation by
//     invocation;
//   - byte-determinism of the sharded save across thread counts;
//   - corruption fuzzing: truncation, bit flips, missing / resized shard
//     files, cross-artifact shard mixing and armed fault points each fail
//     closed with their own status code, never a crash or a partial load;
//   - the untrusted-header overflow regression (vector sizing must be
//     validated by division, not a wrappable product);
//   - shard-aware request routing (ShardedServeRuntime) matching the
//     unrouted runtime bit for bit.

// Isolation guarantee, checked at the include level exactly like
// artifact_test: the serving-side headers come FIRST and must not pull in
// the private graph containers.
#include "artifact/mapped.h"
#include "artifact/model.h"
#include "artifact/model_io.h"
#include "artifact/serving.h"
#include "artifact/shard_layout.h"
#include "serve/runtime.h"
#include "serve/sharded_runtime.h"
#include "serve/statusz.h"
#include "serve/telemetry.h"

#if defined(PRIVREC_GRAPH_PREFERENCE_GRAPH_H_) || \
    defined(PRIVREC_GRAPH_SOCIAL_GRAPH_H_)
#error "serving headers must not include the private graph containers"
#endif

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "artifact/builder.h"
#include "common/fault_injection.h"
#include "common/parallel.h"
#include "community/louvain.h"
#include "core/recommender_factory.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "obs/wide_event.h"
#include "similarity/common_neighbors.h"

namespace privrec {
namespace {

namespace fs = std::filesystem;

using core::RecommendationList;

std::string ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

class ShardedArtifactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("privrec_sharded_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    dataset_ = data::MakeTinyDataset(/*num_users=*/120, /*num_items=*/80,
                                     /*seed=*/7);
    workload_ = similarity::SimilarityWorkload::Compute(
        dataset_.social, similarity::CommonNeighbors());
    context_ = {&dataset_.social, &dataset_.preferences, &workload_};
    louvain_ = community::RunLouvain(dataset_.social,
                                     {.restarts = 2, .seed = 3});
    for (graph::NodeId u = 0; u < dataset_.social.num_nodes(); ++u) {
      users_.push_back(u);
    }
  }
  void TearDown() override {
    fault::FaultInjector::Instance().Reset();
    unsetenv("PRIVREC_NO_MMAP");
    fs::remove_all(dir_);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  // A full artifact (reference sections + low-rank factors) so all six
  // mechanisms can serve from it.
  serving::ArtifactModel BuildFullModel(uint64_t seed = kSeed) {
    artifact::ModelArtifactBuilder builder(&dataset_.social,
                                           &dataset_.preferences);
    builder.SetPartition(&louvain_.partition);
    builder.SetWorkload(&workload_);
    artifact::BuildOptions build_options;
    build_options.epsilon = kEps;
    build_options.seed = seed;
    build_options.include_reference_sections = true;
    build_options.include_lowrank = true;
    build_options.lrm_target_rank = 16;
    build_options.lrm_seed = seed;
    auto model = builder.Build(build_options);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    return std::move(*model);
  }

  static serving::ServeSpec SpecFor(const std::string& mechanism) {
    serving::ServeSpec spec;
    spec.mechanism = mechanism;
    spec.epsilon = kEps;
    spec.seed = kSeed;
    spec.gs_group_size = 8;
    return spec;
  }

  // Serves two successive batches from a fresh ServeRecommender — the
  // fresh-noise mechanisms advance their RNG stream per call, so both
  // invocations must be compared.
  std::vector<std::vector<RecommendationList>> ServeTwice(
      serving::ServingEngine* engine, const std::string& mechanism) {
    auto server = serving::MakeServeRecommender(engine, SpecFor(mechanism));
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    std::vector<std::vector<RecommendationList>> out;
    out.push_back((*server)->Recommend(users_, kTopN).lists);
    out.push_back((*server)->Recommend(users_, kTopN).lists);
    return out;
  }

  static constexpr int64_t kTopN = 10;
  static constexpr double kEps = 0.7;
  static constexpr uint64_t kSeed = 42;

  fs::path dir_;
  data::Dataset dataset_;
  similarity::SimilarityWorkload workload_;
  core::RecommenderContext context_;
  community::LouvainResult louvain_;
  std::vector<graph::NodeId> users_;
};

// ------------------------------------------------------------ bit-identity

// The matrix: six mechanisms x {monolithic, K in {1,2,7}} x {mmap,
// read-fallback} x thread counts {1,4}, every cell against a single
// 1-thread in-memory reference. The release is frozen at build time and
// sharding is pure post-processing, so every cell must be BYTE-identical.
TEST_F(ShardedArtifactTest, AllMechanismsBitIdenticalAcrossShardsAndModes) {
  serving::ArtifactModel model = BuildFullModel();

  const std::string mono = Path("full.pvra");
  ASSERT_TRUE(serving::SaveArtifact(model, mono).ok());
  const std::vector<int64_t> shard_counts = {1, 2, 7};
  std::vector<std::string> manifests;
  for (int64_t k : shard_counts) {
    const std::string path = Path("full_k" + std::to_string(k) + ".pvram");
    ASSERT_TRUE(
        serving::SaveShardedArtifact(model, path, {.shards = k}).ok());
    manifests.push_back(path);
  }

  for (const char* mechanism :
       {"Cluster", "Exact", "NOU", "NOE", "GS", "LRM"}) {
    // Reference: the in-memory engine at one thread.
    std::vector<std::vector<RecommendationList>> reference;
    {
      ScopedThreadCount baseline(1);
      serving::ArtifactModel copy = model;
      auto engine = serving::ServingEngine::FromModel(std::move(copy));
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      reference = ServeTwice(&*engine, mechanism);
    }

    for (int64_t threads : {int64_t{1}, int64_t{4}}) {
      ScopedThreadCount scoped(threads);
      // Monolithic file route.
      {
        auto engine = serving::ServingEngine::Load(mono);
        ASSERT_TRUE(engine.ok()) << engine.status().ToString();
        EXPECT_FALSE(engine->mmap_backed());
        EXPECT_EQ(ServeTwice(&*engine, mechanism), reference)
            << mechanism << " monolithic threads=" << threads;
      }
      // Sharded routes: every K, mapped and read-fallback.
      for (size_t i = 0; i < manifests.size(); ++i) {
        for (bool use_mmap : {true, false}) {
          serving::MapOptions map_options;
          map_options.use_mmap = use_mmap;
          auto mapped =
              serving::MappedArtifact::Open(manifests[i], map_options);
          ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
          EXPECT_EQ((*mapped)->mmap_backed(), use_mmap);
          auto engine = serving::ServingEngine::FromMapped(*mapped);
          ASSERT_TRUE(engine.ok()) << engine.status().ToString();
          EXPECT_EQ(engine->shard_count(), (*mapped)->shard_count());
          EXPECT_EQ(ServeTwice(&*engine, mechanism), reference)
              << mechanism << " K=" << shard_counts[i]
              << " mmap=" << use_mmap << " threads=" << threads;
        }
      }
    }
  }
}

// Two builds with identical options must shard into identical bytes at any
// thread count — manifest and every shard file are reproducible products.
TEST_F(ShardedArtifactTest, ShardedBytesDeterministicAcrossThreadCounts) {
  constexpr int64_t kShards = 3;
  std::vector<std::string> first;  // manifest bytes + each shard's bytes
  for (int64_t threads : {int64_t{1}, int64_t{2}, HardwareThreads()}) {
    ScopedThreadCount scoped(threads);
    serving::ArtifactModel model = BuildFullModel();
    // Same file NAME in per-thread-count directories: the manifest's shard
    // table embeds the relative shard file names, which must not vary.
    const fs::path sub = dir_ / ("t" + std::to_string(threads));
    fs::create_directories(sub);
    const std::string path = (sub / "det.pvram").string();
    ASSERT_TRUE(
        serving::SaveShardedArtifact(model, path, {.shards = kShards}).ok());

    std::vector<std::string> files;
    files.push_back(ReadAllBytes(path));
    auto mapped = serving::MappedArtifact::Open(path, {});
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    for (uint32_t s = 0; s < (*mapped)->shard_count(); ++s) {
      files.push_back(
          ReadAllBytes(path + ".shard" + std::to_string(s)));
    }
    for (const std::string& bytes : files) ASSERT_FALSE(bytes.empty());
    if (first.empty()) {
      first = files;
    } else {
      ASSERT_EQ(files.size(), first.size()) << "threads=" << threads;
      for (size_t i = 0; i < files.size(); ++i) {
        EXPECT_EQ(files[i], first[i])
            << "file " << i << " threads=" << threads;
      }
    }
  }
}

// A shard must own whole clusters, so absurd K clamps to the cluster count
// and still serves the same bytes.
TEST_F(ShardedArtifactTest, ShardCountClampsToClusterCount) {
  serving::ArtifactModel model = BuildFullModel();
  const int64_t num_clusters =
      static_cast<int64_t>(model.partition.sizes.size());

  const std::string path = Path("clamped.pvram");
  ASSERT_TRUE(
      serving::SaveShardedArtifact(model, path, {.shards = 1000}).ok());
  auto mapped = serving::MappedArtifact::Open(path, {});
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_GE((*mapped)->shard_count(), 1u);
  EXPECT_LE((*mapped)->shard_count(),
            static_cast<uint32_t>(std::max<int64_t>(num_clusters, 1)));

  std::vector<std::vector<RecommendationList>> reference;
  {
    auto engine = serving::ServingEngine::FromModel(std::move(model));
    ASSERT_TRUE(engine.ok());
    reference = ServeTwice(&*engine, "Cluster");
  }
  auto engine = serving::ServingEngine::FromMapped(*mapped);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(ServeTwice(&*engine, "Cluster"), reference);
}

// Load() sniffs the magic: manifests and monolithic artifacts both load,
// a raw shard file is refused with instructions, not misparsed.
TEST_F(ShardedArtifactTest, LoadSniffsMagicAndRefusesRawShardFiles) {
  serving::ArtifactModel model = BuildFullModel();
  const std::string mono = Path("m.pvra");
  const std::string manifest = Path("m.pvram");
  ASSERT_TRUE(serving::SaveArtifact(model, mono).ok());
  ASSERT_TRUE(
      serving::SaveShardedArtifact(model, manifest, {.shards = 2}).ok());

  EXPECT_TRUE(serving::ServingEngine::Load(mono).ok());
  auto sharded = serving::ServingEngine::Load(manifest);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded->shard_count(), 2u);

  auto shard = serving::ServingEngine::Load(manifest + ".shard0");
  ASSERT_FALSE(shard.ok());
  EXPECT_EQ(shard.status().code(), StatusCode::kInvalidArgument)
      << shard.status().ToString();
}

// PRIVREC_NO_MMAP flips the default map mode without changing a byte of
// the served output (the bit-identity matrix covers the byte part).
TEST_F(ShardedArtifactTest, EnvVarSelectsReadFallback) {
  serving::ArtifactModel model = BuildFullModel();
  const std::string manifest = Path("env.pvram");
  ASSERT_TRUE(
      serving::SaveShardedArtifact(model, manifest, {.shards = 2}).ok());

  setenv("PRIVREC_NO_MMAP", "1", 1);
  auto fallback = serving::ServingEngine::Load(manifest);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_FALSE(fallback->mmap_backed());

  unsetenv("PRIVREC_NO_MMAP");
  auto mapped = serving::ServingEngine::Load(manifest);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->mmap_backed());
}

// The read-fallback open retries transient failures (EINTR-shaped errors,
// short reads from a cold or networked filesystem) instead of failing the
// swap, and the recovered bytes serve bit-identically to the mmap route.
TEST_F(ShardedArtifactTest, FallbackReadRetriesTransientFaultsBitIdentically) {
  if (!fault::kCompiledIn) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  serving::ArtifactModel model = BuildFullModel();
  const std::string manifest = Path("retry.pvram");
  ASSERT_TRUE(
      serving::SaveShardedArtifact(model, manifest, {.shards = 2}).ok());

  std::vector<std::vector<RecommendationList>> reference;
  {
    auto mapped = serving::MappedArtifact::Open(manifest, {});
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    auto engine = serving::ServingEngine::FromMapped(*mapped);
    ASSERT_TRUE(engine.ok());
    reference = ServeTwice(&*engine, "Cluster");
  }

  auto& injector = fault::FaultInjector::Instance();
  obs::Counter& retries =
      obs::GetCounter("privrec.artifact.fallback_read_retries");

  // Transient I/O errors: three failed laps, well inside the 64-retry
  // budget, then the reads go through.
  const int64_t retries_before = retries.value();
  injector.Arm("artifact.fallback_read", {fault::FaultKind::kIoError, 1, 3});
  {
    serving::MapOptions map_options;
    map_options.use_mmap = false;
    auto mapped = serving::MappedArtifact::Open(manifest, map_options);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_FALSE((*mapped)->mmap_backed());
    EXPECT_GE(injector.HitCount("artifact.fallback_read"), 3);
    EXPECT_GE(retries.value() - retries_before, 3);
    auto engine = serving::ServingEngine::FromMapped(*mapped);
    ASSERT_TRUE(engine.ok());
    EXPECT_EQ(ServeTwice(&*engine, "Cluster"), reference);
  }
  injector.Reset();

  // Short reads: the loop crawls one byte per lap for a stretch and must
  // still assemble the exact file.
  injector.Arm("artifact.fallback_read",
               {fault::FaultKind::kShortRead, 1, 200});
  {
    serving::MapOptions map_options;
    map_options.use_mmap = false;
    auto mapped = serving::MappedArtifact::Open(manifest, map_options);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    auto engine = serving::ServingEngine::FromMapped(*mapped);
    ASSERT_TRUE(engine.ok());
    EXPECT_EQ(ServeTwice(&*engine, "Cluster"), reference);
  }
  injector.Reset();
}

// A filesystem that fails EVERY read must exhaust the bounded budget and
// fail the open closed — never spin forever, never serve a partial buffer.
TEST_F(ShardedArtifactTest, FallbackReadRetryBudgetIsBounded) {
  if (!fault::kCompiledIn) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  serving::ArtifactModel model = BuildFullModel();
  const std::string manifest = Path("exhaust.pvram");
  ASSERT_TRUE(
      serving::SaveShardedArtifact(model, manifest, {.shards = 2}).ok());

  auto& injector = fault::FaultInjector::Instance();
  injector.Arm("artifact.fallback_read",
               {fault::FaultKind::kIoError});  // count defaults to forever
  serving::MapOptions map_options;
  map_options.use_mmap = false;
  auto mapped = serving::MappedArtifact::Open(manifest, map_options);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kIoError);
  EXPECT_NE(mapped.status().ToString().find("after 64 retries"),
            std::string::npos)
      << mapped.status().ToString();
  injector.Reset();

  // Nothing was damaged: with the fault disarmed the same open succeeds.
  auto recovered = serving::MappedArtifact::Open(manifest, map_options);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
}

// ------------------------------------------------- corruption, fail-closed
//
// Every damage class gets its OWN status code so an operator can tell
// "re-copy the file" (kDataLoss) from "wrong file entirely"
// (kGraphMismatch / kProvenanceMismatch) from "regenerate the shard set"
// (kFailedPrecondition / kNotFound) without reading logs.

class ShardedCorruptionTest : public ShardedArtifactTest {
 protected:
  // Saves a 2-shard artifact and returns the manifest path.
  std::string SaveSharded(const std::string& name, uint64_t seed = kSeed) {
    serving::ArtifactModel model = BuildFullModel(seed);
    const std::string path = Path(name);
    EXPECT_TRUE(
        serving::SaveShardedArtifact(model, path, {.shards = 2}).ok());
    return path;
  }

  static StatusCode OpenCode(const std::string& manifest) {
    auto mapped = serving::MappedArtifact::Open(manifest, {});
    if (mapped.ok()) return StatusCode::kOk;
    return mapped.status().code();
  }

  // Locates section `id`'s payload inside an aligned container and flips
  // one bit of it (payloads are CRC-covered; padding is not, so flipping
  // blind offsets would make a flaky test).
  static void FlipPayloadBit(const std::string& path, uint32_t magic,
                             uint32_t section_id) {
    std::string bytes = ReadAllBytes(path);
    auto view = serving::ParseAlignedContainer(
        bytes.data(), bytes.size(), magic, serving::kShardFormatVersion,
        "test container");
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    for (const serving::AlignedSectionView& s : view->sections) {
      if (s.id != section_id) continue;
      ASSERT_GT(s.size, 0u);
      bytes[s.offset + s.size / 2] ^= 0x20;
      WriteAllBytes(path, bytes);
      return;
    }
    FAIL() << "section " << section_id << " not found in " << path;
  }
};

TEST_F(ShardedCorruptionTest, TruncatedManifestIsParseError) {
  const std::string manifest = SaveSharded("t.pvram");
  const std::string bytes = ReadAllBytes(manifest);
  for (size_t keep : {bytes.size() / 2, size_t{40}, size_t{3}}) {
    WriteAllBytes(manifest, bytes.substr(0, keep));
    EXPECT_EQ(OpenCode(manifest), StatusCode::kParseError) << keep;
  }
}

TEST_F(ShardedCorruptionTest, BitFlippedManifestPayloadIsDataLoss) {
  const std::string manifest = SaveSharded("mflip.pvram");
  FlipPayloadBit(manifest, serving::kManifestMagic,
                 static_cast<uint32_t>(
                     serving::ManifestSectionId::kClusterOf));
  EXPECT_EQ(OpenCode(manifest), StatusCode::kDataLoss);
}

TEST_F(ShardedCorruptionTest, BitFlippedShardPayloadIsDataLoss) {
  // Damage each payload class separately: the noisy rows, the shard
  // header blob, and a byte of the frame's section table.
  for (auto section : {serving::ShardSectionId::kNoisyRows,
                       serving::ShardSectionId::kShardHeader}) {
    const std::string manifest =
        SaveSharded("sflip" + std::to_string(static_cast<int>(section)) +
                    ".pvram");
    FlipPayloadBit(manifest + ".shard1", serving::kShardMagic,
                   static_cast<uint32_t>(section));
    EXPECT_EQ(OpenCode(manifest), StatusCode::kDataLoss)
        << "section " << static_cast<int>(section);
  }
  const std::string manifest = SaveSharded("sframe.pvram");
  std::string bytes = ReadAllBytes(manifest + ".shard0");
  bytes[16 + 24] ^= 0x01;  // first table entry's crc32 field
  WriteAllBytes(manifest + ".shard0", bytes);
  EXPECT_EQ(OpenCode(manifest), StatusCode::kDataLoss);
}

TEST_F(ShardedCorruptionTest, MissingShardFileIsNotFound) {
  const std::string manifest = SaveSharded("gone.pvram");
  fs::remove(manifest + ".shard1");
  EXPECT_EQ(OpenCode(manifest), StatusCode::kNotFound);
}

TEST_F(ShardedCorruptionTest, ResizedShardIsFailedPrecondition) {
  // Extra bytes (a concatenation accident, a foreign shard of another
  // size): the manifest records each shard's exact byte size.
  const std::string manifest = SaveSharded("fat.pvram");
  std::string bytes = ReadAllBytes(manifest + ".shard0");
  bytes.append(64, '\0');
  WriteAllBytes(manifest + ".shard0", bytes);
  EXPECT_EQ(OpenCode(manifest), StatusCode::kFailedPrecondition);
}

TEST_F(ShardedCorruptionTest, ForeignDatasetShardIsGraphMismatch) {
  // Same build, same geometry, different dataset fingerprint: the mixed-in
  // shard must be named a graph mismatch, not generic corruption. The
  // foreign twin is byte-compatible (only the fingerprint differs), so
  // only the identity gate can catch it.
  serving::ArtifactModel model = BuildFullModel();
  serving::ArtifactModel foreign = model;
  foreign.meta.graph_hash ^= 1;

  const std::string manifest = Path("a.pvram");
  const std::string other = Path("b.pvram");
  ASSERT_TRUE(
      serving::SaveShardedArtifact(model, manifest, {.shards = 2}).ok());
  ASSERT_TRUE(
      serving::SaveShardedArtifact(foreign, other, {.shards = 2}).ok());
  fs::copy_file(other + ".shard0", manifest + ".shard0",
                fs::copy_options::overwrite_existing);
  EXPECT_EQ(OpenCode(manifest), StatusCode::kGraphMismatch);
}

TEST_F(ShardedCorruptionTest, CrossBuildShardIsProvenanceMismatch) {
  // Same dataset, different DP seed: identical sizes, different noise.
  // Serving mixed noise would silently break the ε accounting, so the
  // artifact token must reject the splice with its own code.
  const std::string manifest = SaveSharded("build_a.pvram", kSeed);
  const std::string other = SaveSharded("build_b.pvram", kSeed + 1);
  fs::copy_file(other + ".shard1", manifest + ".shard1",
                fs::copy_options::overwrite_existing);
  EXPECT_EQ(OpenCode(manifest), StatusCode::kProvenanceMismatch);
}

TEST_F(ShardedCorruptionTest, ShardIndexMixupFailsClosed) {
  // Shard 1 copied over shard 0 of the SAME build: caught by the size
  // gate or the header-vs-table gate, both kFailedPrecondition.
  const std::string manifest = SaveSharded("swap.pvram");
  fs::copy_file(manifest + ".shard1", manifest + ".shard0",
                fs::copy_options::overwrite_existing);
  EXPECT_EQ(OpenCode(manifest), StatusCode::kFailedPrecondition);
}

TEST_F(ShardedCorruptionTest, ArmedFaultPointsFailClosed) {
  if (!fault::kCompiledIn) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  const std::string manifest = SaveSharded("faults.pvram");
  auto& injector = fault::FaultInjector::Instance();

  injector.Arm("artifact.open", {fault::FaultKind::kIoError, 1, 1});
  EXPECT_EQ(OpenCode(manifest), StatusCode::kIoError);
  injector.Reset();

  injector.Arm("artifact.read", {fault::FaultKind::kIoError, 1, 1});
  EXPECT_EQ(OpenCode(manifest), StatusCode::kIoError);
  injector.Reset();

  // A short read truncates the manifest view mid-frame.
  injector.Arm("artifact.read", {fault::FaultKind::kShortRead, 1, 1});
  EXPECT_EQ(OpenCode(manifest), StatusCode::kParseError);
  injector.Reset();

  injector.Arm("shard.read", {fault::FaultKind::kIoError, 1, 1});
  EXPECT_EQ(OpenCode(manifest), StatusCode::kIoError);
  injector.Reset();

  // Latency stalls the read but nothing is damaged: the open succeeds.
  injector.Arm("artifact.read", {fault::FaultKind::kLatency, 1, 1});
  EXPECT_EQ(OpenCode(manifest), StatusCode::kOk);
  injector.Reset();
}

// ---------------------------------------- untrusted-header overflow class
//
// Regression for the bug class fixed alongside this layout: a count read
// from an untrusted header, multiplied in size_t, can wrap back to the
// byte size the file actually has — and size a vector smaller than the
// loop that fills it. Validation must divide, never multiply.

TEST_F(ShardedArtifactTest, ValidateModelRejectsHugeNoisyGeometry) {
  serving::ArtifactModel model = BuildFullModel();
  // An item count near 2^62 makes nc * ni wrap in size_t; for cluster
  // counts divisible by 4 the product lands exactly on values.size() and
  // a product-form check accepts a table 2^55x too small for its header.
  model.meta.num_items = (int64_t{1} << 62) + 80;

  auto engine = serving::ServingEngine::FromModel(std::move(model));
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kParseError)
      << engine.status().ToString();
}

TEST_F(ShardedArtifactTest, ValidateModelRejectsWrappingLowRankRank) {
  serving::ArtifactModel model = BuildFullModel();
  ASSERT_TRUE(model.has_lowrank);
  const size_t nu = static_cast<size_t>(model.meta.num_users);  // 120
  const size_t b = model.lowrank.b.size();                      // nu * 16
  ASSERT_EQ(b, nu * 16);
  // nu * rank == 15 * 2^64 + b == b (mod 2^64): the product check wraps
  // clean, the division check does not.
  model.lowrank.rank = (int64_t{1} << 61) + 16;
  ASSERT_EQ(nu * static_cast<size_t>(model.lowrank.rank), b);

  auto engine = serving::ServingEngine::FromModel(std::move(model));
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kParseError)
      << engine.status().ToString();
}

TEST_F(ShardedArtifactTest, OversizedSectionTableEntryIsParseError) {
  // A table entry claiming more bytes than the file has must be rejected
  // at parse time — including sizes chosen so offset + size wraps.
  std::string bytes = serving::EncodeAlignedContainer(
      serving::kShardMagic, serving::kShardFormatVersion,
      {{/*id=*/2, std::string(64, 'x')}});
  ASSERT_GT(bytes.size(), 40u);
  for (uint64_t huge :
       {uint64_t{1} << 60, UINT64_MAX - 32, UINT64_MAX}) {
    std::string tampered = bytes;
    std::memcpy(&tampered[16 + 16], &huge, sizeof(huge));  // entry 0's size
    auto view = serving::ParseAlignedContainer(
        tampered.data(), tampered.size(), serving::kShardMagic,
        serving::kShardFormatVersion, "tampered");
    ASSERT_FALSE(view.ok()) << huge;
    EXPECT_EQ(view.status().code(), StatusCode::kParseError) << huge;
  }
}

// ------------------------------------------------- shard-aware routing

// ShardedServeRuntime splits a batch by owning shard and must reproduce
// the unrouted ServeRuntime::Handle response bit for bit.
TEST_F(ShardedArtifactTest, ShardedRuntimeMatchesDelegateBitForBit) {
  serving::ArtifactModel model = BuildFullModel();
  const std::string manifest = Path("route.pvram");
  ASSERT_TRUE(
      serving::SaveShardedArtifact(model, manifest, {.shards = 3}).ok());

  serve::ServeRuntimeOptions options;
  options.swap.spec.mechanism = "Cluster";
  options.swap.spec.epsilon = kEps;

  serve::ServeRuntime plain(options);
  serve::ShardedServeRuntime sharded(options);
  ASSERT_TRUE(plain.Activate(manifest).ok());
  ASSERT_TRUE(sharded.Activate(manifest).ok());

  serve::ServeRequest request;
  request.users = users_;
  request.top_n = kTopN;

  serve::ServeResponse want = plain.Handle(request);
  serve::ServeResponse got = sharded.Handle(request);
  ASSERT_TRUE(want.status.ok()) << want.status.ToString();
  ASSERT_TRUE(got.status.ok()) << got.status.ToString();
  EXPECT_EQ(got.batch.lists, want.batch.lists);
  EXPECT_EQ(got.batch.report.users_degraded,
            want.batch.report.users_degraded);
  EXPECT_EQ(got.epoch, want.epoch);
  EXPECT_EQ(got.artifact_seed, want.artifact_seed);
  EXPECT_EQ(sharded.sharded_requests(), 1);

  // Single-user batches delegate (no routing win to be had).
  request.users = {users_[0]};
  serve::ServeResponse single = sharded.Handle(request);
  ASSERT_TRUE(single.status.ok());
  EXPECT_EQ(single.batch.lists[0], want.batch.lists[0]);
  EXPECT_EQ(sharded.sharded_requests(), 1);
}

// The routed path attributes its wide events: which shards a batch
// touched, route/reconstruct split, and the sharded request count on the
// statusz surface.
TEST_F(ShardedArtifactTest, ShardedTelemetryAttributesShardsTouched) {
  serving::ArtifactModel model = BuildFullModel();
  const std::string manifest = Path("route.pvram");
  ASSERT_TRUE(
      serving::SaveShardedArtifact(model, manifest, {.shards = 3}).ok());

  serve::ServeTelemetryOptions tel_options;
  tel_options.sample_every = 1;
  serve::ServeTelemetry telemetry(tel_options);
  serve::ServeRuntimeOptions options;
  options.swap.spec.mechanism = "Cluster";
  options.swap.spec.epsilon = kEps;
  options.telemetry = &telemetry;
  serve::ShardedServeRuntime sharded(options);
  ASSERT_TRUE(sharded.Activate(manifest).ok());

  // All 120 users: every shard owns a slice, so the event lists all
  // three shards in ascending order.
  serve::ServeRequest request;
  request.users = users_;
  request.top_n = kTopN;
  serve::ServeResponse response = sharded.Handle(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();

  std::vector<obs::RequestTelemetry> events = telemetry.sampled_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].outcome, obs::RequestOutcome::kOk);
  EXPECT_EQ(events[0].shard_count, 3);
  EXPECT_EQ(events[0].shards_touched, (std::vector<int64_t>{0, 1, 2}));
  EXPECT_GE(events[0].route_ms, 0.0);
  EXPECT_GE(events[0].reconstruct_ms, 0.0);
  const std::string jsonl = telemetry.EventsJsonl();
  EXPECT_NE(jsonl.find("\"shards\": [0, 1, 2]"), std::string::npos);

  // A single-user batch delegates to the unsharded runtime; its event
  // carries the one owning shard the delegate resolved against.
  request.users = {users_[0]};
  ASSERT_TRUE(sharded.Handle(request).status.ok());
  events = telemetry.sampled_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].shard_count, 3);

  serve::RuntimeIntrospection status = sharded.Introspect();
  EXPECT_EQ(status.sharded_requests, 1);
  EXPECT_EQ(status.shard_count, 3);
  ASSERT_EQ(status.shard_users.size(), 3u);
  int64_t owned = 0;
  for (int64_t n : status.shard_users) owned += n;
  EXPECT_EQ(owned, status.num_users);
  ASSERT_TRUE(status.has_telemetry);
  EXPECT_EQ(status.telemetry_recorded, 2);
  EXPECT_NE(serve::StatuszText(status).find("routing:    1 shard-routed"),
            std::string::npos);
  EXPECT_NE(serve::StatuszJson(status).find("\"sharded_requests\": 1"),
            std::string::npos);
}

}  // namespace
}  // namespace privrec
