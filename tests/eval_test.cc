// Tests for the evaluation module: NDCG hand-computations, the
// ExactReference cache, the sweep driver, precision/recall and the table
// printer.

#include <cmath>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "core/cluster_recommender.h"
#include "core/exact_recommender.h"
#include "community/simple_clusterings.h"
#include "data/synthetic.h"
#include "dp/mechanisms.h"
#include "eval/exact_reference.h"
#include "eval/experiment.h"
#include "eval/ndcg.h"
#include "eval/table.h"
#include "similarity/common_neighbors.h"

namespace privrec::eval {
namespace {

using core::Recommendation;
using core::RecommendationList;
using graph::ItemId;
using graph::NodeId;

// ----------------------------------------------------------------- NDCG

TEST(RankDiscountTest, KnownValues) {
  EXPECT_DOUBLE_EQ(RankDiscount(1), 1.0);
  EXPECT_DOUBLE_EQ(RankDiscount(2), 2.0);
  EXPECT_DOUBLE_EQ(RankDiscount(4), 3.0);
  EXPECT_NEAR(RankDiscount(3), std::log2(3.0) + 1.0, 1e-12);
}

TEST(DcgTest, HandComputed) {
  RecommendationList list = {{7, 0.0}, {3, 0.0}, {9, 0.0}};
  auto util = [](ItemId i) -> double {
    if (i == 7) return 4.0;
    if (i == 3) return 2.0;
    return 0.0;  // item 9 has no true utility
  };
  // 4/1 + 2/2 + 0 = 5.
  EXPECT_DOUBLE_EQ(Dcg(list, util), 5.0);
}

TEST(DcgTest, EmptyListIsZero) {
  EXPECT_DOUBLE_EQ(Dcg({}, [](ItemId) { return 1.0; }), 0.0);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(NdcgFromDcg(5.0, 5.0), 1.0);
}

TEST(NdcgTest, ZeroIdealDcgConventionIsOne) {
  EXPECT_DOUBLE_EQ(NdcgFromDcg(0.0, 0.0), 1.0);
}

TEST(NdcgTest, SwappedEqualUtilityItemsIncurNoPenalty) {
  // The paper's Section 2.4 motivation: replacing an item by another of
  // equal utility must not be penalized.
  auto util = [](ItemId i) -> double { return (i == 1 || i == 2) ? 3.0 : 0.0; };
  RecommendationList ideal = {{1, 3.0}, {2, 3.0}};
  RecommendationList swapped = {{2, 3.0}, {1, 3.0}};
  double ideal_dcg = Dcg(ideal, util);
  EXPECT_DOUBLE_EQ(NdcgFromDcg(Dcg(swapped, util), ideal_dcg), 1.0);
}

TEST(NdcgTest, MissingTopItemCostsMoreThanMissingLastItem) {
  // Utilities 8, 4, 2, 1 at ranks 1..4.
  auto util = [](ItemId i) -> double {
    double u[] = {8, 4, 2, 1};
    return i < 4 ? u[i] : 0.0;
  };
  RecommendationList ideal = {{0, 8}, {1, 4}, {2, 2}, {3, 1}};
  double ideal_dcg = Dcg(ideal, util);
  // Replace the top item with a zero-utility item vs the last item.
  RecommendationList miss_top = {{9, 0}, {1, 4}, {2, 2}, {3, 1}};
  RecommendationList miss_last = {{0, 8}, {1, 4}, {2, 2}, {9, 0}};
  double ndcg_top = NdcgFromDcg(Dcg(miss_top, util), ideal_dcg);
  double ndcg_last = NdcgFromDcg(Dcg(miss_last, util), ideal_dcg);
  EXPECT_LT(ndcg_top, ndcg_last);
}

// ---------------------------------------------------- Precision / recall

TEST(PrecisionRecallTest, HandComputed) {
  RecommendationList recommended = {{1, 0}, {2, 0}, {3, 0}, {4, 0}};
  RecommendationList relevant = {{2, 0}, {4, 0}, {9, 0}};
  EXPECT_DOUBLE_EQ(PrecisionAtN(recommended, relevant), 0.5);
  EXPECT_NEAR(RecallAtN(recommended, relevant), 2.0 / 3.0, 1e-12);
}

TEST(PrecisionRecallTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(PrecisionAtN({}, {{1, 0}}), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtN({{1, 0}}, {}), 0.0);
}

TEST(PrecisionRecallTest, RankInsensitivityMotivatesNdcg) {
  // Precision cannot distinguish a list that puts the best item first from
  // one that buries it — NDCG can. (Section 2.4.)
  RecommendationList relevant = {{1, 0}, {2, 0}};
  RecommendationList best_first = {{1, 0}, {2, 0}, {8, 0}};
  RecommendationList best_last = {{8, 0}, {2, 0}, {1, 0}};
  EXPECT_DOUBLE_EQ(PrecisionAtN(best_first, relevant),
                   PrecisionAtN(best_last, relevant));
  auto util = [](ItemId i) -> double { return i == 1 ? 5.0 : (i == 2 ? 1.0 : 0.0); };
  EXPECT_GT(Dcg(best_first, util), Dcg(best_last, util));
}

// --------------------------------------------------------- ExactReference

class ExactReferenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = data::MakeTinyDataset(120, 100, 7);
    workload_ = similarity::SimilarityWorkload::Compute(
        dataset_.social, similarity::CommonNeighbors());
    context_ = {&dataset_.social, &dataset_.preferences, &workload_};
    for (NodeId u = 0; u < dataset_.social.num_nodes(); ++u) {
      users_.push_back(u);
    }
  }

  data::Dataset dataset_;
  similarity::SimilarityWorkload workload_;
  core::RecommenderContext context_;
  std::vector<NodeId> users_;
};

TEST_F(ExactReferenceTest, ExactRecommenderScoresPerfectNdcg) {
  ExactReference ref = ExactReference::Compute(context_, users_, 20);
  core::ExactRecommender exact(context_);
  auto lists = exact.Recommend(users_, 20);
  EXPECT_NEAR(ref.MeanNdcg(lists), 1.0, 1e-9);
  for (size_t k = 0; k < users_.size(); ++k) {
    EXPECT_NEAR(ref.Ndcg(users_[k], lists[k]), 1.0, 1e-9);
  }
}

TEST_F(ExactReferenceTest, IdealUtilityMatchesRecommender) {
  ExactReference ref = ExactReference::Compute(context_, users_, 10);
  core::ExactRecommender exact(context_);
  auto row = exact.UtilityRow(3);
  for (auto [item, util] : row) {
    EXPECT_DOUBLE_EQ(ref.IdealUtility(3, item), util);
  }
  // Items outside the row are zero.
  EXPECT_DOUBLE_EQ(ref.IdealUtility(3, dataset_.preferences.num_items() - 1),
                   ref.IdealUtility(3, dataset_.preferences.num_items() - 1));
}

TEST_F(ExactReferenceTest, ReversedListScoresBelowOne) {
  ExactReference ref = ExactReference::Compute(context_, users_, 10);
  core::ExactRecommender exact(context_);
  for (NodeId u : {0, 5, 10}) {
    RecommendationList list = exact.RecommendOne(u, 10);
    if (list.size() < 3) continue;
    // Only a strict reversal of *distinct* utilities must lose DCG.
    if (list.front().utility == list.back().utility) continue;
    RecommendationList reversed(list.rbegin(), list.rend());
    EXPECT_LT(ref.Ndcg(u, reversed), 1.0);
    EXPECT_GT(ref.Ndcg(u, reversed), 0.0);
  }
}

TEST_F(ExactReferenceTest, NdcgBoundedByOneForArbitraryLists) {
  ExactReference ref = ExactReference::Compute(context_, users_, 10);
  Rng rng(77);
  for (NodeId u : users_) {
    RecommendationList junk;
    for (int k = 0; k < 10; ++k) {
      junk.push_back({static_cast<ItemId>(rng.UniformInt(
                          static_cast<uint64_t>(
                              dataset_.preferences.num_items()))),
                      0.0});
    }
    double ndcg = ref.Ndcg(u, junk);
    EXPECT_GE(ndcg, 0.0);
    EXPECT_LE(ndcg, 1.0 + 1e-9);
  }
}

TEST_F(ExactReferenceTest, IdealDcgIsMonotoneInN) {
  ExactReference ref = ExactReference::Compute(context_, users_, 20);
  for (NodeId u : {1, 2, 3}) {
    for (int64_t n = 1; n < 20; ++n) {
      EXPECT_LE(ref.IdealDcg(u, n), ref.IdealDcg(u, n + 1) + 1e-12);
    }
  }
}

// ------------------------------------------------------------ Experiment

TEST_F(ExactReferenceTest, SweepShapesAndDeterminism) {
  ExactReference ref = ExactReference::Compute(context_, users_, 10);
  community::Partition phi = community::RandomClusters(120, 8, 3);
  RecommenderFactory factory = [&](double eps, uint64_t seed) {
    return std::make_unique<core::ClusterRecommender>(
        context_, phi,
        core::ClusterRecommenderOptions{.epsilon = eps, .seed = seed});
  };
  SweepOptions opt;
  opt.epsilons = {dp::kEpsilonInfinity, 0.1};
  opt.ns = {5, 10};
  opt.trials = 2;
  opt.seed = 9;
  auto cells = RunNdcgSweep(factory, ref, opt);
  ASSERT_EQ(cells.size(), 4u);
  for (const SweepCell& cell : cells) {
    EXPECT_GE(cell.mean_ndcg, 0.0);
    EXPECT_LE(cell.mean_ndcg, 1.0 + 1e-9);
    EXPECT_EQ(cell.trials, 2);
  }
  // Deterministic re-run.
  auto cells2 = RunNdcgSweep(factory, ref, opt);
  for (size_t k = 0; k < cells.size(); ++k) {
    EXPECT_DOUBLE_EQ(cells[k].mean_ndcg, cells2[k].mean_ndcg);
  }
  // eps = inf should not be worse than eps = 0.1 for the same N.
  EXPECT_GE(cells[0].mean_ndcg, cells[2].mean_ndcg - 0.05);
}

TEST(TruncateListsTest, Truncates) {
  std::vector<RecommendationList> lists = {
      {{1, 3.0}, {2, 2.0}, {3, 1.0}}, {{4, 1.0}}};
  auto cut = TruncateLists(lists, 2);
  EXPECT_EQ(cut[0].size(), 2u);
  EXPECT_EQ(cut[1].size(), 1u);
}

// ----------------------------------------------------------------- Table

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"measure", "eps", "NDCG@50"});
  t.AddRow({"CN", "0.1", "0.701"});
  t.AddRow({"KZ", "inf", "0.87"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("measure"), std::string::npos);
  EXPECT_NE(out.find("0.701"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, PadsMissingCells) {
  TablePrinter t({"a", "b"});
  t.AddRow({"only"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

}  // namespace
}  // namespace privrec::eval
