// Tests for the clustering post-processing heuristic (MergeSmallClusters).

#include <algorithm>

#include <gtest/gtest.h>

#include "community/louvain.h"
#include "community/postprocess.h"
#include "data/synthetic.h"
#include "graph/generators/planted_partition.h"

namespace privrec::community {
namespace {

using graph::NodeId;
using graph::SocialGraph;

int64_t SmallestCluster(const Partition& p) {
  int64_t smallest = p.num_nodes();
  for (int64_t c = 0; c < p.num_clusters(); ++c) {
    smallest = std::min(smallest, p.ClusterSize(c));
  }
  return smallest;
}

TEST(MergeSmallClustersTest, MinSizeOneIsIdentity) {
  SocialGraph g = SocialGraph::FromEdges(4, {{0, 1}, {2, 3}});
  Partition p({0, 0, 1, 1});
  Partition merged = MergeSmallClusters(g, p, {.min_size = 1});
  EXPECT_TRUE(merged.SamePartitionAs(p));
}

TEST(MergeSmallClustersTest, MergesIntoBestConnectedNeighbor) {
  // Clusters: A = {0,1,2,3}, B = {4,5,6,7}, tiny = {8}. Node 8 has two
  // edges into B and one into A -> must merge into B.
  SocialGraph g = SocialGraph::FromEdges(
      9, {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7},
          {8, 4}, {8, 5}, {8, 0}});
  Partition p({0, 0, 0, 0, 1, 1, 1, 1, 2});
  Partition merged = MergeSmallClusters(g, p, {.min_size = 2});
  EXPECT_EQ(merged.num_clusters(), 2);
  EXPECT_EQ(merged.ClusterOf(8), merged.ClusterOf(4));
  EXPECT_NE(merged.ClusterOf(8), merged.ClusterOf(0));
}

TEST(MergeSmallClustersTest, IsolatedSmallClustersPool) {
  // Three disconnected pairs plus one big component.
  SocialGraph g = SocialGraph::FromEdges(
      12, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
           {6, 7}, {8, 9}, {10, 11}});
  Partition p({0, 0, 0, 0, 0, 0, 1, 1, 2, 2, 3, 3});
  Partition merged = MergeSmallClusters(g, p, {.min_size = 5});
  // The three pairs pool into one catch-all of size 6.
  EXPECT_EQ(merged.num_clusters(), 2);
  EXPECT_EQ(merged.ClusterOf(6), merged.ClusterOf(8));
  EXPECT_EQ(merged.ClusterOf(8), merged.ClusterOf(10));
  EXPECT_NE(merged.ClusterOf(6), merged.ClusterOf(0));
  EXPECT_GE(SmallestCluster(merged), 5);
}

TEST(MergeSmallClustersTest, MutuallyConnectedSmallClustersMerge) {
  // Two tiny clusters connected only to each other (the union-find corner
  // case).
  SocialGraph g = SocialGraph::FromEdges(
      8, {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {6, 7}, {5, 6}});
  Partition p({0, 0, 0, 0, 1, 1, 2, 2});
  Partition merged = MergeSmallClusters(g, p, {.min_size = 3});
  EXPECT_EQ(merged.num_clusters(), 2);
  EXPECT_EQ(merged.ClusterOf(4), merged.ClusterOf(6));
}

TEST(MergeSmallClustersTest, UndersizedCatchAllFoldsIntoSmallest) {
  // One isolated pair cannot reach min_size alone; it must fold into the
  // smallest regular cluster.
  SocialGraph g = SocialGraph::FromEdges(
      9, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 6}, {6, 3}, {7, 8}});
  Partition p({0, 0, 0, 1, 1, 1, 1, 2, 2});
  Partition merged = MergeSmallClusters(g, p, {.min_size = 3});
  EXPECT_GE(SmallestCluster(merged), 3);
  // Folded into the size-3 triangle cluster, not the size-4 one.
  EXPECT_EQ(merged.ClusterOf(7), merged.ClusterOf(0));
}

TEST(MergeSmallClustersTest, PreservesNodeCountAndCoverage) {
  graph::PlantedPartitionOptions opt;
  opt.num_nodes = 500;
  opt.num_communities = 8;
  opt.num_small_components = 6;
  opt.seed = 5;
  auto planted = graph::GeneratePlantedPartition(opt);
  LouvainResult louvain =
      RunLouvain(planted.graph, {.restarts = 2, .seed = 6});
  Partition merged = MergeSmallClusters(planted.graph, louvain.partition,
                                        {.min_size = 10});
  EXPECT_EQ(merged.num_nodes(), 500);
  int64_t total = 0;
  for (int64_t s : merged.sizes()) total += s;
  EXPECT_EQ(total, 500);
  EXPECT_GE(SmallestCluster(merged), 10);
}

TEST(MergeSmallClustersTest, MinSizeAboveGraphSizeYieldsOneCluster) {
  SocialGraph g = SocialGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  Partition p({0, 1, 2, 3});
  Partition merged = MergeSmallClusters(g, p, {.min_size = 100});
  EXPECT_EQ(merged.num_clusters(), 1);
}

TEST(MergeSmallClustersTest, LargeClustersUntouched) {
  data::Dataset d = data::MakeTinyDataset(300, 100, 7);
  LouvainResult louvain = RunLouvain(d.social, {.restarts = 2, .seed = 8});
  Partition merged =
      MergeSmallClusters(d.social, louvain.partition, {.min_size = 4});
  // Every pair of users that shared a large cluster still shares one.
  for (NodeId u = 0; u < d.social.num_nodes(); ++u) {
    for (NodeId v = u + 1; v < d.social.num_nodes(); v += 17) {
      int64_t cu = louvain.partition.ClusterOf(u);
      if (louvain.partition.ClusterSize(cu) >= 4 &&
          cu == louvain.partition.ClusterOf(v)) {
        EXPECT_EQ(merged.ClusterOf(u), merged.ClusterOf(v));
      }
    }
  }
}

TEST(MergeSmallClustersTest, Deterministic) {
  data::Dataset d = data::MakeTinyDataset(200, 80, 9);
  LouvainResult louvain = RunLouvain(d.social, {.restarts = 2, .seed = 10});
  Partition a = MergeSmallClusters(d.social, louvain.partition,
                                   {.min_size = 8});
  Partition b = MergeSmallClusters(d.social, louvain.partition,
                                   {.min_size = 8});
  EXPECT_EQ(a.cluster_of(), b.cluster_of());
}

}  // namespace
}  // namespace privrec::community
