// Tests for ClusterRecommender (Algorithm 1): degenerate-partition
// equivalences, approximation-error behaviour, the empirical ε-DP check at
// the privacy boundary (module A_w), and determinism.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/stats.h"
#include "community/louvain.h"
#include "community/simple_clusterings.h"
#include "core/cluster_recommender.h"
#include "core/exact_recommender.h"
#include "core/group_smooth_recommender.h"
#include "data/synthetic.h"
#include "dp/mechanisms.h"
#include "similarity/common_neighbors.h"

namespace privrec::core {
namespace {

using community::Partition;
using graph::ItemId;
using graph::NodeId;
using graph::PreferenceGraph;
using graph::SocialGraph;

class ClusterRecommenderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = data::MakeTinyDataset(/*num_users=*/200, /*num_items=*/150,
                                     /*seed=*/5);
    workload_ = similarity::SimilarityWorkload::Compute(
        dataset_.social, similarity::CommonNeighbors());
    context_ = {&dataset_.social, &dataset_.preferences, &workload_};
    for (NodeId u = 0; u < dataset_.social.num_nodes(); ++u) {
      all_users_.push_back(u);
    }
  }

  data::Dataset dataset_;
  similarity::SimilarityWorkload workload_;
  RecommenderContext context_;
  std::vector<NodeId> all_users_;
};

TEST_F(ClusterRecommenderTest,
       SingletonPartitionWithoutNoiseEqualsExactRecommender) {
  // With |c| = 1 every cluster average IS the edge weight, so epsilon = inf
  // must reproduce the exact recommender's rankings (Algorithm 1
  // degenerates to plain Equation 1).
  ClusterRecommender cluster(
      context_, Partition::Singletons(dataset_.social.num_nodes()),
      {.epsilon = dp::kEpsilonInfinity, .seed = 1});
  ExactRecommender exact(context_);
  auto noisy = cluster.Recommend(all_users_, 10);
  auto truth = exact.Recommend(all_users_, 10);
  for (size_t k = 0; k < all_users_.size(); ++k) {
    // The exact list may be shorter (it only ranks nonzero utilities);
    // compare that prefix.
    for (size_t p = 0; p < truth[k].size(); ++p) {
      EXPECT_EQ(noisy[k][p].item, truth[k][p].item)
          << "user " << all_users_[k] << " position " << p;
      EXPECT_NEAR(noisy[k][p].utility, truth[k][p].utility, 1e-9);
    }
  }
}

TEST_F(ClusterRecommenderTest, NoisyAveragesHaveCorrectShapeAndMeans) {
  community::LouvainResult louvain =
      community::RunLouvain(dataset_.social, {.restarts = 2, .seed = 2});
  ClusterRecommender rec(context_, louvain.partition,
                         {.epsilon = dp::kEpsilonInfinity, .seed = 3});
  std::vector<double> averages = rec.ComputeNoisyClusterAverages();
  const Partition& phi = rec.partition();
  ASSERT_EQ(averages.size(),
            static_cast<size_t>(phi.num_clusters() *
                                dataset_.preferences.num_items()));
  // Without noise, each average must equal the exact cluster mean.
  auto members = phi.Members();
  for (int64_t c = 0; c < phi.num_clusters(); ++c) {
    for (ItemId i = 0; i < dataset_.preferences.num_items(); i += 17) {
      double sum = 0.0;
      for (NodeId v : members[static_cast<size_t>(c)]) {
        sum += dataset_.preferences.Weight(v, i);
      }
      double expected = sum / static_cast<double>(phi.ClusterSize(c));
      EXPECT_NEAR(
          averages[static_cast<size_t>(c * dataset_.preferences.num_items() +
                                       i)],
          expected, 1e-12);
    }
  }
}

TEST_F(ClusterRecommenderTest, DeterministicForSeedFreshNoisePerCall) {
  Partition phi = community::RandomClusters(200, 10, 4);
  ClusterRecommenderOptions opt{.epsilon = 1.0, .seed = 9};
  ClusterRecommender a(context_, phi, opt);
  ClusterRecommender b(context_, phi, opt);
  auto la1 = a.Recommend({0, 1, 2}, 5);
  auto la2 = a.Recommend({0, 1, 2}, 5);  // second call: fresh noise
  auto lb1 = b.Recommend({0, 1, 2}, 5);
  EXPECT_EQ(la1, lb1);   // same seed, same invocation index
  EXPECT_NE(la1, la2);   // new invocation draws new noise
}

TEST_F(ClusterRecommenderTest, LouvainClustersBeatRandomClustersAtLowEps) {
  // The paper's core claim in miniature: community clusters trade less
  // approximation error for the same noise reduction than random clusters
  // of the same granularity.
  community::LouvainResult louvain =
      community::RunLouvain(dataset_.social, {.restarts = 3, .seed = 5});
  Partition random = community::RandomClusters(
      dataset_.social.num_nodes(), louvain.partition.num_clusters(), 6);

  ExactRecommender exact(context_);
  auto truth = exact.Recommend(all_users_, 10);
  auto overlap_score = [&](const std::vector<RecommendationList>& lists) {
    // Fraction of the exact top-10 recovered, averaged over users.
    double total = 0.0;
    int64_t counted = 0;
    for (size_t k = 0; k < lists.size(); ++k) {
      if (truth[k].empty()) continue;
      std::set<ItemId> truth_set;
      for (const auto& r : truth[k]) truth_set.insert(r.item);
      int64_t hits = 0;
      for (const auto& r : lists[k]) {
        if (truth_set.count(r.item)) ++hits;
      }
      total += static_cast<double>(hits) /
               static_cast<double>(truth_set.size());
      ++counted;
    }
    return total / static_cast<double>(counted);
  };

  // Average over a few trials to keep the comparison stable.
  double louvain_score = 0.0;
  double random_score = 0.0;
  const int kTrials = 3;
  ClusterRecommender with_louvain(context_, louvain.partition,
                                  {.epsilon = 0.5, .seed = 7});
  ClusterRecommender with_random(context_, random,
                                 {.epsilon = 0.5, .seed = 7});
  for (int t = 0; t < kTrials; ++t) {
    louvain_score += overlap_score(with_louvain.Recommend(all_users_, 10));
    random_score += overlap_score(with_random.Recommend(all_users_, 10));
  }
  EXPECT_GT(louvain_score, random_score);
}

TEST_F(ClusterRecommenderTest, AccuracyDegradesAsEpsilonShrinks) {
  community::LouvainResult louvain =
      community::RunLouvain(dataset_.social, {.restarts = 2, .seed = 8});
  ExactRecommender exact(context_);
  auto truth = exact.Recommend(all_users_, 10);
  auto hits_at_eps = [&](double eps) {
    ClusterRecommender rec(context_, louvain.partition,
                           {.epsilon = eps, .seed = 11});
    int64_t hits = 0;
    // Average over trials for stability.
    for (int t = 0; t < 3; ++t) {
      auto lists = rec.Recommend(all_users_, 10);
      for (size_t k = 0; k < lists.size(); ++k) {
        std::set<ItemId> truth_set;
        for (const auto& r : truth[k]) truth_set.insert(r.item);
        for (const auto& r : lists[k]) {
          if (truth_set.count(r.item)) ++hits;
        }
      }
    }
    return hits;
  };
  int64_t strong_privacy = hits_at_eps(0.01);
  int64_t weak_privacy = hits_at_eps(10.0);
  EXPECT_GT(weak_privacy, strong_privacy);
}

// The key privacy test: the A_w output distribution on neighboring
// preference graphs must satisfy the e^eps ratio bound (Definition 6 /
// Theorem 4). We test a small instance so histograms are well populated.
TEST(ClusterRecommenderPrivacyTest, EmpiricalDpAtTheBoundary) {
  SocialGraph social = SocialGraph::FromEdges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  PreferenceGraph base =
      PreferenceGraph::FromEdges(6, 2, {{0, 0}, {1, 0}, {4, 1}});
  PreferenceGraph neighbor = base.WithEdge(2, 0);  // one extra edge
  auto workload = similarity::SimilarityWorkload::Compute(
      social, similarity::CommonNeighbors());
  Partition phi({0, 0, 0, 1, 1, 1});

  const double eps = 1.0;
  const int kSamples = 60000;
  // Track the average of cluster 0's noisy mean for item 0 — the cell the
  // extra edge affects. Its distributions under base/neighbor must overlap
  // within e^eps.
  Histogram h_base(-1.5, 2.5, 16);
  Histogram h_neighbor(-1.5, 2.5, 16);

  RecommenderContext ctx_base{&social, &base, &workload};
  RecommenderContext ctx_nbr{&social, &neighbor, &workload};
  ClusterRecommender rec_base(ctx_base, phi, {.epsilon = eps, .seed = 21});
  ClusterRecommender rec_nbr(ctx_nbr, phi, {.epsilon = eps, .seed = 22});
  const int64_t num_items = 2;
  for (int s = 0; s < kSamples; ++s) {
    h_base.Add(rec_base.ComputeNoisyClusterAverages()[0 * num_items + 0]);
    h_neighbor.Add(
        rec_nbr.ComputeNoisyClusterAverages()[0 * num_items + 0]);
  }
  const double bound = std::exp(eps) * 1.2;  // sampling slack
  // Interior bins only: the clamped edge bins aggregate tail mass whose
  // true ratio sits exactly at e^eps, where sampling noise gives false
  // positives.
  for (int b = 1; b + 1 < h_base.num_bins(); ++b) {
    if (h_base.bin_count(b) < 400 || h_neighbor.bin_count(b) < 400) continue;
    double ratio = h_base.Fraction(b) / h_neighbor.Fraction(b);
    EXPECT_LT(ratio, bound) << "bin " << b;
    EXPECT_GT(ratio, 1.0 / bound) << "bin " << b;
  }
}

TEST(ClusterRecommenderPrivacyTest, UnaffectedClustersHaveIdenticalData) {
  // Adding an edge for a user in cluster 0 must not change the pre-noise
  // average of cluster 1 (disjointness that underpins parallel
  // composition). With epsilon = inf the outputs are the raw averages.
  SocialGraph social = SocialGraph::FromEdges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  PreferenceGraph base = PreferenceGraph::FromEdges(6, 3, {{3, 1}, {5, 2}});
  PreferenceGraph neighbor = base.WithEdge(0, 1);
  auto workload = similarity::SimilarityWorkload::Compute(
      social, similarity::CommonNeighbors());
  Partition phi({0, 0, 0, 1, 1, 1});
  RecommenderContext ctx_base{&social, &base, &workload};
  RecommenderContext ctx_nbr{&social, &neighbor, &workload};
  ClusterRecommender a(ctx_base, phi,
                       {.epsilon = dp::kEpsilonInfinity, .seed = 1});
  ClusterRecommender b(ctx_nbr, phi,
                       {.epsilon = dp::kEpsilonInfinity, .seed = 1});
  auto avg_a = a.ComputeNoisyClusterAverages();
  auto avg_b = b.ComputeNoisyClusterAverages();
  const int64_t num_items = 3;
  // Cluster 1 rows identical.
  for (int64_t i = 0; i < num_items; ++i) {
    EXPECT_DOUBLE_EQ(avg_a[1 * num_items + i], avg_b[1 * num_items + i]);
  }
  // Cluster 0, item 1 differs by exactly 1/|c| = 1/3.
  EXPECT_NEAR(avg_b[0 * num_items + 1] - avg_a[0 * num_items + 1], 1.0 / 3.0,
              1e-12);
}

// ------------------------------------------------- serving degradation

TEST(ClusterRecommenderDegradationTest, IsolatedUserFallsBackToGlobalAverage) {
  // Node 4 has no social edges, so its similarity row is empty: the
  // reconstruction formula would rank every item 0. The recommender must
  // serve the global-average ranking and say so, not fail.
  SocialGraph social =
      SocialGraph::FromEdges(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  PreferenceGraph prefs =
      PreferenceGraph::FromEdges(5, 3, {{0, 0}, {1, 0}, {2, 1}, {3, 2}});
  auto workload = similarity::SimilarityWorkload::Compute(
      social, similarity::CommonNeighbors());
  RecommenderContext ctx{&social, &prefs, &workload};
  ClusterRecommender rec(ctx, Partition({0, 0, 0, 1, 1}),
                         {.epsilon = dp::kEpsilonInfinity, .seed = 3});

  RecommendedBatch batch = rec.RecommendWithReport({0, 4}, 3);
  ASSERT_EQ(batch.lists.size(), 2u);
  ASSERT_EQ(batch.degradation.size(), 2u);
  EXPECT_EQ(batch.degradation[0].reason, DegradationReason::kNone);
  EXPECT_EQ(batch.degradation[1].reason, DegradationReason::kIsolatedUser);
  EXPECT_EQ(batch.report.users_degraded, 1);
  // The fallback list ranks by the noiseless global average: item 0 has
  // two preference edges, items 1 and 2 one each — so item 0 leads.
  ASSERT_FALSE(batch.lists[1].empty());
  EXPECT_EQ(batch.lists[1][0].item, 0);
  // Recommend() returns exactly the same lists, minus the diagnostics.
  ClusterRecommender rec2(ctx, Partition({0, 0, 0, 1, 1}),
                          {.epsilon = dp::kEpsilonInfinity, .seed = 3});
  EXPECT_EQ(rec2.Recommend({0, 4}, 3), batch.lists);
}

TEST(ClusterRecommenderDegradationTest, SingletonClustersAreCounted) {
  data::Dataset ds = data::MakeTinyDataset(40, 30, 12);
  auto workload = similarity::SimilarityWorkload::Compute(
      ds.social, similarity::CommonNeighbors());
  RecommenderContext ctx{&ds.social, &ds.preferences, &workload};
  ClusterRecommender rec(ctx, Partition::Singletons(40),
                         {.epsilon = 1.0, .seed = 4});
  RecommendedBatch batch = rec.RecommendWithReport({0, 1}, 5);
  EXPECT_EQ(batch.report.singleton_clusters, 40);
  EXPECT_EQ(batch.report.empty_clusters, 0);
}

TEST(ClusterRecommenderDegradationTest,
     PoisonedNoisyAveragesAreSanitizedAndFlagged) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  data::Dataset ds = data::MakeTinyDataset(60, 40, 13);
  auto workload = similarity::SimilarityWorkload::Compute(
      ds.social, similarity::CommonNeighbors());
  RecommenderContext ctx{&ds.social, &ds.preferences, &workload};
  ClusterRecommender rec(ctx, Partition::Whole(60),
                         {.epsilon = 1.0, .seed = 5});

  fault::ScopedFaultInjection scope(
      "cluster.noisy_averages",
      fault::FaultSpec{.kind = fault::FaultKind::kNaN});
  std::vector<NodeId> users;
  for (NodeId u = 0; u < 60; ++u) users.push_back(u);
  RecommendedBatch batch = rec.RecommendWithReport(users, 5);
  // One cluster, so its poisoned release touches every non-isolated user.
  EXPECT_EQ(batch.report.nonfinite_sanitized, 1);
  int64_t flagged = 0;
  for (size_t k = 0; k < users.size(); ++k) {
    for (const Recommendation& r : batch.lists[k]) {
      EXPECT_TRUE(std::isfinite(r.utility));  // NaN never reaches ranking
    }
    if (batch.degradation[k].reason ==
        DegradationReason::kNonFiniteSanitized) {
      ++flagged;
    }
  }
  EXPECT_GT(flagged, 0);
  // users_degraded also counts any isolated users in the synthetic graph.
  EXPECT_GE(batch.report.users_degraded, flagged);
}

TEST(GroupSmoothDegradationTest, PoisonedGroupMeanIsSanitizedAndFlagged) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  data::Dataset ds = data::MakeTinyDataset(50, 30, 14);
  auto workload = similarity::SimilarityWorkload::Compute(
      ds.social, similarity::CommonNeighbors());
  RecommenderContext ctx{&ds.social, &ds.preferences, &workload};
  GroupSmoothRecommender rec(ctx,
                             {.epsilon = 1.0, .group_size = 8, .seed = 6});

  fault::ScopedFaultInjection scope(
      "gs.group_mean", fault::FaultSpec{.kind = fault::FaultKind::kInf});
  std::vector<NodeId> users = {0, 1, 2, 3, 4};
  RecommendedBatch batch = rec.RecommendWithReport(users, 5);
  EXPECT_GT(batch.report.nonfinite_sanitized, 0);
  for (size_t k = 0; k < users.size(); ++k) {
    for (const Recommendation& r : batch.lists[k]) {
      EXPECT_TRUE(std::isfinite(r.utility));
    }
    // Every released mean was poisoned, so every user saw a sanitized one
    // (isolated users keep their more specific flag).
    EXPECT_TRUE(batch.degradation[k].degraded());
    if (batch.degradation[k].reason != DegradationReason::kIsolatedUser) {
      EXPECT_EQ(batch.degradation[k].reason,
                DegradationReason::kNonFiniteSanitized);
    }
  }
  EXPECT_EQ(batch.report.users_degraded,
            static_cast<int64_t>(users.size()));
}

TEST(GroupSmoothDegradationTest, SingleGroupIsCountedDegenerate) {
  data::Dataset ds = data::MakeTinyDataset(40, 15, 15);
  auto workload = similarity::SimilarityWorkload::Compute(
      ds.social, similarity::CommonNeighbors());
  RecommenderContext ctx{&ds.social, &ds.preferences, &workload};
  // group_size beyond |U| clamps to one group per item.
  GroupSmoothRecommender rec(
      ctx, {.epsilon = 1.0, .group_size = 500, .seed = 7});
  RecommendedBatch batch = rec.RecommendWithReport({0, 1}, 5);
  EXPECT_EQ(batch.report.degenerate_groups, 15);  // one per item
}

}  // namespace
}  // namespace privrec::core
