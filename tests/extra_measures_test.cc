// Tests for the extended similarity-measure zoo (Jaccard, Salton cosine,
// Sørensen, Resource Allocation, Hub Promoted): hand-computed values and
// the same parameterized property suite as the core four.

#include <cmath>
#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "graph/generators/erdos_renyi.h"
#include "similarity/common_neighbors.h"
#include "similarity/extra_measures.h"
#include "similarity/personalized_pagerank.h"

namespace privrec::similarity {
namespace {

using graph::NodeId;
using graph::SocialGraph;

double Score(const std::vector<SimilarityEntry>& row, NodeId v) {
  for (const SimilarityEntry& e : row) {
    if (e.user == v) return e.score;
  }
  return 0.0;
}

// The kite: 0-1, 0-2, 1-2, 1-3, 2-3, 3-4. Degrees: 2, 3, 3, 3, 1.
// Common neighbors of (0, 3) = {1, 2} -> 2; of (0, 1) = {2} -> 1.
SocialGraph Kite() {
  return SocialGraph::FromEdges(
      5, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}});
}

TEST(JaccardTest, HandComputedKite) {
  SocialGraph g = Kite();
  Jaccard jc;
  DenseScratch scratch;
  auto row0 = jc.Row(g, 0, &scratch);
  // (0,3): |∩| = 2, |∪| = 2 + 3 - 2 = 3.
  EXPECT_NEAR(Score(row0, 3), 2.0 / 3.0, 1e-12);
  // (0,1): |∩| = 1, |∪| = 2 + 3 - 1 = 4.
  EXPECT_NEAR(Score(row0, 1), 0.25, 1e-12);
}

TEST(JaccardTest, BoundedByOne) {
  SocialGraph g = graph::GenerateErdosRenyi(80, 250, 1);
  Jaccard jc;
  DenseScratch scratch;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& e : jc.Row(g, u, &scratch)) {
      EXPECT_LE(e.score, 1.0 + 1e-12);
    }
  }
}

TEST(SaltonCosineTest, HandComputedKite) {
  SocialGraph g = Kite();
  SaltonCosine sc;
  DenseScratch scratch;
  auto row0 = sc.Row(g, 0, &scratch);
  // (0,3): 2 / sqrt(2*3).
  EXPECT_NEAR(Score(row0, 3), 2.0 / std::sqrt(6.0), 1e-12);
}

TEST(SorensenTest, HandComputedKite) {
  SocialGraph g = Kite();
  Sorensen so;
  DenseScratch scratch;
  auto row0 = so.Row(g, 0, &scratch);
  // (0,3): 2*2 / (2+3).
  EXPECT_NEAR(Score(row0, 3), 0.8, 1e-12);
}

TEST(ResourceAllocationTest, HandComputedKite) {
  SocialGraph g = Kite();
  ResourceAllocation ra;
  DenseScratch scratch;
  auto row0 = ra.Row(g, 0, &scratch);
  // (0,3): common neighbors 1 and 2, both degree 3 -> 2/3.
  EXPECT_NEAR(Score(row0, 3), 2.0 / 3.0, 1e-12);
  // (0,1): common neighbor 2 of degree 3 -> 1/3.
  EXPECT_NEAR(Score(row0, 1), 1.0 / 3.0, 1e-12);
}

TEST(HubPromotedTest, HandComputedKite) {
  SocialGraph g = Kite();
  HubPromoted hp;
  DenseScratch scratch;
  auto row0 = hp.Row(g, 0, &scratch);
  // (0,3): 2 / min(2,3) = 1.
  EXPECT_NEAR(Score(row0, 3), 1.0, 1e-12);
}

TEST(ExtraMeasuresTest, SupportsMatchCommonNeighbors) {
  // All five are rescalings of CN, so they must be nonzero exactly where
  // CN is.
  SocialGraph g = graph::GenerateErdosRenyi(60, 180, 2);
  CommonNeighbors cn;
  DenseScratch scratch;
  std::vector<std::unique_ptr<SimilarityMeasure>> measures;
  measures.push_back(std::make_unique<Jaccard>());
  measures.push_back(std::make_unique<SaltonCosine>());
  measures.push_back(std::make_unique<Sorensen>());
  measures.push_back(std::make_unique<ResourceAllocation>());
  measures.push_back(std::make_unique<HubPromoted>());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto cn_row = cn.Row(g, u, &scratch);
    for (const auto& m : measures) {
      auto row = m->Row(g, u, &scratch);
      ASSERT_EQ(row.size(), cn_row.size()) << m->Name() << " user " << u;
      for (size_t k = 0; k < row.size(); ++k) {
        EXPECT_EQ(row[k].user, cn_row[k].user) << m->Name();
      }
    }
  }
}

// Property suite shared with the core measures.
std::unique_ptr<SimilarityMeasure> MakeExtra(const std::string& name) {
  if (name == "JC") return std::make_unique<Jaccard>();
  if (name == "SC") return std::make_unique<SaltonCosine>();
  if (name == "SO") return std::make_unique<Sorensen>();
  if (name == "RA") return std::make_unique<ResourceAllocation>();
  return std::make_unique<HubPromoted>();
}

class ExtraMeasurePropertyTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ExtraMeasurePropertyTest, RowsSortedPositiveNoSelf) {
  SocialGraph g = graph::GenerateErdosRenyi(70, 220, 3);
  auto measure = MakeExtra(GetParam());
  DenseScratch scratch;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto row = measure->Row(g, u, &scratch);
    for (size_t k = 0; k < row.size(); ++k) {
      EXPECT_GT(row[k].score, 0.0);
      EXPECT_NE(row[k].user, u);
      if (k > 0) {
        EXPECT_LT(row[k - 1].user, row[k].user);
      }
    }
  }
}

TEST_P(ExtraMeasurePropertyTest, IsSymmetric) {
  SocialGraph g = graph::GenerateErdosRenyi(50, 130, 4);
  auto measure = MakeExtra(GetParam());
  DenseScratch scratch;
  std::map<std::pair<NodeId, NodeId>, double> scores;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& e : measure->Row(g, u, &scratch)) {
      scores[{u, e.user}] = e.score;
    }
  }
  for (const auto& [key, score] : scores) {
    auto it = scores.find({key.second, key.first});
    ASSERT_NE(it, scores.end()) << GetParam();
    EXPECT_NEAR(it->second, score, 1e-9) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllExtraMeasures, ExtraMeasurePropertyTest,
                         ::testing::Values("JC", "SC", "SO", "RA", "HP"),
                         [](const auto& info) { return info.param; });

// -------------------------------------------- Personalized PageRank

TEST(PersonalizedPageRankTest, MassSumsToAtMostOne) {
  SocialGraph g = graph::GenerateErdosRenyi(100, 300, 5);
  PersonalizedPageRank ppr(0.2, 1e-5);
  DenseScratch scratch;
  for (NodeId u = 0; u < g.num_nodes(); u += 7) {
    auto row = ppr.Row(g, u, &scratch);
    double mass = 0.0;
    for (const auto& e : row) {
      EXPECT_GT(e.score, 0.0);
      EXPECT_NE(e.user, u);
      mass += e.score;
    }
    // Approximate PPR underestimates; total mass (incl. the excluded
    // self-score <= 1) stays below 1.
    EXPECT_LT(mass, 1.0);
    EXPECT_GT(mass, 0.05);
  }
}

TEST(PersonalizedPageRankTest, NeighborsOutscoreDistantNodes) {
  // Path 0-1-2-3-4-5: PPR from 0 must decay with distance.
  SocialGraph g = SocialGraph::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  PersonalizedPageRank ppr(0.2, 1e-7);
  DenseScratch scratch;
  auto row = ppr.Row(g, 0, &scratch);
  EXPECT_GT(Score(row, 1), Score(row, 2));
  EXPECT_GT(Score(row, 2), Score(row, 3));
  EXPECT_GT(Score(row, 3), Score(row, 4));
}

TEST(PersonalizedPageRankTest, ConcentratesInOwnCommunity) {
  // Two triangles joined by a bridge: PPR from inside triangle A puts
  // more mass on A's members than B's.
  SocialGraph g = SocialGraph::FromEdges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  PersonalizedPageRank ppr(0.2, 1e-7);
  DenseScratch scratch;
  auto row = ppr.Row(g, 0, &scratch);
  EXPECT_GT(Score(row, 1) + Score(row, 2),
            Score(row, 3) + Score(row, 4) + Score(row, 5));
}

TEST(PersonalizedPageRankTest, IsolatedNodeHasEmptyRow) {
  SocialGraph g = SocialGraph::FromEdges(3, {{0, 1}});
  PersonalizedPageRank ppr;
  DenseScratch scratch;
  EXPECT_TRUE(ppr.Row(g, 2, &scratch).empty());
}

TEST(PersonalizedPageRankTest, TighterThresholdRecoversMoreMass) {
  SocialGraph g = graph::GenerateErdosRenyi(80, 240, 6);
  DenseScratch scratch;
  PersonalizedPageRank loose(0.2, 1e-3);
  PersonalizedPageRank tight(0.2, 1e-6);
  double loose_mass = 0.0;
  double tight_mass = 0.0;
  for (const auto& e : loose.Row(g, 0, &scratch)) loose_mass += e.score;
  for (const auto& e : tight.Row(g, 0, &scratch)) tight_mass += e.score;
  EXPECT_GE(tight_mass, loose_mass - 1e-12);
}

TEST(PersonalizedPageRankTest, DeterministicAndScratchSafe) {
  SocialGraph g = graph::GenerateErdosRenyi(60, 180, 7);
  PersonalizedPageRank ppr(0.25, 1e-5);
  DenseScratch reused;
  for (NodeId u = 0; u < 10; ++u) {
    DenseScratch fresh;
    EXPECT_EQ(ppr.Row(g, u, &reused), ppr.Row(g, u, &fresh));
  }
}

}  // namespace
}  // namespace privrec::similarity
