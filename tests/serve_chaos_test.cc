// Deterministic chaos soak for the serving runtime: a multi-threaded
// request loop runs against a ServeRuntime while the main thread performs
// hundreds of hot swaps, alternating good artifacts with corrupted files
// (bit flip, truncation) and — in fault-injection builds — armed I/O
// errors and latency on the artifact read path.
//
// Invariants asserted, from the worker threads' point of view:
//   - zero crashes and no torn reads: every successful response is
//     BIT-IDENTICAL to the precomputed expectation for the artifact
//     generation (identified by provenance seed) that served it — a
//     response can never mix two epochs;
//   - corrupt artifacts are never visible: every observed seed belongs to
//     one of the two good artifacts;
//   - every rejection carries a typed status (kResourceExhausted /
//     kDeadlineExceeded), and shed requests that got the degraded
//     fallback carry their epoch's exact global-average ranking.
//
// gtest assertions are not thread-safe from raw std::threads, so workers
// record failures in atomics + a mutex-guarded message checked at join.
//
// PRIVREC_CHAOS_ITERS overrides the swap-iteration count (default 500,
// matching the CI floor; sanitizer runs may dial it up or down).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "artifact/builder.h"
#include "artifact/model_io.h"
#include "artifact/serving.h"
#include "artifact/shard_layout.h"
#include "common/fault_injection.h"
#include "community/louvain.h"
#include "core/recommendation.h"
#include "data/synthetic.h"
#include "serve/runtime.h"
#include "serve/sharded_runtime.h"
#include "similarity/common_neighbors.h"

namespace privrec {
namespace {

namespace fs = std::filesystem;

std::string ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

int64_t ChaosIterations() {
  if (const char* env = std::getenv("PRIVREC_CHAOS_ITERS")) {
    return std::max<int64_t>(1, std::atoll(env));
  }
  return 500;
}

struct Expectation {
  std::vector<core::RecommendationList> lists;
  core::RecommendationList fallback;
};

TEST(ServeChaosSoak, HotSwapsUnderFaultsAndConcurrentRequests) {
  const fs::path dir = fs::temp_directory_path() / "privrec_serve_chaos";
  fs::remove_all(dir);
  fs::create_directories(dir);

  data::Dataset dataset = data::MakeTinyDataset(60, 40, /*seed=*/7);
  auto workload = similarity::SimilarityWorkload::Compute(
      dataset.social, similarity::CommonNeighbors());
  auto louvain =
      community::RunLouvain(dataset.social, {.restarts = 2, .seed = 3});
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < dataset.social.num_nodes(); u += 3) {
    users.push_back(u);
  }
  constexpr int64_t kTopN = 5;
  constexpr double kEps = 0.7;

  auto build = [&](const std::string& name, uint64_t seed) {
    artifact::ModelArtifactBuilder builder(&dataset.social,
                                           &dataset.preferences);
    builder.SetPartition(&louvain.partition);
    builder.SetWorkload(&workload);
    artifact::BuildOptions build_options;
    build_options.epsilon = kEps;
    build_options.seed = seed;
    auto model = builder.Build(build_options);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    const std::string path = (dir / name).string();
    EXPECT_TRUE(serving::SaveArtifact(*model, path).ok());
    return path;
  };
  const std::string good_a = build("good_a.pvra", 101);
  const std::string good_b = build("good_b.pvra", 202);

  // The oracle: per-generation expected output, precomputed once. Cluster
  // serving is stateless post-processing of the frozen release, so EVERY
  // request confined to one generation must reproduce these bits exactly.
  std::map<uint64_t, Expectation> expected;
  for (const std::string& path : {good_a, good_b}) {
    auto engine = serving::ServingEngine::Load(path);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    serving::ServeSpec spec;
    spec.mechanism = "Cluster";
    spec.epsilon = kEps;
    auto server = serving::MakeServeRecommender(&*engine, spec);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    Expectation e;
    e.lists = (*server)->Recommend(users, kTopN).lists;
    e.fallback = core::TopNFromDense(engine->global_average(), kTopN);
    expected[engine->model().provenance.seed] = std::move(e);
  }
  ASSERT_EQ(expected.size(), 2u);

  // Corruptions: a payload bit flip (CRC failure) and a truncation.
  const std::string bitflip = (dir / "bitflip.pvra").string();
  const std::string trunc = (dir / "trunc.pvra").string();
  {
    std::string bytes = ReadAllBytes(good_a);
    ASSERT_GT(bytes.size(), 400u);
    bytes[300] = static_cast<char>(bytes[300] ^ 0x20);
    WriteAllBytes(bitflip, bytes);
    std::string half = ReadAllBytes(good_b);
    half.resize(half.size() / 2);
    WriteAllBytes(trunc, half);
  }

  serve::ServeRuntimeOptions options;
  options.swap.spec.mechanism = "Cluster";
  options.swap.spec.epsilon = kEps;
  options.admission.max_concurrency = 2;
  options.admission.queue_depth = 2;
  options.admission.retry_after_ms = 1;
  // Short cooldown: the breaker trips on the corruption bursts and
  // recovers within the soak instead of latching every reload out.
  options.breaker.failure_threshold = 3;
  options.breaker.cooldown_ms = 1;
  options.breaker.probe_retry.max_attempts = 1;
  serve::ServeRuntime runtime(options);
  ASSERT_TRUE(runtime.Activate(good_a).ok());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> failures{0};
  std::atomic<int64_t> served_ok{0};
  std::atomic<int64_t> degraded{0};
  std::mutex failure_mu;
  std::string first_failure;
  auto fail = [&](const std::string& message) {
    failures.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(failure_mu);
    if (first_failure.empty()) first_failure = message;
  };

  auto worker = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      serve::ServeRequest request{users, kTopN, /*deadline_ms=*/2000};
      serve::ServeResponse response = runtime.Handle(request);
      auto it = expected.find(response.artifact_seed);
      if (it == expected.end()) {
        fail("response from unknown artifact generation (seed " +
             std::to_string(response.artifact_seed) +
             "): a corrupt artifact became visible");
        continue;
      }
      if (response.status.ok()) {
        if (response.epoch <= 0) {
          fail("ok response without an epoch id");
        } else if (response.batch.lists != it->second.lists) {
          fail("torn or stale read: response bits do not match the "
               "generation that served it (seed " +
               std::to_string(response.artifact_seed) + ")");
        }
        served_ok.fetch_add(1, std::memory_order_relaxed);
      } else if (response.status.code() == StatusCode::kResourceExhausted ||
                 response.status.code() == StatusCode::kDeadlineExceeded) {
        if (!response.degraded_fallback) {
          fail("rejection without the degraded fallback tier: " +
               response.status.ToString());
        } else if (response.batch.lists.size() != users.size()) {
          fail("fallback batch has wrong shape");
        } else {
          for (const core::RecommendationList& list : response.batch.lists) {
            if (list != it->second.fallback) {
              fail("fallback ranking does not match the serving epoch's "
                   "global-average row");
              break;
            }
          }
          for (const core::DegradationInfo& info :
               response.batch.degradation) {
            if (info.reason != core::DegradationReason::kLoadShed) {
              fail("shed response missing the kLoadShed degradation tag");
              break;
            }
          }
        }
        degraded.fetch_add(1, std::memory_order_relaxed);
      } else {
        fail("untyped rejection from Handle: " + response.status.ToString());
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(worker);

  // The swap storm. Every failure must be a typed status and must leave a
  // good generation published.
  const int64_t iterations = ChaosIterations();
  int64_t rejected_corrupt = 0;
  for (int64_t iter = 0; iter < iterations; ++iter) {
    Status swapped;
    switch (iter % 6) {
      case 0:
        swapped = runtime.Activate(good_a);
        break;
      case 1:
        swapped = runtime.Activate(bitflip);
        if (swapped.ok()) fail("bit-flipped artifact activated");
        ++rejected_corrupt;
        break;
      case 2:
        swapped = runtime.Activate(good_b);
        break;
      case 3:
        swapped = runtime.Activate(trunc);
        if (swapped.ok()) fail("truncated artifact activated");
        ++rejected_corrupt;
        break;
      case 4:
        if (fault::kCompiledIn) {
          fault::FaultInjector::Instance().Arm(
              "artifact.read", {fault::FaultKind::kIoError, 1, 1});
          swapped = runtime.Activate(good_a);
          fault::FaultInjector::Instance().Reset();
          if (swapped.ok()) fail("armed io_error did not fail the reload");
        } else {
          swapped = runtime.Activate(good_a);
        }
        break;
      case 5:
        if (fault::kCompiledIn) {
          // Latency faults stall the read but the artifact is intact: the
          // swap must still succeed (or be breaker-rejected, never corrupt).
          fault::FaultInjector::Instance().Arm(
              "artifact.read", {fault::FaultKind::kLatency, 1, 2});
          swapped = runtime.Activate(good_b);
          fault::FaultInjector::Instance().Reset();
        } else {
          swapped = runtime.Activate(good_b);
        }
        break;
    }
    if (!swapped.ok() && swapped.code() == StatusCode::kOk) {
      fail("non-ok swap with kOk code");  // unreachable guard
    }
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0) << first_failure;
  EXPECT_GT(served_ok.load(), 0);
  EXPECT_GE(rejected_corrupt, iterations / 3);
  // Rollbacks were observed through the metrics-facing counters and the
  // published generation is one of the good ones.
  EXPECT_GE(runtime.swapper().rollbacks(), rejected_corrupt);
  EXPECT_GT(runtime.swapper().swaps(), 0);
  EXPECT_FALSE(runtime.swapper().last_error().empty());
  const auto live = runtime.swapper().Acquire();
  ASSERT_NE(live, nullptr);
  EXPECT_TRUE(live->artifact_seed == 101 || live->artifact_seed == 202);

  fs::remove_all(dir);
}

// The same storm over SHARDED artifacts served zero-copy through the
// shard-routing runtime: each corrupt candidate damages exactly one shard
// of its set (a payload bit flip, a deleted shard file), plus armed
// shard-read faults. Invariants are unchanged — a batch is bit-identical
// to exactly one good generation (no torn reads across a swap, no batch
// mixing shards of two epochs), corrupt shard sets never activate, and
// rollback pins the last good epoch.
TEST(ServeChaosSoak, ShardedHotSwapsWithCorruptShards) {
  const fs::path dir = fs::temp_directory_path() / "privrec_shard_chaos";
  fs::remove_all(dir);
  fs::create_directories(dir);

  data::Dataset dataset = data::MakeTinyDataset(60, 40, /*seed=*/7);
  auto workload = similarity::SimilarityWorkload::Compute(
      dataset.social, similarity::CommonNeighbors());
  auto louvain =
      community::RunLouvain(dataset.social, {.restarts = 2, .seed = 3});
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < dataset.social.num_nodes(); u += 3) {
    users.push_back(u);
  }
  constexpr int64_t kTopN = 5;
  constexpr double kEps = 0.7;
  constexpr int64_t kShards = 3;

  // Each artifact lives in its own directory: a sharded artifact is a
  // manifest plus sibling shard files, and the corrupt variants damage
  // their own copies, never a live generation's files.
  auto build = [&](const std::string& name, uint64_t seed) {
    artifact::ModelArtifactBuilder builder(&dataset.social,
                                           &dataset.preferences);
    builder.SetPartition(&louvain.partition);
    builder.SetWorkload(&workload);
    artifact::BuildOptions build_options;
    build_options.epsilon = kEps;
    build_options.seed = seed;
    auto model = builder.Build(build_options);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    fs::create_directories(dir / name);
    const std::string path = (dir / name / "artifact.pvram").string();
    EXPECT_TRUE(
        serving::SaveShardedArtifact(*model, path, {.shards = kShards})
            .ok());
    return path;
  };
  const std::string good_a = build("good_a", 101);
  const std::string good_b = build("good_b", 202);

  std::map<uint64_t, Expectation> expected;
  for (const std::string& path : {good_a, good_b}) {
    auto engine = serving::ServingEngine::Load(path);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_GT(engine->shard_count(), 1u);
    serving::ServeSpec spec;
    spec.mechanism = "Cluster";
    spec.epsilon = kEps;
    auto server = serving::MakeServeRecommender(&*engine, spec);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    Expectation e;
    e.lists = (*server)->Recommend(users, kTopN).lists;
    e.fallback = core::TopNFromDense(engine->global_average(), kTopN);
    expected[engine->model().provenance.seed] = std::move(e);
  }
  ASSERT_EQ(expected.size(), 2u);

  // One corrupt shard per set: a bit flip inside shard 1's noisy-row
  // payload (located through the section table so it never lands in
  // alignment padding), and shard 2 deleted outright.
  const std::string bitflip = build("bitflip", 101);
  {
    const std::string shard = bitflip + ".shard1";
    std::string bytes = ReadAllBytes(shard);
    auto view = serving::ParseAlignedContainer(
        bytes.data(), bytes.size(), serving::kShardMagic,
        serving::kShardFormatVersion, "chaos shard");
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    bool flipped = false;
    for (const serving::AlignedSectionView& s : view->sections) {
      if (s.id ==
          static_cast<uint32_t>(serving::ShardSectionId::kNoisyRows)) {
        bytes[s.offset + s.size / 2] ^= 0x20;
        flipped = true;
      }
    }
    ASSERT_TRUE(flipped);
    WriteAllBytes(shard, bytes);
  }
  const std::string missing = build("missing", 202);
  fs::remove(missing + ".shard2");

  serve::ServeRuntimeOptions options;
  options.swap.spec.mechanism = "Cluster";
  options.swap.spec.epsilon = kEps;
  options.admission.max_concurrency = 2;
  options.admission.queue_depth = 2;
  options.admission.retry_after_ms = 1;
  options.breaker.failure_threshold = 3;
  options.breaker.cooldown_ms = 1;
  options.breaker.probe_retry.max_attempts = 1;
  serve::ShardedServeRuntime runtime(options);
  ASSERT_TRUE(runtime.Activate(good_a).ok());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> failures{0};
  std::atomic<int64_t> served_ok{0};
  std::mutex failure_mu;
  std::string first_failure;
  auto fail = [&](const std::string& message) {
    failures.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(failure_mu);
    if (first_failure.empty()) first_failure = message;
  };

  auto worker = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      serve::ServeRequest request{users, kTopN, /*deadline_ms=*/2000};
      serve::ServeResponse response = runtime.Handle(request);
      auto it = expected.find(response.artifact_seed);
      if (it == expected.end()) {
        fail("response from unknown artifact generation (seed " +
             std::to_string(response.artifact_seed) +
             "): a corrupt shard set became visible");
        continue;
      }
      if (response.status.ok()) {
        if (response.epoch <= 0) {
          fail("ok response without an epoch id");
        } else if (response.batch.lists != it->second.lists) {
          fail("torn read: sharded response bits do not match the "
               "generation that served it (seed " +
               std::to_string(response.artifact_seed) + ")");
        }
        served_ok.fetch_add(1, std::memory_order_relaxed);
      } else if (response.status.code() == StatusCode::kResourceExhausted ||
                 response.status.code() == StatusCode::kDeadlineExceeded) {
        if (response.degraded_fallback) {
          for (const core::RecommendationList& list : response.batch.lists) {
            if (list != it->second.fallback) {
              fail("fallback ranking does not match the serving epoch's "
                   "global-average row");
              break;
            }
          }
        }
      } else {
        fail("untyped rejection from Handle: " + response.status.ToString());
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(worker);

  const int64_t iterations = ChaosIterations();
  int64_t rejected_corrupt = 0;
  for (int64_t iter = 0; iter < iterations; ++iter) {
    Status swapped;
    switch (iter % 6) {
      case 0:
        swapped = runtime.Activate(good_a);
        break;
      case 1:
        swapped = runtime.Activate(bitflip);
        if (swapped.ok()) fail("bit-flipped shard set activated");
        ++rejected_corrupt;
        break;
      case 2:
        swapped = runtime.Activate(good_b);
        break;
      case 3:
        swapped = runtime.Activate(missing);
        if (swapped.ok()) fail("shard set with a missing file activated");
        ++rejected_corrupt;
        break;
      case 4:
        if (fault::kCompiledIn) {
          fault::FaultInjector::Instance().Arm(
              "shard.read", {fault::FaultKind::kIoError, 1, 1});
          swapped = runtime.Activate(good_a);
          fault::FaultInjector::Instance().Reset();
          if (swapped.ok()) fail("armed shard io_error did not fail reload");
        } else {
          swapped = runtime.Activate(good_a);
        }
        break;
      case 5:
        if (fault::kCompiledIn) {
          fault::FaultInjector::Instance().Arm(
              "shard.read", {fault::FaultKind::kLatency, 1, 2});
          swapped = runtime.Activate(good_b);
          fault::FaultInjector::Instance().Reset();
        } else {
          swapped = runtime.Activate(good_b);
        }
        break;
    }
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0) << first_failure;
  EXPECT_GT(served_ok.load(), 0);
  EXPECT_GT(runtime.sharded_requests(), 0);
  EXPECT_GE(rejected_corrupt, iterations / 3);
  EXPECT_GE(runtime.runtime().swapper().rollbacks(), rejected_corrupt);
  EXPECT_GT(runtime.runtime().swapper().swaps(), 0);
  EXPECT_FALSE(runtime.runtime().swapper().last_error().empty());
  const auto live = runtime.runtime().swapper().Acquire();
  ASSERT_NE(live, nullptr);
  EXPECT_TRUE(live->artifact_seed == 101 || live->artifact_seed == 202);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace privrec
