// Tests for the reconstruction kernels (src/kernels/): bit-identity of
// the dispatched AccumulateRows paths against their scalar references at
// every SIMD tail length, f32 widening exactness, and SelectTopN
// equivalence with the historical partial_sort under the shared ranking
// order. These are the pins behind the layer's determinism contract: the
// dispatch level may only change wall-clock, never a single bit.

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/accumulate.h"
#include "kernels/dispatch.h"
#include "kernels/select.h"

namespace privrec {
namespace {

// Deterministic row data with sign changes, magnitude spread, and exact
// ties — the shapes where FP reassociation or comparator drift would
// show first.
std::vector<double> RandomRow(int64_t items, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  std::vector<double> row(static_cast<size_t>(items));
  for (auto& v : row) {
    v = unit(rng) * (rng() % 7 == 0 ? 1e6 : 1.0);
    if (rng() % 11 == 0) v = 0.25;  // exact repeats → utility ties
  }
  return row;
}

struct AccumulateCase {
  int64_t rows;
  int64_t items;
};

// Tail lengths 0..3 around the 4-wide AVX2 lanes, both below and across
// the kAccumulateBlockItems cache-block boundary; row counts cover the
// no-op, the singleton, and a multi-row gather.
std::vector<AccumulateCase> AccumulateCases() {
  std::vector<AccumulateCase> cases;
  const std::vector<int64_t> item_counts = {
      0,  1,  2,  3,  4,  5,  6,  7,  8,  15,
      kernels::kAccumulateBlockItems - 1, kernels::kAccumulateBlockItems,
      kernels::kAccumulateBlockItems + 1, kernels::kAccumulateBlockItems + 2,
      kernels::kAccumulateBlockItems + 3,
      2 * kernels::kAccumulateBlockItems + 5};
  for (int64_t rows : {0, 1, 2, 3, 9}) {
    for (int64_t items : item_counts) cases.push_back({rows, items});
  }
  return cases;
}

TEST(KernelDispatchTest, LevelAndNameAreStable) {
  const kernels::DispatchLevel level = kernels::ActiveDispatchLevel();
  EXPECT_EQ(level, kernels::ActiveDispatchLevel());  // cached, no flapping
  const char* name = kernels::DispatchLevelName(level);
  EXPECT_TRUE(std::string(name) == "scalar" || std::string(name) == "avx2")
      << name;
  EXPECT_STREQ(kernels::DispatchLevelName(kernels::DispatchLevel::kScalar),
               "scalar");
  EXPECT_STREQ(kernels::DispatchLevelName(kernels::DispatchLevel::kAvx2),
               "avx2");
}

TEST(AccumulateRowsTest, DispatchedMatchesScalarBitwiseAtEveryTail) {
  for (const AccumulateCase& c : AccumulateCases()) {
    std::vector<std::vector<double>> storage;
    std::vector<const double*> rows;
    std::vector<double> scales;
    for (int64_t k = 0; k < c.rows; ++k) {
      storage.push_back(RandomRow(
          c.items, 1000 + static_cast<uint64_t>(k) * 131 +
                       static_cast<uint64_t>(c.items)));
      rows.push_back(storage.back().data());
      scales.push_back(0.37 * static_cast<double>(k + 1) -
                       static_cast<double>(c.rows) / 3.0);
    }
    // Non-zero initial accumulator: the kernel must add into out, not
    // overwrite it.
    std::vector<double> expected = RandomRow(c.items, 7);
    std::vector<double> actual = expected;
    kernels::AccumulateRowsScalar(rows.data(), scales.data(), c.rows,
                                  c.items, expected.data());
    kernels::AccumulateRows(rows.data(), scales.data(), c.rows, c.items,
                            actual.data());
    ASSERT_EQ(expected.size(), actual.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      // Bitwise, not approximate: the determinism contract of the layer.
      EXPECT_EQ(expected[i], actual[i])
          << "rows=" << c.rows << " items=" << c.items << " i=" << i;
    }
  }
}

TEST(AccumulateRowsTest, F32DispatchedMatchesScalarBitwise) {
  for (const AccumulateCase& c : AccumulateCases()) {
    std::vector<std::vector<float>> storage;
    std::vector<const float*> rows;
    std::vector<double> scales;
    for (int64_t k = 0; k < c.rows; ++k) {
      std::vector<double> wide = RandomRow(
          c.items, 5000 + static_cast<uint64_t>(k) * 17 +
                       static_cast<uint64_t>(c.items));
      std::vector<float> narrow(wide.size());
      for (size_t i = 0; i < wide.size(); ++i) {
        narrow[i] = static_cast<float>(wide[i]);
      }
      storage.push_back(std::move(narrow));
      rows.push_back(storage.back().data());
      scales.push_back(1.0 / static_cast<double>(k + 2));
    }
    std::vector<double> expected(static_cast<size_t>(c.items), 0.0);
    std::vector<double> actual(static_cast<size_t>(c.items), 0.0);
    kernels::AccumulateRowsF32Scalar(rows.data(), scales.data(), c.rows,
                                     c.items, expected.data());
    kernels::AccumulateRowsF32(rows.data(), scales.data(), c.rows, c.items,
                               actual.data());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i], actual[i])
          << "rows=" << c.rows << " items=" << c.items << " i=" << i;
    }
  }
}

TEST(AccumulateRowsTest, EmptyRowSetIsANoOp) {
  std::vector<double> out = RandomRow(37, 3);
  const std::vector<double> before = out;
  kernels::AccumulateRows(nullptr, nullptr, 0, 37, out.data());
  EXPECT_EQ(out, before);
  kernels::AccumulateRowsF32(nullptr, nullptr, 0, 37, out.data());
  EXPECT_EQ(out, before);
}

TEST(AccumulateRowsTest, SingletonRowIsAScaledCopy) {
  const std::vector<double> row = RandomRow(129, 11);
  const double scale = -2.5;
  const double* rows[] = {row.data()};
  std::vector<double> out(row.size(), 0.0);
  kernels::AccumulateRows(rows, &scale, 1, 129, out.data());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(out[i], scale * row[i]) << i;
  }
}

// ---------------------------------------------------------------- select

struct Entry {
  int64_t item = 0;
  double utility = 0.0;
  bool operator==(const Entry& other) const {
    return item == other.item && utility == other.utility;
  }
};

std::vector<Entry> RandomEntries(int64_t n, uint64_t seed) {
  std::vector<double> values = RandomRow(n, seed);
  std::vector<Entry> entries(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    entries[static_cast<size_t>(i)] = {i, values[static_cast<size_t>(i)]};
  }
  // Shuffle item order so index-ascending tie-breaks are actually
  // exercised rather than falling out of the input order.
  std::mt19937_64 rng(seed ^ 0xabcdef);
  std::shuffle(entries.begin(), entries.end(), rng);
  return entries;
}

TEST(SelectTopNTest, MatchesPartialSortIncludingTies) {
  for (int64_t size : {0, 1, 2, 5, 33, 257}) {
    for (int64_t n : {0, 1, 3, 10, 33, 500}) {
      std::vector<Entry> input =
          RandomEntries(size, static_cast<uint64_t>(size * 1000 + n));
      // Historical reference: full partial_sort + truncate.
      std::vector<Entry> reference = input;
      const auto keep = std::min<int64_t>(n, size);
      std::partial_sort(reference.begin(),
                        reference.begin() + std::max<int64_t>(keep, 0),
                        reference.end(), kernels::RankOrderBetter{});
      reference.resize(static_cast<size_t>(std::max<int64_t>(keep, 0)));
      std::vector<Entry> actual = input;
      kernels::SelectTopNInPlace(actual, n);
      EXPECT_EQ(actual, reference) << "size=" << size << " n=" << n;
    }
  }
}

TEST(SelectTopNTest, DenseIndicesMatchMaterializedSelection)  {
  for (int64_t size : {0, 1, 2, 7, 129, 1024}) {
    for (int64_t n : {0, 1, 5, 50, 2000}) {
      std::vector<double> values =
          RandomRow(size, static_cast<uint64_t>(size * 31 + n));
      std::vector<Entry> reference(static_cast<size_t>(size));
      for (int64_t i = 0; i < size; ++i) {
        reference[static_cast<size_t>(i)] = {i,
                                             values[static_cast<size_t>(i)]};
      }
      kernels::SelectTopNInPlace(reference, n);
      std::vector<int64_t> indices;
      kernels::SelectTopNIndicesDense(values.data(), size, n, &indices);
      ASSERT_EQ(indices.size(), reference.size())
          << "size=" << size << " n=" << n;
      for (size_t i = 0; i < indices.size(); ++i) {
        EXPECT_EQ(indices[i], reference[i].item)
            << "size=" << size << " n=" << n << " rank=" << i;
      }
    }
  }
}

TEST(SelectTopNTest, AllTiedValuesRankByItemAscending) {
  std::vector<double> values(64, 0.5);
  std::vector<int64_t> indices;
  kernels::SelectTopNIndicesDense(values.data(), 64, 10, &indices);
  ASSERT_EQ(indices.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(indices[static_cast<size_t>(i)], i);
}

}  // namespace
}  // namespace privrec
