// Tests for the weighted-preference-edge extension: weighted
// PreferenceGraph construction, weighted utilities, sensitivity scaling in
// the DP mechanisms, the weighted generator and the Flixster
// binarize=false path.

#include <cmath>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "community/partition.h"
#include "core/cluster_recommender.h"
#include "core/exact_recommender.h"
#include "core/nou_recommender.h"
#include "data/flixster.h"
#include "dp/mechanisms.h"
#include "graph/generators/preference_generator.h"
#include "graph/preference_graph.h"
#include "similarity/common_neighbors.h"

namespace privrec {
namespace {

using graph::ItemId;
using graph::NodeId;
using graph::PreferenceEdge;
using graph::PreferenceGraph;
using graph::SocialGraph;

// ----------------------------------------------------- weighted graph

TEST(WeightedPreferenceGraphTest, StoresWeights) {
  PreferenceGraph g = PreferenceGraph::FromWeightedEdges(
      2, 3, {{0, 0, 2.5}, {0, 2, 4.0}, {1, 2, 0.5}});
  EXPECT_TRUE(g.is_weighted());
  EXPECT_DOUBLE_EQ(g.Weight(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(g.Weight(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(g.Weight(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(g.Weight(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(g.max_weight(), 4.0);
}

TEST(WeightedPreferenceGraphTest, UnweightedDefaultsToOne) {
  PreferenceGraph g = PreferenceGraph::FromEdges(1, 2, {{0, 0}, {0, 1}});
  EXPECT_FALSE(g.is_weighted());
  EXPECT_DOUBLE_EQ(g.max_weight(), 1.0);
  auto weights = g.WeightsOf(0);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[0], 1.0);
  EXPECT_DOUBLE_EQ(weights[1], 1.0);
}

TEST(WeightedPreferenceGraphTest, DuplicateKeepsLargestWeight) {
  PreferenceGraph g = PreferenceGraph::FromWeightedEdges(
      1, 1, {{0, 0, 2.0}, {0, 0, 5.0}, {0, 0, 3.0}});
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.Weight(0, 0), 5.0);
}

TEST(WeightedPreferenceGraphTest, ItemOrientationWeightsAligned) {
  PreferenceGraph g = PreferenceGraph::FromWeightedEdges(
      3, 1, {{0, 0, 1.0}, {1, 0, 2.0}, {2, 0, 3.0}});
  auto users = g.UsersOf(0);
  auto weights = g.ItemWeights(0);
  ASSERT_EQ(users.size(), 3u);
  for (size_t k = 0; k < users.size(); ++k) {
    EXPECT_DOUBLE_EQ(weights[k], static_cast<double>(users[k] + 1));
  }
}

TEST(WeightedPreferenceGraphTest, WithEdgeReplacesWeight) {
  PreferenceGraph g =
      PreferenceGraph::FromWeightedEdges(1, 1, {{0, 0, 2.0}});
  PreferenceGraph replaced = g.WithEdge(0, 0, 4.5);
  EXPECT_EQ(replaced.num_edges(), 1);
  EXPECT_DOUBLE_EQ(replaced.Weight(0, 0), 4.5);
}

TEST(WeightedPreferenceGraphTest, WeightedEdgesRoundTrip) {
  std::vector<PreferenceEdge> edges = {{0, 1, 2.0}, {1, 0, 3.5}};
  PreferenceGraph g = PreferenceGraph::FromWeightedEdges(2, 2, edges);
  auto out = g.WeightedEdges();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (PreferenceEdge{0, 1, 2.0}));
  EXPECT_EQ(out[1], (PreferenceEdge{1, 0, 3.5}));
}

TEST(WeightedPreferenceGraphDeathTest, RejectsNonPositiveWeight) {
  EXPECT_DEATH(PreferenceGraph::FromWeightedEdges(1, 1, {{0, 0, 0.0}}),
               "weight");
}

// --------------------------------------------------- weighted utilities

class WeightedUtilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Kite graph; CN: sim(0,1)=1, sim(0,2)=1, sim(0,3)=2.
    social_ = SocialGraph::FromEdges(
        5, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}});
    prefs_ = PreferenceGraph::FromWeightedEdges(
        5, 3, {{1, 0, 2.0}, {1, 1, 1.0}, {2, 1, 3.0}, {3, 2, 5.0}});
    workload_ = similarity::SimilarityWorkload::Compute(
        social_, similarity::CommonNeighbors());
    context_ = {&social_, &prefs_, &workload_};
  }

  SocialGraph social_;
  PreferenceGraph prefs_;
  similarity::SimilarityWorkload workload_;
  core::RecommenderContext context_;
};

TEST_F(WeightedUtilityTest, ExactRecommenderUsesWeights) {
  core::ExactRecommender rec(context_);
  auto row = rec.UtilityRow(0);
  // mu_0^0 = 1*2 = 2; mu_0^1 = 1*1 + 1*3 = 4; mu_0^2 = 2*5 = 10.
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0].second, 2.0);
  EXPECT_DOUBLE_EQ(row[1].second, 4.0);
  EXPECT_DOUBLE_EQ(row[2].second, 10.0);
}

TEST_F(WeightedUtilityTest, ClusterAveragesAreWeightedMeans) {
  community::Partition phi({0, 0, 0, 1, 1});
  core::ClusterRecommender rec(context_, phi,
                               {.epsilon = dp::kEpsilonInfinity,
                                .seed = 1});
  auto averages = rec.ComputeNoisyClusterAverages();
  // Cluster 0 = {0,1,2}, item 1: (0 + 1 + 3)/3.
  EXPECT_NEAR(averages[0 * 3 + 1], 4.0 / 3.0, 1e-12);
  // Cluster 1 = {3,4}, item 2: 5/2.
  EXPECT_NEAR(averages[1 * 3 + 2], 2.5, 1e-12);
}

TEST_F(WeightedUtilityTest, NouSensitivityScalesWithMaxWeight) {
  core::NouRecommender weighted(context_, {.epsilon = 1.0, .seed = 2});
  // Same workload with a binarized copy of the preferences.
  PreferenceGraph binary = PreferenceGraph::FromEdges(
      5, 3, {{1, 0}, {1, 1}, {2, 1}, {3, 2}});
  core::RecommenderContext binary_ctx{&social_, &binary, &workload_};
  core::NouRecommender unweighted(binary_ctx, {.epsilon = 1.0, .seed = 2});
  EXPECT_DOUBLE_EQ(weighted.sensitivity(),
                   5.0 * unweighted.sensitivity());
}

TEST_F(WeightedUtilityTest, ClusterNoiseScalesWithMaxWeight) {
  // With a weighted graph (w_max = 5) the noise on a cluster average must
  // be 5x the unweighted noise: verify via the released value's variance.
  community::Partition phi({0, 0, 0, 0, 0});
  core::ClusterRecommender rec(context_, phi, {.epsilon = 1.0, .seed = 3});
  RunningStats stats;
  const double true_mean = 2.0 / 5.0;  // item 0: weight 2 over 5 users
  for (int t = 0; t < 4000; ++t) {
    stats.Add(rec.ComputeNoisyClusterAverages()[0]);
  }
  // Lap(w_max/(|c| eps)) = Lap(1.0): variance 2.
  EXPECT_NEAR(stats.mean(), true_mean, 0.1);
  EXPECT_NEAR(stats.variance(), 2.0, 0.4);
}

// The DP guarantee must hold for weighted edges too: neighboring graphs
// differ by one edge of weight <= w_max.
TEST_F(WeightedUtilityTest, EmpiricalDpWithWeightedEdge) {
  community::Partition phi({0, 0, 0, 1, 1});
  PreferenceGraph neighbor = prefs_.WithEdge(0, 0, 5.0);
  // Register weight 5 in the base graph's w_max too (max_weight already 5
  // via user 3's edge).
  core::RecommenderContext ctx_nbr{&social_, &neighbor, &workload_};
  const double eps = 1.0;
  core::ClusterRecommender m1(context_, phi, {.epsilon = eps, .seed = 4});
  core::ClusterRecommender m2(ctx_nbr, phi, {.epsilon = eps, .seed = 5});
  Histogram h1(-8.0, 10.0, 18);
  Histogram h2(-8.0, 10.0, 18);
  for (int s = 0; s < 60000; ++s) {
    h1.Add(m1.ComputeNoisyClusterAverages()[0]);
    h2.Add(m2.ComputeNoisyClusterAverages()[0]);
  }
  const double bound = std::exp(eps) * 1.2;
  for (int b = 1; b + 1 < h1.num_bins(); ++b) {
    if (h1.bin_count(b) < 400 || h2.bin_count(b) < 400) continue;
    double ratio = h1.Fraction(b) / h2.Fraction(b);
    EXPECT_LT(ratio, bound) << "bin " << b;
    EXPECT_GT(ratio, 1.0 / bound) << "bin " << b;
  }
}

// -------------------------------------------------- weighted generator

TEST(WeightedGeneratorTest, RatingsInRangeAndSkewedHigh) {
  graph::PreferenceGeneratorOptions opt;
  opt.num_items = 300;
  opt.mean_prefs_per_user = 15.0;
  opt.max_rating = 5;
  opt.seed = 6;
  std::vector<int64_t> community(200, 0);
  PreferenceGraph g = graph::GeneratePreferences(community, opt);
  EXPECT_TRUE(g.is_weighted());
  EXPECT_LE(g.max_weight(), 5.0);
  RunningStats stats;
  for (const PreferenceEdge& e : g.WeightedEdges()) {
    EXPECT_GE(e.weight, 1.0);
    EXPECT_LE(e.weight, 5.0);
    EXPECT_DOUBLE_EQ(e.weight, std::floor(e.weight));  // integer stars
    stats.Add(e.weight);
  }
  // max-of-two-uniforms over {1..5} has mean 3.8: skewed above uniform 3.
  EXPECT_GT(stats.mean(), 3.2);
}

TEST(WeightedGeneratorTest, ZeroMaxRatingStaysUnweighted) {
  graph::PreferenceGeneratorOptions opt;
  opt.num_items = 100;
  opt.mean_prefs_per_user = 10.0;
  opt.max_rating = 0;
  opt.seed = 7;
  std::vector<int64_t> community(50, 0);
  PreferenceGraph g = graph::GeneratePreferences(community, opt);
  EXPECT_FALSE(g.is_weighted());
  EXPECT_DOUBLE_EQ(g.max_weight(), 1.0);
}

// ------------------------------------------------ Flixster weighted load

TEST(FlixsterWeightedTest, BinarizeFalseKeepsRatings) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "privrec_weighted_flixster";
  fs::create_directories(dir);
  {
    std::ofstream links(dir / "links.txt");
    links << "1\t2\n";
    std::ofstream ratings(dir / "ratings.txt");
    ratings << "1\t10\t4.5\n2\t10\t2.0\n2\t11\t1.0\n";
  }
  data::FlixsterOptions opt;
  opt.binarize = false;
  auto d = data::LoadFlixster(dir.string(), opt);
  fs::remove_all(dir);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_TRUE(d->preferences.is_weighted());
  EXPECT_DOUBLE_EQ(d->preferences.max_weight(), 4.5);
  EXPECT_EQ(d->preferences.num_edges(), 2);  // the 1.0 is below min_rating
}

}  // namespace
}  // namespace privrec
