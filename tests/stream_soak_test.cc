// Streaming churn soak: grow / ingest / crash / restart / republish / swap
// for ChaosIterations() virtual-time iterations while four request threads
// hammer the serving runtime. The invariants under test are the ISSUE's
// three headline guarantees:
//
//   1. zero crashes the recovery protocol cannot absorb — every simulated
//      kill (injected WAL/ledger/artifact faults, plus clean restarts) is
//      followed by a reopen whose state is bit-identical to a shadow
//      rebuilt from the deterministic delta schedule;
//   2. zero ε double-spends — the ledger audits clean at the end and its
//      replayed spend matches the session's accountant exactly;
//   3. serving never stops — every response observed by the request
//      threads comes from a known published generation (or its degraded
//      fallback tier), and a corrupt artifact pushed at the runtime rolls
//      back without disturbing the live epoch.
//
// The soak is deliberately in-process: a "crash" destroys the pipeline
// object mid-protocol (the injected fault already left the disk state torn
// exactly as a kill would) and reopens it from disk. The out-of-process
// kill matrix lives in ci/stream_soak.sh.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "artifact/serving.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "community/incremental.h"
#include "core/recommendation.h"
#include "dp/ledger.h"
#include "serve/runtime.h"
#include "stream/ingester.h"
#include "stream/pipeline.h"

namespace privrec {
namespace {

namespace fs = std::filesystem;

int64_t ChaosIterations() {
  if (const char* env = std::getenv("PRIVREC_CHAOS_ITERS")) {
    return std::max<int64_t>(1, std::atoll(env));
  }
  return 500;
}

std::string ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

constexpr graph::NodeId kUsers = 40;
constexpr graph::ItemId kItems = 24;
constexpr int64_t kTopN = 5;
constexpr uint64_t kScheduleSeed = 17;

// The deterministic delta schedule: position i always yields the same
// record, so a shadow state can be rebuilt from scratch up to any journal
// position after a crash.
stream::WalRecord ScheduleRecord(int64_t i) {
  const uint64_t bits =
      SplitMix64(kScheduleSeed ^ (0x5bd1e995ull * static_cast<uint64_t>(i + 1)));
  const uint64_t kind = bits % 100;
  const auto u = static_cast<graph::NodeId>((bits >> 8) % kUsers);
  if (kind < 55) {
    auto v = static_cast<graph::NodeId>((bits >> 32) % kUsers);
    if (v == u) v = (v + 1) % kUsers;
    return stream::WalRecord::AddSocial(u, v);
  }
  if (kind < 70) {
    auto v = static_cast<graph::NodeId>((bits >> 24) % kUsers);
    if (v == u) v = (v + 1) % kUsers;
    return stream::WalRecord::RemoveSocial(u, v);
  }
  const auto item = static_cast<graph::ItemId>((bits >> 40) % kItems);
  if (kind < 92) {
    return stream::WalRecord::AddPreference(
        u, item, 1.0 + static_cast<double>((bits >> 56) % 5));
  }
  return stream::WalRecord::RemovePreference(u, item);
}

Status ApplyDelta(stream::StreamPipeline* pipeline,
                  const stream::WalRecord& record) {
  switch (record.type) {
    case stream::WalRecordType::kAddSocial:
      return pipeline->AddSocialEdge(record.a, record.b);
    case stream::WalRecordType::kRemoveSocial:
      return pipeline->RemoveSocialEdge(record.a, record.b);
    case stream::WalRecordType::kAddPreference:
      return pipeline->AddPreference(record.a, record.b, record.weight());
    default:
      return pipeline->RemovePreference(record.a, record.b);
  }
}

struct Expectation {
  std::vector<core::RecommendationList> lists;
  core::RecommendationList fallback;
};

TEST(StreamSoak, ChurnCrashRepublishSwapUnderConcurrentRequests) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault injection compiled out";
  const fs::path dir = fs::temp_directory_path() / "privrec_stream_soak";
  fs::remove_all(dir);
  fs::create_directories(dir);
  fs::create_directories(dir / "artifacts");

  std::vector<graph::NodeId> probe_users;
  for (graph::NodeId u = 0; u < kUsers; u += 3) probe_users.push_back(u);

  stream::StreamPipelineOptions options;
  options.ingest.num_users = kUsers;
  options.ingest.num_items = kItems;
  options.ingest.wal_path = (dir / "stream.wal").string();
  options.republish.min_deltas_between = 6;
  options.republish.min_growth = 0.4;
  // A wide uniform schedule: ε_t is constant and the budget outlasts every
  // publish the soak can trigger — exhaustion is the example/CI's concern,
  // the soak isolates the crash/swap invariants.
  options.session.total_epsilon = 10.0;
  options.session.planned_snapshots = 500;
  options.session.seed = 23;
  options.session.ledger_path = (dir / "budget.ledger").string();
  options.session.artifact_dir = (dir / "artifacts").string();

  serve::ServeRuntimeOptions runtime_options;
  runtime_options.swap.spec.mechanism = "Cluster";
  runtime_options.swap.adopt_artifact_epsilon = true;
  // The graph grows between snapshots, so generations legitimately carry
  // different dataset fingerprints.
  runtime_options.swap.pin_graph_hash = false;
  runtime_options.admission.max_concurrency = 2;
  runtime_options.admission.queue_depth = 2;
  runtime_options.admission.retry_after_ms = 1;
  runtime_options.breaker.failure_threshold = 3;
  runtime_options.breaker.cooldown_ms = 1;
  runtime_options.breaker.probe_retry.max_attempts = 1;
  serve::ServeRuntime runtime(runtime_options);

  // The per-generation oracle, keyed by provenance seed and grown as the
  // pipeline publishes. Entries are inserted BEFORE the runtime activates
  // the generation, so the request threads can never see an unknown seed.
  std::map<uint64_t, Expectation> expected;
  std::mutex expected_mu;

  std::atomic<int64_t> failures{0};
  std::mutex failure_mu;
  std::string first_failure;
  auto fail = [&](const std::string& message) {
    failures.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(failure_mu);
    if (first_failure.empty()) first_failure = message;
  };

  // The pipeline is NOT wired to the runtime: the soak activates published
  // artifacts itself so the oracle insert is ordered before the swap (and
  // so injected publish faults can never half-activate a generation).
  auto reopen = [&]() -> std::optional<stream::StreamPipeline> {
    auto opened = stream::StreamPipeline::Open(options);
    if (!opened.ok()) {
      fail("pipeline reopen failed: " + opened.status().ToString());
      return std::nullopt;
    }
    return std::move(opened).value();
  };

  // Publishes one snapshot, records its oracle entry, and swaps it live.
  // Returns false when Republish failed (an injected crash).
  auto publish = [&](stream::StreamPipeline* pipeline) -> bool {
    auto outcome = pipeline->Republish(probe_users, kTopN);
    if (!outcome.ok()) return false;
    auto engine = serving::ServingEngine::Load(outcome->artifact_path);
    if (!engine.ok()) {
      fail("published artifact does not load: " +
           engine.status().ToString());
      return true;
    }
    serving::ServeSpec spec;
    spec.mechanism = "Cluster";
    spec.epsilon = engine->model().provenance.epsilon;
    auto server = serving::MakeServeRecommender(&*engine, spec);
    if (!server.ok()) {
      fail("published artifact does not serve: " +
           server.status().ToString());
      return true;
    }
    Expectation e;
    e.lists = (*server)->Recommend(probe_users, kTopN).lists;
    e.fallback = core::TopNFromDense(engine->global_average(), kTopN);
    // The release the session emitted and what the artifact serves must be
    // the same bits — the artifact IS the release.
    if (!outcome->release.stale && outcome->release.lists != e.lists) {
      fail("release lists diverge from the published artifact's serving");
    }
    const uint64_t seed = engine->model().provenance.seed;
    {
      std::lock_guard<std::mutex> lock(expected_mu);
      expected[seed] = std::move(e);
    }
    Status swapped = runtime.Activate(outcome->artifact_path);
    // An open reload breaker (from a recent rollback drill) may fail this
    // swap fast; the previous epoch keeps serving, which is the contract.
    if (!swapped.ok() &&
        swapped.code() != StatusCode::kResourceExhausted) {
      fail("swap of a good artifact failed: " + swapped.ToString());
    }
    return true;
  };

  auto opened = reopen();
  ASSERT_TRUE(opened.has_value());
  std::optional<stream::StreamPipeline> pipeline = std::move(opened);

  // Prime the first generation so the request threads always have an
  // epoch to serve from.
  while (pipeline->RepublishDue().empty()) {
    ASSERT_TRUE(
        ApplyDelta(&*pipeline,
                   ScheduleRecord(pipeline->ingester().delta_records()))
            .ok());
  }
  ASSERT_TRUE(publish(&*pipeline));
  ASSERT_GT(runtime.swapper().current_epoch(), 0);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> served_ok{0};
  std::atomic<int64_t> degraded{0};
  auto worker = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      serve::ServeRequest request{probe_users, kTopN, /*deadline_ms=*/2000};
      serve::ServeResponse response = runtime.Handle(request);
      Expectation snapshot;
      {
        std::lock_guard<std::mutex> lock(expected_mu);
        auto it = expected.find(response.artifact_seed);
        if (it == expected.end()) {
          fail("response from unknown generation (seed " +
               std::to_string(response.artifact_seed) +
               "): an unpublished or corrupt artifact became visible");
          continue;
        }
        snapshot = it->second;
      }
      if (response.status.ok()) {
        if (response.epoch <= 0) {
          fail("ok response without an epoch id");
        } else if (response.batch.lists != snapshot.lists) {
          fail("torn or stale read: response bits do not match the "
               "generation that served it (seed " +
               std::to_string(response.artifact_seed) + ")");
        }
        served_ok.fetch_add(1, std::memory_order_relaxed);
      } else if (response.status.code() == StatusCode::kResourceExhausted ||
                 response.status.code() == StatusCode::kDeadlineExceeded) {
        if (response.degraded_fallback) {
          for (const core::RecommendationList& list : response.batch.lists) {
            if (list != snapshot.fallback) {
              fail("fallback ranking does not match the serving epoch's "
                   "global-average row");
              break;
            }
          }
          degraded.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        fail("unexpected serve status: " + response.status.ToString());
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(worker);

  // The fault rotations. Delta faults tear the WAL append/sync; publish
  // faults kill the intent→commit→mark protocol at each stage. Every
  // armed point lives only on this thread's pipeline path — the request
  // threads never touch the WAL, the ledger, or artifact writes.
  struct Fault {
    const char* point;
    fault::FaultKind kind;
  };
  const std::vector<Fault> delta_faults = {
      {"stream.wal.append", fault::FaultKind::kIoError},
      {"stream.wal.append", fault::FaultKind::kShortRead},
      {"stream.wal.sync", fault::FaultKind::kIoError},
  };
  const std::vector<Fault> publish_faults = {
      {"ledger.append", fault::FaultKind::kIoError},
      {"dynamic.after_journal", fault::FaultKind::kIoError},
      {"artifact.write", fault::FaultKind::kIoError},
      {"artifact.rename", fault::FaultKind::kIoError},
      {"ledger.append", fault::FaultKind::kShortRead},
  };

  const int64_t iterations = ChaosIterations();
  int64_t crashes = 0;
  int64_t publish_attempts = 0;
  int64_t rollback_drills = 0;
  size_t delta_rotation = 0;
  size_t publish_rotation = 0;
  std::string last_artifact;

  // Simulates the kill: the pipeline object dies mid-protocol, faults are
  // cleared (the "machine" came back), and the reopened pipeline must be
  // bit-identical to a shadow rebuilt from the schedule prefix. A pending
  // paid release is drained before any new delta, per the crash model.
  auto crash_and_recover = [&]() -> bool {
    pipeline.reset();
    fault::FaultInjector::Instance().Reset();
    auto recovered = reopen();
    if (!recovered.has_value()) return false;
    pipeline = std::move(recovered);
    ++crashes;

    const int64_t position = pipeline->ingester().delta_records();
    stream::EdgeStreamOptions shadow_options;
    shadow_options.num_users = kUsers;
    shadow_options.num_items = kItems;  // unjournaled shadow
    community::IncrementalCommunity shadow_community(kUsers,
                                                     options.community);
    auto shadow = stream::EdgeStreamIngester::Open(
        shadow_options,
        [&shadow_community](const stream::WalRecord& record,
                            const stream::EdgeStreamIngester&) {
          if (record.type == stream::WalRecordType::kAddSocial) {
            shadow_community.AddEdge(record.a, record.b);
          } else if (record.type == stream::WalRecordType::kRemoveSocial) {
            shadow_community.RemoveEdge(record.a, record.b);
          }
        });
    if (!shadow.ok()) {
      fail("shadow ingester failed: " + shadow.status().ToString());
      return false;
    }
    for (int64_t i = 0; i < position; ++i) {
      Status applied = shadow->Apply(ScheduleRecord(i));
      if (!applied.ok()) {
        fail("shadow replay failed: " + applied.ToString());
        return false;
      }
    }
    if (pipeline->ingester().GraphFingerprint() !=
        shadow->GraphFingerprint()) {
      fail("recovered graph fingerprint diverges from the schedule shadow "
           "at position " + std::to_string(position));
    }
    if (pipeline->community().labels() != shadow_community.labels()) {
      fail("recovered community labels diverge from the schedule shadow");
    }
    if (pipeline->HasPendingRelease()) {
      ++publish_attempts;
      if (!publish(&*pipeline)) {
        fail("draining the pending paid release failed without a fault");
        return false;
      }
    }
    return true;
  };

  for (int64_t iter = 0; iter < iterations && failures.load() == 0; ++iter) {
    // Roughly every 7th iteration, one delta-path fault.
    const bool arm_delta = iter % 7 == 3;
    if (arm_delta) {
      const Fault& f = delta_faults[delta_rotation++ % delta_faults.size()];
      fault::FaultInjector::Instance().ArmNth(f.point, f.kind, 1);
    }
    Status applied = ApplyDelta(
        &*pipeline, ScheduleRecord(pipeline->ingester().delta_records()));
    if (arm_delta) {
      if (applied.ok()) {
        // The sync fault can land on an un-synced append cadence; the
        // delta still applied. Clear the armed point and move on.
        fault::FaultInjector::Instance().Reset();
      } else if (!crash_and_recover()) {
        break;
      }
    } else if (!applied.ok()) {
      fail("unfaulted delta apply failed: " + applied.ToString());
      break;
    }

    // A clean restart (no fault, no torn state) every 83 iterations.
    if (iter % 83 == 82 && !crash_and_recover()) break;

    if (!pipeline->RepublishDue().empty()) {
      ++publish_attempts;
      const bool arm_publish = publish_attempts % 4 == 2;
      if (arm_publish) {
        const Fault& f =
            publish_faults[publish_rotation++ % publish_faults.size()];
        fault::FaultInjector::Instance().ArmNth(f.point, f.kind, 1);
      }
      const bool published = publish(&*pipeline);
      if (arm_publish) {
        if (!published) {
          if (!crash_and_recover()) break;
        } else {
          // The armed stage was not reached on this publish path (e.g. a
          // rename fault when the artifact reused a resumed file).
          fault::FaultInjector::Instance().Reset();
        }
      } else if (!published) {
        fail("unfaulted publish failed");
        break;
      }
    }

    // Rollback drill: push a corrupt artifact at the runtime; the live
    // epoch must not move.
    if (iter % 61 == 60 && !last_artifact.empty()) {
      ++rollback_drills;
      const int64_t epoch_before = runtime.swapper().current_epoch();
      std::string bytes = ReadAllBytes(last_artifact);
      if (bytes.size() > 400) {
        bytes[bytes.size() / 2] =
            static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
        const std::string corrupt = (dir / "corrupt.pvra").string();
        WriteAllBytes(corrupt, bytes);
        Status status = runtime.Activate(corrupt);
        if (status.ok()) {
          fail("corrupt artifact activated");
        } else if (runtime.swapper().current_epoch() != epoch_before) {
          fail("rollback drill moved the live epoch");
        }
      }
    }
    // Track the newest on-disk artifact for the drill.
    const int64_t snapshot = pipeline->session().snapshots_processed();
    if (snapshot > 0) {
      last_artifact = options.session.artifact_dir + "/snapshot_" +
                      std::to_string(snapshot - 1) + ".pvra";
    }
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  fault::FaultInjector::Instance().Reset();

  EXPECT_EQ(failures.load(), 0) << first_failure;
  EXPECT_GT(crashes, 0) << "the soak never exercised a crash";
  EXPECT_GT(publish_attempts, 2);
  EXPECT_GT(runtime.swapper().swaps(), 0);
  EXPECT_GT(served_ok.load(), 0) << "the request threads never got an "
                                    "ok response";
  if (iterations >= 400) {
    EXPECT_GT(rollback_drills, 0);
  }

  // The ledger is the authority on ε: the audit must be clean and its
  // replayed spend must equal the live accountant bit-for-bit. The crash
  // storms above may legitimately have charged MORE than a fault-free run
  // (at-least-once publication) — never twice for one intent.
  ASSERT_TRUE(pipeline.has_value());
  auto audit = dp::AuditLedgerReplay(options.session.ledger_path);
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  EXPECT_TRUE(audit->ok()) << audit->ToString();
  EXPECT_EQ(audit->epsilon_spent, pipeline->session().epsilon_spent());
  EXPECT_EQ(audit->commits, pipeline->session().snapshots_processed());
  EXPECT_EQ(audit->uncommitted, 0);
}

}  // namespace
}  // namespace privrec
