// Tests for the deterministic parallel execution layer (common/parallel.h):
// chunking edge cases, error propagation as Status, and — the contract the
// DP mechanisms depend on — thread-count invariance: for a fixed input and
// seed, similarity workloads, noisy cluster-average publication and full
// NDCG evaluation are bit-identical for any --threads value, including 1.

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "core/exact_recommender.h"
#include "data/synthetic.h"
#include "dp/mechanisms.h"
#include "eval/exact_reference.h"
#include "eval/experiment.h"
#include "similarity/common_neighbors.h"
#include "similarity/katz.h"
#include "similarity/workload.h"

namespace privrec {
namespace {

// The thread counts the invariance suite sweeps; includes 1 (the serial
// reference), a power of two, a prime that never divides the ranges
// evenly, and whatever this machine actually has.
std::vector<int64_t> ThreadCounts() {
  return {1, 2, 7, HardwareThreads()};
}

// ----------------------------------------------------------- chunking

TEST(ChunkingTest, DefaultChunkSizeIsPureFunctionOfN) {
  EXPECT_EQ(DefaultChunkSize(0), 1);
  EXPECT_EQ(DefaultChunkSize(1), 1);
  EXPECT_EQ(DefaultChunkSize(kDefaultTargetChunks), 1);
  EXPECT_EQ(DefaultChunkSize(kDefaultTargetChunks + 1), 2);
  EXPECT_EQ(DefaultChunkSize(10 * kDefaultTargetChunks), 10);
  // Never depends on the global thread count.
  ScopedThreadCount scoped(13);
  EXPECT_EQ(DefaultChunkSize(10 * kDefaultTargetChunks), 10);
}

TEST(ChunkingTest, NumChunksCoversTheRangeExactly) {
  EXPECT_EQ(NumChunks(0, 4), 0);
  EXPECT_EQ(NumChunks(1, 4), 1);
  EXPECT_EQ(NumChunks(8, 4), 2);
  EXPECT_EQ(NumChunks(9, 4), 3);
}

// ---------------------------------------------------------- ParallelFor

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  int64_t calls = 0;
  Status s = ParallelFor(0, [&](int64_t, int64_t, int64_t) { ++calls; });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const int64_t n = 1000;
  for (int64_t threads : ThreadCounts()) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    Status s = ParallelFor(
        n, ParallelOptions{.threads = threads},
        [&](int64_t, int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            hits[static_cast<size_t>(i)].fetch_add(1);
          }
        });
    ASSERT_TRUE(s.ok());
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

TEST(ParallelForTest, RangeSmallerThanThreadCount) {
  const int64_t n = 3;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  Status s = ParallelFor(n, ParallelOptions{.threads = 16},
                         [&](int64_t, int64_t begin, int64_t end) {
                           for (int64_t i = begin; i < end; ++i) {
                             hits[static_cast<size_t>(i)].fetch_add(1);
                           }
                         });
  ASSERT_TRUE(s.ok());
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1);
  }
}

TEST(ParallelForTest, ChunkBoundariesMatchChunkSize) {
  std::vector<std::pair<int64_t, int64_t>> ranges(4, {-1, -1});
  Status s = ParallelFor(
      10, ParallelOptions{.threads = 1, .chunk_size = 3},
      [&](int64_t chunk, int64_t begin, int64_t end) {
        ranges[static_cast<size_t>(chunk)] = {begin, end};
      });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(ranges[0], (std::pair<int64_t, int64_t>{0, 3}));
  EXPECT_EQ(ranges[1], (std::pair<int64_t, int64_t>{3, 6}));
  EXPECT_EQ(ranges[2], (std::pair<int64_t, int64_t>{6, 9}));
  EXPECT_EQ(ranges[3], (std::pair<int64_t, int64_t>{9, 10}));
}

TEST(ParallelForTest, ExceptionPropagatesAsInternalStatus) {
  for (int64_t threads : {int64_t{1}, int64_t{7}}) {
    Status s = ParallelFor(10, ParallelOptions{.threads = threads},
                           [&](int64_t, int64_t begin, int64_t) {
                             if (begin == 3) {
                               throw std::runtime_error("boom at three");
                             }
                           });
    EXPECT_EQ(s.code(), StatusCode::kInternal) << threads;
    EXPECT_NE(s.message().find("boom at three"), std::string::npos)
        << s.message();
  }
}

TEST(ParallelForTest, StatusReturningBodyPropagatesItsError) {
  Status s = ParallelFor(
      5, ParallelOptions{.threads = 2},
      [&](int64_t chunk, int64_t, int64_t) -> Status {
        if (chunk == 0) return Status::InvalidArgument("bad chunk zero");
        return Status::Ok();
      });
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad chunk zero");
}

TEST(ParallelForTest, NestedParallelForRunsSeriallyAndCompletes) {
  const int64_t n = 8;
  std::atomic<int64_t> total{0};
  Status s = ParallelFor(
      n, ParallelOptions{.threads = 4},
      [&](int64_t, int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          Status inner =
              ParallelFor(3, ParallelOptions{.threads = 4},
                          [&](int64_t, int64_t b, int64_t e) {
                            total.fetch_add(e - b);
                          });
          ASSERT_TRUE(inner.ok());
        }
      });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(total.load(), n * 3);
}

// ------------------------------------------------------- ParallelReduce

TEST(ParallelReduceTest, OrderedFoldIsBitIdenticalAcrossThreadCounts) {
  // Doubles with wildly mixed magnitudes, where FP addition order matters.
  Rng rng(7);
  const int64_t n = 5000;
  std::vector<double> values(static_cast<size_t>(n));
  for (double& v : values) {
    v = rng.Laplace(1.0) * std::pow(10.0, rng.UniformInt(0, 12));
  }
  auto sum_at = [&](int64_t threads) {
    Result<double> r = ParallelReduce(
        n, ParallelOptions{.threads = threads}, 0.0,
        [&](int64_t, int64_t begin, int64_t end) {
          double acc = 0.0;
          for (int64_t i = begin; i < end; ++i) {
            acc += values[static_cast<size_t>(i)];
          }
          return acc;
        },
        [](double& acc, double part) { acc += part; });
    EXPECT_TRUE(r.ok());
    return *r;
  };
  const double reference = sum_at(1);
  for (int64_t threads : ThreadCounts()) {
    EXPECT_EQ(sum_at(threads), reference) << "threads=" << threads;
  }
}

TEST(ParallelReduceTest, EmptyRangeReturnsInit) {
  Result<double> r = ParallelReduce(
      0, ParallelOptions{}, 42.0,
      [](int64_t, int64_t, int64_t) { return 1.0; },
      [](double& acc, double part) { acc += part; });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42.0);
}

TEST(ParallelReduceTest, MapExceptionSurfacesAsStatus) {
  Result<double> r = ParallelReduce(
      10, ParallelOptions{.threads = 3}, 0.0,
      [](int64_t, int64_t begin, int64_t) -> double {
        if (begin >= 5) throw std::runtime_error("map failed");
        return 1.0;
      },
      [](double& acc, double part) { acc += part; });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ParallelSumTest, MatchesSerialLeftFoldForSmallRanges) {
  // For n <= kDefaultTargetChunks the default chunk size is 1, making the
  // ordered fold exactly the serial left-to-right sum.
  Rng rng(8);
  std::vector<double> values(200);
  for (double& v : values) v = rng.Normal();
  double serial = 0.0;
  for (double v : values) serial += v;
  for (int64_t threads : ThreadCounts()) {
    ScopedThreadCount scoped(threads);
    double parallel = ParallelSum(
        static_cast<int64_t>(values.size()),
        [&](int64_t i) { return values[static_cast<size_t>(i)]; });
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

// -------------------------------------------------------------- SplitRng

TEST(SplitRngTest, StreamsAreReproducibleAndDistinct) {
  SplitRng a(1234, 0);
  SplitRng b(1234, 0);
  Rng s0a = a.StreamFor(0);
  Rng s0b = b.StreamFor(0);
  Rng s1 = a.StreamFor(1);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(s0a.Next(), s0b.Next());
  }
  // Different stream ids and different invocations decorrelate.
  Rng s0c = SplitRng(1234, 1).StreamFor(0);
  int same_as_s1 = 0;
  int same_as_inv1 = 0;
  Rng s0 = SplitRng(1234, 0).StreamFor(0);
  for (int i = 0; i < 64; ++i) {
    uint64_t x = s0.Next();
    if (x == s1.Next()) ++same_as_s1;
    if (x == s0c.Next()) ++same_as_inv1;
  }
  EXPECT_EQ(same_as_s1, 0);
  EXPECT_EQ(same_as_inv1, 0);
}

// ------------------------------------------- thread-count invariance

struct InvarianceFixture {
  data::Dataset dataset;
  community::LouvainResult louvain;

  // 300 users: more than kDefaultTargetChunks, so the workload sweep
  // exercises chunks holding several users each.
  InvarianceFixture()
      : dataset(data::MakeTinyDataset(300, 120, 41)),
        louvain(community::RunLouvain(dataset.social,
                                      {.restarts = 2, .seed = 42})) {}
};

InvarianceFixture& Fixture() {
  static InvarianceFixture& f = *new InvarianceFixture();
  return f;
}

// Bitwise workload equality: layout, entries, and the FP statistics.
void ExpectWorkloadsIdentical(const similarity::SimilarityWorkload& a,
                              const similarity::SimilarityWorkload& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  EXPECT_EQ(a.measure_name(), b.measure_name());
  EXPECT_EQ(a.TotalEntries(), b.TotalEntries());
  EXPECT_EQ(a.MaxColumnSum(), b.MaxColumnSum());  // exact, not NEAR
  EXPECT_EQ(a.MaxEntry(), b.MaxEntry());
  for (graph::NodeId u = 0; u < a.num_users(); ++u) {
    auto ra = a.Row(u);
    auto rb = b.Row(u);
    ASSERT_EQ(ra.size(), rb.size()) << "user " << u;
    for (size_t k = 0; k < ra.size(); ++k) {
      EXPECT_EQ(ra[k].user, rb[k].user) << "user " << u;
      EXPECT_EQ(ra[k].score, rb[k].score) << "user " << u;  // bitwise
    }
  }
}

TEST(ThreadInvarianceTest, SimilarityWorkloadIsBitIdentical) {
  InvarianceFixture& f = Fixture();
  similarity::CommonNeighbors cn;
  similarity::Katz katz(3, 0.05);
  for (const similarity::SimilarityMeasure* measure :
       {static_cast<const similarity::SimilarityMeasure*>(&cn),
        static_cast<const similarity::SimilarityMeasure*>(&katz)}) {
    ScopedThreadCount baseline(1);
    similarity::SimilarityWorkload reference =
        similarity::SimilarityWorkload::Compute(f.dataset.social, *measure);
    for (int64_t threads : ThreadCounts()) {
      ScopedThreadCount scoped(threads);
      similarity::SimilarityWorkload w =
          similarity::SimilarityWorkload::Compute(f.dataset.social,
                                                  *measure);
      ExpectWorkloadsIdentical(reference, w);
    }
  }
}

TEST(ThreadInvarianceTest, PartialWorkloadIsBitIdentical) {
  InvarianceFixture& f = Fixture();
  similarity::CommonNeighbors cn;
  std::vector<graph::NodeId> store = {0, 17, 33, 128, 299};
  ScopedThreadCount baseline(1);
  similarity::SimilarityWorkload reference =
      similarity::SimilarityWorkload::ComputeForUsers(f.dataset.social, cn,
                                                      store);
  for (int64_t threads : ThreadCounts()) {
    ScopedThreadCount scoped(threads);
    similarity::SimilarityWorkload w =
        similarity::SimilarityWorkload::ComputeForUsers(f.dataset.social,
                                                        cn, store);
    ExpectWorkloadsIdentical(reference, w);
  }
}

TEST(ThreadInvarianceTest, NoisyClusterAveragesAreBitIdentical) {
  InvarianceFixture& f = Fixture();
  similarity::CommonNeighbors cn;
  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::Compute(f.dataset.social, cn);
  core::RecommenderContext context{&f.dataset.social, &f.dataset.preferences,
                                   &workload};
  auto averages_at = [&](int64_t threads, int invocations) {
    ScopedThreadCount scoped(threads);
    core::ClusterRecommender rec(context, f.louvain.partition,
                                 {.epsilon = 0.5, .seed = 77});
    std::vector<double> last;
    for (int k = 0; k < invocations; ++k) {
      last = rec.ComputeNoisyClusterAverages();
    }
    return last;
  };
  // First AND a later invocation: the split streams must be invariant for
  // every value of the invocation counter, with real Laplace noise drawn.
  const std::vector<double> ref1 = averages_at(1, 1);
  const std::vector<double> ref3 = averages_at(1, 3);
  EXPECT_NE(ref1, ref3);  // fresh noise per invocation
  for (int64_t threads : ThreadCounts()) {
    EXPECT_EQ(averages_at(threads, 1), ref1) << "threads=" << threads;
    EXPECT_EQ(averages_at(threads, 3), ref3) << "threads=" << threads;
  }
}

TEST(ThreadInvarianceTest, ClusterRecommendationsAndReportsAreIdentical) {
  InvarianceFixture& f = Fixture();
  similarity::CommonNeighbors cn;
  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::Compute(f.dataset.social, cn);
  core::RecommenderContext context{&f.dataset.social, &f.dataset.preferences,
                                   &workload};
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < f.dataset.social.num_nodes(); ++u) {
    users.push_back(u);
  }
  auto batch_at = [&](int64_t threads) {
    ScopedThreadCount scoped(threads);
    core::ClusterRecommender rec(context, f.louvain.partition,
                                 {.epsilon = 0.3, .seed = 99});
    return rec.RecommendWithReport(users, 10);
  };
  core::RecommendedBatch reference = batch_at(1);
  for (int64_t threads : ThreadCounts()) {
    core::RecommendedBatch batch = batch_at(threads);
    EXPECT_EQ(batch.lists, reference.lists) << "threads=" << threads;
    ASSERT_EQ(batch.degradation.size(), reference.degradation.size());
    for (size_t k = 0; k < batch.degradation.size(); ++k) {
      EXPECT_EQ(batch.degradation[k].reason,
                reference.degradation[k].reason);
    }
    EXPECT_EQ(batch.report.users_degraded, reference.report.users_degraded);
    EXPECT_EQ(batch.report.empty_clusters, reference.report.empty_clusters);
    EXPECT_EQ(batch.report.singleton_clusters,
              reference.report.singleton_clusters);
  }
}

TEST(ThreadInvarianceTest, ExactRecommenderListsAreIdentical) {
  InvarianceFixture& f = Fixture();
  similarity::CommonNeighbors cn;
  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::Compute(f.dataset.social, cn);
  core::RecommenderContext context{&f.dataset.social, &f.dataset.preferences,
                                   &workload};
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < f.dataset.social.num_nodes(); ++u) {
    users.push_back(u);
  }
  ScopedThreadCount baseline(1);
  core::ExactRecommender ref_rec(context);
  auto reference = ref_rec.Recommend(users, 20);
  for (int64_t threads : ThreadCounts()) {
    ScopedThreadCount scoped(threads);
    core::ExactRecommender rec(context);
    EXPECT_EQ(rec.Recommend(users, 20), reference)
        << "threads=" << threads;
  }
}

TEST(ThreadInvarianceTest, FullNdcgSweepIsBitIdentical) {
  InvarianceFixture& f = Fixture();
  similarity::CommonNeighbors cn;
  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::Compute(f.dataset.social, cn);
  core::RecommenderContext context{&f.dataset.social, &f.dataset.preferences,
                                   &workload};
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < f.dataset.social.num_nodes(); u += 2) {
    users.push_back(u);
  }
  eval::ExactReference reference_eval =
      eval::ExactReference::Compute(context, users, 20);

  eval::SweepOptions options;
  options.epsilons = {dp::kEpsilonInfinity, 1.0, 0.1};
  options.ns = {5, 20};
  options.trials = 3;
  options.seed = 500;
  auto factory = [&](double epsilon, uint64_t seed) {
    return std::make_unique<core::ClusterRecommender>(
        context, f.louvain.partition,
        core::ClusterRecommenderOptions{.epsilon = epsilon, .seed = seed});
  };

  auto sweep_at = [&](int64_t threads) {
    ScopedThreadCount scoped(threads);
    return eval::RunNdcgSweep(factory, reference_eval, options);
  };
  std::vector<eval::SweepCell> reference = sweep_at(1);
  for (int64_t threads : ThreadCounts()) {
    std::vector<eval::SweepCell> cells = sweep_at(threads);
    ASSERT_EQ(cells.size(), reference.size()) << "threads=" << threads;
    for (size_t k = 0; k < cells.size(); ++k) {
      EXPECT_EQ(cells[k].epsilon, reference[k].epsilon);
      EXPECT_EQ(cells[k].n, reference[k].n);
      // Bitwise: the whole pipeline — noise draws, utility sums, NDCG
      // averages — must not depend on the thread count.
      EXPECT_EQ(cells[k].mean_ndcg, reference[k].mean_ndcg)
          << "threads=" << threads << " cell " << k;
      EXPECT_EQ(cells[k].stddev_ndcg, reference[k].stddev_ndcg)
          << "threads=" << threads << " cell " << k;
    }
  }
}

TEST(ThreadInvarianceTest, ExactReferenceIsBitIdentical) {
  InvarianceFixture& f = Fixture();
  similarity::CommonNeighbors cn;
  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::Compute(f.dataset.social, cn);
  core::RecommenderContext context{&f.dataset.social, &f.dataset.preferences,
                                   &workload};
  std::vector<graph::NodeId> users;
  for (graph::NodeId u = 0; u < f.dataset.social.num_nodes(); ++u) {
    users.push_back(u);
  }
  ScopedThreadCount baseline(1);
  eval::ExactReference reference =
      eval::ExactReference::Compute(context, users, 15);
  core::ExactRecommender rec(context);
  auto lists = rec.Recommend(users, 15);
  const double ref_ndcg = reference.MeanNdcg(lists);
  for (int64_t threads : ThreadCounts()) {
    ScopedThreadCount scoped(threads);
    eval::ExactReference other =
        eval::ExactReference::Compute(context, users, 15);
    for (graph::NodeId u : users) {
      EXPECT_EQ(other.IdealDcg(u, 15), reference.IdealDcg(u, 15));
    }
    EXPECT_EQ(other.MeanNdcg(lists), ref_ndcg) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace privrec
