// End-to-end integration tests: the full pipeline (generate data, compute
// similarities, cluster, recommend privately, score NDCG) for every
// (measure, mechanism) combination, plus the paper's qualitative ordering
// claims on a small dataset.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "core/exact_recommender.h"
#include "core/group_smooth_recommender.h"
#include "core/low_rank_recommender.h"
#include "core/noe_recommender.h"
#include "core/nou_recommender.h"
#include "data/synthetic.h"
#include "dp/mechanisms.h"
#include "eval/exact_reference.h"
#include "similarity/adamic_adar.h"
#include "similarity/common_neighbors.h"
#include "similarity/graph_distance.h"
#include "similarity/katz.h"

namespace privrec {
namespace {

using core::RecommenderContext;
using graph::NodeId;

std::unique_ptr<similarity::SimilarityMeasure> MakeMeasure(
    const std::string& name) {
  if (name == "CN") return std::make_unique<similarity::CommonNeighbors>();
  if (name == "AA") return std::make_unique<similarity::AdamicAdar>();
  if (name == "GD") return std::make_unique<similarity::GraphDistance>(2);
  return std::make_unique<similarity::Katz>(3, 0.05);
}

class PipelineTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    dataset_ = data::MakeTinyDataset(250, 200, 12);
    measure_ = MakeMeasure(GetParam());
    workload_ =
        similarity::SimilarityWorkload::Compute(dataset_.social, *measure_);
    context_ = {&dataset_.social, &dataset_.preferences, &workload_};
    for (NodeId u = 0; u < dataset_.social.num_nodes(); ++u) {
      users_.push_back(u);
    }
    louvain_ =
        community::RunLouvain(dataset_.social, {.restarts = 3, .seed = 13});
  }

  data::Dataset dataset_;
  std::unique_ptr<similarity::SimilarityMeasure> measure_;
  similarity::SimilarityWorkload workload_;
  RecommenderContext context_;
  std::vector<NodeId> users_;
  community::LouvainResult louvain_;
};

TEST_P(PipelineTest, EveryMechanismProducesValidBoundedNdcg) {
  eval::ExactReference ref =
      eval::ExactReference::Compute(context_, users_, 10);

  std::vector<std::unique_ptr<core::Recommender>> mechanisms;
  mechanisms.push_back(std::make_unique<core::ClusterRecommender>(
      context_, louvain_.partition,
      core::ClusterRecommenderOptions{.epsilon = 0.5, .seed = 14}));
  mechanisms.push_back(std::make_unique<core::NouRecommender>(
      context_, core::NouRecommenderOptions{.epsilon = 0.5, .seed = 14}));
  mechanisms.push_back(std::make_unique<core::NoeRecommender>(
      context_, core::NoeRecommenderOptions{.epsilon = 0.5, .seed = 14}));
  mechanisms.push_back(std::make_unique<core::GroupSmoothRecommender>(
      context_, core::GroupSmoothRecommenderOptions{
                    .epsilon = 0.5, .group_size = 32, .seed = 14}));
  mechanisms.push_back(std::make_unique<core::LowRankRecommender>(
      context_, core::LowRankRecommenderOptions{
                    .epsilon = 0.5, .target_rank = 60, .seed = 14}));

  for (auto& mech : mechanisms) {
    auto lists = mech->Recommend(users_, 10);
    ASSERT_EQ(lists.size(), users_.size()) << mech->Name();
    double ndcg = ref.MeanNdcg(lists);
    EXPECT_GE(ndcg, 0.0) << mech->Name();
    EXPECT_LE(ndcg, 1.0 + 1e-9) << mech->Name();
    for (const auto& list : lists) {
      EXPECT_LE(list.size(), 10u) << mech->Name();
    }
  }
}

TEST_P(PipelineTest, ClusterFrameworkApproximationErrorIsModest) {
  // eps = inf isolates approximation error; the paper reports NDCG@50
  // >= ~0.8 on both datasets. On the tiny graph we expect a clearly
  // non-trivial score.
  eval::ExactReference ref =
      eval::ExactReference::Compute(context_, users_, 10);
  core::ClusterRecommender rec(
      context_, louvain_.partition,
      {.epsilon = dp::kEpsilonInfinity, .seed = 15});
  double ndcg = ref.MeanNdcg(rec.Recommend(users_, 10));
  EXPECT_GT(ndcg, 0.55) << "approximation error too high for "
                        << GetParam();
}

TEST_P(PipelineTest, ClusterBeatsNouAndNoeAtModeratePrivacy) {
  // The paper's Figure 4 ordering: Cluster >> NOE > NOU at eps = 0.1..1.
  eval::ExactReference ref =
      eval::ExactReference::Compute(context_, users_, 10);
  const double eps = 0.2;
  auto mean_over_trials = [&](auto&& make) {
    double acc = 0.0;
    for (uint64_t t = 0; t < 3; ++t) {
      auto rec = make(t);
      acc += ref.MeanNdcg(rec->Recommend(users_, 10));
    }
    return acc / 3.0;
  };
  double cluster = mean_over_trials([&](uint64_t t) {
    return std::make_unique<core::ClusterRecommender>(
        context_, louvain_.partition,
        core::ClusterRecommenderOptions{.epsilon = eps, .seed = 16 + t});
  });
  double nou = mean_over_trials([&](uint64_t t) {
    return std::make_unique<core::NouRecommender>(
        context_, core::NouRecommenderOptions{.epsilon = eps,
                                              .seed = 16 + t});
  });
  EXPECT_GT(cluster, nou + 0.1) << GetParam();
}

TEST_P(PipelineTest, SingletonClustersWithoutNoiseMatchExactForEveryMeasure) {
  // The Algorithm-1 degeneracy must hold for every similarity measure:
  // singleton clusters at eps = inf reproduce the exact rankings.
  core::ClusterRecommender degenerate(
      context_,
      community::Partition::Singletons(dataset_.social.num_nodes()),
      {.epsilon = dp::kEpsilonInfinity, .seed = 30});
  core::ExactRecommender exact(context_);
  std::vector<NodeId> sample = {0, 25, 50, 75, 100};
  auto noisy = degenerate.Recommend(sample, 10);
  auto truth = exact.Recommend(sample, 10);
  for (size_t k = 0; k < sample.size(); ++k) {
    for (size_t p = 0; p < truth[k].size(); ++p) {
      EXPECT_EQ(noisy[k][p].item, truth[k][p].item)
          << GetParam() << " user " << sample[k] << " pos " << p;
      EXPECT_NEAR(noisy[k][p].utility, truth[k][p].utility, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, PipelineTest,
                         ::testing::Values("CN", "AA", "GD", "KZ"),
                         [](const auto& info) { return info.param; });

// ------------------------------------------------------- non-parameterized

TEST(IntegrationTest, FullPipelineIsDeterministicEndToEnd) {
  auto run_once = []() {
    data::Dataset d = data::MakeTinyDataset(150, 120, 19);
    auto workload = similarity::SimilarityWorkload::Compute(
        d.social, similarity::CommonNeighbors());
    RecommenderContext ctx{&d.social, &d.preferences, &workload};
    auto louvain = community::RunLouvain(d.social, {.restarts = 2,
                                                    .seed = 20});
    core::ClusterRecommender rec(ctx, louvain.partition,
                                 {.epsilon = 0.3, .seed = 21});
    std::vector<NodeId> users = {0, 10, 20, 30};
    return rec.Recommend(users, 8);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(IntegrationTest, FlixsterLikePipelineWithSubsetWorkload) {
  // Exercises the ComputeForUsers memory-bounded path used by the Figure 2
  // bench: recommendations for a user subset only.
  data::SyntheticFlixsterOptions opt;
  opt.num_users = 1500;
  opt.num_items = 800;
  data::Dataset d = data::MakeSyntheticFlixster(opt);
  std::vector<NodeId> eval_users;
  for (NodeId u = 0; u < 100; ++u) eval_users.push_back(u * 15);
  auto workload = similarity::SimilarityWorkload::ComputeForUsers(
      d.social, similarity::AdamicAdar(), eval_users);
  RecommenderContext ctx{&d.social, &d.preferences, &workload};
  auto louvain = community::RunLouvain(d.social, {.restarts = 2,
                                                  .seed = 23});
  eval::ExactReference ref =
      eval::ExactReference::Compute(ctx, eval_users, 10);
  core::ClusterRecommender rec(ctx, louvain.partition,
                               {.epsilon = 0.1, .seed = 24});
  double ndcg = ref.MeanNdcg(rec.Recommend(eval_users, 10));
  EXPECT_GT(ndcg, 0.2);
  EXPECT_LE(ndcg, 1.0 + 1e-9);
}

TEST(IntegrationTest, LowDegreeUsersSufferMoreApproximationError) {
  // Figure 3's effect: at eps = inf, users with degree <= 10 average lower
  // NDCG than users with degree > 10.
  data::Dataset d = data::MakeTinyDataset(400, 300, 25);
  auto workload = similarity::SimilarityWorkload::Compute(
      d.social, similarity::CommonNeighbors());
  RecommenderContext ctx{&d.social, &d.preferences, &workload};
  auto louvain = community::RunLouvain(d.social, {.restarts = 3,
                                                  .seed = 26});
  std::vector<NodeId> users;
  for (NodeId u = 0; u < d.social.num_nodes(); ++u) users.push_back(u);
  eval::ExactReference ref = eval::ExactReference::Compute(ctx, users, 10);
  core::ClusterRecommender rec(ctx, louvain.partition,
                               {.epsilon = dp::kEpsilonInfinity,
                                .seed = 27});
  auto lists = rec.Recommend(users, 10);
  double low_sum = 0.0;
  double high_sum = 0.0;
  int64_t low_count = 0;
  int64_t high_count = 0;
  for (size_t k = 0; k < users.size(); ++k) {
    double ndcg = ref.Ndcg(users[k], lists[k]);
    if (d.social.Degree(users[k]) <= 10) {
      low_sum += ndcg;
      ++low_count;
    } else {
      high_sum += ndcg;
      ++high_count;
    }
  }
  ASSERT_GT(low_count, 0);
  ASSERT_GT(high_count, 0);
  EXPECT_GT(high_sum / static_cast<double>(high_count),
            low_sum / static_cast<double>(low_count));
}

}  // namespace
}  // namespace privrec
