// Tests for the two-phase build/serve split: .pvra round-trip bit-identity
// for every mechanism at every thread count, byte-determinism of the saved
// container, the compatibility gates (version / graph / ε-provenance, each
// with its own status code), corruption robustness, and the privacy
// isolation of the serving layer.

// The isolation guarantee, checked at the include level: the serving
// headers are included FIRST, and must not (transitively) pull in the
// private graph containers. The CMake side of the same guarantee forbids
// privrec_serving from linking privrec_graph.
#include "artifact/format.h"
#include "artifact/model.h"
#include "artifact/model_io.h"
#include "artifact/reconstruct.h"
#include "artifact/serving.h"

#if defined(PRIVREC_GRAPH_PREFERENCE_GRAPH_H_) || \
    defined(PRIVREC_GRAPH_SOCIAL_GRAPH_H_)
#error "serving headers must not include the private graph containers"
#endif

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "artifact/builder.h"
#include "common/fault_injection.h"
#include "common/parallel.h"
#include "community/louvain.h"
#include "core/dynamic_recommender.h"
#include "core/recommender_factory.h"
#include "data/synthetic.h"
#include "similarity/common_neighbors.h"

namespace privrec {
namespace {

namespace fs = std::filesystem;

using core::RecommendationList;

std::string ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

class ArtifactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("privrec_artifact_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    dataset_ = data::MakeTinyDataset(/*num_users=*/120, /*num_items=*/80,
                                     /*seed=*/7);
    workload_ = similarity::SimilarityWorkload::Compute(
        dataset_.social, similarity::CommonNeighbors());
    context_ = {&dataset_.social, &dataset_.preferences, &workload_};
    louvain_ = community::RunLouvain(dataset_.social,
                                     {.restarts = 2, .seed = 3});
    for (graph::NodeId u = 0; u < dataset_.social.num_nodes(); ++u) {
      users_.push_back(u);
    }
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  artifact::ModelArtifactBuilder MakeBuilder() {
    artifact::ModelArtifactBuilder builder(&dataset_.social,
                                           &dataset_.preferences);
    builder.SetPartition(&louvain_.partition);
    builder.SetWorkload(&workload_);
    return builder;
  }

  // Build (advancing the builder's publisher invocation), save, load, and
  // serve one batch — the full offline→online round trip.
  std::vector<RecommendationList> BuildSaveLoadServe(
      artifact::ModelArtifactBuilder& builder,
      const artifact::BuildOptions& build_options,
      const serving::ServeSpec& spec, const std::string& name) {
    auto model = builder.Build(build_options);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    const std::string path = Path(name);
    Status saved = serving::SaveArtifact(*model, path);
    EXPECT_TRUE(saved.ok()) << saved.ToString();
    auto engine = serving::ServingEngine::Load(path);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    auto server = serving::MakeServeRecommender(&*engine, spec);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return (*server)->Recommend(users_, kTopN).lists;
  }

  static constexpr int64_t kTopN = 10;
  static constexpr double kEps = 0.7;
  static constexpr uint64_t kSeed = 42;

  fs::path dir_;
  data::Dataset dataset_;
  similarity::SimilarityWorkload workload_;
  core::RecommenderContext context_;
  community::LouvainResult louvain_;
  std::vector<graph::NodeId> users_;
};

// ------------------------------------------------------------ bit-identity

// The paper's mechanism: the A_w release is frozen at build time, so the
// k-th Build+serve must reproduce the k-th Recommend of a fresh in-memory
// recommender — at every thread count, through an actual file.
TEST_F(ArtifactTest, ClusterRoundTripBitIdentityAcrossThreadCounts) {
  // Reference: two successive in-memory releases at one thread.
  std::vector<std::vector<RecommendationList>> reference;
  {
    ScopedThreadCount baseline(1);
    core::ClusterRecommender rec(context_, louvain_.partition,
                                 {.epsilon = kEps, .seed = kSeed});
    reference.push_back(rec.Recommend(users_, kTopN));
    reference.push_back(rec.Recommend(users_, kTopN));
  }

  serving::ServeSpec spec;
  spec.mechanism = "Cluster";
  spec.epsilon = kEps;
  for (int64_t threads : {int64_t{1}, int64_t{2}, HardwareThreads()}) {
    ScopedThreadCount scoped(threads);
    // In-memory stays thread-invariant...
    core::ClusterRecommender rec(context_, louvain_.partition,
                                 {.epsilon = kEps, .seed = kSeed});
    EXPECT_EQ(rec.Recommend(users_, kTopN), reference[0]) << threads;
    EXPECT_EQ(rec.Recommend(users_, kTopN), reference[1]) << threads;
    // ...and so does the build→save→load→serve route, invocation by
    // invocation.
    artifact::ModelArtifactBuilder builder = MakeBuilder();
    artifact::BuildOptions build_options;
    build_options.epsilon = kEps;
    build_options.seed = kSeed;
    EXPECT_EQ(BuildSaveLoadServe(builder, build_options, spec, "c0.pvra"),
              reference[0])
        << threads;
    EXPECT_EQ(BuildSaveLoadServe(builder, build_options, spec, "c1.pvra"),
              reference[1])
        << threads;
  }
}

// The reference baselines draw fresh noise at serve time: the k-th call of
// a served artifact must equal the k-th call of a fresh in-memory
// recommender with the same seed.
TEST_F(ArtifactTest, BaselinesRoundTripBitIdentityAcrossThreadCounts) {
  artifact::ModelArtifactBuilder builder = MakeBuilder();
  artifact::BuildOptions build_options;
  build_options.epsilon = kEps;
  build_options.seed = kSeed;
  build_options.include_reference_sections = true;
  build_options.include_lowrank = true;
  build_options.lrm_target_rank = 16;
  build_options.lrm_seed = kSeed;
  auto model = builder.Build(build_options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const std::string path = Path("full.pvra");
  ASSERT_TRUE(serving::SaveArtifact(*model, path).ok());

  for (const char* mechanism : {"Exact", "NOU", "NOE", "GS", "LRM"}) {
    // Reference: two successive calls at one thread.
    std::vector<std::vector<RecommendationList>> reference;
    core::RecommenderSpec mem_spec;
    mem_spec.mechanism = mechanism;
    mem_spec.epsilon = kEps;
    mem_spec.seed = kSeed;
    mem_spec.gs_group_size = 8;
    mem_spec.lrm_target_rank = 16;
    {
      ScopedThreadCount baseline(1);
      auto rec = core::MakeRecommender(context_, mem_spec);
      ASSERT_TRUE(rec.ok()) << rec.status().ToString();
      reference.push_back((*rec)->Recommend(users_, kTopN));
      reference.push_back((*rec)->Recommend(users_, kTopN));
    }
    for (int64_t threads : {int64_t{1}, int64_t{2}, HardwareThreads()}) {
      ScopedThreadCount scoped(threads);
      auto engine = serving::ServingEngine::Load(path);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      serving::ServeSpec spec;
      spec.mechanism = mechanism;
      spec.epsilon = kEps;
      spec.seed = kSeed;
      spec.gs_group_size = 8;
      auto server = serving::MakeServeRecommender(&*engine, spec);
      ASSERT_TRUE(server.ok()) << server.status().ToString();
      EXPECT_EQ((*server)->Recommend(users_, kTopN).lists, reference[0])
          << mechanism << " threads=" << threads;
      EXPECT_EQ((*server)->Recommend(users_, kTopN).lists, reference[1])
          << mechanism << " threads=" << threads;
    }
  }
}

// Two independent builders with identical options must emit identical
// bytes, even at different thread counts — .pvra files are reproducible
// build products (no timestamps, deterministic noise).
TEST_F(ArtifactTest, SavedBytesAreDeterministicAcrossThreadCounts) {
  artifact::BuildOptions build_options;
  build_options.epsilon = kEps;
  build_options.seed = kSeed;
  build_options.include_lowrank = true;
  build_options.lrm_target_rank = 8;

  std::string first;
  for (int64_t threads : {int64_t{1}, int64_t{2}, HardwareThreads()}) {
    ScopedThreadCount scoped(threads);
    artifact::ModelArtifactBuilder builder = MakeBuilder();
    auto model = builder.Build(build_options);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    const std::string path = Path("det_" + std::to_string(threads) + ".pvra");
    ASSERT_TRUE(serving::SaveArtifact(*model, path).ok());
    std::string bytes = ReadAllBytes(path);
    ASSERT_FALSE(bytes.empty());
    if (first.empty()) {
      first = bytes;
    } else {
      EXPECT_EQ(bytes, first) << "threads=" << threads;
    }
  }
}

// ------------------------------------------------------------------ gates

TEST_F(ArtifactTest, VersionGateRefusesFutureFormat) {
  artifact::ModelArtifactBuilder builder = MakeBuilder();
  auto model = builder.Build({.epsilon = kEps, .seed = kSeed});
  ASSERT_TRUE(model.ok());
  const std::string path = Path("v.pvra");
  ASSERT_TRUE(serving::SaveArtifact(*model, path).ok());

  // The version field is the u32 after the magic; bump it.
  std::string bytes = ReadAllBytes(path);
  ASSERT_GT(bytes.size(), 8u);
  bytes[4] = static_cast<char>(bytes[4] + 1);
  WriteAllBytes(path, bytes);

  auto engine = serving::ServingEngine::Load(path);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kVersionMismatch)
      << engine.status().ToString();
}

TEST_F(ArtifactTest, GraphGateRefusesMismatchedFingerprint) {
  artifact::ModelArtifactBuilder builder = MakeBuilder();
  auto model = builder.Build({.epsilon = kEps, .seed = kSeed});
  ASSERT_TRUE(model.ok());
  auto engine = serving::ServingEngine::FromModel(std::move(*model));
  ASSERT_TRUE(engine.ok());

  serving::ServeSpec spec;
  spec.mechanism = "Cluster";
  spec.epsilon = kEps;
  spec.expected_graph_hash = builder.graph_hash() ^ 1;
  auto server = serving::MakeServeRecommender(&*engine, spec);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kGraphMismatch)
      << server.status().ToString();

  spec.expected_graph_hash = builder.graph_hash();
  EXPECT_TRUE(serving::MakeServeRecommender(&*engine, spec).ok());
}

TEST_F(ArtifactTest, EpsilonGateRefusesForeignProvenance) {
  artifact::ModelArtifactBuilder builder = MakeBuilder();
  auto model = builder.Build({.epsilon = kEps, .seed = kSeed});
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model).provenance.epsilon, kEps);
  auto engine = serving::ServingEngine::FromModel(std::move(*model));
  ASSERT_TRUE(engine.ok());

  serving::ServeSpec spec;
  spec.mechanism = "Cluster";
  spec.epsilon = kEps + 0.1;  // not the ε this release paid
  auto server = serving::MakeServeRecommender(&*engine, spec);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kProvenanceMismatch)
      << server.status().ToString();
}

TEST_F(ArtifactTest, MissingSectionsAreFailedPreconditions) {
  artifact::ModelArtifactBuilder builder = MakeBuilder();
  artifact::BuildOptions build_options;
  build_options.epsilon = kEps;
  build_options.seed = kSeed;
  build_options.include_reference_sections = false;  // production shape
  auto model = builder.Build(build_options);
  ASSERT_TRUE(model.ok());
  auto engine = serving::ServingEngine::FromModel(std::move(*model));
  ASSERT_TRUE(engine.ok());

  for (const char* needs_preferences : {"Exact", "NOU", "NOE", "GS"}) {
    serving::ServeSpec spec;
    spec.mechanism = needs_preferences;
    spec.epsilon = kEps;
    auto server = serving::MakeServeRecommender(&*engine, spec);
    ASSERT_FALSE(server.ok()) << needs_preferences;
    EXPECT_EQ(server.status().code(), StatusCode::kFailedPrecondition)
        << needs_preferences;
  }
  serving::ServeSpec lrm;
  lrm.mechanism = "LRM";
  lrm.epsilon = kEps;
  auto server = serving::MakeServeRecommender(&*engine, lrm);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kFailedPrecondition);

  serving::ServeSpec unknown;
  unknown.mechanism = "Oracle";
  EXPECT_EQ(serving::MakeServeRecommender(&*engine, unknown).status().code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------- corruption

TEST_F(ArtifactTest, TruncatedFileIsAParseErrorNotACrash) {
  artifact::ModelArtifactBuilder builder = MakeBuilder();
  auto model = builder.Build({.epsilon = kEps, .seed = kSeed});
  ASSERT_TRUE(model.ok());
  const std::string path = Path("t.pvra");
  ASSERT_TRUE(serving::SaveArtifact(*model, path).ok());
  const std::string bytes = ReadAllBytes(path);

  // Every truncation point must fail cleanly with a section-naming parse
  // error (or version/magic error for header cuts), never crash or load.
  for (double frac : {0.02, 0.3, 0.6, 0.95}) {
    const std::string cut =
        bytes.substr(0, static_cast<size_t>(bytes.size() * frac));
    WriteAllBytes(path, cut);
    auto engine = serving::ServingEngine::Load(path);
    ASSERT_FALSE(engine.ok()) << "frac=" << frac;
    EXPECT_EQ(engine.status().code(), StatusCode::kParseError)
        << engine.status().ToString();
    EXPECT_NE(engine.status().message().find("artifact"), std::string::npos)
        << engine.status().ToString();
  }
}

TEST_F(ArtifactTest, BitFlipFailsTheSectionCrc) {
  artifact::ModelArtifactBuilder builder = MakeBuilder();
  auto model = builder.Build({.epsilon = kEps, .seed = kSeed});
  ASSERT_TRUE(model.ok());
  const std::string path = Path("b.pvra");
  ASSERT_TRUE(serving::SaveArtifact(*model, path).ok());
  const std::string bytes = ReadAllBytes(path);

  for (double frac : {0.2, 0.5, 0.9}) {
    std::string flipped = bytes;
    flipped[static_cast<size_t>(flipped.size() * frac)] ^= 0x10;
    WriteAllBytes(path, flipped);
    auto engine = serving::ServingEngine::Load(path);
    // A flip may land in a section-size field (truncation error) or a
    // payload (CRC error); silently loading damaged data is the only
    // unacceptable outcome.
    ASSERT_FALSE(engine.ok()) << "frac=" << frac;
    EXPECT_EQ(engine.status().code(), StatusCode::kParseError)
        << engine.status().ToString();
    EXPECT_NE(engine.status().message().find("artifact section"),
              std::string::npos)
        << engine.status().ToString();
  }
}

TEST_F(ArtifactTest, InjectedIoFaultsSurfaceAsStatusErrors) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault probes compiled out";
  artifact::ModelArtifactBuilder builder = MakeBuilder();
  auto model = builder.Build({.epsilon = kEps, .seed = kSeed});
  ASSERT_TRUE(model.ok());
  const std::string path = Path("f.pvra");

  {
    fault::ScopedFaultInjection scope(
        "artifact.open", fault::FaultSpec{.kind = fault::FaultKind::kIoError});
    EXPECT_EQ(serving::SaveArtifact(*model, path).code(),
              StatusCode::kIoError);
  }
  {
    fault::ScopedFaultInjection scope(
        "artifact.write",
        fault::FaultSpec{.kind = fault::FaultKind::kIoError});
    EXPECT_EQ(serving::SaveArtifact(*model, path).code(),
              StatusCode::kIoError);
  }
  ASSERT_TRUE(serving::SaveArtifact(*model, path).ok());
  {
    fault::ScopedFaultInjection scope(
        "artifact.open", fault::FaultSpec{.kind = fault::FaultKind::kIoError});
    EXPECT_EQ(serving::ServingEngine::Load(path).status().code(),
              StatusCode::kIoError);
  }
  {
    fault::ScopedFaultInjection scope(
        "artifact.read", fault::FaultSpec{.kind = fault::FaultKind::kIoError});
    EXPECT_EQ(serving::ServingEngine::Load(path).status().code(),
              StatusCode::kIoError);
  }
  {
    // A short read behaves exactly like a truncated file on disk.
    fault::ScopedFaultInjection scope(
        "artifact.read",
        fault::FaultSpec{.kind = fault::FaultKind::kShortRead});
    auto engine = serving::ServingEngine::Load(path);
    ASSERT_FALSE(engine.ok());
    EXPECT_EQ(engine.status().code(), StatusCode::kParseError)
        << engine.status().ToString();
  }
  EXPECT_TRUE(serving::ServingEngine::Load(path).ok());
}

TEST_F(ArtifactTest, NotAnArtifactFileIsRejectedByMagic) {
  const std::string path = Path("noise.pvra");
  WriteAllBytes(path, "definitely not a model artifact");
  auto engine = serving::ServingEngine::Load(path);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kParseError);
  EXPECT_EQ(serving::ServingEngine::Load(Path("missing.pvra")).status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------- factory

TEST_F(ArtifactTest, FactoryServesFromAnEngineBehindTheSameInterface) {
  artifact::ModelArtifactBuilder builder = MakeBuilder();
  auto model = builder.Build({.epsilon = kEps, .seed = kSeed});
  ASSERT_TRUE(model.ok());

  std::vector<RecommendationList> reference;
  {
    core::ClusterRecommender rec(context_, louvain_.partition,
                                 {.epsilon = kEps, .seed = kSeed});
    reference = rec.Recommend(users_, kTopN);
  }

  auto engine = serving::ServingEngine::FromModel(std::move(*model));
  ASSERT_TRUE(engine.ok());
  auto shared =
      std::make_shared<const serving::ServingEngine>(std::move(*engine));

  core::RecommenderSpec spec;
  spec.mechanism = "Cluster";
  spec.epsilon = kEps;
  spec.seed = kSeed;
  spec.expected_graph_hash = builder.graph_hash();

  // Non-owning path through MakeRecommender (context ignored)...
  spec.engine = shared.get();
  auto rec = core::MakeRecommender(context_, spec);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ((*rec)->Name(), "Cluster");
  EXPECT_EQ((*rec)->Recommend(users_, kTopN), reference);

  // ...and the engine-owning variant.
  spec.engine = nullptr;
  auto owning = core::MakeArtifactRecommender(shared, spec);
  ASSERT_TRUE(owning.ok()) << owning.status().ToString();
  EXPECT_EQ((*owning)->Recommend(users_, kTopN), reference);
}

// ---------------------------------------------------------------- dynamic

TEST_F(ArtifactTest, DynamicSessionArtifactRouteMatchesInMemory) {
  core::DynamicRecommenderOptions options;
  options.total_epsilon = 2.0;
  options.planned_snapshots = 4;
  options.seed = 11;
  core::DynamicRecommenderSession in_memory(options);
  options.artifact_dir = Path("snapshots");
  core::DynamicRecommenderSession two_phase(options);

  for (int64_t t = 0; t < 2; ++t) {
    auto a = in_memory.ProcessSnapshot(context_, users_, kTopN);
    auto b = two_phase.ProcessSnapshot(context_, users_, kTopN);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->lists, b->lists) << "snapshot " << t;
    EXPECT_EQ(a->epsilon_spent, b->epsilon_spent);
    // The snapshot's audit artifact landed on disk.
    EXPECT_TRUE(fs::exists(Path("snapshots/snapshot_" + std::to_string(t) +
                                ".pvra")));
  }
}

}  // namespace
}  // namespace privrec
