// Tests for the open-loop load harness (src/loadgen): schedule
// determinism and coordinated-omission safety, the latency recorder over
// the shared log-bucket grid, the SLO evaluator, the correctness oracle,
// and end-to-end RunVirtual determinism — same seed, bit-identical
// shed/expired/degraded counts across fresh runtime instances, with and
// without a swap storm.

#include "loadgen/harness.h"
#include "loadgen/oracle.h"
#include "loadgen/report.h"
#include "loadgen/schedule.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "artifact/builder.h"
#include "artifact/model_io.h"
#include "common/parallel.h"
#include "community/louvain.h"
#include "data/synthetic.h"
#include "obs/rolling_window.h"
#include "serve/clock.h"
#include "serve/runtime.h"
#include "serve/telemetry.h"
#include "similarity/common_neighbors.h"

namespace privrec {
namespace {

namespace fs = std::filesystem;

using loadgen::BuildSchedule;
using loadgen::EvaluateSlo;
using loadgen::LatencyRecorder;
using loadgen::LoadHarness;
using loadgen::LoadOracle;
using loadgen::LoadRunOptions;
using loadgen::LoadSpec;
using loadgen::LoadSummary;
using loadgen::ScheduledRequest;
using loadgen::SloBudget;
using loadgen::SloVerdict;
using loadgen::SwapStormSpec;

// ------------------------------------------------------------ schedule

LoadSpec SmallSpec() {
  LoadSpec spec;
  spec.rps = 800;
  spec.duration_ms = 500;
  spec.seed = 42;
  spec.num_users = 60;
  spec.users_per_request = 4;
  spec.top_n = 5;
  return spec;
}

TEST(LoadScheduleTest, SameSpecSameScheduleBitForBit) {
  const std::vector<ScheduledRequest> a = BuildSchedule(SmallSpec());
  const std::vector<ScheduledRequest> b = BuildSchedule(SmallSpec());
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 100u);  // ~800 rps x 0.5 s, burst-inflated
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].send_ms, b[i].send_ms);
    EXPECT_EQ(a[i].request.users, b[i].request.users);
    EXPECT_EQ(a[i].request.top_n, b[i].request.top_n);
    EXPECT_EQ(a[i].request.deadline_ms, b[i].request.deadline_ms);
  }
}

TEST(LoadScheduleTest, DifferentSeedsDifferentSchedules) {
  LoadSpec other = SmallSpec();
  other.seed = 43;
  const std::vector<ScheduledRequest> a = BuildSchedule(SmallSpec());
  const std::vector<ScheduledRequest> b = BuildSchedule(other);
  bool differs = a.size() != b.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].send_ms != b[i].send_ms ||
              a[i].request.users != b[i].request.users;
  }
  EXPECT_TRUE(differs);
}

TEST(LoadScheduleTest, SendTimesMonotoneAndShapesInRange) {
  const LoadSpec spec = SmallSpec();
  const std::vector<ScheduledRequest> schedule = BuildSchedule(spec);
  int64_t previous = 0;
  for (const ScheduledRequest& scheduled : schedule) {
    EXPECT_GE(scheduled.send_ms, previous);
    EXPECT_LT(scheduled.send_ms, spec.duration_ms);
    previous = scheduled.send_ms;
    EXPECT_EQ(static_cast<int64_t>(scheduled.request.users.size()),
              spec.users_per_request);
    for (graph::NodeId user : scheduled.request.users) {
      EXPECT_GE(user, 0);
      EXPECT_LT(user, spec.num_users);
    }
    EXPECT_GE(scheduled.request.top_n, 1);
    EXPECT_LE(scheduled.request.top_n, spec.top_n);
    EXPECT_TRUE(scheduled.request.deadline_ms == spec.deadline_short_ms ||
                scheduled.request.deadline_ms == spec.deadline_long_ms);
  }
}

TEST(LoadScheduleTest, BurstWindowsRunHotterThanSteadyState) {
  LoadSpec spec = SmallSpec();
  spec.rps = 1000;
  spec.duration_ms = 2000;
  spec.burst_factor = 8.0;
  spec.burst_period_ms = 500;
  spec.burst_duration_ms = 100;
  const std::vector<ScheduledRequest> schedule = BuildSchedule(spec);

  // Burst windows cover 1/5 of the timeline at 8x the base rate, so they
  // should hold well over their proportional share of arrivals.
  int64_t in_burst = 0;
  for (const ScheduledRequest& scheduled : schedule) {
    if (scheduled.send_ms % spec.burst_period_ms < spec.burst_duration_ms) {
      ++in_burst;
    }
  }
  EXPECT_GT(in_burst * 2, static_cast<int64_t>(schedule.size()));
}

TEST(LoadScheduleTest, DegenerateSpecsYieldEmptySchedules) {
  LoadSpec zero_rate = SmallSpec();
  zero_rate.rps = 0;
  EXPECT_TRUE(BuildSchedule(zero_rate).empty());
  LoadSpec zero_window = SmallSpec();
  zero_window.duration_ms = 0;
  EXPECT_TRUE(BuildSchedule(zero_window).empty());
}

// ------------------------------------------------------------ recorder

TEST(LatencyRecorderTest, QuantilesTrackObservations) {
  LatencyRecorder recorder;
  for (int i = 1; i <= 100; ++i) recorder.Observe(static_cast<double>(i));
  EXPECT_EQ(recorder.count(), 100);
  EXPECT_DOUBLE_EQ(recorder.mean(), 50.5);

  // Log-spaced buckets: quantiles are interpolations, so allow the bucket
  // width as tolerance rather than expecting exact order statistics.
  const double p50 = recorder.Quantile(0.50);
  const double p99 = recorder.Quantile(0.99);
  EXPECT_GT(p50, 30.0);
  EXPECT_LT(p50, 70.0);
  EXPECT_GT(p99, 80.0);
  EXPECT_LE(p99, 160.0);
  EXPECT_LE(p50, p99);
}

TEST(LatencyRecorderTest, MergeIsExactOverCounts) {
  LatencyRecorder a;
  LatencyRecorder b;
  LatencyRecorder whole;
  for (int i = 0; i < 50; ++i) {
    a.Observe(1.0 + i);
    whole.Observe(1.0 + i);
  }
  for (int i = 0; i < 50; ++i) {
    b.Observe(200.0 + i);
    whole.Observe(200.0 + i);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.sum(), whole.sum());
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), whole.Quantile(0.5));
  EXPECT_DOUBLE_EQ(a.Quantile(0.999), whole.Quantile(0.999));
}

// ------------------------------------------------------------ slo

LoadSummary PassingSummary() {
  LoadSummary summary;
  summary.scheduled = 100;
  summary.ok = 95;
  summary.shed = 5;
  for (int i = 0; i < 95; ++i) summary.latency.Observe(2.0);
  for (int i = 0; i < 5; ++i) summary.latency.Observe(40.0);
  summary.swap_attempts = 4;
  summary.swap_ok = 4;
  summary.makespan_ms = 1000.0;
  summary.Finalize();
  return summary;
}

TEST(SloTest, PassesWithinBudgets) {
  SloBudget budget;
  budget.p50_ms = 10.0;
  budget.p99_ms = 100.0;
  budget.max_shed_rate = 0.10;
  budget.max_rollback_rate = 0.0;
  SloVerdict verdict = EvaluateSlo(budget, PassingSummary());
  EXPECT_TRUE(verdict.pass) << (verdict.failures.empty()
                                    ? ""
                                    : verdict.failures.front());
  EXPECT_TRUE(verdict.failures.empty());
}

TEST(SloTest, EachBreachedBudgetProducesADiagnostic) {
  LoadSummary summary = PassingSummary();
  SloBudget budget;
  budget.p50_ms = 0.001;       // breached by the 2ms cluster
  budget.max_shed_rate = 0.01; // breached by shed_rate = 0.05
  SloVerdict verdict = EvaluateSlo(budget, summary);
  EXPECT_FALSE(verdict.pass);
  EXPECT_EQ(verdict.failures.size(), 2u);
}

TEST(SloTest, CorrectnessViolationsAreZeroTolerance) {
  LoadSummary summary = PassingSummary();
  summary.correctness_violations = 1;
  summary.first_violation = "user 3: ranking mismatch";
  SloVerdict verdict = EvaluateSlo(SloBudget{}, summary);
  EXPECT_FALSE(verdict.pass);
  ASSERT_EQ(verdict.failures.size(), 1u);
  EXPECT_NE(verdict.failures[0].find("ranking mismatch"),
            std::string::npos);

  // ...unless the zero-tolerance line is explicitly relaxed.
  SloBudget relaxed;
  relaxed.require_no_violations = false;
  EXPECT_TRUE(EvaluateSlo(relaxed, summary).pass);
}

TEST(SloTest, RunWithNoSuccessfulRequestsFails) {
  LoadSummary empty;
  empty.scheduled = 10;
  empty.shed = 10;
  empty.Finalize();
  SloVerdict verdict = EvaluateSlo(SloBudget{}, empty);
  EXPECT_FALSE(verdict.pass);
}

// ------------------------------------------------------------ harness

class LoadHarnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("privrec_loadgen_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    dataset_ = data::MakeTinyDataset(/*num_users=*/60, /*num_items=*/40,
                                     /*seed=*/7);
    workload_ = similarity::SimilarityWorkload::Compute(
        dataset_.social, similarity::CommonNeighbors());
    louvain_ = community::RunLouvain(dataset_.social,
                                     {.restarts = 2, .seed = 3});
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string BuildArtifact(const std::string& name, uint64_t seed) {
    artifact::ModelArtifactBuilder builder(&dataset_.social,
                                           &dataset_.preferences);
    builder.SetPartition(&louvain_.partition);
    builder.SetWorkload(&workload_);
    artifact::BuildOptions build_options;
    build_options.epsilon = kEps;
    build_options.seed = seed;
    auto model = builder.Build(build_options);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    const std::string path = (dir_ / name).string();
    Status saved = serving::SaveArtifact(*model, path);
    EXPECT_TRUE(saved.ok()) << saved.ToString();
    return path;
  }

  std::string CorruptCopy(const std::string& source,
                          const std::string& name) {
    std::ifstream in(source, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    EXPECT_GT(bytes.size(), 400u);
    bytes[300] = static_cast<char>(bytes[300] ^ 0x20);
    const std::string path = (dir_ / name).string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  serve::ServeRuntimeOptions RuntimeOptions(serve::Clock* clock) const {
    serve::ServeRuntimeOptions options;
    options.swap.spec.mechanism = "Cluster";
    options.swap.spec.epsilon = kEps;
    options.clock = clock;
    options.admission.max_concurrency = 2;
    options.admission.queue_depth = 4;
    return options;
  }

  LoadRunOptions RunOptions() const {
    LoadRunOptions run;
    run.load.rps = 600;
    run.load.duration_ms = 600;
    run.load.seed = 5;
    run.load.num_users = 60;
    run.load.deadline_short_ms = 10;
    return run;
  }

  static constexpr double kEps = 0.7;

  fs::path dir_;
  data::Dataset dataset_;
  similarity::SimilarityWorkload workload_;
  community::LouvainResult louvain_;
};

TEST_F(LoadHarnessTest, RunVirtualIsDeterministicAcrossFreshRuntimes) {
  const std::string path = BuildArtifact("a.pvra", 101);

  auto run_once = [&]() -> LoadSummary {
    serve::ManualClock clock;
    serve::ServeRuntime runtime(RuntimeOptions(&clock));
    EXPECT_TRUE(runtime.Activate(path).ok());
    LoadHarness harness(&runtime, /*oracle=*/nullptr, RunOptions());
    return harness.RunVirtual(&clock);
  };

  const LoadSummary first = run_once();
  const LoadSummary second = run_once();

  EXPECT_GT(first.scheduled, 0);
  EXPECT_GT(first.ok, 0);
  EXPECT_EQ(first.scheduled,
            first.ok + first.shed + first.expired + first.other_errors);
  EXPECT_EQ(first.scheduled, second.scheduled);
  EXPECT_EQ(first.ok, second.ok);
  EXPECT_EQ(first.shed, second.shed);
  EXPECT_EQ(first.expired, second.expired);
  EXPECT_EQ(first.degraded, second.degraded);
  EXPECT_EQ(first.max_retry_after_ms, second.max_retry_after_ms);
  EXPECT_DOUBLE_EQ(first.makespan_ms, second.makespan_ms);
  EXPECT_DOUBLE_EQ(first.latency.sum(), second.latency.sum());
  EXPECT_EQ(first.latency.count(), second.latency.count());
  EXPECT_DOUBLE_EQ(first.latency.Quantile(0.99),
                   second.latency.Quantile(0.99));
}

// The tentpole determinism gate in miniature: a virtual-time run with a
// telemetry sink attached reproduces the JSONL wide-event stream and the
// rolling-window series byte for byte — across fresh runtimes AND across
// worker thread counts (the sink never reads a clock or RNG; time enters
// only through the events).
TEST_F(LoadHarnessTest, TelemetryStreamIsByteIdenticalAcrossRunsAndThreads) {
  const std::string path = BuildArtifact("a.pvra", 101);

  struct Capture {
    std::string jsonl;
    std::string series;
    int64_t recorded = 0;
    int64_t sampled = 0;
  };
  auto run_once = [&](int64_t threads) -> Capture {
    ScopedThreadCount scoped(threads);
    serve::ManualClock clock;
    serve::ServeTelemetryOptions tel_options;
    tel_options.sample_every = 16;
    tel_options.slow_ms = 50.0;
    tel_options.window_ms = 100;
    tel_options.budget.p99_ms = 20.0;
    tel_options.budget.lookback = 4;
    tel_options.budget.burn_threshold = 0.25;
    serve::ServeTelemetry telemetry(tel_options);
    serve::ServeRuntimeOptions options = RuntimeOptions(&clock);
    options.telemetry = &telemetry;
    serve::ServeRuntime runtime(options);
    EXPECT_TRUE(runtime.Activate(path).ok());
    LoadHarness harness(&runtime, /*oracle=*/nullptr, RunOptions());
    (void)harness.RunVirtual(&clock);
    telemetry.Flush(clock.NowMs());
    return {telemetry.EventsJsonl(),
            obs::WindowSeriesToJson(telemetry.series()),
            telemetry.recorded(), telemetry.sampled()};
  };

  const Capture first = run_once(1);
  const Capture second = run_once(1);
  const Capture threaded = run_once(2);

  EXPECT_GT(first.recorded, 0);
  EXPECT_GT(first.sampled, 0);
  EXPECT_LT(first.sampled, first.recorded);  // sampling actually thins
  EXPECT_FALSE(first.jsonl.empty());
  EXPECT_EQ(first.jsonl, second.jsonl);
  EXPECT_EQ(first.series, second.series);
  EXPECT_EQ(first.jsonl, threaded.jsonl);
  EXPECT_EQ(first.series, threaded.series);
  EXPECT_EQ(first.recorded, threaded.recorded);
  EXPECT_EQ(first.sampled, threaded.sampled);
}

TEST_F(LoadHarnessTest, OverloadedRunShedsWithLoadAwareHints) {
  const std::string path = BuildArtifact("a.pvra", 101);
  serve::ManualClock clock;
  serve::ServeRuntimeOptions options = RuntimeOptions(&clock);
  options.admission.max_concurrency = 1;  // choke point
  options.admission.queue_depth = 2;
  options.admission.retry_after_ms = 5;
  serve::ServeRuntime runtime(options);
  ASSERT_TRUE(runtime.Activate(path).ok());

  LoadRunOptions run = RunOptions();
  run.load.rps = 2000;  // far past one slot's capacity
  run.service_base_ms = 4.0;
  LoadHarness harness(&runtime, /*oracle=*/nullptr, run);
  LoadSummary summary = harness.RunVirtual(&clock);

  EXPECT_GT(summary.shed, 0);
  EXPECT_GT(summary.expired, 0);
  EXPECT_GT(summary.shed_rate, 0.0);
  // The shed hints reflect measured holds x occupancy, not the 5ms floor.
  EXPECT_GT(summary.max_retry_after_ms, 5);
}

TEST_F(LoadHarnessTest, SwapStormRunStaysCorrectAndRollsBack) {
  const std::string good_a = BuildArtifact("good_a.pvra", 101);
  const std::string good_b = BuildArtifact("good_b.pvra", 202);
  const std::string corrupt = CorruptCopy(good_a, "bitflip.pvra");

  serve::ManualClock clock;
  serve::ServeRuntime runtime(RuntimeOptions(&clock));
  ASSERT_TRUE(runtime.Activate(good_a).ok());

  serving::ServeSpec spec;
  spec.mechanism = "Cluster";
  spec.epsilon = kEps;
  auto oracle = LoadOracle::Build({good_a, good_b}, spec);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_EQ((*oracle)->generations(), 2);

  LoadRunOptions run = RunOptions();
  run.load.duration_ms = 800;
  run.storm.period_ms = 100;
  run.storm.good = {good_a, good_b};
  run.storm.corrupt = {corrupt};
  LoadHarness harness(&runtime, oracle->get(), run);
  LoadSummary summary = harness.RunVirtual(&clock);

  // Every response that completed was checked against the offline answer
  // of the generation that served it — across multiple live generations.
  EXPECT_GT(summary.ok, 0);
  EXPECT_EQ(summary.correctness_violations, 0) << summary.first_violation;
  EXPECT_GT(summary.swap_attempts, 2);
  EXPECT_GT(summary.swap_ok, 0);
  // Corrupt phases were rejected and rolled back, never served.
  EXPECT_GT(summary.swap_rejected, 0);
  EXPECT_EQ(summary.rollbacks, summary.swap_rejected);
  EXPECT_EQ(summary.swap_attempts, summary.swap_ok + summary.swap_rejected);
}

// ------------------------------------------------------------ oracle

TEST_F(LoadHarnessTest, OracleFlagsTamperedAndForeignResponses) {
  const std::string path = BuildArtifact("a.pvra", 101);
  serving::ServeSpec spec;
  spec.mechanism = "Cluster";
  spec.epsilon = kEps;
  auto oracle = LoadOracle::Build({path}, spec);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  serve::ServeRuntimeOptions options;
  options.swap.spec = spec;
  serve::ServeRuntime runtime(options);
  ASSERT_TRUE(runtime.Activate(path).ok());
  serve::ServeRequest request{{0, 3, 6}, 5, 1000};
  serve::ServeResponse response = runtime.Handle(request);
  ASSERT_TRUE(response.status.ok());

  // The genuine response passes.
  EXPECT_EQ((*oracle)->Check(request, response), "");

  // A tampered ranking is caught.
  serve::ServeResponse tampered = response;
  ASSERT_FALSE(tampered.batch.lists.empty());
  ASSERT_GE(tampered.batch.lists[0].size(), 2u);
  std::swap(tampered.batch.lists[0][0], tampered.batch.lists[0][1]);
  EXPECT_NE((*oracle)->Check(request, tampered), "");

  // A response claiming an unknown generation is caught.
  serve::ServeResponse foreign = response;
  foreign.artifact_seed = 999;
  EXPECT_NE((*oracle)->Check(request, foreign), "");
}

TEST_F(LoadHarnessTest, OracleRejectsStatefulMechanisms) {
  const std::string path = BuildArtifact("a.pvra", 101);
  serving::ServeSpec fresh;
  fresh.mechanism = "ClusterFresh";
  fresh.epsilon = kEps;
  auto oracle = LoadOracle::Build({path}, fresh);
  EXPECT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ report

TEST_F(LoadHarnessTest, ReportJsonCarriesContextResultsAndVerdict) {
  LoadSummary summary = PassingSummary();
  SloBudget budget;
  budget.p99_ms = 100.0;
  SloVerdict verdict = EvaluateSlo(budget, summary);
  const std::string json = loadgen::LoadReportJson(
      SmallSpec(), /*swap_period_ms=*/250, summary, budget, verdict,
      "virtual", /*threads=*/1);
  for (const char* needle :
       {"\"git_revision\"", "\"privrec_version\"", "\"mode\": \"virtual\"",
        "\"rps\"", "\"seed\"", "\"p99_ms\"", "\"shed_rate\"",
        "\"rollbacks\"", "\"swap\"", "\"slo\"", "\"pass\": true"}) {
    EXPECT_NE(json.find(needle), std::string::npos)
        << "missing " << needle;
  }
}

}  // namespace
}  // namespace privrec
