// Tests for the Section 2.3 Sybil attack library: gadget construction,
// perfect leakage against the non-private recommender (for every
// similarity measure with an appropriate chain length), and the framework
// blunting the same attack.

#include <memory>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "community/louvain.h"
#include "core/cluster_recommender.h"
#include "core/exact_recommender.h"
#include "core/sybil_attack.h"
#include "data/synthetic.h"
#include "similarity/adamic_adar.h"
#include "similarity/common_neighbors.h"
#include "similarity/graph_distance.h"
#include "similarity/katz.h"
#include "similarity/workload.h"

namespace privrec::core {
namespace {

using graph::NodeId;

class SybilAttackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = data::MakeTinyDataset(200, 150, 31);
    victim_ = 25;
    ASSERT_GT(dataset_.preferences.UserDegree(victim_), 5);
  }

  data::Dataset dataset_;
  NodeId victim_ = 0;
};

TEST_F(SybilAttackTest, GadgetShape) {
  SybilGadget gadget = InjectSybilGadget(dataset_.social,
                                         dataset_.preferences, victim_, 2);
  // Two extra chain nodes plus the helper.
  EXPECT_EQ(gadget.social.num_nodes(), dataset_.social.num_nodes() + 3);
  EXPECT_EQ(gadget.preferences.num_users(), gadget.social.num_nodes());
  // Helper: degree 2 (victim + first sybil); observer: degree 1.
  EXPECT_EQ(gadget.social.Degree(gadget.helper), 2);
  EXPECT_EQ(gadget.social.Degree(gadget.observer), 1);
  EXPECT_TRUE(gadget.social.HasEdge(victim_, gadget.helper));
  // Sybils hold no preferences.
  EXPECT_EQ(gadget.preferences.UserDegree(gadget.helper), 0);
  EXPECT_EQ(gadget.preferences.UserDegree(gadget.observer), 0);
  // Original edges untouched.
  EXPECT_EQ(gadget.preferences.num_edges(),
            dataset_.preferences.num_edges());
}

TEST_F(SybilAttackTest, ObserverSimilarOnlyToVictimUnderCn) {
  SybilGadget gadget = InjectSybilGadget(dataset_.social,
                                         dataset_.preferences, victim_, 1);
  similarity::CommonNeighbors cn;
  similarity::DenseScratch scratch;
  auto row = cn.Row(gadget.social, gadget.observer, &scratch);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0].user, victim_);
}

struct MeasureCase {
  std::string name;
  int64_t chain_length;
};

class SybilPerMeasureTest : public ::testing::TestWithParam<MeasureCase> {};

TEST_P(SybilPerMeasureTest, ExactRecommenderLeaksPerfectly) {
  data::Dataset dataset = data::MakeTinyDataset(200, 150, 31);
  const NodeId victim = 25;
  const MeasureCase& param = GetParam();
  SybilGadget gadget = InjectSybilGadget(
      dataset.social, dataset.preferences, victim, param.chain_length);

  std::unique_ptr<similarity::SimilarityMeasure> measure;
  if (param.name == "CN") {
    measure = std::make_unique<similarity::CommonNeighbors>();
  } else if (param.name == "AA") {
    measure = std::make_unique<similarity::AdamicAdar>();
  } else if (param.name == "GD") {
    measure = std::make_unique<similarity::GraphDistance>(2);
  } else {
    measure = std::make_unique<similarity::Katz>(3, 0.05);
  }
  auto workload =
      similarity::SimilarityWorkload::Compute(gadget.social, *measure);
  RecommenderContext ctx{&gadget.social, &gadget.preferences, &workload};
  ExactRecommender exact(ctx);
  int64_t n = std::min<int64_t>(
      5, dataset.preferences.UserDegree(victim));
  RecommendationList leak = exact.RecommendOne(gadget.observer, n);
  AttackScore score =
      ScoreSybilInference(leak, gadget.preferences, victim);
  EXPECT_EQ(score.observed, n) << param.name;
  EXPECT_DOUBLE_EQ(score.precision, 1.0) << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    Measures, SybilPerMeasureTest,
    ::testing::Values(MeasureCase{"CN", 1}, MeasureCase{"AA", 1},
                      MeasureCase{"GD", 1}, MeasureCase{"KZ", 2}),
    [](const auto& info) { return info.param.name; });

TEST_F(SybilAttackTest, FrameworkBluntsTheAttack) {
  SybilGadget gadget = InjectSybilGadget(dataset_.social,
                                         dataset_.preferences, victim_, 1);
  auto workload = similarity::SimilarityWorkload::Compute(
      gadget.social, similarity::CommonNeighbors());
  RecommenderContext ctx{&gadget.social, &gadget.preferences, &workload};
  community::LouvainResult louvain =
      community::RunLouvain(gadget.social, {.restarts = 3, .seed = 32});
  ClusterRecommender private_rec(ctx, louvain.partition,
                                 {.epsilon = 0.1, .seed = 33});
  ExactRecommender exact(ctx);

  const int64_t n = 10;
  AttackScore exact_score = ScoreSybilInference(
      exact.RecommendOne(gadget.observer, n), gadget.preferences, victim_);
  RunningStats private_precision;
  for (int t = 0; t < 10; ++t) {
    AttackScore s = ScoreSybilInference(
        private_rec.RecommendOne(gadget.observer, n), gadget.preferences,
        victim_);
    private_precision.Add(s.precision);
  }
  EXPECT_DOUBLE_EQ(exact_score.precision, 1.0);
  EXPECT_LT(private_precision.mean(), 0.6);
}

TEST_F(SybilAttackTest, ScoreHandlesEmptyObservation) {
  AttackScore score =
      ScoreSybilInference({}, dataset_.preferences, victim_);
  EXPECT_EQ(score.observed, 0);
  EXPECT_DOUBLE_EQ(score.precision, 0.0);
  EXPECT_DOUBLE_EQ(score.recall, 0.0);
}

TEST_F(SybilAttackTest, RecallCountsLeakedFraction) {
  // Observe a list containing exactly 3 of the victim's items plus one
  // item the victim provably does not hold.
  auto items = dataset_.preferences.ItemsOf(victim_);
  ASSERT_GE(items.size(), 3u);
  graph::ItemId absent = -1;
  for (graph::ItemId i = 0; i < dataset_.preferences.num_items(); ++i) {
    if (dataset_.preferences.Weight(victim_, i) == 0.0) {
      absent = i;
      break;
    }
  }
  ASSERT_GE(absent, 0);
  RecommendationList observed = {
      {items[0], 1.0}, {items[1], 0.9}, {items[2], 0.8}, {absent, 0.7}};
  AttackScore score =
      ScoreSybilInference(observed, dataset_.preferences, victim_);
  EXPECT_EQ(score.hits, 3);
  EXPECT_DOUBLE_EQ(score.precision, 0.75);
  EXPECT_NEAR(score.recall,
              3.0 / static_cast<double>(items.size()), 1e-12);
}

}  // namespace
}  // namespace privrec::core
