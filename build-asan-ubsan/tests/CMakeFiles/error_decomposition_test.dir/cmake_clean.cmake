file(REMOVE_RECURSE
  "CMakeFiles/error_decomposition_test.dir/error_decomposition_test.cc.o"
  "CMakeFiles/error_decomposition_test.dir/error_decomposition_test.cc.o.d"
  "error_decomposition_test"
  "error_decomposition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_decomposition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
