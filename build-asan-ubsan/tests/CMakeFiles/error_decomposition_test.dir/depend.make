# Empty dependencies file for error_decomposition_test.
# This may be replaced when dependencies are built.
