file(REMOVE_RECURSE
  "CMakeFiles/cluster_recommender_test.dir/cluster_recommender_test.cc.o"
  "CMakeFiles/cluster_recommender_test.dir/cluster_recommender_test.cc.o.d"
  "cluster_recommender_test"
  "cluster_recommender_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_recommender_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
