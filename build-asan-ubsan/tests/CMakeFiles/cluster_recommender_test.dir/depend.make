# Empty dependencies file for cluster_recommender_test.
# This may be replaced when dependencies are built.
