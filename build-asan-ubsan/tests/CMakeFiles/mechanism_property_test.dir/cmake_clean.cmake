file(REMOVE_RECURSE
  "CMakeFiles/mechanism_property_test.dir/mechanism_property_test.cc.o"
  "CMakeFiles/mechanism_property_test.dir/mechanism_property_test.cc.o.d"
  "mechanism_property_test"
  "mechanism_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mechanism_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
