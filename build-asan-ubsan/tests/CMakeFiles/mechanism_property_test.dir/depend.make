# Empty dependencies file for mechanism_property_test.
# This may be replaced when dependencies are built.
