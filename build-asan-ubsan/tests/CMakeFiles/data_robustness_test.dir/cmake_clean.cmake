file(REMOVE_RECURSE
  "CMakeFiles/data_robustness_test.dir/data_robustness_test.cc.o"
  "CMakeFiles/data_robustness_test.dir/data_robustness_test.cc.o.d"
  "data_robustness_test"
  "data_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
