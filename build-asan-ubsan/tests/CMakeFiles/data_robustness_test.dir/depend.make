# Empty dependencies file for data_robustness_test.
# This may be replaced when dependencies are built.
