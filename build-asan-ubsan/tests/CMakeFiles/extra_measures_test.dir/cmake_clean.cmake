file(REMOVE_RECURSE
  "CMakeFiles/extra_measures_test.dir/extra_measures_test.cc.o"
  "CMakeFiles/extra_measures_test.dir/extra_measures_test.cc.o.d"
  "extra_measures_test"
  "extra_measures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_measures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
