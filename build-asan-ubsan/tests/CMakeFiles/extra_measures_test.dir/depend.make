# Empty dependencies file for extra_measures_test.
# This may be replaced when dependencies are built.
