# Empty dependencies file for sybil_attack.
# This may be replaced when dependencies are built.
