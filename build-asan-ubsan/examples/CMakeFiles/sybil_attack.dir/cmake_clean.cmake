file(REMOVE_RECURSE
  "CMakeFiles/sybil_attack.dir/sybil_attack.cpp.o"
  "CMakeFiles/sybil_attack.dir/sybil_attack.cpp.o.d"
  "sybil_attack"
  "sybil_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybil_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
