# Empty dependencies file for dynamic_service.
# This may be replaced when dependencies are built.
