file(REMOVE_RECURSE
  "CMakeFiles/dynamic_service.dir/dynamic_service.cpp.o"
  "CMakeFiles/dynamic_service.dir/dynamic_service.cpp.o.d"
  "dynamic_service"
  "dynamic_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
