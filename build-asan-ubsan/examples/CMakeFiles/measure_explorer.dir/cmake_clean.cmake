file(REMOVE_RECURSE
  "CMakeFiles/measure_explorer.dir/measure_explorer.cpp.o"
  "CMakeFiles/measure_explorer.dir/measure_explorer.cpp.o.d"
  "measure_explorer"
  "measure_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
