# Empty dependencies file for measure_explorer.
# This may be replaced when dependencies are built.
