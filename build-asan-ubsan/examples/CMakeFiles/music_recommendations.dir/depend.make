# Empty dependencies file for music_recommendations.
# This may be replaced when dependencies are built.
