file(REMOVE_RECURSE
  "CMakeFiles/music_recommendations.dir/music_recommendations.cpp.o"
  "CMakeFiles/music_recommendations.dir/music_recommendations.cpp.o.d"
  "music_recommendations"
  "music_recommendations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/music_recommendations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
