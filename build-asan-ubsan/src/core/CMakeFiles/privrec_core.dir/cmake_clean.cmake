file(REMOVE_RECURSE
  "CMakeFiles/privrec_core.dir/cluster_recommender.cc.o"
  "CMakeFiles/privrec_core.dir/cluster_recommender.cc.o.d"
  "CMakeFiles/privrec_core.dir/degradation.cc.o"
  "CMakeFiles/privrec_core.dir/degradation.cc.o.d"
  "CMakeFiles/privrec_core.dir/dynamic_recommender.cc.o"
  "CMakeFiles/privrec_core.dir/dynamic_recommender.cc.o.d"
  "CMakeFiles/privrec_core.dir/exact_recommender.cc.o"
  "CMakeFiles/privrec_core.dir/exact_recommender.cc.o.d"
  "CMakeFiles/privrec_core.dir/group_smooth_recommender.cc.o"
  "CMakeFiles/privrec_core.dir/group_smooth_recommender.cc.o.d"
  "CMakeFiles/privrec_core.dir/hybrid_recommender.cc.o"
  "CMakeFiles/privrec_core.dir/hybrid_recommender.cc.o.d"
  "CMakeFiles/privrec_core.dir/item_cf_recommender.cc.o"
  "CMakeFiles/privrec_core.dir/item_cf_recommender.cc.o.d"
  "CMakeFiles/privrec_core.dir/low_rank_recommender.cc.o"
  "CMakeFiles/privrec_core.dir/low_rank_recommender.cc.o.d"
  "CMakeFiles/privrec_core.dir/noe_recommender.cc.o"
  "CMakeFiles/privrec_core.dir/noe_recommender.cc.o.d"
  "CMakeFiles/privrec_core.dir/nou_recommender.cc.o"
  "CMakeFiles/privrec_core.dir/nou_recommender.cc.o.d"
  "CMakeFiles/privrec_core.dir/recommendation.cc.o"
  "CMakeFiles/privrec_core.dir/recommendation.cc.o.d"
  "CMakeFiles/privrec_core.dir/recommender.cc.o"
  "CMakeFiles/privrec_core.dir/recommender.cc.o.d"
  "CMakeFiles/privrec_core.dir/recommender_factory.cc.o"
  "CMakeFiles/privrec_core.dir/recommender_factory.cc.o.d"
  "CMakeFiles/privrec_core.dir/sybil_attack.cc.o"
  "CMakeFiles/privrec_core.dir/sybil_attack.cc.o.d"
  "libprivrec_core.a"
  "libprivrec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privrec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
