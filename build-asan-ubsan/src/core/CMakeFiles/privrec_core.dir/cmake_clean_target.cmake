file(REMOVE_RECURSE
  "libprivrec_core.a"
)
