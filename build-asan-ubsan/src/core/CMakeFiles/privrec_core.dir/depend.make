# Empty dependencies file for privrec_core.
# This may be replaced when dependencies are built.
