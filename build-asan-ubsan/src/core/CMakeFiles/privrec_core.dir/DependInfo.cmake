
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster_recommender.cc" "src/core/CMakeFiles/privrec_core.dir/cluster_recommender.cc.o" "gcc" "src/core/CMakeFiles/privrec_core.dir/cluster_recommender.cc.o.d"
  "/root/repo/src/core/degradation.cc" "src/core/CMakeFiles/privrec_core.dir/degradation.cc.o" "gcc" "src/core/CMakeFiles/privrec_core.dir/degradation.cc.o.d"
  "/root/repo/src/core/dynamic_recommender.cc" "src/core/CMakeFiles/privrec_core.dir/dynamic_recommender.cc.o" "gcc" "src/core/CMakeFiles/privrec_core.dir/dynamic_recommender.cc.o.d"
  "/root/repo/src/core/exact_recommender.cc" "src/core/CMakeFiles/privrec_core.dir/exact_recommender.cc.o" "gcc" "src/core/CMakeFiles/privrec_core.dir/exact_recommender.cc.o.d"
  "/root/repo/src/core/group_smooth_recommender.cc" "src/core/CMakeFiles/privrec_core.dir/group_smooth_recommender.cc.o" "gcc" "src/core/CMakeFiles/privrec_core.dir/group_smooth_recommender.cc.o.d"
  "/root/repo/src/core/hybrid_recommender.cc" "src/core/CMakeFiles/privrec_core.dir/hybrid_recommender.cc.o" "gcc" "src/core/CMakeFiles/privrec_core.dir/hybrid_recommender.cc.o.d"
  "/root/repo/src/core/item_cf_recommender.cc" "src/core/CMakeFiles/privrec_core.dir/item_cf_recommender.cc.o" "gcc" "src/core/CMakeFiles/privrec_core.dir/item_cf_recommender.cc.o.d"
  "/root/repo/src/core/low_rank_recommender.cc" "src/core/CMakeFiles/privrec_core.dir/low_rank_recommender.cc.o" "gcc" "src/core/CMakeFiles/privrec_core.dir/low_rank_recommender.cc.o.d"
  "/root/repo/src/core/noe_recommender.cc" "src/core/CMakeFiles/privrec_core.dir/noe_recommender.cc.o" "gcc" "src/core/CMakeFiles/privrec_core.dir/noe_recommender.cc.o.d"
  "/root/repo/src/core/nou_recommender.cc" "src/core/CMakeFiles/privrec_core.dir/nou_recommender.cc.o" "gcc" "src/core/CMakeFiles/privrec_core.dir/nou_recommender.cc.o.d"
  "/root/repo/src/core/recommendation.cc" "src/core/CMakeFiles/privrec_core.dir/recommendation.cc.o" "gcc" "src/core/CMakeFiles/privrec_core.dir/recommendation.cc.o.d"
  "/root/repo/src/core/recommender.cc" "src/core/CMakeFiles/privrec_core.dir/recommender.cc.o" "gcc" "src/core/CMakeFiles/privrec_core.dir/recommender.cc.o.d"
  "/root/repo/src/core/recommender_factory.cc" "src/core/CMakeFiles/privrec_core.dir/recommender_factory.cc.o" "gcc" "src/core/CMakeFiles/privrec_core.dir/recommender_factory.cc.o.d"
  "/root/repo/src/core/sybil_attack.cc" "src/core/CMakeFiles/privrec_core.dir/sybil_attack.cc.o" "gcc" "src/core/CMakeFiles/privrec_core.dir/sybil_attack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan-ubsan/src/community/CMakeFiles/privrec_community.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/dp/CMakeFiles/privrec_dp.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/la/CMakeFiles/privrec_la.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/similarity/CMakeFiles/privrec_similarity.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/graph/CMakeFiles/privrec_graph.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/common/CMakeFiles/privrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
