
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/error_decomposition.cc" "src/eval/CMakeFiles/privrec_eval.dir/error_decomposition.cc.o" "gcc" "src/eval/CMakeFiles/privrec_eval.dir/error_decomposition.cc.o.d"
  "/root/repo/src/eval/exact_reference.cc" "src/eval/CMakeFiles/privrec_eval.dir/exact_reference.cc.o" "gcc" "src/eval/CMakeFiles/privrec_eval.dir/exact_reference.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/eval/CMakeFiles/privrec_eval.dir/experiment.cc.o" "gcc" "src/eval/CMakeFiles/privrec_eval.dir/experiment.cc.o.d"
  "/root/repo/src/eval/holdout.cc" "src/eval/CMakeFiles/privrec_eval.dir/holdout.cc.o" "gcc" "src/eval/CMakeFiles/privrec_eval.dir/holdout.cc.o.d"
  "/root/repo/src/eval/ndcg.cc" "src/eval/CMakeFiles/privrec_eval.dir/ndcg.cc.o" "gcc" "src/eval/CMakeFiles/privrec_eval.dir/ndcg.cc.o.d"
  "/root/repo/src/eval/significance.cc" "src/eval/CMakeFiles/privrec_eval.dir/significance.cc.o" "gcc" "src/eval/CMakeFiles/privrec_eval.dir/significance.cc.o.d"
  "/root/repo/src/eval/table.cc" "src/eval/CMakeFiles/privrec_eval.dir/table.cc.o" "gcc" "src/eval/CMakeFiles/privrec_eval.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan-ubsan/src/core/CMakeFiles/privrec_core.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/community/CMakeFiles/privrec_community.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/similarity/CMakeFiles/privrec_similarity.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/graph/CMakeFiles/privrec_graph.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/common/CMakeFiles/privrec_common.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/dp/CMakeFiles/privrec_dp.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/la/CMakeFiles/privrec_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
