file(REMOVE_RECURSE
  "libprivrec_eval.a"
)
