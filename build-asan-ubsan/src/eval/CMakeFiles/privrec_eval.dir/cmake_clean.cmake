file(REMOVE_RECURSE
  "CMakeFiles/privrec_eval.dir/error_decomposition.cc.o"
  "CMakeFiles/privrec_eval.dir/error_decomposition.cc.o.d"
  "CMakeFiles/privrec_eval.dir/exact_reference.cc.o"
  "CMakeFiles/privrec_eval.dir/exact_reference.cc.o.d"
  "CMakeFiles/privrec_eval.dir/experiment.cc.o"
  "CMakeFiles/privrec_eval.dir/experiment.cc.o.d"
  "CMakeFiles/privrec_eval.dir/holdout.cc.o"
  "CMakeFiles/privrec_eval.dir/holdout.cc.o.d"
  "CMakeFiles/privrec_eval.dir/ndcg.cc.o"
  "CMakeFiles/privrec_eval.dir/ndcg.cc.o.d"
  "CMakeFiles/privrec_eval.dir/significance.cc.o"
  "CMakeFiles/privrec_eval.dir/significance.cc.o.d"
  "CMakeFiles/privrec_eval.dir/table.cc.o"
  "CMakeFiles/privrec_eval.dir/table.cc.o.d"
  "libprivrec_eval.a"
  "libprivrec_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privrec_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
