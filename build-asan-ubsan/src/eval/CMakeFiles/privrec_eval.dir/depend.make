# Empty dependencies file for privrec_eval.
# This may be replaced when dependencies are built.
