file(REMOVE_RECURSE
  "CMakeFiles/privrec_community.dir/kmeans.cc.o"
  "CMakeFiles/privrec_community.dir/kmeans.cc.o.d"
  "CMakeFiles/privrec_community.dir/label_propagation.cc.o"
  "CMakeFiles/privrec_community.dir/label_propagation.cc.o.d"
  "CMakeFiles/privrec_community.dir/louvain.cc.o"
  "CMakeFiles/privrec_community.dir/louvain.cc.o.d"
  "CMakeFiles/privrec_community.dir/modularity.cc.o"
  "CMakeFiles/privrec_community.dir/modularity.cc.o.d"
  "CMakeFiles/privrec_community.dir/partition.cc.o"
  "CMakeFiles/privrec_community.dir/partition.cc.o.d"
  "CMakeFiles/privrec_community.dir/partition_io.cc.o"
  "CMakeFiles/privrec_community.dir/partition_io.cc.o.d"
  "CMakeFiles/privrec_community.dir/postprocess.cc.o"
  "CMakeFiles/privrec_community.dir/postprocess.cc.o.d"
  "CMakeFiles/privrec_community.dir/quality.cc.o"
  "CMakeFiles/privrec_community.dir/quality.cc.o.d"
  "CMakeFiles/privrec_community.dir/simple_clusterings.cc.o"
  "CMakeFiles/privrec_community.dir/simple_clusterings.cc.o.d"
  "libprivrec_community.a"
  "libprivrec_community.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privrec_community.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
