file(REMOVE_RECURSE
  "libprivrec_community.a"
)
