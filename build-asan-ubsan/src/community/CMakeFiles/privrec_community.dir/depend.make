# Empty dependencies file for privrec_community.
# This may be replaced when dependencies are built.
