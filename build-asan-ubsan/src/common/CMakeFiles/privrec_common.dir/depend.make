# Empty dependencies file for privrec_common.
# This may be replaced when dependencies are built.
