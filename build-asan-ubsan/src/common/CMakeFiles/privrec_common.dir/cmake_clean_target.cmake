file(REMOVE_RECURSE
  "libprivrec_common.a"
)
