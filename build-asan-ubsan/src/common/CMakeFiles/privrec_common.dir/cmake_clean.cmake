file(REMOVE_RECURSE
  "CMakeFiles/privrec_common.dir/fault_injection.cc.o"
  "CMakeFiles/privrec_common.dir/fault_injection.cc.o.d"
  "CMakeFiles/privrec_common.dir/flags.cc.o"
  "CMakeFiles/privrec_common.dir/flags.cc.o.d"
  "CMakeFiles/privrec_common.dir/load_report.cc.o"
  "CMakeFiles/privrec_common.dir/load_report.cc.o.d"
  "CMakeFiles/privrec_common.dir/random.cc.o"
  "CMakeFiles/privrec_common.dir/random.cc.o.d"
  "CMakeFiles/privrec_common.dir/stats.cc.o"
  "CMakeFiles/privrec_common.dir/stats.cc.o.d"
  "CMakeFiles/privrec_common.dir/status.cc.o"
  "CMakeFiles/privrec_common.dir/status.cc.o.d"
  "CMakeFiles/privrec_common.dir/string_util.cc.o"
  "CMakeFiles/privrec_common.dir/string_util.cc.o.d"
  "libprivrec_common.a"
  "libprivrec_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privrec_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
