file(REMOVE_RECURSE
  "libprivrec_la.a"
)
