# Empty dependencies file for privrec_la.
# This may be replaced when dependencies are built.
