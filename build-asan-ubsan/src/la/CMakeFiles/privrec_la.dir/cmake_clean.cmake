file(REMOVE_RECURSE
  "CMakeFiles/privrec_la.dir/csr_matrix.cc.o"
  "CMakeFiles/privrec_la.dir/csr_matrix.cc.o.d"
  "CMakeFiles/privrec_la.dir/dense_matrix.cc.o"
  "CMakeFiles/privrec_la.dir/dense_matrix.cc.o.d"
  "CMakeFiles/privrec_la.dir/svd.cc.o"
  "CMakeFiles/privrec_la.dir/svd.cc.o.d"
  "libprivrec_la.a"
  "libprivrec_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privrec_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
