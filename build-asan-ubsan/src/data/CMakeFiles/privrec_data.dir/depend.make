# Empty dependencies file for privrec_data.
# This may be replaced when dependencies are built.
