
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/privrec_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/privrec_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/export.cc" "src/data/CMakeFiles/privrec_data.dir/export.cc.o" "gcc" "src/data/CMakeFiles/privrec_data.dir/export.cc.o.d"
  "/root/repo/src/data/flixster.cc" "src/data/CMakeFiles/privrec_data.dir/flixster.cc.o" "gcc" "src/data/CMakeFiles/privrec_data.dir/flixster.cc.o.d"
  "/root/repo/src/data/hetrec_lastfm.cc" "src/data/CMakeFiles/privrec_data.dir/hetrec_lastfm.cc.o" "gcc" "src/data/CMakeFiles/privrec_data.dir/hetrec_lastfm.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/privrec_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/privrec_data.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan-ubsan/src/graph/CMakeFiles/privrec_graph.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/common/CMakeFiles/privrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
