file(REMOVE_RECURSE
  "libprivrec_data.a"
)
