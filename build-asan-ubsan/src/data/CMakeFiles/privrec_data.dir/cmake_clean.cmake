file(REMOVE_RECURSE
  "CMakeFiles/privrec_data.dir/dataset.cc.o"
  "CMakeFiles/privrec_data.dir/dataset.cc.o.d"
  "CMakeFiles/privrec_data.dir/export.cc.o"
  "CMakeFiles/privrec_data.dir/export.cc.o.d"
  "CMakeFiles/privrec_data.dir/flixster.cc.o"
  "CMakeFiles/privrec_data.dir/flixster.cc.o.d"
  "CMakeFiles/privrec_data.dir/hetrec_lastfm.cc.o"
  "CMakeFiles/privrec_data.dir/hetrec_lastfm.cc.o.d"
  "CMakeFiles/privrec_data.dir/synthetic.cc.o"
  "CMakeFiles/privrec_data.dir/synthetic.cc.o.d"
  "libprivrec_data.a"
  "libprivrec_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privrec_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
