# Empty dependencies file for privrec_dp.
# This may be replaced when dependencies are built.
