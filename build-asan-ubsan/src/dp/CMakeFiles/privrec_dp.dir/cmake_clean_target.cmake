file(REMOVE_RECURSE
  "libprivrec_dp.a"
)
