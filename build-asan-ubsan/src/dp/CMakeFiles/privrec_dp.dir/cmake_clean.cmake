file(REMOVE_RECURSE
  "CMakeFiles/privrec_dp.dir/audit.cc.o"
  "CMakeFiles/privrec_dp.dir/audit.cc.o.d"
  "CMakeFiles/privrec_dp.dir/budget.cc.o"
  "CMakeFiles/privrec_dp.dir/budget.cc.o.d"
  "CMakeFiles/privrec_dp.dir/ledger.cc.o"
  "CMakeFiles/privrec_dp.dir/ledger.cc.o.d"
  "CMakeFiles/privrec_dp.dir/mechanisms.cc.o"
  "CMakeFiles/privrec_dp.dir/mechanisms.cc.o.d"
  "libprivrec_dp.a"
  "libprivrec_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privrec_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
