file(REMOVE_RECURSE
  "CMakeFiles/privrec_graph.dir/components.cc.o"
  "CMakeFiles/privrec_graph.dir/components.cc.o.d"
  "CMakeFiles/privrec_graph.dir/generators/barabasi_albert.cc.o"
  "CMakeFiles/privrec_graph.dir/generators/barabasi_albert.cc.o.d"
  "CMakeFiles/privrec_graph.dir/generators/erdos_renyi.cc.o"
  "CMakeFiles/privrec_graph.dir/generators/erdos_renyi.cc.o.d"
  "CMakeFiles/privrec_graph.dir/generators/planted_partition.cc.o"
  "CMakeFiles/privrec_graph.dir/generators/planted_partition.cc.o.d"
  "CMakeFiles/privrec_graph.dir/generators/preference_generator.cc.o"
  "CMakeFiles/privrec_graph.dir/generators/preference_generator.cc.o.d"
  "CMakeFiles/privrec_graph.dir/generators/watts_strogatz.cc.o"
  "CMakeFiles/privrec_graph.dir/generators/watts_strogatz.cc.o.d"
  "CMakeFiles/privrec_graph.dir/graph_io.cc.o"
  "CMakeFiles/privrec_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/privrec_graph.dir/metrics.cc.o"
  "CMakeFiles/privrec_graph.dir/metrics.cc.o.d"
  "CMakeFiles/privrec_graph.dir/preference_graph.cc.o"
  "CMakeFiles/privrec_graph.dir/preference_graph.cc.o.d"
  "CMakeFiles/privrec_graph.dir/social_graph.cc.o"
  "CMakeFiles/privrec_graph.dir/social_graph.cc.o.d"
  "libprivrec_graph.a"
  "libprivrec_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privrec_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
