
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/components.cc" "src/graph/CMakeFiles/privrec_graph.dir/components.cc.o" "gcc" "src/graph/CMakeFiles/privrec_graph.dir/components.cc.o.d"
  "/root/repo/src/graph/generators/barabasi_albert.cc" "src/graph/CMakeFiles/privrec_graph.dir/generators/barabasi_albert.cc.o" "gcc" "src/graph/CMakeFiles/privrec_graph.dir/generators/barabasi_albert.cc.o.d"
  "/root/repo/src/graph/generators/erdos_renyi.cc" "src/graph/CMakeFiles/privrec_graph.dir/generators/erdos_renyi.cc.o" "gcc" "src/graph/CMakeFiles/privrec_graph.dir/generators/erdos_renyi.cc.o.d"
  "/root/repo/src/graph/generators/planted_partition.cc" "src/graph/CMakeFiles/privrec_graph.dir/generators/planted_partition.cc.o" "gcc" "src/graph/CMakeFiles/privrec_graph.dir/generators/planted_partition.cc.o.d"
  "/root/repo/src/graph/generators/preference_generator.cc" "src/graph/CMakeFiles/privrec_graph.dir/generators/preference_generator.cc.o" "gcc" "src/graph/CMakeFiles/privrec_graph.dir/generators/preference_generator.cc.o.d"
  "/root/repo/src/graph/generators/watts_strogatz.cc" "src/graph/CMakeFiles/privrec_graph.dir/generators/watts_strogatz.cc.o" "gcc" "src/graph/CMakeFiles/privrec_graph.dir/generators/watts_strogatz.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/graph/CMakeFiles/privrec_graph.dir/graph_io.cc.o" "gcc" "src/graph/CMakeFiles/privrec_graph.dir/graph_io.cc.o.d"
  "/root/repo/src/graph/metrics.cc" "src/graph/CMakeFiles/privrec_graph.dir/metrics.cc.o" "gcc" "src/graph/CMakeFiles/privrec_graph.dir/metrics.cc.o.d"
  "/root/repo/src/graph/preference_graph.cc" "src/graph/CMakeFiles/privrec_graph.dir/preference_graph.cc.o" "gcc" "src/graph/CMakeFiles/privrec_graph.dir/preference_graph.cc.o.d"
  "/root/repo/src/graph/social_graph.cc" "src/graph/CMakeFiles/privrec_graph.dir/social_graph.cc.o" "gcc" "src/graph/CMakeFiles/privrec_graph.dir/social_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan-ubsan/src/common/CMakeFiles/privrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
