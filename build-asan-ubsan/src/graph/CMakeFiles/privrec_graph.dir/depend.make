# Empty dependencies file for privrec_graph.
# This may be replaced when dependencies are built.
