file(REMOVE_RECURSE
  "libprivrec_graph.a"
)
