#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "privrec::privrec_common" for configuration "RelWithDebInfo"
set_property(TARGET privrec::privrec_common APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(privrec::privrec_common PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libprivrec_common.a"
  )

list(APPEND _cmake_import_check_targets privrec::privrec_common )
list(APPEND _cmake_import_check_files_for_privrec::privrec_common "${_IMPORT_PREFIX}/lib/libprivrec_common.a" )

# Import target "privrec::privrec_la" for configuration "RelWithDebInfo"
set_property(TARGET privrec::privrec_la APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(privrec::privrec_la PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libprivrec_la.a"
  )

list(APPEND _cmake_import_check_targets privrec::privrec_la )
list(APPEND _cmake_import_check_files_for_privrec::privrec_la "${_IMPORT_PREFIX}/lib/libprivrec_la.a" )

# Import target "privrec::privrec_graph" for configuration "RelWithDebInfo"
set_property(TARGET privrec::privrec_graph APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(privrec::privrec_graph PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libprivrec_graph.a"
  )

list(APPEND _cmake_import_check_targets privrec::privrec_graph )
list(APPEND _cmake_import_check_files_for_privrec::privrec_graph "${_IMPORT_PREFIX}/lib/libprivrec_graph.a" )

# Import target "privrec::privrec_data" for configuration "RelWithDebInfo"
set_property(TARGET privrec::privrec_data APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(privrec::privrec_data PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libprivrec_data.a"
  )

list(APPEND _cmake_import_check_targets privrec::privrec_data )
list(APPEND _cmake_import_check_files_for_privrec::privrec_data "${_IMPORT_PREFIX}/lib/libprivrec_data.a" )

# Import target "privrec::privrec_similarity" for configuration "RelWithDebInfo"
set_property(TARGET privrec::privrec_similarity APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(privrec::privrec_similarity PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libprivrec_similarity.a"
  )

list(APPEND _cmake_import_check_targets privrec::privrec_similarity )
list(APPEND _cmake_import_check_files_for_privrec::privrec_similarity "${_IMPORT_PREFIX}/lib/libprivrec_similarity.a" )

# Import target "privrec::privrec_community" for configuration "RelWithDebInfo"
set_property(TARGET privrec::privrec_community APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(privrec::privrec_community PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libprivrec_community.a"
  )

list(APPEND _cmake_import_check_targets privrec::privrec_community )
list(APPEND _cmake_import_check_files_for_privrec::privrec_community "${_IMPORT_PREFIX}/lib/libprivrec_community.a" )

# Import target "privrec::privrec_dp" for configuration "RelWithDebInfo"
set_property(TARGET privrec::privrec_dp APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(privrec::privrec_dp PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libprivrec_dp.a"
  )

list(APPEND _cmake_import_check_targets privrec::privrec_dp )
list(APPEND _cmake_import_check_files_for_privrec::privrec_dp "${_IMPORT_PREFIX}/lib/libprivrec_dp.a" )

# Import target "privrec::privrec_eval" for configuration "RelWithDebInfo"
set_property(TARGET privrec::privrec_eval APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(privrec::privrec_eval PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libprivrec_eval.a"
  )

list(APPEND _cmake_import_check_targets privrec::privrec_eval )
list(APPEND _cmake_import_check_files_for_privrec::privrec_eval "${_IMPORT_PREFIX}/lib/libprivrec_eval.a" )

# Import target "privrec::privrec_core" for configuration "RelWithDebInfo"
set_property(TARGET privrec::privrec_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(privrec::privrec_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libprivrec_core.a"
  )

list(APPEND _cmake_import_check_targets privrec::privrec_core )
list(APPEND _cmake_import_check_files_for_privrec::privrec_core "${_IMPORT_PREFIX}/lib/libprivrec_core.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
