file(REMOVE_RECURSE
  "CMakeFiles/privrec_similarity.dir/adamic_adar.cc.o"
  "CMakeFiles/privrec_similarity.dir/adamic_adar.cc.o.d"
  "CMakeFiles/privrec_similarity.dir/common_neighbors.cc.o"
  "CMakeFiles/privrec_similarity.dir/common_neighbors.cc.o.d"
  "CMakeFiles/privrec_similarity.dir/extra_measures.cc.o"
  "CMakeFiles/privrec_similarity.dir/extra_measures.cc.o.d"
  "CMakeFiles/privrec_similarity.dir/graph_distance.cc.o"
  "CMakeFiles/privrec_similarity.dir/graph_distance.cc.o.d"
  "CMakeFiles/privrec_similarity.dir/katz.cc.o"
  "CMakeFiles/privrec_similarity.dir/katz.cc.o.d"
  "CMakeFiles/privrec_similarity.dir/personalized_pagerank.cc.o"
  "CMakeFiles/privrec_similarity.dir/personalized_pagerank.cc.o.d"
  "CMakeFiles/privrec_similarity.dir/similarity_measure.cc.o"
  "CMakeFiles/privrec_similarity.dir/similarity_measure.cc.o.d"
  "CMakeFiles/privrec_similarity.dir/workload.cc.o"
  "CMakeFiles/privrec_similarity.dir/workload.cc.o.d"
  "CMakeFiles/privrec_similarity.dir/workload_io.cc.o"
  "CMakeFiles/privrec_similarity.dir/workload_io.cc.o.d"
  "libprivrec_similarity.a"
  "libprivrec_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privrec_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
