file(REMOVE_RECURSE
  "libprivrec_similarity.a"
)
