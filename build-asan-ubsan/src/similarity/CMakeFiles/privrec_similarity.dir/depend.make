# Empty dependencies file for privrec_similarity.
# This may be replaced when dependencies are built.
