
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/similarity/adamic_adar.cc" "src/similarity/CMakeFiles/privrec_similarity.dir/adamic_adar.cc.o" "gcc" "src/similarity/CMakeFiles/privrec_similarity.dir/adamic_adar.cc.o.d"
  "/root/repo/src/similarity/common_neighbors.cc" "src/similarity/CMakeFiles/privrec_similarity.dir/common_neighbors.cc.o" "gcc" "src/similarity/CMakeFiles/privrec_similarity.dir/common_neighbors.cc.o.d"
  "/root/repo/src/similarity/extra_measures.cc" "src/similarity/CMakeFiles/privrec_similarity.dir/extra_measures.cc.o" "gcc" "src/similarity/CMakeFiles/privrec_similarity.dir/extra_measures.cc.o.d"
  "/root/repo/src/similarity/graph_distance.cc" "src/similarity/CMakeFiles/privrec_similarity.dir/graph_distance.cc.o" "gcc" "src/similarity/CMakeFiles/privrec_similarity.dir/graph_distance.cc.o.d"
  "/root/repo/src/similarity/katz.cc" "src/similarity/CMakeFiles/privrec_similarity.dir/katz.cc.o" "gcc" "src/similarity/CMakeFiles/privrec_similarity.dir/katz.cc.o.d"
  "/root/repo/src/similarity/personalized_pagerank.cc" "src/similarity/CMakeFiles/privrec_similarity.dir/personalized_pagerank.cc.o" "gcc" "src/similarity/CMakeFiles/privrec_similarity.dir/personalized_pagerank.cc.o.d"
  "/root/repo/src/similarity/similarity_measure.cc" "src/similarity/CMakeFiles/privrec_similarity.dir/similarity_measure.cc.o" "gcc" "src/similarity/CMakeFiles/privrec_similarity.dir/similarity_measure.cc.o.d"
  "/root/repo/src/similarity/workload.cc" "src/similarity/CMakeFiles/privrec_similarity.dir/workload.cc.o" "gcc" "src/similarity/CMakeFiles/privrec_similarity.dir/workload.cc.o.d"
  "/root/repo/src/similarity/workload_io.cc" "src/similarity/CMakeFiles/privrec_similarity.dir/workload_io.cc.o" "gcc" "src/similarity/CMakeFiles/privrec_similarity.dir/workload_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan-ubsan/src/graph/CMakeFiles/privrec_graph.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/common/CMakeFiles/privrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
