# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan-ubsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("la")
subdirs("graph")
subdirs("data")
subdirs("similarity")
subdirs("community")
subdirs("dp")
subdirs("eval")
subdirs("core")
