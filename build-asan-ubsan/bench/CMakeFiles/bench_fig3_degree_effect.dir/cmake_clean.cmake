file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_degree_effect.dir/bench_fig3_degree_effect.cc.o"
  "CMakeFiles/bench_fig3_degree_effect.dir/bench_fig3_degree_effect.cc.o.d"
  "bench_fig3_degree_effect"
  "bench_fig3_degree_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_degree_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
