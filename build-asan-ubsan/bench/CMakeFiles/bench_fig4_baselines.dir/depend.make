# Empty dependencies file for bench_fig4_baselines.
# This may be replaced when dependencies are built.
