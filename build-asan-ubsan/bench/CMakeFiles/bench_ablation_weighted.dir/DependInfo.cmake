
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_weighted.cc" "bench/CMakeFiles/bench_ablation_weighted.dir/bench_ablation_weighted.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_weighted.dir/bench_ablation_weighted.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan-ubsan/src/eval/CMakeFiles/privrec_eval.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/core/CMakeFiles/privrec_core.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/dp/CMakeFiles/privrec_dp.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/community/CMakeFiles/privrec_community.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/similarity/CMakeFiles/privrec_similarity.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/data/CMakeFiles/privrec_data.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/graph/CMakeFiles/privrec_graph.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/la/CMakeFiles/privrec_la.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/common/CMakeFiles/privrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
