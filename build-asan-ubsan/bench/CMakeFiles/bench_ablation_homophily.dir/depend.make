# Empty dependencies file for bench_ablation_homophily.
# This may be replaced when dependencies are built.
