file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_homophily.dir/bench_ablation_homophily.cc.o"
  "CMakeFiles/bench_ablation_homophily.dir/bench_ablation_homophily.cc.o.d"
  "bench_ablation_homophily"
  "bench_ablation_homophily.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_homophily.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
