# Empty dependencies file for bench_extension_hybrid.
# This may be replaced when dependencies are built.
