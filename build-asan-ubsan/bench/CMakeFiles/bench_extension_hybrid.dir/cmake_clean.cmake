file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_hybrid.dir/bench_extension_hybrid.cc.o"
  "CMakeFiles/bench_extension_hybrid.dir/bench_extension_hybrid.cc.o.d"
  "bench_extension_hybrid"
  "bench_extension_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
