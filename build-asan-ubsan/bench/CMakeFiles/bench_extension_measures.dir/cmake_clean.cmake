file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_measures.dir/bench_extension_measures.cc.o"
  "CMakeFiles/bench_extension_measures.dir/bench_extension_measures.cc.o.d"
  "bench_extension_measures"
  "bench_extension_measures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_measures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
