# Empty dependencies file for bench_extension_measures.
# This may be replaced when dependencies are built.
