# Empty dependencies file for bench_error_decomposition.
# This may be replaced when dependencies are built.
