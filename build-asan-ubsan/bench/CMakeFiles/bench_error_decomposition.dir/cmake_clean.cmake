file(REMOVE_RECURSE
  "CMakeFiles/bench_error_decomposition.dir/bench_error_decomposition.cc.o"
  "CMakeFiles/bench_error_decomposition.dir/bench_error_decomposition.cc.o.d"
  "bench_error_decomposition"
  "bench_error_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_error_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
