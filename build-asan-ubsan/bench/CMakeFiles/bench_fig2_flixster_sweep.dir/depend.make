# Empty dependencies file for bench_fig2_flixster_sweep.
# This may be replaced when dependencies are built.
