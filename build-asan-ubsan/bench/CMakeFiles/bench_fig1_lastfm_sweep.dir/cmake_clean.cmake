file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_lastfm_sweep.dir/bench_fig1_lastfm_sweep.cc.o"
  "CMakeFiles/bench_fig1_lastfm_sweep.dir/bench_fig1_lastfm_sweep.cc.o.d"
  "bench_fig1_lastfm_sweep"
  "bench_fig1_lastfm_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_lastfm_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
