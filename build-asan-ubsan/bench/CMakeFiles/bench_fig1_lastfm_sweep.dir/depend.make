# Empty dependencies file for bench_fig1_lastfm_sweep.
# This may be replaced when dependencies are built.
