# Empty dependencies file for bench_extension_postprocess.
# This may be replaced when dependencies are built.
