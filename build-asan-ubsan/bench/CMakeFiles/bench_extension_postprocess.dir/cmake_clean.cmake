file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_postprocess.dir/bench_extension_postprocess.cc.o"
  "CMakeFiles/bench_extension_postprocess.dir/bench_extension_postprocess.cc.o.d"
  "bench_extension_postprocess"
  "bench_extension_postprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_postprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
