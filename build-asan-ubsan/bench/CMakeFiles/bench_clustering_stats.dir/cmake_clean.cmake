file(REMOVE_RECURSE
  "CMakeFiles/bench_clustering_stats.dir/bench_clustering_stats.cc.o"
  "CMakeFiles/bench_clustering_stats.dir/bench_clustering_stats.cc.o.d"
  "bench_clustering_stats"
  "bench_clustering_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clustering_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
