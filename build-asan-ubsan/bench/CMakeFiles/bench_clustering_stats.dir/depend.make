# Empty dependencies file for bench_clustering_stats.
# This may be replaced when dependencies are built.
